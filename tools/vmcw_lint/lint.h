// vmcw_lint: a tokenizer-level checker for the determinism contract.
//
// The dynamic half of the contract (1/2/8-thread pin tests, TSan) catches a
// violation only when a test happens to exercise it; this tool makes the
// contract's *sources* of nondeterminism grep-proofly illegal across src/.
// It deliberately works on tokens, not an AST: no libclang dependency, runs
// in milliseconds as a ctest, and the rules it enforces are lexical by
// nature (a banned identifier is banned wherever it appears). Whole-program
// rules that need to see across translation units (fork-key collisions,
// lock-order cycles, layering, durable-write discipline) live in the
// sibling tool vmcw_analyze; both share the lexer, config format and
// suppression syntax through tools/check_common.
//
// Rules (each violation names its rule; see DESIGN.md §5d for rationale):
//   nondeterministic-rng  std::random_device, rand/srand/*rand48, and the
//                         <random> engines — all randomness flows through
//                         util/rng.h's keyed xoshiro streams.
//   wall-clock            system/steady/high_resolution_clock, time(),
//                         gettimeofday & friends in result-affecting code;
//                         telemetry/cancellation are allowlisted.
//   unordered-iteration   range-for over a container declared as
//                         unordered_{map,set,multimap,multiset} in the same
//                         file — hash order must never reach results.
//   thread-identity       this_thread::get_id, hardware_concurrency, or a
//                         "VMCW_THREADS" read outside the thread pool —
//                         results must not branch on who or how many.
//   mutable-global        non-const namespace-scope / static / thread_local
//                         variables: shared mutable state breaks replay.
//   rng-construction      direct Rng construction outside util/rng —
//                         streams must derive from a forked parent; the
//                         handful of root-of-scenario seeds are suppressed
//                         inline and declared in the config.
//
// Suppressions: a line (or the standalone comment line above it) may carry
//   // vmcw-lint: allow(rule) reason...
// Every inline suppression must be backed by an `allow-inline` config entry
// for (file, rule) — an undeclared or unused suppression is itself a
// violation, so the checked-in config is the complete allowlist.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "check.h"

namespace vmcw::lint {

using check::Config;
using check::Violation;
using check::glob_match;

/// Names of the lint contract rules, in reporting order (the analyzer's
/// whole-program rules are not included; see check::known_rule_names()).
const std::vector<std::string>& rule_names();

/// Run the lint rules on one file's content, raw: no allowlist filtering,
/// no suppression handling. vmcw_analyze uses this to audit whether each
/// config entry still matches a live violation.
std::vector<Violation> lint_file_raw(std::string_view path,
                                     std::string_view content);

/// Lint one file's content. `path` is the repo-relative path used for
/// allowlist matching and reporting.
std::vector<Violation> lint_file(std::string_view path,
                                 std::string_view content,
                                 const Config& config);

/// Lint every *.h / *.cpp under `paths` (files or directories), resolved
/// relative to `root`; reported paths are root-relative. Directories are
/// walked in sorted order so output is stable.
std::vector<Violation> lint_paths(const std::string& root,
                                  const std::vector<std::string>& paths,
                                  const Config& config,
                                  std::string* error);

}  // namespace vmcw::lint
