#include "lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>  // vmcw-lint is not itself result-affecting code

namespace vmcw::lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer. Comments, string/char literals and preprocessor directives are
// consumed (a banned identifier inside an #include or a string is not a
// violation — except the "VMCW_THREADS" literal, which rule thread-identity
// wants to see, so string tokens keep their text).
// ---------------------------------------------------------------------------

enum class Tok { kIdent, kNumber, kString, kPunct };

struct Token {
  Tok kind;
  std::string_view text;
  std::size_t line;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0, line = 1;
  const std::size_t n = src.size();
  bool line_has_token = false;  // anything but whitespace seen on this line

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      line_has_token = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: '#' as the first non-space character of a
    // line swallows the directive, honoring backslash continuations.
    if (c == '#' && !line_has_token) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    line_has_token = true;
    if (c == '/' && peek(1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal R"delim( ... )delim"
    if (c == 'R' && peek(1) == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(' && src[d] != '"') ++d;
      if (d < n && src[d] == '(') {
        const std::string closer =
            ")" + std::string(src.substr(i + 2, d - (i + 2))) + "\"";
        const std::size_t start = d + 1;
        const std::size_t end = src.find(closer, start);
        const std::size_t stop = end == std::string_view::npos
                                     ? n
                                     : end + closer.size();
        out.push_back({Tok::kString,
                       src.substr(start, (end == std::string_view::npos
                                              ? n
                                              : end) -
                                             start),
                       line});
        for (std::size_t k = i; k < stop; ++k)
          if (src[k] == '\n') ++line;
        i = stop;
        continue;
      }
    }
    if (c == '"') {
      const std::size_t start = ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      out.push_back({Tok::kString, src.substr(start, i - start), line});
      if (i < n) ++i;
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\') ++i;
        ++i;
      }
      if (i < n) ++i;
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.push_back({Tok::kIdent, src.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      while (i < n && (ident_char(src[i]) || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P'))))
        ++i;
      out.push_back({Tok::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Multi-character operators we care to keep atomic.
    static constexpr std::array<std::string_view, 18> kOps = {
        "::", "->", "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=",
        "&&", "||", "+=", "-=",  "*=", "/=", "|=", "&="};
    std::string_view matched;
    for (const std::string_view op : kOps) {
      if (src.substr(i, op.size()) == op) {
        matched = op;
        break;
      }
    }
    if (!matched.empty()) {
      out.push_back({Tok::kPunct, src.substr(i, matched.size()), line});
      i += matched.size();
      continue;
    }
    out.push_back({Tok::kPunct, src.substr(i, 1), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Small token helpers.
// ---------------------------------------------------------------------------

bool is(const Token& t, std::string_view text) { return t.text == text; }

std::string_view prev_text(const std::vector<Token>& toks, std::size_t i) {
  return i == 0 ? std::string_view{} : toks[i - 1].text;
}

std::string_view next_text(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() ? toks[i + 1].text : std::string_view{};
}

/// Index just past the matching closer for the opener at `open` (which must
/// be '(', '[', '{' or '<'). For '<', '>>' counts as two closers. Returns
/// toks.size() when unbalanced.
std::size_t skip_group(const std::vector<Token>& toks, std::size_t open) {
  const std::string_view o = toks[open].text;
  const bool angle = o == "<";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string_view t = toks[i].text;
    if (angle) {
      if (t == "<") ++depth;
      else if (t == ">") --depth;
      else if (t == ">>") depth -= 2;
      else if (t == ";" || t == "{") return toks.size();  // not a template
      if (depth <= 0) return i + 1;
    } else {
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      if (depth == 0) return i + 1;
    }
  }
  return toks.size();
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

constexpr std::string_view kRuleRng = "nondeterministic-rng";
constexpr std::string_view kRuleClock = "wall-clock";
constexpr std::string_view kRuleUnordered = "unordered-iteration";
constexpr std::string_view kRuleThread = "thread-identity";
constexpr std::string_view kRuleGlobal = "mutable-global";
constexpr std::string_view kRuleRngCtor = "rng-construction";
constexpr std::string_view kRuleUndeclared = "undeclared-suppression";
constexpr std::string_view kRuleUnused = "unused-suppression";

void add(std::vector<Violation>& out, std::string_view file, std::size_t line,
         std::string_view rule, std::string message) {
  out.push_back({std::string(file), line, std::string(rule),
                 std::move(message)});
}

/// Concatenate string-ish pieces with append (gcc 12's -Wrestrict
/// false-positives on `const char* + std::string&&` chains).
template <typename... Parts>
std::string cat(Parts&&... parts) {
  std::string out;
  (out.append(parts), ...);
  return out;
}

bool member_access(std::string_view prev) {
  return prev == "." || prev == "->";
}

/// nondeterministic-rng: banned identifiers and C rand calls.
void rule_nondeterministic_rng(const std::vector<Token>& toks,
                               std::string_view file,
                               std::vector<Violation>& out) {
  static const std::set<std::string_view> kBanned = {
      "random_device", "srand",   "srandom",       "drand48",
      "lrand48",       "mrand48", "erand48",       "rand_r",
      "random_shuffle"};
  static const std::set<std::string_view> kEngines = {
      "mt19937",      "mt19937_64",   "default_random_engine",
      "minstd_rand",  "minstd_rand0", "knuth_b",
      "ranlux24",     "ranlux48",     "ranlux24_base",
      "ranlux48_base"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string_view t = toks[i].text;
    if (kBanned.count(t)) {
      add(out, file, toks[i].line, kRuleRng,
          cat("'", t,
              "' is nondeterministic; derive randomness from a keyed "
              "Rng::fork stream"));
    } else if (kEngines.count(t)) {
      add(out, file, toks[i].line, kRuleRng,
          cat("<random> engine '", t,
              "' bypasses util/rng.h; all streams must come from Rng"));
    } else if (t == "rand" && next_text(toks, i) == "(" &&
               !member_access(prev_text(toks, i))) {
      add(out, file, toks[i].line, kRuleRng,
          "rand() is nondeterministic across platforms and seeds globally; "
          "use a forked Rng");
    }
  }
}

/// wall-clock: clock reads in result-affecting code.
void rule_wall_clock(const std::vector<Token>& toks, std::string_view file,
                     std::vector<Violation>& out) {
  static const std::set<std::string_view> kBanned = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get",
      "localtime",    "localtime_r",  "gmtime",
      "gmtime_r",     "strftime",     "ctime",
      "mktime"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string_view t = toks[i].text;
    if (kBanned.count(t)) {
      add(out, file, toks[i].line, kRuleClock,
          cat("wall-clock read '", t,
              "' in result-affecting code; time may only flow into "
              "telemetry or watchdogs (allowlisted files)"));
    } else if ((t == "time" || t == "clock") && next_text(toks, i) == "(" &&
               !member_access(prev_text(toks, i))) {
      add(out, file, toks[i].line, kRuleClock,
          cat(t, "() reads the wall clock; results must not depend on "
                 "when they ran"));
    }
  }
}

/// thread-identity: results must not observe which/how many threads run.
void rule_thread_identity(const std::vector<Token>& toks,
                          std::string_view file,
                          std::vector<Violation>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind == Tok::kString) {
      if (tok.text.find("VMCW_THREADS") != std::string_view::npos)
        add(out, file, tok.line, kRuleThread,
            "\"VMCW_THREADS\" read outside the thread pool; thread count "
            "must never reach result code");
      continue;
    }
    if (tok.kind != Tok::kIdent) continue;
    if (tok.text == "get_id" && i >= 2 && is(toks[i - 1], "::") &&
        is(toks[i - 2], "this_thread")) {
      add(out, file, tok.line, kRuleThread,
          "this_thread::get_id() makes results depend on scheduling");
    } else if (tok.text == "hardware_concurrency") {
      add(out, file, tok.line, kRuleThread,
          "hardware_concurrency() outside the thread pool; sizing "
          "decisions belong to ThreadPool::default_concurrency");
    } else if (tok.text == "VMCW_THREADS") {
      add(out, file, tok.line, kRuleThread,
          "VMCW_THREADS consulted outside the thread pool");
    }
  }
}

/// unordered-iteration: range-for over a container declared unordered in
/// this file.
void rule_unordered_iteration(const std::vector<Token>& toks,
                              std::string_view file,
                              std::vector<Violation>& out) {
  static const std::set<std::string_view> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || !kUnordered.count(toks[i].text))
      continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is(toks[j], "<")) j = skip_group(toks, j);
    while (j < toks.size() &&
           (is(toks[j], "&") || is(toks[j], "*") || is(toks[j], "&&")))
      ++j;
    if (j < toks.size() && toks[j].kind == Tok::kIdent &&
        next_text(toks, j) != "(")  // skip function return types
      names.insert(toks[j].text);
  }
  if (names.empty()) return;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(toks[i].kind == Tok::kIdent && is(toks[i], "for") &&
          is(toks[i + 1], "(")))
      continue;
    const std::size_t close = skip_group(toks, i + 1);
    // Find the range-for ':' at paren depth 1.
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      const std::string_view t = toks[j].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      else if (t == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    for (std::size_t j = colon + 1; j + 1 < close; ++j) {
      if (toks[j].kind == Tok::kIdent && names.count(toks[j].text)) {
        add(out, file, toks[i].line, kRuleUnordered,
            cat("iterating unordered container '", toks[j].text,
                "'; hash order is nondeterministic across platforms — use "
                "an ordered container or sort first"));
        break;
      }
    }
  }
}

/// rng-construction: Rng objects outside util/rng must come from fork().
void rule_rng_construction(const std::vector<Token>& toks,
                           std::string_view file,
                           std::vector<Violation>& out) {
  // Do the parenthesized tokens look like a parameter list (declaration)
  // rather than constructor arguments? Two adjacent identifiers — a type
  // followed by a parameter name — or parameter-ish keywords decide.
  auto param_list_like = [&](std::size_t open) {
    const std::size_t close = skip_group(toks, open);
    for (std::size_t j = open + 1; j + 1 < close; ++j) {
      const Token& t = toks[j];
      if (t.kind == Tok::kIdent &&
          (t.text == "const" || t.text == "auto" || t.text == "class" ||
           t.text == "struct" || t.text == "typename"))
        return true;
      if (t.kind == Tok::kIdent && toks[j + 1].kind == Tok::kIdent)
        return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || !is(toks[i], "Rng")) continue;
    const std::string_view prev = prev_text(toks, i);
    if (prev == "class" || prev == "struct" || prev == "." || prev == "->")
      continue;
    const std::string_view next = next_text(toks, i);
    std::size_t report = toks[i].line;
    if (next == "(") {
      // Direct temporary `Rng(seed)` vs constructor declaration `Rng(...)`
      // inside class Rng (allowlisted file) — parameter lists pass.
      const std::size_t open = i + 1;
      if (param_list_like(open)) continue;
      const std::size_t close = skip_group(toks, open);
      if (close - open <= 2) {
        // `Rng()` — flag only in expression position.
        if (!(prev == "return" || prev == "=" || prev == "(" ||
              prev == "," || prev == "{"))
          continue;
      }
      add(out, file, report, kRuleRngCtor,
          "direct Rng construction; derive this stream from a keyed "
          "fork of its parent (root streams: suppress inline + declare "
          "in the lint config)");
    } else if (next == "{") {
      add(out, file, report, kRuleRngCtor,
          "direct Rng construction; derive this stream from a keyed "
          "fork of its parent");
    } else if (i + 2 < toks.size() && toks[i + 1].kind == Tok::kIdent &&
               (is(toks[i + 2], "(") || is(toks[i + 2], "{"))) {
      // `Rng name(args)` / `Rng name{args}` — a declaration with
      // constructor arguments, unless the parens are a parameter list
      // (then it declares a function returning Rng).
      const std::size_t open = i + 2;
      if (is(toks[open], "(")) {
        const std::size_t close = skip_group(toks, open);
        if (close - open <= 2 || param_list_like(open)) continue;
      }
      add(out, file, toks[i + 1].line, kRuleRngCtor,
          cat("Rng '", toks[i + 1].text,
              "' constructed from a raw seed; derive it from a keyed "
              "fork of its parent"));
    }
  }
}

/// mutable-global: non-const globals, statics and thread_locals.
void rule_mutable_global(const std::vector<Token>& toks,
                         std::string_view file,
                         std::vector<Violation>& out) {
  enum class Scope { kNamespace, kType, kFunc };
  std::vector<Scope> scopes;  // implicit global namespace at bottom
  auto at_namespace = [&] {
    return std::all_of(scopes.begin(), scopes.end(),
                       [](Scope s) { return s == Scope::kNamespace; });
  };
  auto in_type = [&] {
    return !scopes.empty() && scopes.back() == Scope::kType;
  };

  std::size_t stmt = 0;  // first token of the current statement

  auto contains = [&](std::size_t lo, std::size_t hi, std::string_view w) {
    for (std::size_t j = lo; j < hi; ++j)
      if (toks[j].kind == Tok::kIdent && toks[j].text == w) return true;
    return false;
  };

  // Classify and maybe flag the declaration statement [lo, hi).
  auto check_decl = [&](std::size_t lo, std::size_t hi) {
    if (lo >= hi) return;
    const bool is_static = contains(lo, hi, "static");
    const bool is_tls = contains(lo, hi, "thread_local");
    if (!at_namespace() && !is_static && !is_tls) return;
    if (in_type() && !is_static) return;  // plain members are fine
    for (const std::string_view skip :
         {"using", "typedef", "friend", "static_assert", "extern",
          "template", "operator", "enum", "class", "struct", "union",
          "namespace", "concept", "requires", "return", "if", "goto"})
      if (contains(lo, hi, skip)) return;
    if (contains(lo, hi, "const") || contains(lo, hi, "constexpr") ||
        contains(lo, hi, "constinit"))
      return;
    // A '(' before any '=' means a function declaration/definition.
    bool has_ident = false;
    for (std::size_t j = lo; j < hi; ++j) {
      if (is(toks[j], "(")) return;
      if (is(toks[j], "=")) break;
      if (toks[j].kind == Tok::kIdent) has_ident = true;
    }
    if (!has_ident) return;
    const char* what = is_tls ? "thread_local variable"
                      : is_static ? "static variable"
                                  : "namespace-scope variable";
    add(out, file, toks[lo].line, kRuleGlobal,
        cat("mutable ", what,
            "; shared mutable state breaks deterministic replay — make it "
            "const, pass it explicitly, or allowlist it with a "
            "justification"));
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string_view t = toks[i].text;
    if (t == ";") {
      check_decl(stmt, i);
      stmt = i + 1;
    } else if (t == "}") {
      if (!scopes.empty()) scopes.pop_back();
      stmt = i + 1;
    } else if (t == "{") {
      // Classify the scope this brace opens from its statement prefix.
      const std::size_t lo = stmt;
      int paren_depth = 0;
      bool fn = false;
      for (std::size_t j = lo; j < i; ++j) {
        if (is(toks[j], "(")) {
          ++paren_depth;
          fn = true;
        } else if (is(toks[j], ")")) {
          --paren_depth;
        }
      }
      if (paren_depth > 0) {
        // A brace inside an open paren (`predictor = {}` default argument,
        // a braced call argument): an expression, not a scope — skip it,
        // the statement continues.
        const std::size_t close = skip_group(toks, i);
        i = close == 0 ? i : close - 1;
        continue;
      }
      if (contains(lo, i, "namespace") ||
          (contains(lo, i, "extern") && !fn)) {
        scopes.push_back(Scope::kNamespace);
      } else if (!fn && (contains(lo, i, "class") ||
                         contains(lo, i, "struct") ||
                         contains(lo, i, "union") ||
                         contains(lo, i, "enum"))) {
        scopes.push_back(Scope::kType);
      } else if (i > lo &&
                 (is(toks[i - 1], "=") ||
                  (!fn && (toks[i - 1].kind == Tok::kIdent ||
                           is(toks[i - 1], ">"))))) {
        // Brace initializer of a declaration (`std::atomic<T> g{...};`):
        // not a scope — skip it, the declaration ends at the ';'.
        const std::size_t close = skip_group(toks, i);
        check_decl(lo, i);
        i = close == toks.size() ? close - 1 : close - 1;
        // The init braces were part of the statement; resume after them.
        stmt = i + 1;
        // Consume a trailing ';' if present.
        if (i + 1 < toks.size() && is(toks[i + 1], ";")) {
          ++i;
          stmt = i + 1;
        }
      } else {
        scopes.push_back(Scope::kFunc);
      }
      if (!(stmt > i)) stmt = i + 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions: `// vmcw-lint: allow(rule[, rule...])` on the violating
// line, or on a standalone comment line directly above it.
// ---------------------------------------------------------------------------

struct Suppression {
  std::size_t comment_line;  ///< where the comment sits (for reporting)
  std::string rule;
  bool used = false;
};

void scan_suppressions(std::string_view content,
                       std::map<std::size_t, std::vector<std::size_t>>& by_line,
                       std::vector<Suppression>& all) {
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::string_view text =
        content.substr(pos, eol == std::string_view::npos ? content.size() - pos
                                                          : eol - pos);
    const std::size_t mark = text.find("vmcw-lint:");
    if (mark != std::string_view::npos) {
      const std::size_t open = text.find("allow(", mark);
      const std::size_t close =
          open == std::string_view::npos ? std::string_view::npos
                                         : text.find(')', open);
      if (open != std::string_view::npos && close != std::string_view::npos) {
        std::string_view rules =
            text.substr(open + 6, close - (open + 6));
        const std::size_t comment = text.find("//");
        const bool standalone =
            comment != std::string_view::npos &&
            text.find_first_not_of(" \t") == comment;
        std::size_t p = 0;
        while (p < rules.size()) {
          std::size_t q = rules.find(',', p);
          if (q == std::string_view::npos) q = rules.size();
          std::string rule(rules.substr(p, q - p));
          rule.erase(0, rule.find_first_not_of(" \t"));
          const std::size_t last = rule.find_last_not_of(" \t");
          rule.erase(last == std::string::npos ? 0 : last + 1);
          if (!rule.empty()) {
            all.push_back({line, rule, false});
            by_line[line].push_back(all.size() - 1);
            if (standalone) by_line[line + 1].push_back(all.size() - 1);
          }
          p = q + 1;
        }
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface.
// ---------------------------------------------------------------------------

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      std::string(kRuleRng),      std::string(kRuleClock),
      std::string(kRuleUnordered), std::string(kRuleThread),
      std::string(kRuleGlobal),   std::string(kRuleRngCtor)};
  return kNames;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative '*' glob (no character classes needed).
  std::size_t p = 0, t = 0, star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool Config::parse(std::string_view text, Config& out, std::string* error) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string line(text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos));
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream in(line);
    std::string kind;
    if (!(in >> kind)) continue;
    if (kind != "allow" && kind != "allow-inline") {
      if (error)
        *error = "config line " + std::to_string(line_no) +
                 ": unknown directive '" + kind + "'";
      return false;
    }
    Entry entry;
    std::string dashes;
    if (!(in >> entry.pattern >> entry.rule >> dashes) || dashes != "--") {
      if (error)
        *error = "config line " + std::to_string(line_no) +
                 ": expected '<kind> <path-glob> <rule> -- <justification>'";
      return false;
    }
    std::getline(in, entry.reason);
    entry.reason.erase(0, entry.reason.find_first_not_of(" \t"));
    if (entry.reason.empty()) {
      if (error)
        *error = "config line " + std::to_string(line_no) +
                 ": every allowlist entry needs a justification";
      return false;
    }
    const auto& names = rule_names();
    if (std::find(names.begin(), names.end(), entry.rule) == names.end()) {
      if (error)
        *error = "config line " + std::to_string(line_no) +
                 ": unknown rule '" + entry.rule + "'";
      return false;
    }
    (kind == "allow" ? out.allow : out.allow_inline)
        .push_back(std::move(entry));
  }
  return true;
}

bool Config::allows(std::string_view file, std::string_view rule) const {
  for (const Entry& e : allow)
    if (e.rule == rule && glob_match(e.pattern, file)) return true;
  return false;
}

bool Config::allows_inline(std::string_view file,
                           std::string_view rule) const {
  for (const Entry& e : allow_inline)
    if (e.rule == rule && glob_match(e.pattern, file)) return true;
  return false;
}

std::vector<Violation> lint_file(std::string_view path,
                                 std::string_view content,
                                 const Config& config) {
  const std::vector<Token> toks = tokenize(content);

  std::vector<Violation> raw;
  rule_nondeterministic_rng(toks, path, raw);
  rule_wall_clock(toks, path, raw);
  rule_unordered_iteration(toks, path, raw);
  rule_thread_identity(toks, path, raw);
  rule_mutable_global(toks, path, raw);
  rule_rng_construction(toks, path, raw);

  std::map<std::size_t, std::vector<std::size_t>> suppress_by_line;
  std::vector<Suppression> suppressions;
  scan_suppressions(content, suppress_by_line, suppressions);

  std::vector<Violation> kept;
  for (Violation& v : raw) {
    if (config.allows(path, v.rule)) continue;
    bool suppressed = false;
    const auto it = suppress_by_line.find(v.line);
    if (it != suppress_by_line.end()) {
      for (const std::size_t s : it->second) {
        if (suppressions[s].rule == v.rule) {
          suppressions[s].used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(v));
  }

  // Inline suppressions are only legal when the checked-in config declares
  // them — and a suppression that no longer suppresses anything must be
  // deleted, so stale escapes can't accumulate.
  std::set<std::pair<std::size_t, std::string>> seen;
  for (const Suppression& s : suppressions) {
    if (!seen.insert({s.comment_line, s.rule}).second) continue;
    if (s.used && !config.allows_inline(path, s.rule)) {
      add(kept, path, s.comment_line, kRuleUndeclared,
          cat("inline suppression of '", s.rule,
              "' is not declared in the lint config; add an allow-inline "
              "entry with a justification"));
    } else if (!s.used) {
      add(kept, path, s.comment_line, kRuleUnused,
          cat("suppression of '", s.rule,
              "' matches no violation on this line; delete it"));
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Violation& a,
                                         const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return kept;
}

std::vector<Violation> lint_paths(const std::string& root,
                                  const std::vector<std::string>& paths,
                                  const Config& config, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  const fs::path base(root);
  for (const std::string& p : paths) {
    const fs::path full = base / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc")
          files.push_back(it->path());
      }
    } else if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else {
      if (error) *error = "no such file or directory: " + full.string();
      return {};
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> out;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      if (error) *error = "cannot read " + file.string();
      return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel = file.lexically_normal()
                                .lexically_relative(base.lexically_normal())
                                .generic_string();
    const std::string content = buffer.str();
    const bool escapes_root = rel.empty() || rel.starts_with("..");
    std::vector<Violation> file_violations = lint_file(
        escapes_root ? file.generic_string() : rel, content, config);
    out.insert(out.end(), std::make_move_iterator(file_violations.begin()),
               std::make_move_iterator(file_violations.end()));
  }
  return out;
}

}  // namespace vmcw::lint
