#include "lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace vmcw::lint {

namespace {

using check::Tok;
using check::Token;
using check::cat;
using check::next_text;
using check::prev_text;
using check::skip_group;

// ---------------------------------------------------------------------------
// Small token helpers.
// ---------------------------------------------------------------------------

bool is(const Token& t, std::string_view text) { return t.text == text; }

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

constexpr std::string_view kRuleRng = "nondeterministic-rng";
constexpr std::string_view kRuleClock = "wall-clock";
constexpr std::string_view kRuleUnordered = "unordered-iteration";
constexpr std::string_view kRuleThread = "thread-identity";
constexpr std::string_view kRuleGlobal = "mutable-global";
constexpr std::string_view kRuleRngCtor = "rng-construction";

void add(std::vector<Violation>& out, std::string_view file, std::size_t line,
         std::string_view rule, std::string message) {
  out.push_back({std::string(file), line, std::string(rule),
                 std::move(message)});
}

bool member_access(std::string_view prev) {
  return prev == "." || prev == "->";
}

/// nondeterministic-rng: banned identifiers and C rand calls.
void rule_nondeterministic_rng(const std::vector<Token>& toks,
                               std::string_view file,
                               std::vector<Violation>& out) {
  static const std::set<std::string_view> kBanned = {
      "random_device", "srand",   "srandom",       "drand48",
      "lrand48",       "mrand48", "erand48",       "rand_r",
      "random_shuffle"};
  static const std::set<std::string_view> kEngines = {
      "mt19937",      "mt19937_64",   "default_random_engine",
      "minstd_rand",  "minstd_rand0", "knuth_b",
      "ranlux24",     "ranlux48",     "ranlux24_base",
      "ranlux48_base"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string_view t = toks[i].text;
    if (kBanned.count(t)) {
      add(out, file, toks[i].line, kRuleRng,
          cat("'", t,
              "' is nondeterministic; derive randomness from a keyed "
              "Rng::fork stream"));
    } else if (kEngines.count(t)) {
      add(out, file, toks[i].line, kRuleRng,
          cat("<random> engine '", t,
              "' bypasses util/rng.h; all streams must come from Rng"));
    } else if (t == "rand" && next_text(toks, i) == "(" &&
               !member_access(prev_text(toks, i))) {
      add(out, file, toks[i].line, kRuleRng,
          "rand() is nondeterministic across platforms and seeds globally; "
          "use a forked Rng");
    }
  }
}

/// wall-clock: clock reads in result-affecting code.
void rule_wall_clock(const std::vector<Token>& toks, std::string_view file,
                     std::vector<Violation>& out) {
  static const std::set<std::string_view> kBanned = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get",
      "localtime",    "localtime_r",  "gmtime",
      "gmtime_r",     "strftime",     "ctime",
      "mktime"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string_view t = toks[i].text;
    if (kBanned.count(t)) {
      add(out, file, toks[i].line, kRuleClock,
          cat("wall-clock read '", t,
              "' in result-affecting code; time may only flow into "
              "telemetry or watchdogs (allowlisted files)"));
    } else if ((t == "time" || t == "clock") && next_text(toks, i) == "(" &&
               !member_access(prev_text(toks, i))) {
      add(out, file, toks[i].line, kRuleClock,
          cat(t, "() reads the wall clock; results must not depend on "
                 "when they ran"));
    }
  }
}

/// thread-identity: results must not observe which/how many threads run.
void rule_thread_identity(const std::vector<Token>& toks,
                          std::string_view file,
                          std::vector<Violation>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind == Tok::kString) {
      if (tok.text.find("VMCW_THREADS") != std::string_view::npos)
        add(out, file, tok.line, kRuleThread,
            "\"VMCW_THREADS\" read outside the thread pool; thread count "
            "must never reach result code");
      continue;
    }
    if (tok.kind != Tok::kIdent) continue;
    if (tok.text == "get_id" && i >= 2 && is(toks[i - 1], "::") &&
        is(toks[i - 2], "this_thread")) {
      add(out, file, tok.line, kRuleThread,
          "this_thread::get_id() makes results depend on scheduling");
    } else if (tok.text == "hardware_concurrency") {
      add(out, file, tok.line, kRuleThread,
          "hardware_concurrency() outside the thread pool; sizing "
          "decisions belong to ThreadPool::default_concurrency");
    } else if (tok.text == "VMCW_THREADS") {
      add(out, file, tok.line, kRuleThread,
          "VMCW_THREADS consulted outside the thread pool");
    }
  }
}

/// unordered-iteration: range-for over a container declared unordered in
/// this file.
void rule_unordered_iteration(const std::vector<Token>& toks,
                              std::string_view file,
                              std::vector<Violation>& out) {
  static const std::set<std::string_view> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || !kUnordered.count(toks[i].text))
      continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is(toks[j], "<")) j = skip_group(toks, j);
    while (j < toks.size() &&
           (is(toks[j], "&") || is(toks[j], "*") || is(toks[j], "&&")))
      ++j;
    if (j < toks.size() && toks[j].kind == Tok::kIdent &&
        next_text(toks, j) != "(")  // skip function return types
      names.insert(toks[j].text);
  }
  if (names.empty()) return;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(toks[i].kind == Tok::kIdent && is(toks[i], "for") &&
          is(toks[i + 1], "(")))
      continue;
    const std::size_t close = skip_group(toks, i + 1);
    // Find the range-for ':' at paren depth 1.
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      const std::string_view t = toks[j].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      else if (t == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    for (std::size_t j = colon + 1; j + 1 < close; ++j) {
      if (toks[j].kind == Tok::kIdent && names.count(toks[j].text)) {
        add(out, file, toks[i].line, kRuleUnordered,
            cat("iterating unordered container '", toks[j].text,
                "'; hash order is nondeterministic across platforms — use "
                "an ordered container or sort first"));
        break;
      }
    }
  }
}

/// rng-construction: Rng objects outside util/rng must come from fork().
void rule_rng_construction(const std::vector<Token>& toks,
                           std::string_view file,
                           std::vector<Violation>& out) {
  // Do the parenthesized tokens look like a parameter list (declaration)
  // rather than constructor arguments? Two adjacent identifiers — a type
  // followed by a parameter name — or parameter-ish keywords decide.
  auto param_list_like = [&](std::size_t open) {
    const std::size_t close = skip_group(toks, open);
    for (std::size_t j = open + 1; j + 1 < close; ++j) {
      const Token& t = toks[j];
      if (t.kind == Tok::kIdent &&
          (t.text == "const" || t.text == "auto" || t.text == "class" ||
           t.text == "struct" || t.text == "typename"))
        return true;
      if (t.kind == Tok::kIdent && toks[j + 1].kind == Tok::kIdent)
        return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || !is(toks[i], "Rng")) continue;
    const std::string_view prev = prev_text(toks, i);
    if (prev == "class" || prev == "struct" || prev == "." || prev == "->")
      continue;
    const std::string_view next = next_text(toks, i);
    std::size_t report = toks[i].line;
    if (next == "(") {
      // Direct temporary `Rng(seed)` vs constructor declaration `Rng(...)`
      // inside class Rng (allowlisted file) — parameter lists pass.
      const std::size_t open = i + 1;
      if (param_list_like(open)) continue;
      const std::size_t close = skip_group(toks, open);
      if (close - open <= 2) {
        // `Rng()` — flag only in expression position.
        if (!(prev == "return" || prev == "=" || prev == "(" ||
              prev == "," || prev == "{"))
          continue;
      }
      add(out, file, report, kRuleRngCtor,
          "direct Rng construction; derive this stream from a keyed "
          "fork of its parent (root streams: suppress inline + declare "
          "in the lint config)");
    } else if (next == "{") {
      add(out, file, report, kRuleRngCtor,
          "direct Rng construction; derive this stream from a keyed "
          "fork of its parent");
    } else if (i + 2 < toks.size() && toks[i + 1].kind == Tok::kIdent &&
               (is(toks[i + 2], "(") || is(toks[i + 2], "{"))) {
      // `Rng name(args)` / `Rng name{args}` — a declaration with
      // constructor arguments, unless the parens are a parameter list
      // (then it declares a function returning Rng).
      const std::size_t open = i + 2;
      if (is(toks[open], "(")) {
        const std::size_t close = skip_group(toks, open);
        if (close - open <= 2 || param_list_like(open)) continue;
      }
      add(out, file, toks[i + 1].line, kRuleRngCtor,
          cat("Rng '", toks[i + 1].text,
              "' constructed from a raw seed; derive it from a keyed "
              "fork of its parent"));
    }
  }
}

/// mutable-global: non-const globals, statics and thread_locals.
void rule_mutable_global(const std::vector<Token>& toks,
                         std::string_view file,
                         std::vector<Violation>& out) {
  enum class Scope { kNamespace, kType, kFunc };
  std::vector<Scope> scopes;  // implicit global namespace at bottom
  auto at_namespace = [&] {
    return std::all_of(scopes.begin(), scopes.end(),
                       [](Scope s) { return s == Scope::kNamespace; });
  };
  auto in_type = [&] {
    return !scopes.empty() && scopes.back() == Scope::kType;
  };

  std::size_t stmt = 0;  // first token of the current statement

  auto contains = [&](std::size_t lo, std::size_t hi, std::string_view w) {
    for (std::size_t j = lo; j < hi; ++j)
      if (toks[j].kind == Tok::kIdent && toks[j].text == w) return true;
    return false;
  };

  // Classify and maybe flag the declaration statement [lo, hi).
  auto check_decl = [&](std::size_t lo, std::size_t hi) {
    if (lo >= hi) return;
    const bool is_static = contains(lo, hi, "static");
    const bool is_tls = contains(lo, hi, "thread_local");
    if (!at_namespace() && !is_static && !is_tls) return;
    if (in_type() && !is_static) return;  // plain members are fine
    for (const std::string_view skip :
         {"using", "typedef", "friend", "static_assert", "extern",
          "template", "operator", "enum", "class", "struct", "union",
          "namespace", "concept", "requires", "return", "if", "goto"})
      if (contains(lo, hi, skip)) return;
    if (contains(lo, hi, "const") || contains(lo, hi, "constexpr") ||
        contains(lo, hi, "constinit"))
      return;
    // A '(' before any '=' means a function declaration/definition.
    bool has_ident = false;
    for (std::size_t j = lo; j < hi; ++j) {
      if (is(toks[j], "(")) return;
      if (is(toks[j], "=")) break;
      if (toks[j].kind == Tok::kIdent) has_ident = true;
    }
    if (!has_ident) return;
    const char* what = is_tls ? "thread_local variable"
                      : is_static ? "static variable"
                                  : "namespace-scope variable";
    add(out, file, toks[lo].line, kRuleGlobal,
        cat("mutable ", what,
            "; shared mutable state breaks deterministic replay — make it "
            "const, pass it explicitly, or allowlist it with a "
            "justification"));
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string_view t = toks[i].text;
    if (t == ";") {
      check_decl(stmt, i);
      stmt = i + 1;
    } else if (t == "}") {
      if (!scopes.empty()) scopes.pop_back();
      stmt = i + 1;
    } else if (t == "{") {
      // Classify the scope this brace opens from its statement prefix.
      const std::size_t lo = stmt;
      int paren_depth = 0;
      bool fn = false;
      for (std::size_t j = lo; j < i; ++j) {
        if (is(toks[j], "(")) {
          ++paren_depth;
          fn = true;
        } else if (is(toks[j], ")")) {
          --paren_depth;
        }
      }
      if (paren_depth > 0) {
        // A brace inside an open paren (`predictor = {}` default argument,
        // a braced call argument): an expression, not a scope — skip it,
        // the statement continues.
        const std::size_t close = skip_group(toks, i);
        i = close == 0 ? i : close - 1;
        continue;
      }
      if (contains(lo, i, "namespace") ||
          (contains(lo, i, "extern") && !fn)) {
        scopes.push_back(Scope::kNamespace);
      } else if (!fn && (contains(lo, i, "class") ||
                         contains(lo, i, "struct") ||
                         contains(lo, i, "union") ||
                         contains(lo, i, "enum"))) {
        scopes.push_back(Scope::kType);
      } else if (i > lo &&
                 (is(toks[i - 1], "=") ||
                  (!fn && (toks[i - 1].kind == Tok::kIdent ||
                           is(toks[i - 1], ">"))))) {
        // Brace initializer of a declaration (`std::atomic<T> g{...};`):
        // not a scope — skip it, the declaration ends at the ';'.
        const std::size_t close = skip_group(toks, i);
        check_decl(lo, i);
        i = close == toks.size() ? close - 1 : close - 1;
        // The init braces were part of the statement; resume after them.
        stmt = i + 1;
        // Consume a trailing ';' if present.
        if (i + 1 < toks.size() && is(toks[i + 1], ";")) {
          ++i;
          stmt = i + 1;
        }
      } else {
        scopes.push_back(Scope::kFunc);
      }
      if (!(stmt > i)) stmt = i + 1;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface.
// ---------------------------------------------------------------------------

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      std::string(kRuleRng),      std::string(kRuleClock),
      std::string(kRuleUnordered), std::string(kRuleThread),
      std::string(kRuleGlobal),   std::string(kRuleRngCtor)};
  return kNames;
}

std::vector<Violation> lint_file_raw(std::string_view path,
                                     std::string_view content) {
  const std::vector<Token> toks = check::tokenize(content);

  std::vector<Violation> raw;
  rule_nondeterministic_rng(toks, path, raw);
  rule_wall_clock(toks, path, raw);
  rule_unordered_iteration(toks, path, raw);
  rule_thread_identity(toks, path, raw);
  rule_mutable_global(toks, path, raw);
  rule_rng_construction(toks, path, raw);
  return raw;
}

std::vector<Violation> lint_file(std::string_view path,
                                 std::string_view content,
                                 const Config& config) {
  std::vector<Violation> kept = check::apply_suppressions(
      path, content, config, lint_file_raw(path, content), rule_names(),
      nullptr);

  std::sort(kept.begin(), kept.end(), [](const Violation& a,
                                         const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return kept;
}

std::vector<Violation> lint_paths(const std::string& root,
                                  const std::vector<std::string>& paths,
                                  const Config& config, std::string* error) {
  std::vector<check::SourceFile> files;
  if (!check::list_source_files(root, paths, files, error)) return {};

  std::vector<Violation> out;
  for (const check::SourceFile& file : files) {
    std::string content;
    if (!check::read_file(file.full_path, content, error)) return {};
    std::vector<Violation> file_violations =
        lint_file(file.rel_path, content, config);
    out.insert(out.end(), std::make_move_iterator(file_violations.begin()),
               std::make_move_iterator(file_violations.end()));
  }
  return out;
}

}  // namespace vmcw::lint
