// vmcw_lint CLI. Exit status 0 = clean, 1 = violations, 2 = usage/IO error.
//
//   vmcw_lint --config=tools/vmcw_lint/vmcw_lint.conf --root=. src
//
// Runs as the `vmcw_lint_src` ctest; CI also runs it against an injected
// violation to prove the gate fails when it should.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vmcw_lint [--config=FILE] [--root=DIR] "
               "[--list-rules] PATH...\n"
               "Lints *.h/*.cpp under each PATH (relative to --root) "
               "against the determinism contract.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--config=", 0) == 0) {
      config_path = arg.substr(9);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--list-rules") {
      for (const std::string& rule : vmcw::lint::rule_names())
        std::printf("%s\n", rule.c_str());
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  vmcw::lint::Config config;
  if (!config_path.empty()) {
    std::ifstream in(config_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "vmcw_lint: cannot read config %s\n",
                   config_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!vmcw::lint::Config::parse(buffer.str(), config, &error)) {
      std::fprintf(stderr, "vmcw_lint: %s\n", error.c_str());
      return 2;
    }
  }

  std::string error;
  const std::vector<vmcw::lint::Violation> violations =
      vmcw::lint::lint_paths(root, paths, config, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "vmcw_lint: %s\n", error.c_str());
    return 2;
  }
  for (const vmcw::lint::Violation& v : violations)
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  if (!violations.empty()) {
    std::fprintf(stderr, "vmcw_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  return 0;
}
