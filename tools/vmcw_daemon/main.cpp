// vmcw_daemon: the online consolidation daemon's CLI.
//
// Two modes:
//
//   vmcw_daemon --gen-wal PATH [--hosts N] [--vms N] [--ticks N] [--seed S]
//       Generate a deterministic churn WAL at PATH (the stream a fleet of
//       collection agents would emit). --hosts maps to the number of
//       telemetry collectors; --vms to the initial population.
//
//   vmcw_daemon --wal PATH --replay [--decisions PATH] [--resume]
//       Replay a recorded WAL through the incremental controller, writing
//       the decision log (default: PATH.decisions). With --resume, the
//       decision log's intact prefix survives a crash: recomputed batches
//       are skipped instead of re-appended, so a resumed log is
//       byte-identical to an uninterrupted run.
//
//   vmcw_daemon --listen SOCK --wal PATH [--decisions PATH] [--resume]
//               [--tcp PORT] [--collectors K] [--queue N]
//               [--shed-ms MS] [--recover-ms MS] [--batch N]
//               [--snapshot PATH] [--snapshot-frames N]
//               [--snapshot-seconds S] [--segment-frames N]
//               [--keep-segments] [--health PATH]
//       Serve the ingestion protocol on a Unix socket (and optionally
//       loopback TCP): accept framed telemetry from K vmcw_collector
//       processes, serialize it WAL-first, and exit once K Shutdown
//       frames are durable. The WAL the serve run leaves behind replays
//       to the exact decision log the live run wrote. The bounded-recovery
//       flags (DESIGN.md §9) turn on controller snapshots, WAL segment
//       rotation with reclamation (--keep-segments retains the full chain
//       for cold replays), the heartbeat file vmcw_supervisor watches,
//       and the writer's frame batching cap.
//
// All gen/replay output on stdout is deterministic: the same WAL always
// prints the same stats and writes the same decision log bytes, at any
// VMCW_THREADS. A serve run's WAL depends on socket arrival order — its
// replay identity is the determinism contract there.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "service/churn.h"
#include "service/daemon.h"
#include "service/ingest.h"
#include "service/telemetry_log.h"

using namespace vmcw;
using namespace vmcw::service;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  vmcw_daemon --gen-wal PATH [--hosts N] [--vms N] [--ticks N]\n"
      "              [--blackouts P] [--seed S]\n"
      "  vmcw_daemon --wal PATH --replay [--decisions PATH] [--resume]\n"
      "  vmcw_daemon --listen SOCK --wal PATH [--decisions PATH] [--resume]\n"
      "              [--tcp PORT] [--collectors K] [--queue N]\n"
      "              [--shed-ms MS] [--recover-ms MS] [--batch N]\n"
      "              [--snapshot PATH] [--snapshot-frames N]\n"
      "              [--snapshot-seconds S] [--segment-frames N]\n"
      "              [--keep-segments] [--health PATH]\n");
  return 2;
}

int serve(Daemon::Options daemon_options, const IngestOptions& ingest_options) {
  const ControllerConfig config;
  Daemon daemon(config, std::move(daemon_options));
  const Daemon::OpenResult opened = daemon.open();
  if (opened.snapshot_loaded)
    std::fprintf(stderr, "recovered from snapshot at frame %llu "
                         "(+%zu WAL suffix frames)\n",
                 static_cast<unsigned long long>(opened.snapshot_frames),
                 opened.frames_recovered);
  else if (opened.frames_recovered > 0)
    std::fprintf(stderr, "resumed %zu frames, %zu batches\n",
                 opened.frames_recovered, opened.batches_recovered);

  IngestServer server(daemon, ingest_options);
  server.start(opened.wal_frames, opened.ack_marks, opened.shutdowns_recovered);
  std::fprintf(stderr, "listening on %s\n",
               ingest_options.unix_path.c_str());
  server.wait();
  daemon.close();

  const IngestStats in = server.stats();
  const DaemonStats& stats = daemon.stats();
  std::printf("ingested %zu messages from %zu connections "
              "(%zu duplicates dropped, %zu rejects, %zu shed entries)\n",
              in.messages_ingested, in.connections_accepted,
              in.duplicates_dropped, in.rejects_sent, in.shed_entries);
  if (stats.snapshots_written > 0 || stats.segments_reclaimed > 0)
    std::fprintf(stderr, "bounded recovery: %zu snapshots, "
                         "%zu segments reclaimed, %zu WAL batches\n",
                 stats.snapshots_written, stats.segments_reclaimed,
                 in.wal_batches);
  std::printf("decisions: %zu batches, %zu admits, %zu migrations, "
              "%zu holds, %zu degraded ticks\n",
              stats.batches, stats.admits, stats.migrations, stats.holds,
              stats.degraded_ticks);
  return 0;
}

int gen_wal(const std::string& path, const ChurnOptions& churn) {
  const ControllerConfig config;
  const auto frames = generate_churn(churn, config);
  FrameLog wal;
  wal.open(path, fleet_config_hash(config), /*resume=*/false);
  for (const Frame& frame : frames) wal.append(frame, /*sync=*/false);
  wal.sync();
  wal.close();
  std::printf("wrote %zu frames to %s (vms=%zu ticks=%zu seed=%llu)\n",
              frames.size(), path.c_str(), churn.initial_vms, churn.ticks,
              static_cast<unsigned long long>(churn.seed));
  return 0;
}

int replay(const std::string& wal_path, const std::string& decisions_path,
           bool resume) {
  const ControllerConfig config;
  const DaemonStats stats =
      replay_wal(wal_path, decisions_path, config, resume);
  std::printf("replayed %zu frames: %zu batches, %zu admits, "
              "%zu migrations, %zu holds, %zu degraded ticks\n",
              stats.frames, stats.batches, stats.admits, stats.migrations,
              stats.holds, stats.degraded_ticks);
  std::printf("decision log: %s\n", decisions_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string gen_path, wal_path, decisions_path;
  bool do_replay = false, resume = false;
  ChurnOptions churn;
  churn.blackout_prob = 0.0;
  IngestOptions ingest;
  Daemon::Options daemon_options;
  daemon_options.durable = true;
  bool do_listen = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--gen-wal") {
      const char* v = value();
      if (!v) return usage();
      gen_path = v;
    } else if (arg == "--wal") {
      const char* v = value();
      if (!v) return usage();
      wal_path = v;
    } else if (arg == "--decisions") {
      const char* v = value();
      if (!v) return usage();
      decisions_path = v;
    } else if (arg == "--hosts") {
      const char* v = value();
      if (!v) return usage();
      churn.agents = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--vms") {
      const char* v = value();
      if (!v) return usage();
      churn.initial_vms = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--ticks") {
      const char* v = value();
      if (!v) return usage();
      churn.ticks = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--blackouts") {
      const char* v = value();
      if (!v) return usage();
      churn.blackout_prob = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return usage();
      churn.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--replay") {
      do_replay = true;
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--listen") {
      const char* v = value();
      if (!v) return usage();
      ingest.unix_path = v;
      do_listen = true;
    } else if (arg == "--tcp") {
      const char* v = value();
      if (!v) return usage();
      ingest.tcp_port = std::atoi(v);
    } else if (arg == "--collectors") {
      const char* v = value();
      if (!v) return usage();
      ingest.expected_shutdowns = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--queue") {
      const char* v = value();
      if (!v) return usage();
      ingest.queue_capacity = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--shed-ms") {
      const char* v = value();
      if (!v) return usage();
      ingest.shed_fsync_seconds = std::atof(v) / 1000.0;
    } else if (arg == "--recover-ms") {
      const char* v = value();
      if (!v) return usage();
      ingest.recover_fsync_seconds = std::atof(v) / 1000.0;
    } else if (arg == "--batch") {
      const char* v = value();
      if (!v) return usage();
      ingest.max_batch_frames = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--snapshot") {
      const char* v = value();
      if (!v) return usage();
      daemon_options.snapshot_path = v;
    } else if (arg == "--snapshot-frames") {
      const char* v = value();
      if (!v) return usage();
      daemon_options.snapshot_every_frames =
          static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--snapshot-seconds") {
      const char* v = value();
      if (!v) return usage();
      daemon_options.snapshot_every_seconds = std::atof(v);
    } else if (arg == "--segment-frames") {
      const char* v = value();
      if (!v) return usage();
      daemon_options.segment_frames = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--keep-segments") {
      daemon_options.retain_segments = true;
    } else if (arg == "--health") {
      const char* v = value();
      if (!v) return usage();
      ingest.health_path = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage();
    }
  }

  try {
    if (!gen_path.empty()) return gen_wal(gen_path, churn);
    if (do_listen && !wal_path.empty()) {
      if (decisions_path.empty()) decisions_path = wal_path + ".decisions";
      daemon_options.wal_path = wal_path;
      daemon_options.decisions_path = decisions_path;
      daemon_options.resume = resume;
      return serve(std::move(daemon_options), ingest);
    }
    if (do_replay && !wal_path.empty()) {
      if (decisions_path.empty()) decisions_path = wal_path + ".decisions";
      return replay(wal_path, decisions_path, resume);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vmcw_daemon: %s\n", e.what());
    return 1;
  }
  return usage();
}
