// vmcw_bench_gate CLI. Exit status 0 = no perf regression, 1 = regression,
// 2 = usage/IO error (including "nothing to compare", so a CI step that
// forgot to run the benches cannot pass vacuously).
//
//   vmcw_bench_gate bench/baselines build/bench \
//       [--rate-tolerance=0.4] [--time-tolerance=1.0]
//
// Compares every BENCH_*.json present in BOTH directories, in sorted
// order. Baseline-only or fresh-only files are listed but not judged;
// scale-mismatched pairs are skipped with a note (see gate.h).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "gate.h"

namespace fs = std::filesystem;
using namespace vmcw::bench_gate;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vmcw_bench_gate BASELINE_DIR FRESH_DIR "
               "[--rate-tolerance=F] [--time-tolerance=F]\n"
               "Compares BENCH_*.json sidecars present in both directories; "
               "exits 1 on any perf regression.\n");
  return 2;
}

std::set<std::string> sidecar_names(const fs::path& dir, std::string* error) {
  std::set<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0)
      names.insert(name);
  }
  if (ec) *error = dir.string() + ": " + ec.message();
  return names;
}

bool load_sidecar(const fs::path& path, Sidecar& out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path.string();
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!parse_sidecar(buffer.str(), out)) {
    *error = "cannot parse " + path.string();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  GateOptions options;
  std::string baseline_dir;
  std::string fresh_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rate-tolerance=", 0) == 0) {
      options.rate_tolerance = std::atof(arg.c_str() + 17);
    } else if (arg.rfind("--time-tolerance=", 0) == 0) {
      options.time_tolerance = std::atof(arg.c_str() + 17);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (baseline_dir.empty()) {
      baseline_dir = arg;
    } else if (fresh_dir.empty()) {
      fresh_dir = arg;
    } else {
      return usage();
    }
  }
  if (baseline_dir.empty() || fresh_dir.empty()) return usage();

  std::string error;
  const std::set<std::string> baselines = sidecar_names(baseline_dir, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "vmcw_bench_gate: %s\n", error.c_str());
    return 2;
  }
  const std::set<std::string> fresh = sidecar_names(fresh_dir, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "vmcw_bench_gate: %s\n", error.c_str());
    return 2;
  }

  for (const std::string& name : baselines)
    if (!fresh.count(name))
      std::printf("note: %s has no fresh run, not judged\n", name.c_str());
  for (const std::string& name : fresh)
    if (!baselines.count(name))
      std::printf("note: %s has no baseline, not judged\n", name.c_str());

  std::size_t compared = 0;
  std::size_t failures = 0;
  for (const std::string& name : baselines) {
    if (!fresh.count(name)) continue;
    Sidecar base, run;
    if (!load_sidecar(fs::path(baseline_dir) / name, base, &error) ||
        !load_sidecar(fs::path(fresh_dir) / name, run, &error)) {
      std::fprintf(stderr, "vmcw_bench_gate: %s\n", error.c_str());
      return 2;
    }
    const Comparison result = compare(base, run, options);
    for (const std::string& line : result.lines)
      std::printf("%s\n", line.c_str());
    if (result.verdict == Verdict::kFail) ++failures;
    if (result.verdict != Verdict::kSkippedScaleMismatch) ++compared;
  }

  if (compared == 0 && failures == 0) {
    std::fprintf(stderr,
                 "vmcw_bench_gate: no comparable sidecars between %s and %s\n",
                 baseline_dir.c_str(), fresh_dir.c_str());
    return 2;
  }
  if (failures > 0) {
    std::fprintf(stderr, "vmcw_bench_gate: %zu bench(es) regressed\n",
                 failures);
    return 1;
  }
  std::printf("vmcw_bench_gate: %zu bench(es) within tolerance\n", compared);
  return 0;
}
