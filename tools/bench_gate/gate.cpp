#include "gate.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace vmcw::bench_gate {

namespace {

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  out.clear();
  for (++i; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out.push_back(s[++i]);
    } else if (s[i] == '"') {
      ++i;
      return true;
    } else {
      out.push_back(s[i]);
    }
  }
  return false;
}

}  // namespace

bool parse_sidecar(const std::string& text, Sidecar& out) {
  out = Sidecar{};
  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size() || text[i] != '{') return false;
  ++i;
  while (true) {
    skip_ws(text, i);
    if (i < text.size() && text[i] == '}') return true;
    std::string key;
    if (!parse_string(text, i, key)) return false;
    skip_ws(text, i);
    if (i >= text.size() || text[i] != ':') return false;
    ++i;
    skip_ws(text, i);
    if (i < text.size() && text[i] == '"') {
      std::string value;
      if (!parse_string(text, i, value)) return false;
      if (key == "bench") out.bench = value;
    } else {
      char* end = nullptr;
      const double value = std::strtod(text.c_str() + i, &end);
      if (end == text.c_str() + i) return false;
      i = static_cast<std::size_t>(end - text.c_str());
      out.metrics[key] = value;
    }
    skip_ws(text, i);
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    skip_ws(text, i);
    return i < text.size() && text[i] == '}';
  }
}

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool structural_key(const std::string& key) {
  // Counters that define the run's scale and deterministic output. Two
  // runs disagreeing on any of these are different experiments.
  static const char* kStructural[] = {
      "servers",      "frames",     "ticks",       "decisions",
      "active_hosts", "resident_vms", "hosts_used", "cells",
      "trace_hours",  "servers_per_estate", "blocks_generated",
  };
  for (const char* s : kStructural)
    if (key == s) return true;
  return false;
}

bool rate_key(const std::string& key) { return ends_with(key, "_per_sec"); }

bool time_key(const std::string& key) {
  return ends_with(key, "_ms") || ends_with(key, "_seconds") ||
         ends_with(key, "_rss_kb");
}

Comparison compare(const Sidecar& baseline, const Sidecar& fresh,
                   const GateOptions& options) {
  Comparison out;
  out.bench = baseline.bench;
  char line[256];

  // Comparability first: every structural counter present in both runs
  // must agree exactly.
  for (const auto& [key, base_value] : baseline.metrics) {
    if (!structural_key(key)) continue;
    const auto it = fresh.metrics.find(key);
    if (it == fresh.metrics.end()) continue;
    if (it->second != base_value) {
      std::snprintf(line, sizeof(line),
                    "%s: %s %.6g != baseline %.6g — different scale, skipped",
                    baseline.bench.c_str(), key.c_str(), it->second,
                    base_value);
      out.lines.push_back(line);
      out.verdict = Verdict::kSkippedScaleMismatch;
      return out;
    }
  }

  for (const auto& [key, base_value] : baseline.metrics) {
    const auto it = fresh.metrics.find(key);
    if (it == fresh.metrics.end()) continue;  // keys in both runs only
    const double fresh_value = it->second;
    if (rate_key(key)) {
      const double floor = base_value * (1.0 - options.rate_tolerance);
      const bool ok = fresh_value >= floor;
      std::snprintf(line, sizeof(line), "%s: %s %.6g vs baseline %.6g %s",
                    baseline.bench.c_str(), key.c_str(), fresh_value,
                    base_value, ok ? "(ok)" : "REGRESSED");
      out.lines.push_back(line);
      if (!ok) out.verdict = Verdict::kFail;
    } else if (time_key(key)) {
      const double ceiling = base_value * (1.0 + options.time_tolerance);
      const bool ok = fresh_value <= ceiling;
      std::snprintf(line, sizeof(line), "%s: %s %.6g vs baseline %.6g %s",
                    baseline.bench.c_str(), key.c_str(), fresh_value,
                    base_value, ok ? "(ok)" : "REGRESSED");
      out.lines.push_back(line);
      if (!ok) out.verdict = Verdict::kFail;
    }
  }
  return out;
}

}  // namespace vmcw::bench_gate
