// Perf-regression gate over BENCH_*.json sidecars.
//
// Every bench writes a flat JSON sidecar (bench/common.h::write_bench_json)
// and the good numbers live under bench/baselines/. The gate compares a
// directory of fresh sidecars against the baselines and fails CI when a
// rate fell or a latency rose beyond a tolerance band — turning the
// checked-in baselines from documentation into an enforced floor
// (ROADMAP "perf trajectory").
//
// Comparison rules, keyed off the metric's name:
//   *_per_sec                     higher is better: fail when
//                                 fresh < baseline * (1 - rate_tolerance)
//   *_ms / *_seconds / *_rss_kb   lower is better: fail when
//                                 fresh > baseline * (1 + time_tolerance)
//   structural counters (servers, frames, ticks, decisions, hosts, ...)
//                                 must match exactly; a mismatch means the
//                                 fresh run used a different scale, and
//                                 comparing perf across scales is
//                                 meaningless — the file is skipped with a
//                                 note instead of producing a false verdict
//   anything else                 informational only
//
// Tolerances default loose (rates may drop 40%, times may double) because
// CI runners are noisy and shared; the gate exists to catch structural
// regressions — an index disconnected, a fleet re-materialized — which
// show up as multiples, not percentages.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace vmcw::bench_gate {

/// One parsed sidecar: flat string->double pairs plus the bench name.
struct Sidecar {
  std::string bench;
  std::map<std::string, double> metrics;  ///< ordered: deterministic reports
};

/// Parse the flat JSON write_bench_json emits. Returns false on files that
/// are not flat {"key": number|string} objects.
bool parse_sidecar(const std::string& text, Sidecar& out);

struct GateOptions {
  double rate_tolerance = 0.4;  ///< allowed fractional drop of *_per_sec
  double time_tolerance = 1.0;  ///< allowed fractional rise of *_ms/Seconds
};

enum class Verdict {
  kPass,
  kSkippedScaleMismatch,  ///< structural counters differ; not comparable
  kFail,
};

struct Comparison {
  std::string bench;
  Verdict verdict = Verdict::kPass;
  /// Human-readable per-metric lines ("decisions_per_sec 44635 -> 41000 ok").
  std::vector<std::string> lines;
};

/// Is this key a structural counter that must match exactly for the two
/// runs to be comparable?
bool structural_key(const std::string& key);

/// Is this key a rate (higher better) / a time-or-footprint (lower better)?
bool rate_key(const std::string& key);
bool time_key(const std::string& key);

/// Compare one fresh sidecar against its baseline.
Comparison compare(const Sidecar& baseline, const Sidecar& fresh,
                   const GateOptions& options);

}  // namespace vmcw::bench_gate
