// vmcw_collector: one collection agent speaking the ingestion protocol.
//
//   vmcw_collector --connect SOCK | --tcp PORT
//                  [--collectors N --index I] [--peer NAME]
//                  [--hosts N] [--vms N] [--ticks N] [--seed S]
//                  [--chaos-seed S] [--disconnect-rate R]
//                  [--corrupt-rate R] [--split-rate R]
//
// Generates the deterministic churn stream (the same one `vmcw_daemon
// --gen-wal` writes, same --hosts/--vms/--ticks/--seed), takes partition
// --index of --collectors, and delivers it to a listening vmcw_daemon —
// reconnecting with capped exponential backoff, resending from the last
// cumulative Ack, and (with --chaos-seed and nonzero rates) corrupting,
// splitting, and dropping its own writes on the IoFaultPlan's schedule.
// Exit 0 means every frame of the partition is durable in the daemon's
// WAL, no matter how badly the pipe behaved on the way.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "service/io_fault_hooks.h"
#include "chaos/io_faults.h"
#include "service/churn.h"
#include "service/collector.h"

using namespace vmcw;
using namespace vmcw::service;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  vmcw_collector (--connect SOCK | --tcp PORT)\n"
      "                 [--collectors N --index I] [--peer NAME]\n"
      "                 [--hosts N] [--vms N] [--ticks N] [--seed S]\n"
      "                 [--chaos-seed S] [--disconnect-rate R]\n"
      "                 [--corrupt-rate R] [--split-rate R] [--coalesce]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  CollectorOptions options;
  ChurnOptions churn;
  churn.blackout_prob = 0.0;
  IoFaultSpec faults;
  std::uint64_t chaos_seed = 0;
  bool chaos = false;
  std::size_t collectors = 1, index = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--connect" && (v = value())) {
      options.unix_path = v;
    } else if (arg == "--tcp" && (v = value())) {
      options.tcp_port = std::atoi(v);
    } else if (arg == "--peer" && (v = value())) {
      options.peer = v;
    } else if (arg == "--collectors" && (v = value())) {
      collectors = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--index" && (v = value())) {
      index = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--hosts" && (v = value())) {
      churn.agents = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--vms" && (v = value())) {
      churn.initial_vms = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--ticks" && (v = value())) {
      churn.ticks = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--seed" && (v = value())) {
      churn.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--chaos-seed" && (v = value())) {
      chaos_seed = static_cast<std::uint64_t>(std::atoll(v));
      chaos = true;
    } else if (arg == "--disconnect-rate" && (v = value())) {
      faults.disconnect_rate = std::atof(v);
    } else if (arg == "--corrupt-rate" && (v = value())) {
      faults.corrupt_rate = std::atof(v);
    } else if (arg == "--split-rate" && (v = value())) {
      faults.partial_write_rate = std::atof(v);
    } else if (arg == "--coalesce") {
      // Merge superseded telemetry deltas in the unsent backlog while
      // disconnected. Changes the bytes the daemon WALs, so identity
      // harnesses comparing against an uninterrupted run leave it off.
      options.coalesce_telemetry = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage();
    }
  }
  if (options.unix_path.empty() && options.tcp_port < 0) return usage();
  if (collectors == 0 || index >= collectors) return usage();
  if (options.peer == "collector")
    options.peer = "collector-" + std::to_string(index);

  try {
    const ControllerConfig config;
    options.fleet_hash = fleet_config_hash(config);
    const std::vector<Frame> stream = generate_churn(churn, config);
    const std::vector<std::vector<Frame>> parts =
        partition_stream(stream, collectors, churn.agents);

    const IoFaultPlan plan =
        chaos ? IoFaultPlan::generate(faults, chaos_seed) : IoFaultPlan();
    PlannedTransportFaults transport(plan, index);

    CollectorClient client(options, plan.any() ? &transport : nullptr);
    const CollectorStats stats = client.run(parts[index]);
    std::printf("collector %zu: delivered %zu frames\n", index,
                parts[index].size());
    std::fprintf(stderr,
                 "collector %zu: %zu sends, %zu retransmits, %zu reconnects, "
                 "%zu shed backoffs, %zu faults injected, "
                 "%zu samples coalesced, %zu server rewinds\n",
                 index, stats.messages_sent, stats.retransmits,
                 stats.reconnects, stats.shed_backoffs,
                 stats.faults_injected, stats.samples_coalesced,
                 stats.server_rewinds);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vmcw_collector: %s\n", e.what());
    return 1;
  }
  return 0;
}
