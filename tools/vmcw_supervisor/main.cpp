// vmcw_supervisor: keep a vmcw_daemon alive, or kill it on schedule.
//
//   vmcw_supervisor [--health PATH] [--hang-after S]
//                   [--backoff-base S] [--backoff-cap S]
//                   [--storm-restarts N] [--storm-window S]
//                   [--kills K --chaos-seed S [--kill-min S] [--kill-max S]]
//                   -- DAEMON ARGV...
//
// Forks and execs the daemon argv after `--`, then supervises it:
//
//   * liveness: the daemon's ingest loop bumps a counter in --health PATH
//     after every durable batch; if the counter stops advancing for
//     --hang-after seconds the supervisor SIGKILLs the (hung) daemon and
//     treats it as a crash.
//   * restarts: a nonzero exit (or any signal death) restarts the daemon
//     after a capped exponential backoff (SupervisorPolicy); too many
//     exits inside the storm window open the circuit breaker and the
//     supervisor gives up with exit 1.
//   * chaos: with --kills, the first K daemon runs are SIGKILLed at the
//     deterministic uptimes ProcessFaultPlan derives from --chaos-seed.
//     This is the soak harness: the daemon must recover from every kill
//     and the final decision log must match an uninterrupted run.
//
// Exit 0 when the daemon exits 0 (ingest drained and shut down cleanly);
// exit 1 on circuit-breaker trip or unrecoverable fork/exec failure.
//
// This binary lives in tools/, outside the lint root: it owns the real
// wall clock and real processes, while every decision lives in the pure,
// clock-injected SupervisorPolicy (src/service/supervisor.h).
#include <sys/types.h>
#include <sys/wait.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "chaos/process_faults.h"
#include "service/supervisor.h"

using namespace vmcw;
using namespace vmcw::service;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  vmcw_supervisor [--health PATH] [--hang-after S]\n"
      "                  [--backoff-base S] [--backoff-cap S]\n"
      "                  [--storm-restarts N] [--storm-window S]\n"
      "                  [--kills K --chaos-seed S [--kill-min S]\n"
      "                  [--kill-max S]] -- DAEMON ARGV...\n");
  return 2;
}

double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// Read the heartbeat counter the ingest writer maintains; -1 when the
/// file is missing or unparsable (daemon not up yet).
long long read_heartbeat(const std::string& path) {
  std::ifstream in(path);
  long long value = -1;
  if (!(in >> value)) return -1;
  return value;
}

struct RunResult {
  int status = 0;        ///< raw waitpid status
  bool hang_kill = false;
  bool chaos_kill = false;
};

/// One daemon lifetime: fork/exec, poll for exit, fire the scheduled
/// chaos kill and the hang watchdog. Returns nullopt if exec failed in a
/// way that retrying cannot fix (e.g. binary missing).
RunResult run_once(char** daemon_argv, const std::string& health_path,
                   SupervisorPolicy& policy, double kill_after,
                   double hang_after) {
  // The heartbeat counter restarts from zero with each daemon launch; a
  // leftover file from the previous run would mask the new run's progress.
  if (!health_path.empty()) std::remove(health_path.c_str());
  const pid_t pid = fork();
  if (pid < 0) {
    std::fprintf(stderr, "vmcw_supervisor: fork: %s\n", std::strerror(errno));
    RunResult r;
    r.status = 127 << 8;
    return r;
  }
  if (pid == 0) {
    execvp(daemon_argv[0], daemon_argv);
    std::fprintf(stderr, "vmcw_supervisor: exec %s: %s\n", daemon_argv[0],
                 std::strerror(errno));
    _exit(127);
  }

  const double launched = monotonic_seconds();
  long long heartbeat = read_heartbeat(health_path);
  double last_progress = launched;
  RunResult result;
  bool kill_fired = false;

  for (;;) {
    int status = 0;
    const pid_t got = waitpid(pid, &status, WNOHANG);
    if (got == pid) {
      result.status = status;
      return result;
    }
    if (got < 0 && errno != EINTR) {
      std::fprintf(stderr, "vmcw_supervisor: waitpid: %s\n",
                   std::strerror(errno));
      result.status = 127 << 8;
      return result;
    }

    const double now = monotonic_seconds();
    if (kill_after >= 0.0 && !kill_fired && now - launched >= kill_after) {
      std::fprintf(stderr, "supervisor: chaos kill after %.3fs\n",
                   now - launched);
      kill(pid, SIGKILL);
      kill_fired = true;
      result.chaos_kill = true;
    }

    if (!health_path.empty()) {
      const long long beat = read_heartbeat(health_path);
      if (beat != heartbeat) {
        heartbeat = beat;
        last_progress = now;
        policy.on_progress(now);
      } else if (hang_after > 0.0 && !kill_fired &&
                 policy.hung(now, last_progress)) {
        std::fprintf(stderr, "supervisor: hang kill after %.3fs silence\n",
                     now - last_progress);
        kill(pid, SIGKILL);
        kill_fired = true;
        result.hang_kill = true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

int main(int argc, char** argv) {
  SupervisorOptions options;
  ProcessFaultSpec spec;
  spec.kills = 0;
  std::uint64_t chaos_seed = 0;
  std::string health_path;
  int tail = argc;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--") {
      tail = i + 1;
      break;
    }
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--health" && (v = value())) {
      health_path = v;
    } else if (arg == "--hang-after" && (v = value())) {
      options.hang_after_seconds = std::atof(v);
    } else if (arg == "--backoff-base" && (v = value())) {
      options.backoff_base_seconds = std::atof(v);
    } else if (arg == "--backoff-cap" && (v = value())) {
      options.backoff_cap_seconds = std::atof(v);
    } else if (arg == "--storm-restarts" && (v = value())) {
      options.storm_restarts = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--storm-window" && (v = value())) {
      options.storm_window_seconds = std::atof(v);
    } else if (arg == "--kills" && (v = value())) {
      spec.kills = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--chaos-seed" && (v = value())) {
      chaos_seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--kill-min" && (v = value())) {
      spec.min_uptime_seconds = std::atof(v);
    } else if (arg == "--kill-max" && (v = value())) {
      spec.max_uptime_seconds = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage();
    }
  }
  if (tail >= argc) return usage();

  const ProcessFaultPlan plan = spec.kills > 0
                                    ? ProcessFaultPlan::generate(spec, chaos_seed)
                                    : ProcessFaultPlan();

  // The daemon argv is passed through verbatim on every launch, so it must
  // be restart-safe: --resume on an empty directory is a fresh start.
  std::vector<char*> daemon_argv(argv + tail, argv + argc);
  daemon_argv.push_back(nullptr);

  SupervisorPolicy policy(options);
  std::size_t chaos_kills = 0, hang_kills = 0, restarts = 0;

  for (std::size_t run = 0;; ++run) {
    const double kill_after = plan.kill_after_seconds(run);
    const RunResult r = run_once(daemon_argv.data(), health_path, policy,
                                 kill_after, options.hang_after_seconds);
    if (r.chaos_kill) ++chaos_kills;
    if (r.hang_kill) ++hang_kills;

    if (WIFEXITED(r.status) && WEXITSTATUS(r.status) == 0) {
      std::printf("supervisor: daemon exited clean after %zu runs "
                  "(%zu restarts, %zu chaos kills, %zu hang kills)\n",
                  run + 1, restarts, chaos_kills, hang_kills);
      return 0;
    }
    if (WIFEXITED(r.status) && WEXITSTATUS(r.status) == 127) {
      std::fprintf(stderr, "supervisor: daemon cannot start; giving up\n");
      return 1;
    }

    const double now = monotonic_seconds();
    const std::optional<double> backoff = policy.on_exit(now);
    if (!backoff) {
      std::fprintf(stderr,
                   "supervisor: circuit breaker open after %zu exits; "
                   "not restarting\n",
                   policy.exits());
      return 1;
    }
    if (WIFSIGNALED(r.status))
      std::fprintf(stderr, "supervisor: daemon killed by signal %d; "
                           "restarting in %.3fs\n",
                   WTERMSIG(r.status), *backoff);
    else
      std::fprintf(stderr, "supervisor: daemon exited %d; restarting in %.3fs\n",
                   WEXITSTATUS(r.status), *backoff);
    ++restarts;
    std::this_thread::sleep_for(std::chrono::duration<double>(*backoff));
  }
}
