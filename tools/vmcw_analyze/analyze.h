// vmcw_analyze: cross-translation-unit semantic analysis for the
// determinism contract.
//
// vmcw_lint (the sibling tool) sees one file at a time and bans what is
// lexically illegal anywhere. This tool parses a lightweight whole-program
// index over all of src/ — per file: include edges, declared Rng streams
// and fork call sites with literal keys, annotated mutexes and lock
// acquisition scopes, raw write sites, inline suppressions — and runs four
// rule families that only make sense on the whole program:
//
//   fork-key-collision   Sibling streams forked from the same parent must
//                        use distinct literal keys; a literal key that can
//                        also be produced by a sibling's "prefix" + dynamic
//                        tail collides too. fork() on a receiver that is
//                        not a tracked Rng (declared in the file or its
//                        paired header) is an untracked root.
//   lock-order-cycle     The acquisition graph — built from MutexLock /
//                        lock_guard scopes, VMCW_REQUIRES / VMCW_ACQUIRE
//                        annotations, and one level of cross-TU call
//                        closure — must be acyclic. Diagnostics carry the
//                        ordered witness path (A -> B -> A with the
//                        file:line of every edge).
//   layering             DESIGN.md's layer order (util -> runtime ->
//                        core/trace/hardware/... -> topology/chaos ->
//                        engine/scale/sweep -> service/report -> tools) is
//                        compiled into the include graph: a lower-tier file
//                        including a higher-tier module is a back-edge, and
//                        file-level include cycles are always fatal.
//   durable-write        Durable bytes flow only through the sanctioned
//                        idioms (write_file_atomic, service/telemetry_log,
//                        the sweep journal, service/snapshot); a raw
//                        std::ofstream / fopen / ::write / ::open anywhere
//                        else is a violation.
//
// Plus one meta rule that keeps the shared allowlist honest:
//
//   stale-config         Every `allow` entry must still match a file with a
//                        live raw violation of its rule, and every
//                        `allow-inline` entry must still match a file with
//                        a live, used inline suppression. Entries that
//                        allow nothing are themselves violations, so the
//                        reviewed budget can only shrink when code does.
//
// The tool shares vmcw_lint's lexer, config format (one vmcw_lint.conf,
// per-rule sections) and suppression syntax via tools/check_common. Inline
// suppressions apply to the per-site rules (durable-write,
// fork-key-collision); the cross-file rules (layering, lock-order-cycle)
// accept only whole-file `allow` entries — a cycle has no single line to
// annotate.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint.h"

namespace vmcw::analyze {

using check::Config;
using check::Violation;

/// Names of the analyzer's rules, in reporting order.
const std::vector<std::string>& rule_names();

struct Options {
  /// Worker threads for the file walk/index phase. Output is byte-identical
  /// at any value (results merge in sorted file order).
  unsigned threads = 1;
  /// File name used when reporting stale-config violations.
  std::string config_name = "vmcw_lint.conf";
  /// Run the stale-config audit (tests of single rule families disable it).
  bool audit_config = true;
};

// ---------------------------------------------------------------------------
// The whole-program index (exposed for tests).
// ---------------------------------------------------------------------------

struct IncludeEdge {
  std::string target;  ///< include string, e.g. "core/vm.h"
  std::size_t line = 0;
};

struct RngDeclaration {
  std::string name;
  std::size_t line = 0;
};

struct ForkSite {
  std::string function;  ///< enclosing function (qualified), "" at file scope
  std::string receiver;  ///< identifier fork() was called on
  std::string key;       ///< literal key or literal prefix ("" = dynamic)
  bool is_prefix = false;  ///< key is a literal prefix with a dynamic tail
  bool dynamic = false;    ///< key expression carries no leading literal
  std::size_t line = 0;
};

struct MutexMember {
  std::string owner;  ///< class name, or "" for namespace scope
  std::string name;
  std::size_t line = 0;
};

/// One lock acquired, or one call made, inside a function — with the set of
/// mutexes (qualified "Class::member") held at that point.
struct LockEvent {
  enum class Kind { kAcquire, kCall };
  Kind kind = Kind::kAcquire;
  std::string target;  ///< mutex (kAcquire) or bare callee name (kCall)
  std::vector<std::string> held;
  std::size_t line = 0;
};

struct FunctionInfo {
  std::string name;       ///< bare name
  std::string qualified;  ///< "Class::name" when the class is known
  std::vector<std::string> annotation_acquires;  ///< VMCW_ACQUIRE(...) args
  std::vector<LockEvent> events;
  std::size_t line = 0;
};

struct FileIndex {
  std::string path;  ///< root-relative
  std::vector<IncludeEdge> includes;
  std::vector<RngDeclaration> rng_decls;
  std::vector<ForkSite> forks;
  std::vector<MutexMember> mutexes;
  std::vector<FunctionInfo> functions;
  std::vector<Violation> write_sites;  ///< raw durable-write hits
  std::vector<Violation> raw_lint;     ///< lexical rules, unfiltered
  /// Inline suppressions whose rule fired for the lint checker (the
  /// stale-config audit checks them against the allow-inline budget).
  std::vector<check::UsedSuppression> used_lint_suppressions;
  /// Inline suppressions naming analyzer rules, applied at merge time.
  std::vector<check::Suppression> suppressions;
  std::map<std::size_t, std::vector<std::size_t>> suppress_by_line;
};

/// Tier of a top-level src/ module in the DESIGN.md layer order, or -1 when
/// the module is not part of the layered tree (unknown directories are
/// exempt from the tier check but still participate in cycle detection).
int module_tier(std::string_view module);

/// Index one file (tokenize + extract). Exposed for unit tests.
FileIndex index_file(std::string_view path, std::string_view content,
                     const Config& config);

/// Analyze every *.h / *.cpp under `paths` (files or directories), resolved
/// relative to `root`; reported paths are root-relative and output order is
/// deterministic (sorted by file, line, rule, message) at any thread count.
std::vector<Violation> analyze_paths(const std::string& root,
                                     const std::vector<std::string>& paths,
                                     const Config& config,
                                     const Options& options,
                                     std::string* error);

}  // namespace vmcw::analyze
