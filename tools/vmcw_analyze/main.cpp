// vmcw_analyze CLI. Exit status 0 = clean, 1 = violations, 2 = usage/IO
// error — same contract as vmcw_lint, same config file.
//
//   vmcw_analyze --config=tools/vmcw_lint/vmcw_lint.conf --root=src .
//
// Runs as the `vmcw_analyze_src` ctest; CI also injects one violation per
// rule family to prove each gate fails when it should. `--threads=N` only
// changes the wall-clock of the index phase, never the output bytes.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vmcw_analyze [--config=FILE] [--root=DIR] "
               "[--threads=N] [--no-config-audit] [--list-rules] PATH...\n"
               "Cross-TU analysis of *.h/*.cpp under each PATH (relative to "
               "--root): fork-key collisions,\nlock-order cycles, layering "
               "back-edges/cycles, durable-write discipline, stale config "
               "entries.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string root = ".";
  vmcw::analyze::Options options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--config=", 0) == 0) {
      config_path = arg.substr(9);
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const long n = std::atol(arg.c_str() + 10);
      if (n < 1 || n > 256) return usage();
      options.threads = static_cast<unsigned>(n);
    } else if (arg == "--no-config-audit") {
      options.audit_config = false;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : vmcw::analyze::rule_names())
        std::printf("%s\n", rule.c_str());
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  vmcw::analyze::Config config;
  if (!config_path.empty()) {
    std::ifstream in(config_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "vmcw_analyze: cannot read config %s\n",
                   config_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!vmcw::analyze::Config::parse(buffer.str(), config, &error)) {
      std::fprintf(stderr, "vmcw_analyze: %s\n", error.c_str());
      return 2;
    }
    // Stale-config diagnostics point into the file the user passed.
    options.config_name = config_path;
  }

  std::string error;
  const std::vector<vmcw::analyze::Violation> violations =
      vmcw::analyze::analyze_paths(root, paths, config, options, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "vmcw_analyze: %s\n", error.c_str());
    return 2;
  }
  for (const vmcw::analyze::Violation& v : violations)
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  if (!violations.empty()) {
    std::fprintf(stderr, "vmcw_analyze: %zu violation(s)\n",
                 violations.size());
    return 1;
  }
  return 0;
}
