#include "analyze.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

namespace vmcw::analyze {
namespace {

using check::cat;
using check::next_text;
using check::prev_text;
using check::skip_group;
using check::Tok;
using check::Token;

constexpr std::string_view kRuleFork = "fork-key-collision";
constexpr std::string_view kRuleLock = "lock-order-cycle";
constexpr std::string_view kRuleLayer = "layering";
constexpr std::string_view kRuleWrite = "durable-write";
constexpr std::string_view kRuleStale = "stale-config";

void add(std::vector<Violation>& out, std::string_view file, std::size_t line,
         std::string_view rule, std::string message) {
  out.push_back(
      {std::string(file), line, std::string(rule), std::move(message)});
}

bool is_keyword(std::string_view t) {
  static const std::set<std::string_view> kw = {
      "if",       "for",     "while",   "switch",   "return", "sizeof",
      "new",      "delete",  "catch",   "throw",    "else",   "do",
      "case",     "default", "const",   "constexpr", "static", "inline",
      "auto",     "void",    "bool",    "int",      "char",   "unsigned",
      "long",     "short",   "double",  "float",    "using",  "typedef",
      "template", "typename", "class",  "struct",   "enum",   "union",
      "public",   "private", "protected", "virtual", "override", "final",
      "noexcept", "operator", "co_return", "co_await", "alignof",
      "decltype", "static_cast", "dynamic_cast", "reinterpret_cast",
      "const_cast", "static_assert", "assert", "defined", "explicit",
      "namespace", "this", "nullptr", "true", "false", "mutable",
      "friend", "extern", "goto", "try", "break", "continue"};
  return kw.count(t) != 0;
}

// ---------------------------------------------------------------------------
// Per-file extraction.
// ---------------------------------------------------------------------------

/// The tokenizer consumes preprocessor directives, so include edges come
/// from a plain line scan over the raw bytes.
void extract_includes(std::string_view content, std::vector<IncludeEdge>& out) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    std::string_view line = content.substr(
        pos, eol == std::string_view::npos ? content.size() - pos : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? content.size() + 1 : eol + 1;

    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string_view::npos || line[i] != '#') continue;
    i = line.find_first_not_of(" \t", i + 1);
    if (i == std::string_view::npos || line.substr(i, 7) != "include") continue;
    const std::size_t open = line.find('"', i + 7);
    if (open == std::string_view::npos) continue;  // <...> system includes
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string_view::npos) continue;
    out.push_back(
        {std::string(line.substr(open + 1, close - open - 1)), line_no});
  }
}

std::string_view strip_quotes(std::string_view s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
    return s.substr(1, s.size() - 2);
  return s;
}

/// Lexical scope tracking: one frame per '{'. Function frames carry the
/// signature-derived name and the set of locks held for their duration.
struct Frame {
  enum class Kind { kNamespace, kType, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;  ///< type name for kType, qualified name for kFunction
};

struct ActiveLock {
  std::string name;   ///< raw member/variable name as written
  std::size_t depth;  ///< scope-stack size when declared (dies on pop below)
};

/// Identifiers that open a RAII lock scope: `X name(mutex...)`.
bool is_lock_class(std::string_view t) {
  return t == "MutexLock" || t == "lock_guard" || t == "unique_lock" ||
         t == "scoped_lock";
}

/// Extract the last identifier of each top-level comma-separated argument
/// inside the group opened at `open` — for `lk(a.mu_, other_->mu2_)` that is
/// {mu_, mu2_}. Deferral arguments (std::defer_lock etc.) are skipped.
std::vector<std::string> lock_args(const std::vector<Token>& toks,
                                   std::size_t open, std::size_t close) {
  std::vector<std::string> out;
  std::string last;
  std::size_t depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string_view t = toks[i].text;
    if (t == "(" || t == "[" || t == "{") {
      ++depth;
      continue;
    }
    if (t == ")" || t == "]" || t == "}") {
      --depth;
      continue;
    }
    if (depth == 0 && t == ",") {
      if (!last.empty() && last != "defer_lock" && last != "adopt_lock" &&
          last != "try_to_lock")
        out.push_back(last);
      last.clear();
      continue;
    }
    if (toks[i].kind == Tok::kIdent) last = std::string(t);
  }
  if (!last.empty() && last != "defer_lock" && last != "adopt_lock" &&
      last != "try_to_lock")
    out.push_back(last);
  return out;
}

/// Arguments of an annotation group `VMCW_REQUIRES(a, b)` → {a, b}.
std::vector<std::string> annotation_args(const std::vector<Token>& toks,
                                         std::size_t macro_index) {
  if (next_text(toks, macro_index) != "(") return {};
  const std::size_t past = skip_group(toks, macro_index + 1);
  // lock_args iterates the open interval (open, close): pass the ')' index.
  return lock_args(toks, macro_index + 1, past == 0 ? 0 : past - 1);
}

/// Classify the statement prefix [stmt, open) for the '{' at `open`, and
/// extract the type or function name.
Frame classify_brace(const std::vector<Token>& toks, std::size_t stmt,
                     std::size_t open, const std::vector<Frame>& scopes,
                     std::vector<std::string>* requires_out,
                     std::vector<std::string>* acquire_out) {
  Frame f;
  const bool in_code =
      !scopes.empty() && (scopes.back().kind == Frame::Kind::kFunction ||
                          scopes.back().kind == Frame::Kind::kBlock);
  if (stmt >= open) {
    f.kind = Frame::Kind::kBlock;
    return f;
  }
  const std::string_view first = toks[stmt].text;
  if (first == "if" || first == "for" || first == "while" ||
      first == "switch" || first == "do" || first == "else" ||
      first == "try" || first == "catch") {
    f.kind = Frame::Kind::kBlock;
    return f;
  }
  // `namespace foo {`, `class Foo : public Bar {`, `struct Foo {` …
  for (std::size_t i = stmt; i < open; ++i) {
    const std::string_view t = toks[i].text;
    if (t == "namespace") {
      f.kind = Frame::Kind::kNamespace;
      return f;
    }
    if ((t == "class" || t == "struct" || t == "enum" || t == "union") &&
        !in_code) {
      // Name = last identifier before the base-clause ':' or the '{'
      // (skips attribute macros like VMCW_CAPABILITY("mutex")).
      f.kind = Frame::Kind::kType;
      for (std::size_t j = i + 1; j < open; ++j) {
        if (toks[j].text == ":") break;
        if (toks[j].text == "(") {
          j = skip_group(toks, j) - 1;
          continue;
        }
        if (toks[j].kind == Tok::kIdent && !is_keyword(toks[j].text))
          f.name = std::string(toks[j].text);
      }
      return f;
    }
  }
  if (in_code) {
    f.kind = Frame::Kind::kBlock;
    return f;
  }
  // Function definition: the identifier before the first top-level '(' in
  // the statement names it; a preceding `Class ::` chain qualifies it.
  // Everything else at namespace/type scope (brace-init, arrays) is opaque.
  std::size_t paren = open;
  for (std::size_t i = stmt; i < open; ++i) {
    if (toks[i].text == "=") {  // `auto cmp = [](...) {` and brace-init
      f.kind = Frame::Kind::kBlock;
      return f;
    }
    if (toks[i].text == "(") {
      paren = i;
      break;
    }
  }
  if (paren == open || paren == stmt ||
      toks[paren - 1].kind != Tok::kIdent ||
      is_keyword(toks[paren - 1].text)) {
    f.kind = Frame::Kind::kBlock;
    return f;
  }
  f.kind = Frame::Kind::kFunction;
  std::string name(toks[paren - 1].text);
  std::string owner;
  if (paren >= 3 && toks[paren - 2].text == "::" &&
      toks[paren - 3].kind == Tok::kIdent) {
    owner = std::string(toks[paren - 3].text);
  } else if (!scopes.empty() && scopes.back().kind == Frame::Kind::kType) {
    owner = scopes.back().name;
  }
  f.name = owner.empty() ? name : cat(owner, "::", name);
  // Thread-safety annotations sit between the parameter list's ')' and the
  // '{'; REQUIRES members are held for the whole body, ACQUIRE members are
  // what the function locks on behalf of its caller.
  for (std::size_t i = skip_group(toks, paren); i < open; ++i) {
    const std::string_view t = toks[i].text;
    if (t == "VMCW_REQUIRES" && requires_out) {
      auto args = annotation_args(toks, i);
      requires_out->insert(requires_out->end(), args.begin(), args.end());
    } else if (t == "VMCW_ACQUIRE" && acquire_out) {
      auto args = annotation_args(toks, i);
      acquire_out->insert(acquire_out->end(), args.begin(), args.end());
    }
  }
  return f;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      std::string(kRuleFork), std::string(kRuleLock), std::string(kRuleLayer),
      std::string(kRuleWrite), std::string(kRuleStale)};
  return names;
}

int module_tier(std::string_view module) {
  // DESIGN.md §5d layer order. Same-tier cross-includes are legal; a module
  // may include same or lower tiers only. Directories not listed (tests,
  // fixtures) are exempt from the tier check.
  if (module == "util") return 0;
  if (module == "runtime") return 1;
  if (module == "core" || module == "trace" || module == "hardware" ||
      module == "analysis" || module == "migration" ||
      module == "monitoring")
    return 2;
  if (module == "topology" || module == "chaos" || module == "validation")
    return 3;
  if (module == "engine" || module == "scale" || module == "sweep") return 4;
  if (module == "service" || module == "report") return 5;
  return -1;
}

FileIndex index_file(std::string_view path, std::string_view content,
                     const Config& config) {
  FileIndex idx;
  idx.path = std::string(path);
  extract_includes(content, idx.includes);

  // Raw lexical-rule hits and the lint-owned suppressions that fired — both
  // feed the stale-config audit, neither is reported here (vmcw_lint owns
  // that reporting).
  idx.raw_lint = lint::lint_file_raw(path, content);
  check::apply_suppressions(path, content, config, idx.raw_lint,
                            lint::rule_names(), &idx.used_lint_suppressions);

  // Analyzer-rule suppressions, applied at merge time once cross-file
  // violations exist.
  {
    std::map<std::size_t, std::vector<std::size_t>> by_line;
    std::vector<check::Suppression> all;
    check::scan_suppressions(content, by_line, all);
    const auto& mine = rule_names();
    std::vector<std::size_t> remap(all.size(), SIZE_MAX);
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (std::find(mine.begin(), mine.end(), all[i].rule) == mine.end())
        continue;
      remap[i] = idx.suppressions.size();
      idx.suppressions.push_back(all[i]);
    }
    for (const auto& [line, ids] : by_line) {
      for (const std::size_t id : ids)
        if (remap[id] != SIZE_MAX) idx.suppress_by_line[line].push_back(remap[id]);
    }
  }

  const std::vector<Token> toks = check::tokenize(content);

  // One linear walk drives everything that needs scope context: Rng decls
  // and fork sites, mutex member decls, lock scopes and call events.
  std::vector<Frame> scopes;
  std::vector<ActiveLock> locks;
  std::vector<std::string> fn_requires;  // REQUIRES(...) of current function
  std::size_t stmt = 0;

  const auto current_function = [&]() -> FunctionInfo* {
    for (std::size_t i = scopes.size(); i-- > 0;)
      if (scopes[i].kind == Frame::Kind::kFunction)
        return idx.functions.empty() ? nullptr : &idx.functions.back();
    return nullptr;
  };
  const auto held_now = [&]() {
    std::vector<std::string> held = fn_requires;
    for (const ActiveLock& l : locks) held.push_back(l.name);
    std::sort(held.begin(), held.end());
    held.erase(std::unique(held.begin(), held.end()), held.end());
    return held;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    const std::string_view t = tok.text;

    if (t == "{") {
      std::vector<std::string> req, acq;
      Frame f = classify_brace(toks, stmt, i, scopes, &req, &acq);
      if (f.kind == Frame::Kind::kFunction) {
        FunctionInfo fn;
        fn.qualified = f.name;
        const std::size_t sep = f.name.rfind("::");
        fn.name = sep == std::string::npos ? f.name : f.name.substr(sep + 2);
        fn.annotation_acquires = acq;
        fn.line = tok.line;
        idx.functions.push_back(std::move(fn));
        fn_requires = req;
        // ACQUIRE members are held below this point too.
        for (const std::string& a : acq)
          locks.push_back({a, scopes.size() + 1});
      }
      scopes.push_back(std::move(f));
      stmt = i + 1;
      continue;
    }
    if (t == "}") {
      if (!scopes.empty()) {
        const Frame done = scopes.back();
        scopes.pop_back();
        while (!locks.empty() && locks.back().depth > scopes.size())
          locks.pop_back();
        if (done.kind == Frame::Kind::kFunction) fn_requires.clear();
      }
      stmt = i + 1;
      continue;
    }
    if (t == ";") {
      stmt = i + 1;
      continue;
    }
    if (tok.kind != Tok::kIdent) continue;

    const bool in_function = current_function() != nullptr;

    // --- Rng declarations: `Rng name`, `Rng& name`, `mutable Rng name`. ---
    if (t == "Rng" && prev_text(toks, i) != "class" &&
        prev_text(toks, i) != "struct") {
      std::size_t j = i + 1;
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "*" ||
              toks[j].text == "&&" || toks[j].text == "const"))
        ++j;
      if (j < toks.size() && toks[j].kind == Tok::kIdent &&
          !is_keyword(toks[j].text))
        idx.rng_decls.push_back({std::string(toks[j].text), toks[j].line});
      continue;
    }

    // --- Fork sites: `recv.fork("key")` / `recv.fork("prefix" + expr)`. ---
    if (t == "fork" && next_text(toks, i) == "(" &&
        (prev_text(toks, i) == "." || prev_text(toks, i) == "->")) {
      if (i < 2 || toks[i - 2].kind != Tok::kIdent) continue;  // temp().fork
      ForkSite site;
      site.receiver = std::string(toks[i - 2].text);
      FunctionInfo* fn = current_function();
      site.function = fn ? fn->qualified : "";
      site.line = tok.line;
      if (i + 2 < toks.size() && toks[i + 2].kind == Tok::kString) {
        site.key = std::string(strip_quotes(toks[i + 2].text));
        site.is_prefix = i + 3 < toks.size() && toks[i + 3].text == "+";
      } else if (i + 2 < toks.size() && toks[i + 2].text != ")") {
        site.dynamic = true;  // fork(expr): key not statically known
      } else {
        continue;  // fork() — the sequential-child form, always distinct
      }
      idx.forks.push_back(std::move(site));
      continue;
    }

    // --- Mutex member declarations: `Mutex name_;` at type scope. ---
    if (t == "Mutex" && prev_text(toks, i) != "class" &&
        prev_text(toks, i) != "struct" && next_text(toks, i) != "(" &&
        !in_function) {
      if (i + 1 < toks.size() && toks[i + 1].kind == Tok::kIdent &&
          !is_keyword(toks[i + 1].text)) {
        std::string owner;
        for (std::size_t s = scopes.size(); s-- > 0;) {
          if (scopes[s].kind == Frame::Kind::kType) {
            owner = scopes[s].name;
            break;
          }
          if (scopes[s].kind == Frame::Kind::kFunction) break;
        }
        idx.mutexes.push_back(
            {owner, std::string(toks[i + 1].text), toks[i + 1].line});
      }
      continue;
    }

    // --- Lock scopes: `MutexLock lk(mu_);` and the std RAII guards. ---
    if (is_lock_class(t) && in_function) {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") j = skip_group(toks, j);
      if (j < toks.size() && toks[j].kind == Tok::kIdent &&
          j + 1 < toks.size() && toks[j + 1].text == "(") {
        const std::size_t close = skip_group(toks, j + 1);
        const auto mutexes = lock_args(toks, j + 1, close - 1);
        FunctionInfo* fn = current_function();
        for (const std::string& m : mutexes) {
          LockEvent ev;
          ev.kind = LockEvent::Kind::kAcquire;
          ev.target = m;
          ev.held = held_now();
          ev.line = tok.line;
          fn->events.push_back(std::move(ev));
          locks.push_back({m, scopes.size()});
        }
        i = close - 1;
      }
      continue;
    }

    // --- Call events (for the cross-TU acquisition closure). ---
    if (in_function && next_text(toks, i) == "(" && !is_keyword(t) &&
        !is_lock_class(t) && t != "fork") {
      FunctionInfo* fn = current_function();
      LockEvent ev;
      ev.kind = LockEvent::Kind::kCall;
      ev.target = std::string(t);
      ev.held = held_now();
      ev.line = tok.line;
      fn->events.push_back(std::move(ev));
      continue;
    }
  }

  // --- Durable-write raw sites. ---
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != Tok::kIdent) continue;
    const std::string_view t = tok.text;
    std::string_view what;
    if (t == "ofstream" || t == "fstream") {
      what = t;
    } else if ((t == "fopen" || t == "freopen" || t == "fwrite" ||
                t == "pwrite" || t == "pwritev" || t == "writev") &&
               next_text(toks, i) == "(") {
      what = t;
    } else if ((t == "write" || t == "open") && next_text(toks, i) == "(" &&
               prev_text(toks, i) == "::") {
      // `::write(...)` — global scope, not `Daemon::open(...)` (member
      // definition or qualified call, where an identifier or template
      // closer precedes the `::`).
      const std::string_view before = i >= 2 ? toks[i - 2].text : "";
      const bool qualified =
          (i >= 2 && toks[i - 2].kind == Tok::kIdent) || before == ">";
      if (!qualified) what = t;
    }
    if (what.empty()) continue;
    add(idx.write_sites, path, tok.line, kRuleWrite,
        cat("raw durable write via '", what,
            "'; durable bytes must flow through write_file_atomic, the "
            "telemetry log, the sweep journal, or service/snapshot"));
  }
  return idx;
}

// ---------------------------------------------------------------------------
// Merge-time rules.
// ---------------------------------------------------------------------------

namespace {

std::string dir_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string()
                                         : std::string(path.substr(0, slash));
}

std::string module_of(std::string_view path) {
  const std::size_t slash = path.find('/');
  return slash == std::string_view::npos ? std::string()
                                         : std::string(path.substr(0, slash));
}

std::string stem_of(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  return std::string(path.substr(0, dot));
}

/// Generic SCC-based cycle reporting: nodes are strings, edges carry a
/// (file, line) witness. For every strongly connected component with a
/// cycle, report one violation whose message walks a shortest witness loop
/// from the component's smallest node.
struct CycleGraph {
  struct Edge {
    std::string to;
    std::string file;
    std::size_t line = 0;
  };
  std::map<std::string, std::vector<Edge>> adj;

  void add_edge(const std::string& from, const std::string& to,
                const std::string& file, std::size_t line) {
    auto& edges = adj[from];
    for (const Edge& e : edges)
      if (e.to == to) return;  // keep the first witness per edge
    edges.push_back({to, file, line});
    adj.try_emplace(to);
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) { return a.to < b.to; });
  }

  /// All cycle witnesses, one per SCC, deterministically ordered.
  std::vector<std::string> cycles() const {
    // Iterative Tarjan (recursion depth is unbounded on path-shaped graphs).
    std::map<std::string, int> index, low, comp;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    int next_index = 0, next_comp = 0;

    struct WorkItem {
      std::string node;
      std::size_t edge = 0;
    };
    for (const auto& [start, unused] : adj) {
      (void)unused;
      if (index.count(start)) continue;
      std::vector<WorkItem> work;
      work.push_back({start, 0});
      while (!work.empty()) {
        WorkItem& top = work.back();
        const auto& edges = adj.at(top.node);
        if (top.edge == 0) {
          index[top.node] = low[top.node] = next_index++;
          stack.push_back(top.node);
          on_stack.insert(top.node);
        } else {
          // Returned from a child: fold its lowlink in.
          const std::string& child = edges[top.edge - 1].to;
          low[top.node] = std::min(low[top.node], low[child]);
        }
        bool descended = false;
        while (top.edge < edges.size()) {
          const std::string& to = edges[top.edge].to;
          ++top.edge;
          if (!index.count(to)) {
            work.push_back({to, 0});
            descended = true;
            break;
          }
          if (on_stack.count(to))
            low[top.node] = std::min(low[top.node], index[to]);
        }
        if (descended) continue;
        if (low[top.node] == index[top.node]) {
          while (true) {
            const std::string n = stack.back();
            stack.pop_back();
            on_stack.erase(n);
            comp[n] = next_comp;
            if (n == top.node) break;
          }
          ++next_comp;
        }
        work.pop_back();
      }
    }

    // Component -> members (sorted; the first member anchors the witness).
    std::map<int, std::vector<std::string>> members;
    for (const auto& [node, c] : comp) members[c].push_back(node);

    std::vector<std::string> out;
    for (auto& [c, nodes] : members) {
      std::sort(nodes.begin(), nodes.end());
      const std::string& origin = nodes.front();
      bool cyclic = nodes.size() > 1;
      if (!cyclic) {  // single node: cyclic only with a self-loop
        for (const Edge& e : adj.at(origin))
          if (e.to == origin) cyclic = true;
      }
      if (!cyclic) continue;

      // BFS within the component from `origin` back to itself.
      std::map<std::string, std::pair<std::string, const Edge*>> parent;
      std::vector<std::string> queue = {origin};
      const Edge* closing = nullptr;
      for (std::size_t q = 0; q < queue.size() && !closing; ++q) {
        const std::string& n = queue[q];
        for (const Edge& e : adj.at(n)) {
          if (comp.at(e.to) != c) continue;
          if (e.to == origin) {
            closing = &e;
            parent.try_emplace(origin + "\x01", std::make_pair(n, &e));
            break;
          }
          if (parent.try_emplace(e.to, std::make_pair(n, &e)).second)
            queue.push_back(e.to);
        }
      }
      if (!closing) continue;  // origin not on a cycle inside this SCC

      // Reconstruct origin -> ... -> origin.
      std::vector<const Edge*> path = {parent.at(origin + "\x01").second};
      std::string cur = parent.at(origin + "\x01").first;
      while (cur != origin) {
        path.push_back(parent.at(cur).second);
        cur = parent.at(cur).first;
      }
      std::reverse(path.begin(), path.end());

      std::ostringstream msg;
      msg << origin;
      for (const Edge* e : path)
        msg << " -> " << e->to << " (" << e->file << ":" << e->line << ")";
      out.push_back(msg.str());
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

struct Program {
  std::vector<FileIndex> files;
  std::map<std::string, std::size_t> by_path;

  const FileIndex* find(const std::string& rel) const {
    const auto it = by_path.find(rel);
    return it == by_path.end() ? nullptr : &files[it->second];
  }
};

/// Resolve an include string to a walked file's rel path ("" if outside the
/// walk): either verbatim, or relative to the includer's directory.
std::string resolve_include(const Program& prog, const std::string& from,
                            const std::string& target) {
  if (prog.by_path.count(target)) return target;
  const std::string dir = dir_of(from);
  if (!dir.empty()) {
    const std::string local = cat(dir, "/", target);
    if (prog.by_path.count(local)) return local;
  }
  return std::string();
}

void rule_layering(const Program& prog, std::vector<Violation>& out) {
  CycleGraph files;
  for (const FileIndex& f : prog.files) {
    const std::string from_mod = module_of(f.path);
    const int from_tier = module_tier(from_mod);
    for (const IncludeEdge& inc : f.includes) {
      const std::string resolved = resolve_include(prog, f.path, inc.target);
      if (!resolved.empty()) files.add_edge(f.path, resolved, f.path, inc.line);

      const std::string to_path = resolved.empty() ? inc.target : resolved;
      const std::string to_mod = module_of(to_path);
      const int to_tier = module_tier(to_mod);
      if (from_tier >= 0 && to_tier >= 0 && to_tier > from_tier) {
        add(out, f.path, inc.line, kRuleLayer,
            cat("layering back-edge: '", from_mod, "' (tier ",
                std::to_string(from_tier), ") includes \"", inc.target,
                "\" from '", to_mod, "' (tier ", std::to_string(to_tier),
                "); the DESIGN.md layer order only permits includes of the "
                "same or lower tiers"));
      }
    }
  }
  for (const std::string& cycle : files.cycles()) {
    const std::string first = cycle.substr(0, cycle.find(' '));
    add(out, first, 0, kRuleLayer,
        cat("include cycle: ", cycle, "; break the cycle with a forward "
            "declaration or by splitting the header"));
  }
}

void rule_fork_keys(const Program& prog, std::vector<Violation>& out) {
  for (const FileIndex& f : prog.files) {
    // Tracked Rng names: declared in this file, its paired header/source,
    // or any directly included walked file (struct members forked through
    // a field reference resolve via the include).
    std::set<std::string> tracked;
    const auto absorb = [&tracked](const FileIndex* fi) {
      if (!fi) return;
      for (const RngDeclaration& d : fi->rng_decls) tracked.insert(d.name);
    };
    absorb(&f);
    const std::string stem = stem_of(f.path);
    for (const char* ext : {".h", ".hpp", ".cpp", ".cc"})
      absorb(prog.find(cat(stem, ext)));
    for (const IncludeEdge& inc : f.includes)
      absorb(prog.find(resolve_include(prog, f.path, inc.target)));

    // Sibling collisions, grouped per (function, receiver): two forks off
    // the same parent in the same function draw from one key namespace.
    std::map<std::pair<std::string, std::string>, std::vector<const ForkSite*>>
        groups;
    for (const ForkSite& site : f.forks) {
      if (!tracked.count(site.receiver)) {
        add(out, f.path, site.line, kRuleFork,
            cat("fork() on '", site.receiver,
                "', which is not a declared Rng stream in this file, its "
                "paired header, or a direct include; fork only from tracked "
                "roots so the stream tree stays auditable"));
      }
      if (!site.dynamic)
        groups[{site.function, site.receiver}].push_back(&site);
    }
    for (const auto& [key, sites] : groups) {
      for (std::size_t a = 0; a < sites.size(); ++a) {
        for (std::size_t b = a + 1; b < sites.size(); ++b) {
          const ForkSite* s1 = sites[a];
          const ForkSite* s2 = sites[b];
          if (s1->line == s2->line) continue;  // one lexical site
          std::string why;
          if (!s1->is_prefix && !s2->is_prefix) {
            if (s1->key == s2->key)
              why = cat("duplicate fork key \"", s1->key, "\"");
          } else if (s1->is_prefix && s2->is_prefix) {
            if (s1->key.starts_with(s2->key) || s2->key.starts_with(s1->key))
              why = cat("overlapping dynamic-suffix fork prefixes \"",
                        s1->key, "…\" and \"", s2->key, "…\"");
          } else {
            const ForkSite* lit = s1->is_prefix ? s2 : s1;
            const ForkSite* pre = s1->is_prefix ? s1 : s2;
            if (lit->key.size() > pre->key.size() &&
                lit->key.starts_with(pre->key))
              why = cat("literal fork key \"", lit->key,
                        "\" lies inside the dynamic-suffix namespace \"",
                        pre->key, "…\"");
          }
          if (why.empty()) continue;
          add(out, f.path, s2->line, kRuleFork,
              cat(why, ": collides with the fork at line ",
                  std::to_string(s1->line), " on the same parent '",
                  key.second,
                  "'; sibling streams must use distinct literal keys"));
        }
      }
    }
  }
}

void rule_lock_order(const Program& prog, std::vector<Violation>& out) {
  // Mutex name resolution: "Class::member" when the owner is unambiguous.
  std::map<std::string, std::set<std::string>> owners;  // member -> classes
  for (const FileIndex& f : prog.files)
    for (const MutexMember& m : f.mutexes)
      owners[m.name].insert(m.owner.empty() ? std::string("<global>")
                                            : m.owner);

  const auto resolve = [&owners](const std::string& cls,
                                 const std::string& name) -> std::string {
    const auto it = owners.find(name);
    if (it == owners.end()) return std::string();
    if (!cls.empty() && it->second.count(cls)) return cat(cls, "::", name);
    if (it->second.size() == 1) {
      const std::string& owner = *it->second.begin();
      return owner == "<global>" ? name : cat(owner, "::", name);
    }
    return std::string();  // ambiguous member name: stay silent
  };

  struct Fn {
    const FileIndex* file = nullptr;
    const FunctionInfo* info = nullptr;
    std::string cls;
    std::set<std::string> closure;  // qualified mutexes (transitive)
  };
  std::vector<Fn> fns;
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (const FileIndex& f : prog.files) {
    for (const FunctionInfo& fn : f.functions) {
      Fn e;
      e.file = &f;
      e.info = &fn;
      const std::size_t sep = fn.qualified.rfind("::");
      e.cls = sep == std::string::npos ? "" : fn.qualified.substr(0, sep);
      for (const std::string& a : fn.annotation_acquires) {
        const std::string q = resolve(e.cls, a);
        if (!q.empty()) e.closure.insert(q);
      }
      for (const LockEvent& ev : fn.events) {
        if (ev.kind != LockEvent::Kind::kAcquire) continue;
        const std::string q = resolve(e.cls, ev.target);
        if (!q.empty()) e.closure.insert(q);
      }
      by_name[fn.name].push_back(fns.size());
      fns.push_back(std::move(e));
    }
  }

  // Propagate acquisitions through calls until a fixpoint. A call only
  // resolves when exactly one indexed function carries that bare name —
  // ambiguous names would invent edges that no execution takes.
  const auto callee_of = [&by_name](const std::string& name) -> std::size_t {
    const auto it = by_name.find(name);
    if (it == by_name.end() || it->second.size() != 1) return SIZE_MAX;
    return it->second.front();
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (Fn& f : fns) {
      for (const LockEvent& ev : f.info->events) {
        if (ev.kind != LockEvent::Kind::kCall) continue;
        const std::size_t callee = callee_of(ev.target);
        if (callee == SIZE_MAX) continue;
        for (const std::string& m : fns[callee].closure)
          changed |= f.closure.insert(m).second;
      }
    }
  }

  CycleGraph graph;
  for (const Fn& f : fns) {
    for (const LockEvent& ev : f.info->events) {
      std::set<std::string> acquired;
      if (ev.kind == LockEvent::Kind::kAcquire) {
        const std::string q = resolve(f.cls, ev.target);
        if (!q.empty()) acquired.insert(q);
      } else {
        if (ev.held.empty()) continue;
        const std::size_t callee = callee_of(ev.target);
        if (callee == SIZE_MAX) continue;
        acquired = fns[callee].closure;
      }
      for (const std::string& h : ev.held) {
        const std::string from = resolve(f.cls, h);
        if (from.empty()) continue;
        for (const std::string& to : acquired) {
          if (from == to && ev.kind == LockEvent::Kind::kCall)
            continue;  // re-entry through a call is EXCLUDES' job, not ours
          graph.add_edge(from, to, f.file->path, ev.line);
        }
      }
    }
  }
  for (const std::string& cycle : graph.cycles()) {
    std::string file;
    std::size_t line = 0;
    // Anchor the report at the first edge's witness.
    const std::size_t open = cycle.find('(');
    if (open != std::string::npos) {
      const std::size_t colon = cycle.rfind(':', cycle.find(')', open));
      file = cycle.substr(open + 1, colon - open - 1);
      line = static_cast<std::size_t>(
          std::atol(cycle.c_str() + colon + 1));
    }
    add(out, file, line, kRuleLock,
        cat("lock-order cycle: ", cycle,
            "; acquisition order over annotated mutexes must be acyclic"));
  }
}

/// Apply whole-file allows and inline suppressions (analyzer rules only) to
/// merge-time violations, then emit the suppression meta-violations. `used`
/// receives "file\x01rule" keys for every suppression that fired; `hits`
/// counts raw violations per "file\x01rule" (both feed the stale audit).
std::vector<Violation> filter_merged(const Program& prog,
                                     const Config& config,
                                     std::vector<Violation> raw,
                                     std::vector<std::string>* used,
                                     std::map<std::string, std::size_t>* hits) {
  std::map<std::string, std::vector<check::Suppression>> live;
  for (const FileIndex& f : prog.files)
    live[f.path] = f.suppressions;  // copies: `used` is per-run state

  std::vector<Violation> kept;
  for (Violation& v : raw) {
    if (hits) ++(*hits)[cat(v.file, "\x01", v.rule)];
    if (config.allows(v.file, v.rule)) continue;
    bool suppressed = false;
    const FileIndex* f = prog.find(v.file);
    if (f) {
      const auto it = f->suppress_by_line.find(v.line);
      if (it != f->suppress_by_line.end()) {
        for (const std::size_t s : it->second) {
          if (f->suppressions[s].rule == v.rule) {
            live[v.file][s].used = true;
            suppressed = true;
          }
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(v));
  }

  for (const FileIndex& f : prog.files) {
    std::set<std::pair<std::size_t, std::string>> seen;
    for (const check::Suppression& s : live[f.path]) {
      if (!seen.insert({s.comment_line, s.rule}).second) continue;
      if (s.used && !config.allows_inline(f.path, s.rule)) {
        add(kept, f.path, s.comment_line, check::kRuleUndeclaredSuppression,
            cat("inline suppression of '", s.rule,
                "' is not declared in the lint config; add an allow-inline "
                "entry with a justification"));
      } else if (!s.used) {
        add(kept, f.path, s.comment_line, check::kRuleUnusedSuppression,
            cat("suppression of '", s.rule,
                "' matches no violation on this line; delete it"));
      } else if (used) {
        used->push_back(cat(f.path, "\x01", s.rule));
      }
    }
  }
  return kept;
}

void rule_stale_config(const Program& prog, const Config& config,
                       const Options& options,
                       const std::map<std::string, std::size_t>& raw_hits,
                       const std::vector<std::string>& used_merged,
                       std::vector<Violation>& out) {
  // Raw per-file hit counts: the lexical rules (re-run raw per file) plus
  // the analyzer rules (raw_hits from filter_merged, keyed "file\x01rule").
  std::map<std::string, std::size_t> hits = raw_hits;
  std::map<std::string, std::size_t> used_inline;  // file \x01 rule -> n
  for (const FileIndex& f : prog.files) {
    for (const Violation& v : f.raw_lint) ++hits[cat(f.path, "\x01", v.rule)];
    for (const check::UsedSuppression& u : f.used_lint_suppressions)
      ++used_inline[cat(f.path, "\x01", u.rule)];
  }
  for (const std::string& key : used_merged) ++used_inline[key];

  const auto audit = [&](const Config::Entry& e, bool inline_kind) {
    if (e.rule == kRuleStale) return;  // would be self-referential
    bool matched_file = false;
    bool live = false;
    for (const FileIndex& f : prog.files) {
      if (!check::glob_match(e.pattern, f.path)) continue;
      matched_file = true;
      const auto& table = inline_kind ? used_inline : hits;
      const auto it = table.find(cat(f.path, "\x01", e.rule));
      if (it != table.end() && it->second > 0) {
        live = true;
        break;
      }
    }
    if (!matched_file) {
      add(out, options.config_name, e.line, kRuleStale,
          cat("config entry '", inline_kind ? "allow-inline" : "allow", " ",
              e.pattern, " ", e.rule,
              "' matches no analyzed source file; delete it"));
    } else if (!live) {
      add(out, options.config_name, e.line, kRuleStale,
          inline_kind
              ? cat("config entry 'allow-inline ", e.pattern, " ", e.rule,
                    "' backs no live inline suppression; delete it")
              : cat("config entry 'allow ", e.pattern, " ", e.rule,
                    "' matches no remaining raw violation; delete it"));
    }
  };
  for (const Config::Entry& e : config.allow) audit(e, false);
  for (const Config::Entry& e : config.allow_inline) audit(e, true);
}

}  // namespace

std::vector<Violation> analyze_paths(const std::string& root,
                                     const std::vector<std::string>& paths,
                                     const Config& config,
                                     const Options& options,
                                     std::string* error) {
  std::vector<check::SourceFile> files;
  if (!check::list_source_files(root, paths, files, error)) return {};

  // Index phase: one slot per file, claimed by atomic counter; the merge
  // below reads slots in the sorted file order, so output is byte-identical
  // at any thread count.
  Program prog;
  prog.files.resize(files.size());
  std::vector<std::string> slot_errors(files.size());
  std::atomic<std::size_t> next{0};
  const unsigned workers = std::max<unsigned>(
      1, std::min<std::size_t>(options.threads ? options.threads : 1,
                               files.size() ? files.size() : 1));
  const auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= files.size()) return;
      std::string content;
      if (!check::read_file(files[i].full_path, content, &slot_errors[i]))
        continue;
      prog.files[i] = index_file(files[i].rel_path, content, config);
    }
  };
  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  for (const std::string& e : slot_errors) {  // first failing slot wins
    if (!e.empty()) {
      if (error) *error = e;
      return {};
    }
  }
  for (std::size_t i = 0; i < prog.files.size(); ++i)
    prog.by_path[prog.files[i].path] = i;

  // Rule phase (single-threaded over the merged index).
  std::vector<Violation> raw;
  rule_layering(prog, raw);
  rule_fork_keys(prog, raw);
  rule_lock_order(prog, raw);
  for (const FileIndex& f : prog.files)
    raw.insert(raw.end(), f.write_sites.begin(), f.write_sites.end());

  std::vector<std::string> used_merged;
  std::map<std::string, std::size_t> raw_hits;
  std::vector<Violation> kept =
      filter_merged(prog, config, std::move(raw), &used_merged, &raw_hits);

  if (options.audit_config)
    rule_stale_config(prog, config, options, raw_hits, used_merged, kept);

  std::sort(kept.begin(), kept.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Violation& a, const Violation& b) {
                           return a.file == b.file && a.line == b.line &&
                                  a.rule == b.rule && a.message == b.message;
                         }),
             kept.end());
  return kept;
}

}  // namespace vmcw::analyze
