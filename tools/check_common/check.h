// Shared front-end for the static contract checkers (vmcw_lint,
// vmcw_analyze): a dependency-free C++ tokenizer, the allowlist config
// format, inline-suppression handling, and the deterministic source-tree
// walk. Both tools see source the same way — one lexer, one config file,
// one suppression syntax — so an exemption reviewed for one checker can
// never silently mean something different to the other.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vmcw::check {

// ---------------------------------------------------------------------------
// Tokenizer. Comments, string/char literals and preprocessor directives are
// consumed (a banned identifier inside an #include or a string is not a
// violation — except string literals, which keep their text: rule
// thread-identity wants to see "VMCW_THREADS", and the fork-key analysis
// wants the literal key).
// ---------------------------------------------------------------------------

enum class Tok { kIdent, kNumber, kString, kPunct };

struct Token {
  Tok kind;
  std::string_view text;
  std::size_t line;
};

std::vector<Token> tokenize(std::string_view src);

/// Text of the token before/after `i`, or empty at the edges.
std::string_view prev_text(const std::vector<Token>& toks, std::size_t i);
std::string_view next_text(const std::vector<Token>& toks, std::size_t i);

/// Index just past the matching closer for the opener at `open` (which must
/// be '(', '[', '{' or '<'). For '<', '>>' counts as two closers. Returns
/// toks.size() when unbalanced.
std::size_t skip_group(const std::vector<Token>& toks, std::size_t open);

/// Concatenate string-ish pieces with append (gcc 12's -Wrestrict
/// false-positives on `const char* + std::string&&` chains).
template <typename... Parts>
std::string cat(Parts&&... parts) {
  std::string out;
  (out.append(parts), ...);
  return out;
}

// ---------------------------------------------------------------------------
// Diagnostics and the shared allowlist config.
// ---------------------------------------------------------------------------

struct Violation {
  std::string file;  ///< repo-relative path, as passed to the checker
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Every rule name either checker understands. Config::parse validates
/// entries against this union so one shared config file can carry sections
/// for both tools without either rejecting the other's rules.
const std::vector<std::string>& known_rule_names();

/// Names of the suppression meta-rules (shared by both tools).
inline constexpr std::string_view kRuleUndeclaredSuppression =
    "undeclared-suppression";
inline constexpr std::string_view kRuleUnusedSuppression =
    "unused-suppression";

/// Parsed allowlist config. Line format (one entry per line):
///   allow <path-glob> <rule> -- <justification>
///   allow-inline <path-glob> <rule> -- <justification>
/// `#` starts a comment; the justification is mandatory. Globs use `*`
/// (matches any run of characters, including '/').
struct Config {
  struct Entry {
    std::string pattern;
    std::string rule;
    std::string reason;
    std::size_t line = 0;  ///< 1-based line in the config file
  };
  std::vector<Entry> allow;         ///< whole-file exemptions for a rule
  std::vector<Entry> allow_inline;  ///< files allowed inline suppressions

  /// Parse config text; on syntax error returns false and sets *error.
  static bool parse(std::string_view text, Config& out, std::string* error);

  bool allows(std::string_view file, std::string_view rule) const;
  bool allows_inline(std::string_view file, std::string_view rule) const;
};

/// `*`-glob match (case-sensitive, `*` crosses '/').
bool glob_match(std::string_view pattern, std::string_view text);

// ---------------------------------------------------------------------------
// Inline suppressions: `// vmcw-lint: allow(rule[, rule...])` on the
// violating line, or on a standalone comment line directly above it.
// ---------------------------------------------------------------------------

struct Suppression {
  std::size_t comment_line;  ///< where the comment sits (for reporting)
  std::string rule;
  bool used = false;
};

/// Scan `content` for suppression comments. `by_line[n]` lists indices into
/// `all` of the suppressions covering line n (a standalone comment covers
/// the following line too).
void scan_suppressions(std::string_view content,
                       std::map<std::size_t, std::vector<std::size_t>>& by_line,
                       std::vector<Suppression>& all);

/// One inline suppression that actually suppressed a violation — the
/// analyzer audits these against the config's allow-inline budget.
struct UsedSuppression {
  std::size_t line = 0;
  std::string rule;
};

/// Filter `raw` through the config's whole-file allows and the inline
/// suppressions found in `content`; append undeclared-suppression /
/// unused-suppression meta-violations. Only suppressions whose rule is in
/// `owned_rules` participate — each checker audits its own rules and leaves
/// the sibling tool's suppressions alone, so one suppression comment never
/// reads as "unused" to the checker that doesn't implement its rule. When
/// `used` is non-null it receives the suppressions that fired (deduplicated
/// per line+rule).
std::vector<Violation> apply_suppressions(std::string_view path,
                                          std::string_view content,
                                          const Config& config,
                                          std::vector<Violation> raw,
                                          const std::vector<std::string>& owned_rules,
                                          std::vector<UsedSuppression>* used);

// ---------------------------------------------------------------------------
// Deterministic source-tree walk.
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string rel_path;   ///< root-relative, '/'-separated
  std::string full_path;  ///< as opened on disk
};

/// List every *.h/*.hpp/*.cpp/*.cc under `paths` (files or directories),
/// resolved relative to `root`, in sorted order so downstream output is
/// stable. On error returns false and sets *error.
bool list_source_files(const std::string& root,
                       const std::vector<std::string>& paths,
                       std::vector<SourceFile>& out, std::string* error);

/// Read a file's bytes; returns false and sets *error on failure.
bool read_file(const std::string& path, std::string& out, std::string* error);

}  // namespace vmcw::check
