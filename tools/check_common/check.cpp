#include "check.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

namespace vmcw::check {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void add(std::vector<Violation>& out, std::string_view file, std::size_t line,
         std::string_view rule, std::string message) {
  out.push_back({std::string(file), line, std::string(rule),
                 std::move(message)});
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0, line = 1;
  const std::size_t n = src.size();
  bool line_has_token = false;  // anything but whitespace seen on this line

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      line_has_token = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: '#' as the first non-space character of a
    // line swallows the directive, honoring backslash continuations.
    if (c == '#' && !line_has_token) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    line_has_token = true;
    if (c == '/' && peek(1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // Raw string literal R"delim( ... )delim"
    if (c == 'R' && peek(1) == '"') {
      std::size_t d = i + 2;
      while (d < n && src[d] != '(' && src[d] != '"') ++d;
      if (d < n && src[d] == '(') {
        const std::string closer =
            ")" + std::string(src.substr(i + 2, d - (i + 2))) + "\"";
        const std::size_t start = d + 1;
        const std::size_t end = src.find(closer, start);
        const std::size_t stop = end == std::string_view::npos
                                     ? n
                                     : end + closer.size();
        out.push_back({Tok::kString,
                       src.substr(start, (end == std::string_view::npos
                                              ? n
                                              : end) -
                                             start),
                       line});
        for (std::size_t k = i; k < stop; ++k)
          if (src[k] == '\n') ++line;
        i = stop;
        continue;
      }
    }
    if (c == '"') {
      const std::size_t start = ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      out.push_back({Tok::kString, src.substr(start, i - start), line});
      if (i < n) ++i;
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\') ++i;
        ++i;
      }
      if (i < n) ++i;
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.push_back({Tok::kIdent, src.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      while (i < n && (ident_char(src[i]) || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P'))))
        ++i;
      out.push_back({Tok::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Multi-character operators we care to keep atomic.
    static constexpr std::array<std::string_view, 18> kOps = {
        "::", "->", "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=",
        "&&", "||", "+=", "-=",  "*=", "/=", "|=", "&="};
    std::string_view matched;
    for (const std::string_view op : kOps) {
      if (src.substr(i, op.size()) == op) {
        matched = op;
        break;
      }
    }
    if (!matched.empty()) {
      out.push_back({Tok::kPunct, src.substr(i, matched.size()), line});
      i += matched.size();
      continue;
    }
    out.push_back({Tok::kPunct, src.substr(i, 1), line});
    ++i;
  }
  return out;
}

std::string_view prev_text(const std::vector<Token>& toks, std::size_t i) {
  return i == 0 ? std::string_view{} : toks[i - 1].text;
}

std::string_view next_text(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() ? toks[i + 1].text : std::string_view{};
}

std::size_t skip_group(const std::vector<Token>& toks, std::size_t open) {
  const std::string_view o = toks[open].text;
  const bool angle = o == "<";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string_view t = toks[i].text;
    if (angle) {
      if (t == "<") ++depth;
      else if (t == ">") --depth;
      else if (t == ">>") depth -= 2;
      else if (t == ";" || t == "{") return toks.size();  // not a template
      if (depth <= 0) return i + 1;
    } else {
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      if (depth == 0) return i + 1;
    }
  }
  return toks.size();
}

const std::vector<std::string>& known_rule_names() {
  static const std::vector<std::string> kNames = {
      // vmcw_lint (tokenizer-level, per-file)
      "nondeterministic-rng", "wall-clock", "unordered-iteration",
      "thread-identity", "mutable-global", "rng-construction",
      // vmcw_analyze (semantic, whole-program)
      "fork-key-collision", "lock-order-cycle", "layering", "durable-write",
      "stale-config"};
  return kNames;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative '*' glob (no character classes needed).
  std::size_t p = 0, t = 0, star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool Config::parse(std::string_view text, Config& out, std::string* error) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string line(text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos));
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream in(line);
    std::string kind;
    if (!(in >> kind)) continue;
    if (kind != "allow" && kind != "allow-inline") {
      if (error)
        *error = "config line " + std::to_string(line_no) +
                 ": unknown directive '" + kind + "'";
      return false;
    }
    Entry entry;
    entry.line = line_no;
    std::string dashes;
    if (!(in >> entry.pattern >> entry.rule >> dashes) || dashes != "--") {
      if (error)
        *error = "config line " + std::to_string(line_no) +
                 ": expected '<kind> <path-glob> <rule> -- <justification>'";
      return false;
    }
    std::getline(in, entry.reason);
    entry.reason.erase(0, entry.reason.find_first_not_of(" \t"));
    if (entry.reason.empty()) {
      if (error)
        *error = "config line " + std::to_string(line_no) +
                 ": every allowlist entry needs a justification";
      return false;
    }
    const auto& names = known_rule_names();
    if (std::find(names.begin(), names.end(), entry.rule) == names.end()) {
      if (error)
        *error = "config line " + std::to_string(line_no) +
                 ": unknown rule '" + entry.rule + "'";
      return false;
    }
    (kind == "allow" ? out.allow : out.allow_inline)
        .push_back(std::move(entry));
  }
  return true;
}

bool Config::allows(std::string_view file, std::string_view rule) const {
  for (const Entry& e : allow)
    if (e.rule == rule && glob_match(e.pattern, file)) return true;
  return false;
}

bool Config::allows_inline(std::string_view file,
                           std::string_view rule) const {
  for (const Entry& e : allow_inline)
    if (e.rule == rule && glob_match(e.pattern, file)) return true;
  return false;
}

void scan_suppressions(std::string_view content,
                       std::map<std::size_t, std::vector<std::size_t>>& by_line,
                       std::vector<Suppression>& all) {
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t eol = content.find('\n', pos);
    const std::string_view text =
        content.substr(pos, eol == std::string_view::npos ? content.size() - pos
                                                          : eol - pos);
    const std::size_t mark = text.find("vmcw-lint:");
    if (mark != std::string_view::npos) {
      const std::size_t open = text.find("allow(", mark);
      const std::size_t close =
          open == std::string_view::npos ? std::string_view::npos
                                         : text.find(')', open);
      if (open != std::string_view::npos && close != std::string_view::npos) {
        std::string_view rules =
            text.substr(open + 6, close - (open + 6));
        const std::size_t comment = text.find("//");
        const bool standalone =
            comment != std::string_view::npos &&
            text.find_first_not_of(" \t") == comment;
        std::size_t p = 0;
        while (p < rules.size()) {
          std::size_t q = rules.find(',', p);
          if (q == std::string_view::npos) q = rules.size();
          std::string rule(rules.substr(p, q - p));
          rule.erase(0, rule.find_first_not_of(" \t"));
          const std::size_t last = rule.find_last_not_of(" \t");
          rule.erase(last == std::string::npos ? 0 : last + 1);
          if (!rule.empty()) {
            all.push_back({line, rule, false});
            by_line[line].push_back(all.size() - 1);
            if (standalone) by_line[line + 1].push_back(all.size() - 1);
          }
          p = q + 1;
        }
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line;
  }
}

std::vector<Violation> apply_suppressions(std::string_view path,
                                          std::string_view content,
                                          const Config& config,
                                          std::vector<Violation> raw,
                                          const std::vector<std::string>& owned_rules,
                                          std::vector<UsedSuppression>* used) {
  std::map<std::size_t, std::vector<std::size_t>> suppress_by_line;
  std::vector<Suppression> suppressions;
  scan_suppressions(content, suppress_by_line, suppressions);
  const auto owned = [&owned_rules](const std::string& rule) {
    return std::find(owned_rules.begin(), owned_rules.end(), rule) !=
           owned_rules.end();
  };

  std::vector<Violation> kept;
  for (Violation& v : raw) {
    if (config.allows(path, v.rule)) continue;
    bool suppressed = false;
    const auto it = suppress_by_line.find(v.line);
    if (it != suppress_by_line.end()) {
      for (const std::size_t s : it->second) {
        if (suppressions[s].rule == v.rule) {
          suppressions[s].used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(v));
  }

  // Inline suppressions are only legal when the checked-in config declares
  // them — and a suppression that no longer suppresses anything must be
  // deleted, so stale escapes can't accumulate.
  std::set<std::pair<std::size_t, std::string>> seen;
  for (const Suppression& s : suppressions) {
    if (!owned(s.rule)) continue;  // the sibling checker audits its own
    if (!seen.insert({s.comment_line, s.rule}).second) continue;
    if (s.used && !config.allows_inline(path, s.rule)) {
      add(kept, path, s.comment_line, kRuleUndeclaredSuppression,
          cat("inline suppression of '", s.rule,
              "' is not declared in the lint config; add an allow-inline "
              "entry with a justification"));
    } else if (!s.used) {
      add(kept, path, s.comment_line, kRuleUnusedSuppression,
          cat("suppression of '", s.rule,
              "' matches no violation on this line; delete it"));
    } else if (used) {
      used->push_back({s.comment_line, s.rule});
    }
  }
  return kept;
}

bool list_source_files(const std::string& root,
                       const std::vector<std::string>& paths,
                       std::vector<SourceFile>& out, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  const fs::path base(root);
  for (const std::string& p : paths) {
    const fs::path full = base / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc")
          files.push_back(it->path());
      }
    } else if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else {
      if (error) *error = "no such file or directory: " + full.string();
      return false;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const fs::path& file : files) {
    const std::string rel = file.lexically_normal()
                                .lexically_relative(base.lexically_normal())
                                .generic_string();
    const bool escapes_root = rel.empty() || rel.starts_with("..");
    out.push_back({escapes_root ? file.generic_string() : rel,
                   file.string()});
  }
  return true;
}

bool read_file(const std::string& path, std::string& out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace vmcw::check
