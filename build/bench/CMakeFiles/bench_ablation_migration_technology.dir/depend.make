# Empty dependencies file for bench_ablation_migration_technology.
# This may be replaced when dependencies are built.
