# Empty dependencies file for bench_fig06_resource_ratio.
# This may be replaced when dependencies are built.
