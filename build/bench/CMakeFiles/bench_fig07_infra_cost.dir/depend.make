# Empty dependencies file for bench_fig07_infra_cost.
# This may be replaced when dependencies are built.
