# Empty dependencies file for bench_olio_scaling.
# This may be replaced when dependencies are built.
