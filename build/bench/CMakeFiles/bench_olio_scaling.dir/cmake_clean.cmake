file(REMOVE_RECURSE
  "CMakeFiles/bench_olio_scaling.dir/bench_olio_scaling.cpp.o"
  "CMakeFiles/bench_olio_scaling.dir/bench_olio_scaling.cpp.o.d"
  "bench_olio_scaling"
  "bench_olio_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_olio_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
