# Empty dependencies file for bench_fig10_avg_util.
# This may be replaced when dependencies are built.
