file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_sensitivity_airlines.dir/bench_fig14_sensitivity_airlines.cpp.o"
  "CMakeFiles/bench_fig14_sensitivity_airlines.dir/bench_fig14_sensitivity_airlines.cpp.o.d"
  "bench_fig14_sensitivity_airlines"
  "bench_fig14_sensitivity_airlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_sensitivity_airlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
