# Empty dependencies file for bench_fig12_active_servers.
# This may be replaced when dependencies are built.
