file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_sensitivity_banking.dir/bench_fig13_sensitivity_banking.cpp.o"
  "CMakeFiles/bench_fig13_sensitivity_banking.dir/bench_fig13_sensitivity_banking.cpp.o.d"
  "bench_fig13_sensitivity_banking"
  "bench_fig13_sensitivity_banking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_sensitivity_banking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
