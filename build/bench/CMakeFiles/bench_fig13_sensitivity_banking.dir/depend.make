# Empty dependencies file for bench_fig13_sensitivity_banking.
# This may be replaced when dependencies are built.
