# Empty dependencies file for bench_correlation_stability.
# This may be replaced when dependencies are built.
