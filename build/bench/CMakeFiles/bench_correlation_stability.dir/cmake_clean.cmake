file(REMOVE_RECURSE
  "CMakeFiles/bench_correlation_stability.dir/bench_correlation_stability.cpp.o"
  "CMakeFiles/bench_correlation_stability.dir/bench_correlation_stability.cpp.o.d"
  "bench_correlation_stability"
  "bench_correlation_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correlation_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
