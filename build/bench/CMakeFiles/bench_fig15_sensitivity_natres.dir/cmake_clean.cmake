file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_sensitivity_natres.dir/bench_fig15_sensitivity_natres.cpp.o"
  "CMakeFiles/bench_fig15_sensitivity_natres.dir/bench_fig15_sensitivity_natres.cpp.o.d"
  "bench_fig15_sensitivity_natres"
  "bench_fig15_sensitivity_natres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_sensitivity_natres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
