# Empty compiler generated dependencies file for bench_fig03_cpu_cov.
# This may be replaced when dependencies are built.
