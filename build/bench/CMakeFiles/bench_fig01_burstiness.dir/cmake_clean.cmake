file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_burstiness.dir/bench_fig01_burstiness.cpp.o"
  "CMakeFiles/bench_fig01_burstiness.dir/bench_fig01_burstiness.cpp.o.d"
  "bench_fig01_burstiness"
  "bench_fig01_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
