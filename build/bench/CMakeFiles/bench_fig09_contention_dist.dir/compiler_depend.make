# Empty compiler generated dependencies file for bench_fig09_contention_dist.
# This may be replaced when dependencies are built.
