file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_contention_dist.dir/bench_fig09_contention_dist.cpp.o"
  "CMakeFiles/bench_fig09_contention_dist.dir/bench_fig09_contention_dist.cpp.o.d"
  "bench_fig09_contention_dist"
  "bench_fig09_contention_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_contention_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
