# Empty dependencies file for bench_claim_potential.
# This may be replaced when dependencies are built.
