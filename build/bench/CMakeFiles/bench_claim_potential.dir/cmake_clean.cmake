file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_potential.dir/bench_claim_potential.cpp.o"
  "CMakeFiles/bench_claim_potential.dir/bench_claim_potential.cpp.o.d"
  "bench_claim_potential"
  "bench_claim_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
