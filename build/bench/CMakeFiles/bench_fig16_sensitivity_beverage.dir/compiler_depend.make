# Empty compiler generated dependencies file for bench_fig16_sensitivity_beverage.
# This may be replaced when dependencies are built.
