file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_sensitivity_beverage.dir/bench_fig16_sensitivity_beverage.cpp.o"
  "CMakeFiles/bench_fig16_sensitivity_beverage.dir/bench_fig16_sensitivity_beverage.cpp.o.d"
  "bench_fig16_sensitivity_beverage"
  "bench_fig16_sensitivity_beverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_sensitivity_beverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
