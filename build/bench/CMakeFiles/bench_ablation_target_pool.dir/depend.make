# Empty dependencies file for bench_ablation_target_pool.
# This may be replaced when dependencies are built.
