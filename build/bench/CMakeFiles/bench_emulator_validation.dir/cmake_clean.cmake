file(REMOVE_RECURSE
  "CMakeFiles/bench_emulator_validation.dir/bench_emulator_validation.cpp.o"
  "CMakeFiles/bench_emulator_validation.dir/bench_emulator_validation.cpp.o.d"
  "bench_emulator_validation"
  "bench_emulator_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emulator_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
