# Empty compiler generated dependencies file for bench_fig11_peak_util.
# This may be replaced when dependencies are built.
