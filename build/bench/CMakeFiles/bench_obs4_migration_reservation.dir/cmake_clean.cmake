file(REMOVE_RECURSE
  "CMakeFiles/bench_obs4_migration_reservation.dir/bench_obs4_migration_reservation.cpp.o"
  "CMakeFiles/bench_obs4_migration_reservation.dir/bench_obs4_migration_reservation.cpp.o.d"
  "bench_obs4_migration_reservation"
  "bench_obs4_migration_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs4_migration_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
