# Empty dependencies file for bench_obs4_migration_reservation.
# This may be replaced when dependencies are built.
