# Empty dependencies file for bench_fig02_cpu_p2a.
# This may be replaced when dependencies are built.
