file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_mem_cov.dir/bench_fig05_mem_cov.cpp.o"
  "CMakeFiles/bench_fig05_mem_cov.dir/bench_fig05_mem_cov.cpp.o.d"
  "bench_fig05_mem_cov"
  "bench_fig05_mem_cov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_mem_cov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
