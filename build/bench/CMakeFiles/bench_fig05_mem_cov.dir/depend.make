# Empty dependencies file for bench_fig05_mem_cov.
# This may be replaced when dependencies are built.
