file(REMOVE_RECURSE
  "CMakeFiles/bench_predictability.dir/bench_predictability.cpp.o"
  "CMakeFiles/bench_predictability.dir/bench_predictability.cpp.o.d"
  "bench_predictability"
  "bench_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
