file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pcp.dir/bench_ablation_pcp.cpp.o"
  "CMakeFiles/bench_ablation_pcp.dir/bench_ablation_pcp.cpp.o.d"
  "bench_ablation_pcp"
  "bench_ablation_pcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
