# Empty compiler generated dependencies file for bench_ablation_pcp.
# This may be replaced when dependencies are built.
