# Empty dependencies file for bench_table3_settings.
# This may be replaced when dependencies are built.
