# Empty dependencies file for bench_micro_planners.
# This may be replaced when dependencies are built.
