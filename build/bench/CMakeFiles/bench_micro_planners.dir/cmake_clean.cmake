file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_planners.dir/bench_micro_planners.cpp.o"
  "CMakeFiles/bench_micro_planners.dir/bench_micro_planners.cpp.o.d"
  "bench_micro_planners"
  "bench_micro_planners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_planners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
