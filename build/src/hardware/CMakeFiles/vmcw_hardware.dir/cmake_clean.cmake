file(REMOVE_RECURSE
  "CMakeFiles/vmcw_hardware.dir/catalog.cpp.o"
  "CMakeFiles/vmcw_hardware.dir/catalog.cpp.o.d"
  "CMakeFiles/vmcw_hardware.dir/cost_model.cpp.o"
  "CMakeFiles/vmcw_hardware.dir/cost_model.cpp.o.d"
  "CMakeFiles/vmcw_hardware.dir/power_model.cpp.o"
  "CMakeFiles/vmcw_hardware.dir/power_model.cpp.o.d"
  "CMakeFiles/vmcw_hardware.dir/server_spec.cpp.o"
  "CMakeFiles/vmcw_hardware.dir/server_spec.cpp.o.d"
  "libvmcw_hardware.a"
  "libvmcw_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmcw_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
