
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hardware/catalog.cpp" "src/hardware/CMakeFiles/vmcw_hardware.dir/catalog.cpp.o" "gcc" "src/hardware/CMakeFiles/vmcw_hardware.dir/catalog.cpp.o.d"
  "/root/repo/src/hardware/cost_model.cpp" "src/hardware/CMakeFiles/vmcw_hardware.dir/cost_model.cpp.o" "gcc" "src/hardware/CMakeFiles/vmcw_hardware.dir/cost_model.cpp.o.d"
  "/root/repo/src/hardware/power_model.cpp" "src/hardware/CMakeFiles/vmcw_hardware.dir/power_model.cpp.o" "gcc" "src/hardware/CMakeFiles/vmcw_hardware.dir/power_model.cpp.o.d"
  "/root/repo/src/hardware/server_spec.cpp" "src/hardware/CMakeFiles/vmcw_hardware.dir/server_spec.cpp.o" "gcc" "src/hardware/CMakeFiles/vmcw_hardware.dir/server_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmcw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
