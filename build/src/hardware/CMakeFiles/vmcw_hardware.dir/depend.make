# Empty dependencies file for vmcw_hardware.
# This may be replaced when dependencies are built.
