file(REMOVE_RECURSE
  "libvmcw_hardware.a"
)
