file(REMOVE_RECURSE
  "libvmcw_migration.a"
)
