file(REMOVE_RECURSE
  "CMakeFiles/vmcw_migration.dir/precopy.cpp.o"
  "CMakeFiles/vmcw_migration.dir/precopy.cpp.o.d"
  "CMakeFiles/vmcw_migration.dir/reservation_study.cpp.o"
  "CMakeFiles/vmcw_migration.dir/reservation_study.cpp.o.d"
  "CMakeFiles/vmcw_migration.dir/technology.cpp.o"
  "CMakeFiles/vmcw_migration.dir/technology.cpp.o.d"
  "libvmcw_migration.a"
  "libvmcw_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmcw_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
