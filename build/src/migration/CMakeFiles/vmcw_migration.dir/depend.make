# Empty dependencies file for vmcw_migration.
# This may be replaced when dependencies are built.
