
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/migration/precopy.cpp" "src/migration/CMakeFiles/vmcw_migration.dir/precopy.cpp.o" "gcc" "src/migration/CMakeFiles/vmcw_migration.dir/precopy.cpp.o.d"
  "/root/repo/src/migration/reservation_study.cpp" "src/migration/CMakeFiles/vmcw_migration.dir/reservation_study.cpp.o" "gcc" "src/migration/CMakeFiles/vmcw_migration.dir/reservation_study.cpp.o.d"
  "/root/repo/src/migration/technology.cpp" "src/migration/CMakeFiles/vmcw_migration.dir/technology.cpp.o" "gcc" "src/migration/CMakeFiles/vmcw_migration.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmcw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/vmcw_hardware.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
