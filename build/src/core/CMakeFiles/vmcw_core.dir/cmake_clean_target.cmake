file(REMOVE_RECURSE
  "libvmcw_core.a"
)
