# Empty compiler generated dependencies file for vmcw_core.
# This may be replaced when dependencies are built.
