file(REMOVE_RECURSE
  "CMakeFiles/vmcw_core.dir/binpack.cpp.o"
  "CMakeFiles/vmcw_core.dir/binpack.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/constraints.cpp.o"
  "CMakeFiles/vmcw_core.dir/constraints.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/dynamic.cpp.o"
  "CMakeFiles/vmcw_core.dir/dynamic.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/emulator.cpp.o"
  "CMakeFiles/vmcw_core.dir/emulator.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/evacuation.cpp.o"
  "CMakeFiles/vmcw_core.dir/evacuation.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/host_pool.cpp.o"
  "CMakeFiles/vmcw_core.dir/host_pool.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/hybrid.cpp.o"
  "CMakeFiles/vmcw_core.dir/hybrid.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/migration_scheduler.cpp.o"
  "CMakeFiles/vmcw_core.dir/migration_scheduler.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/pcp.cpp.o"
  "CMakeFiles/vmcw_core.dir/pcp.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/placement.cpp.o"
  "CMakeFiles/vmcw_core.dir/placement.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/planners.cpp.o"
  "CMakeFiles/vmcw_core.dir/planners.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/predictor.cpp.o"
  "CMakeFiles/vmcw_core.dir/predictor.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/study.cpp.o"
  "CMakeFiles/vmcw_core.dir/study.cpp.o.d"
  "CMakeFiles/vmcw_core.dir/vm.cpp.o"
  "CMakeFiles/vmcw_core.dir/vm.cpp.o.d"
  "libvmcw_core.a"
  "libvmcw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmcw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
