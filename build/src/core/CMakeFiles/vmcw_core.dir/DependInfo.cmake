
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/binpack.cpp" "src/core/CMakeFiles/vmcw_core.dir/binpack.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/binpack.cpp.o.d"
  "/root/repo/src/core/constraints.cpp" "src/core/CMakeFiles/vmcw_core.dir/constraints.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/constraints.cpp.o.d"
  "/root/repo/src/core/dynamic.cpp" "src/core/CMakeFiles/vmcw_core.dir/dynamic.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/dynamic.cpp.o.d"
  "/root/repo/src/core/emulator.cpp" "src/core/CMakeFiles/vmcw_core.dir/emulator.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/emulator.cpp.o.d"
  "/root/repo/src/core/evacuation.cpp" "src/core/CMakeFiles/vmcw_core.dir/evacuation.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/evacuation.cpp.o.d"
  "/root/repo/src/core/host_pool.cpp" "src/core/CMakeFiles/vmcw_core.dir/host_pool.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/host_pool.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/core/CMakeFiles/vmcw_core.dir/hybrid.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/hybrid.cpp.o.d"
  "/root/repo/src/core/migration_scheduler.cpp" "src/core/CMakeFiles/vmcw_core.dir/migration_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/migration_scheduler.cpp.o.d"
  "/root/repo/src/core/pcp.cpp" "src/core/CMakeFiles/vmcw_core.dir/pcp.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/pcp.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/vmcw_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/planners.cpp" "src/core/CMakeFiles/vmcw_core.dir/planners.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/planners.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/vmcw_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/vmcw_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/study.cpp.o.d"
  "/root/repo/src/core/vm.cpp" "src/core/CMakeFiles/vmcw_core.dir/vm.cpp.o" "gcc" "src/core/CMakeFiles/vmcw_core.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/vmcw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/vmcw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/vmcw_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/vmcw_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmcw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
