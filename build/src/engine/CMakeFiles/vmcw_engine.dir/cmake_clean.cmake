file(REMOVE_RECURSE
  "CMakeFiles/vmcw_engine.dir/engine.cpp.o"
  "CMakeFiles/vmcw_engine.dir/engine.cpp.o.d"
  "libvmcw_engine.a"
  "libvmcw_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmcw_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
