file(REMOVE_RECURSE
  "libvmcw_engine.a"
)
