# Empty dependencies file for vmcw_engine.
# This may be replaced when dependencies are built.
