file(REMOVE_RECURSE
  "libvmcw_report.a"
)
