# Empty dependencies file for vmcw_report.
# This may be replaced when dependencies are built.
