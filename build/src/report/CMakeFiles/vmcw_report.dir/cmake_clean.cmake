file(REMOVE_RECURSE
  "CMakeFiles/vmcw_report.dir/report.cpp.o"
  "CMakeFiles/vmcw_report.dir/report.cpp.o.d"
  "libvmcw_report.a"
  "libvmcw_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmcw_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
