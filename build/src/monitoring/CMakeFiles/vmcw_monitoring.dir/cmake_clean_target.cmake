file(REMOVE_RECURSE
  "libvmcw_monitoring.a"
)
