
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitoring/agent.cpp" "src/monitoring/CMakeFiles/vmcw_monitoring.dir/agent.cpp.o" "gcc" "src/monitoring/CMakeFiles/vmcw_monitoring.dir/agent.cpp.o.d"
  "/root/repo/src/monitoring/pipeline.cpp" "src/monitoring/CMakeFiles/vmcw_monitoring.dir/pipeline.cpp.o" "gcc" "src/monitoring/CMakeFiles/vmcw_monitoring.dir/pipeline.cpp.o.d"
  "/root/repo/src/monitoring/warehouse.cpp" "src/monitoring/CMakeFiles/vmcw_monitoring.dir/warehouse.cpp.o" "gcc" "src/monitoring/CMakeFiles/vmcw_monitoring.dir/warehouse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/vmcw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmcw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/vmcw_hardware.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
