file(REMOVE_RECURSE
  "CMakeFiles/vmcw_monitoring.dir/agent.cpp.o"
  "CMakeFiles/vmcw_monitoring.dir/agent.cpp.o.d"
  "CMakeFiles/vmcw_monitoring.dir/pipeline.cpp.o"
  "CMakeFiles/vmcw_monitoring.dir/pipeline.cpp.o.d"
  "CMakeFiles/vmcw_monitoring.dir/warehouse.cpp.o"
  "CMakeFiles/vmcw_monitoring.dir/warehouse.cpp.o.d"
  "libvmcw_monitoring.a"
  "libvmcw_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmcw_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
