# Empty compiler generated dependencies file for vmcw_monitoring.
# This may be replaced when dependencies are built.
