# Empty dependencies file for vmcw_validation.
# This may be replaced when dependencies are built.
