file(REMOVE_RECURSE
  "libvmcw_validation.a"
)
