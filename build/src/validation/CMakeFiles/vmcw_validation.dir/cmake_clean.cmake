file(REMOVE_RECURSE
  "CMakeFiles/vmcw_validation.dir/replay.cpp.o"
  "CMakeFiles/vmcw_validation.dir/replay.cpp.o.d"
  "CMakeFiles/vmcw_validation.dir/synthetic_apps.cpp.o"
  "CMakeFiles/vmcw_validation.dir/synthetic_apps.cpp.o.d"
  "libvmcw_validation.a"
  "libvmcw_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmcw_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
