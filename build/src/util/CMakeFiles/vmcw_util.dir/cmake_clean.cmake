file(REMOVE_RECURSE
  "CMakeFiles/vmcw_util.dir/cdf.cpp.o"
  "CMakeFiles/vmcw_util.dir/cdf.cpp.o.d"
  "CMakeFiles/vmcw_util.dir/distributions.cpp.o"
  "CMakeFiles/vmcw_util.dir/distributions.cpp.o.d"
  "CMakeFiles/vmcw_util.dir/rng.cpp.o"
  "CMakeFiles/vmcw_util.dir/rng.cpp.o.d"
  "CMakeFiles/vmcw_util.dir/stats.cpp.o"
  "CMakeFiles/vmcw_util.dir/stats.cpp.o.d"
  "CMakeFiles/vmcw_util.dir/table.cpp.o"
  "CMakeFiles/vmcw_util.dir/table.cpp.o.d"
  "libvmcw_util.a"
  "libvmcw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmcw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
