# Empty dependencies file for vmcw_util.
# This may be replaced when dependencies are built.
