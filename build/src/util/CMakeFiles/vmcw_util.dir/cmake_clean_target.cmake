file(REMOVE_RECURSE
  "libvmcw_util.a"
)
