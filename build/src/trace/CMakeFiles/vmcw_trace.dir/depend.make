# Empty dependencies file for vmcw_trace.
# This may be replaced when dependencies are built.
