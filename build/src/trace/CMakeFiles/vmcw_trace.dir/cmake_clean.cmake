file(REMOVE_RECURSE
  "CMakeFiles/vmcw_trace.dir/app_model.cpp.o"
  "CMakeFiles/vmcw_trace.dir/app_model.cpp.o.d"
  "CMakeFiles/vmcw_trace.dir/generator.cpp.o"
  "CMakeFiles/vmcw_trace.dir/generator.cpp.o.d"
  "CMakeFiles/vmcw_trace.dir/patterns.cpp.o"
  "CMakeFiles/vmcw_trace.dir/patterns.cpp.o.d"
  "CMakeFiles/vmcw_trace.dir/presets.cpp.o"
  "CMakeFiles/vmcw_trace.dir/presets.cpp.o.d"
  "CMakeFiles/vmcw_trace.dir/server_trace.cpp.o"
  "CMakeFiles/vmcw_trace.dir/server_trace.cpp.o.d"
  "CMakeFiles/vmcw_trace.dir/time_series.cpp.o"
  "CMakeFiles/vmcw_trace.dir/time_series.cpp.o.d"
  "CMakeFiles/vmcw_trace.dir/trace_io.cpp.o"
  "CMakeFiles/vmcw_trace.dir/trace_io.cpp.o.d"
  "libvmcw_trace.a"
  "libvmcw_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmcw_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
