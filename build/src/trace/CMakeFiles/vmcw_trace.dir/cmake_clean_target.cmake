file(REMOVE_RECURSE
  "libvmcw_trace.a"
)
