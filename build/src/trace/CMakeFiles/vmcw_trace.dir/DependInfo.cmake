
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/app_model.cpp" "src/trace/CMakeFiles/vmcw_trace.dir/app_model.cpp.o" "gcc" "src/trace/CMakeFiles/vmcw_trace.dir/app_model.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/vmcw_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/vmcw_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/patterns.cpp" "src/trace/CMakeFiles/vmcw_trace.dir/patterns.cpp.o" "gcc" "src/trace/CMakeFiles/vmcw_trace.dir/patterns.cpp.o.d"
  "/root/repo/src/trace/presets.cpp" "src/trace/CMakeFiles/vmcw_trace.dir/presets.cpp.o" "gcc" "src/trace/CMakeFiles/vmcw_trace.dir/presets.cpp.o.d"
  "/root/repo/src/trace/server_trace.cpp" "src/trace/CMakeFiles/vmcw_trace.dir/server_trace.cpp.o" "gcc" "src/trace/CMakeFiles/vmcw_trace.dir/server_trace.cpp.o.d"
  "/root/repo/src/trace/time_series.cpp" "src/trace/CMakeFiles/vmcw_trace.dir/time_series.cpp.o" "gcc" "src/trace/CMakeFiles/vmcw_trace.dir/time_series.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/vmcw_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/vmcw_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmcw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/vmcw_hardware.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
