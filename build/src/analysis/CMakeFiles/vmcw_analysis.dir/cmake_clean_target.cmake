file(REMOVE_RECURSE
  "libvmcw_analysis.a"
)
