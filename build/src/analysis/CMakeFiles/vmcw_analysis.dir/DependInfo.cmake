
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/burstiness.cpp" "src/analysis/CMakeFiles/vmcw_analysis.dir/burstiness.cpp.o" "gcc" "src/analysis/CMakeFiles/vmcw_analysis.dir/burstiness.cpp.o.d"
  "/root/repo/src/analysis/correlation.cpp" "src/analysis/CMakeFiles/vmcw_analysis.dir/correlation.cpp.o" "gcc" "src/analysis/CMakeFiles/vmcw_analysis.dir/correlation.cpp.o.d"
  "/root/repo/src/analysis/predictor.cpp" "src/analysis/CMakeFiles/vmcw_analysis.dir/predictor.cpp.o" "gcc" "src/analysis/CMakeFiles/vmcw_analysis.dir/predictor.cpp.o.d"
  "/root/repo/src/analysis/resource_ratio.cpp" "src/analysis/CMakeFiles/vmcw_analysis.dir/resource_ratio.cpp.o" "gcc" "src/analysis/CMakeFiles/vmcw_analysis.dir/resource_ratio.cpp.o.d"
  "/root/repo/src/analysis/seasonality.cpp" "src/analysis/CMakeFiles/vmcw_analysis.dir/seasonality.cpp.o" "gcc" "src/analysis/CMakeFiles/vmcw_analysis.dir/seasonality.cpp.o.d"
  "/root/repo/src/analysis/workload_report.cpp" "src/analysis/CMakeFiles/vmcw_analysis.dir/workload_report.cpp.o" "gcc" "src/analysis/CMakeFiles/vmcw_analysis.dir/workload_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/vmcw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmcw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/vmcw_hardware.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
