file(REMOVE_RECURSE
  "CMakeFiles/vmcw_analysis.dir/burstiness.cpp.o"
  "CMakeFiles/vmcw_analysis.dir/burstiness.cpp.o.d"
  "CMakeFiles/vmcw_analysis.dir/correlation.cpp.o"
  "CMakeFiles/vmcw_analysis.dir/correlation.cpp.o.d"
  "CMakeFiles/vmcw_analysis.dir/predictor.cpp.o"
  "CMakeFiles/vmcw_analysis.dir/predictor.cpp.o.d"
  "CMakeFiles/vmcw_analysis.dir/resource_ratio.cpp.o"
  "CMakeFiles/vmcw_analysis.dir/resource_ratio.cpp.o.d"
  "CMakeFiles/vmcw_analysis.dir/seasonality.cpp.o"
  "CMakeFiles/vmcw_analysis.dir/seasonality.cpp.o.d"
  "CMakeFiles/vmcw_analysis.dir/workload_report.cpp.o"
  "CMakeFiles/vmcw_analysis.dir/workload_report.cpp.o.d"
  "libvmcw_analysis.a"
  "libvmcw_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmcw_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
