# Empty compiler generated dependencies file for vmcw_analysis.
# This may be replaced when dependencies are built.
