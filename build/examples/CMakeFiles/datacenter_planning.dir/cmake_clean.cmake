file(REMOVE_RECURSE
  "CMakeFiles/datacenter_planning.dir/datacenter_planning.cpp.o"
  "CMakeFiles/datacenter_planning.dir/datacenter_planning.cpp.o.d"
  "datacenter_planning"
  "datacenter_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
