file(REMOVE_RECURSE
  "CMakeFiles/constrained_placement.dir/constrained_placement.cpp.o"
  "CMakeFiles/constrained_placement.dir/constrained_placement.cpp.o.d"
  "constrained_placement"
  "constrained_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
