# Empty compiler generated dependencies file for constrained_placement.
# This may be replaced when dependencies are built.
