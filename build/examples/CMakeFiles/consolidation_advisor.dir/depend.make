# Empty dependencies file for consolidation_advisor.
# This may be replaced when dependencies are built.
