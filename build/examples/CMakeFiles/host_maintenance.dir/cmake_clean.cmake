file(REMOVE_RECURSE
  "CMakeFiles/host_maintenance.dir/host_maintenance.cpp.o"
  "CMakeFiles/host_maintenance.dir/host_maintenance.cpp.o.d"
  "host_maintenance"
  "host_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
