# Empty dependencies file for test_app_model.
# This may be replaced when dependencies are built.
