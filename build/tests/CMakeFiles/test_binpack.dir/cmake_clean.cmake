file(REMOVE_RECURSE
  "CMakeFiles/test_binpack.dir/test_binpack.cpp.o"
  "CMakeFiles/test_binpack.dir/test_binpack.cpp.o.d"
  "test_binpack"
  "test_binpack.pdb"
  "test_binpack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
