# Empty compiler generated dependencies file for test_binpack.
# This may be replaced when dependencies are built.
