# Empty dependencies file for test_evacuation.
# This may be replaced when dependencies are built.
