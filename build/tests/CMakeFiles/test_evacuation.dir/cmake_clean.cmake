file(REMOVE_RECURSE
  "CMakeFiles/test_evacuation.dir/test_evacuation.cpp.o"
  "CMakeFiles/test_evacuation.dir/test_evacuation.cpp.o.d"
  "test_evacuation"
  "test_evacuation.pdb"
  "test_evacuation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evacuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
