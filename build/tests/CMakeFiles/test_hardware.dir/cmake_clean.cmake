file(REMOVE_RECURSE
  "CMakeFiles/test_hardware.dir/test_hardware.cpp.o"
  "CMakeFiles/test_hardware.dir/test_hardware.cpp.o.d"
  "test_hardware"
  "test_hardware.pdb"
  "test_hardware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
