# Empty dependencies file for test_host_pool.
# This may be replaced when dependencies are built.
