file(REMOVE_RECURSE
  "CMakeFiles/test_host_pool.dir/test_host_pool.cpp.o"
  "CMakeFiles/test_host_pool.dir/test_host_pool.cpp.o.d"
  "test_host_pool"
  "test_host_pool.pdb"
  "test_host_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
