# Empty compiler generated dependencies file for test_seasonality.
# This may be replaced when dependencies are built.
