file(REMOVE_RECURSE
  "CMakeFiles/test_seasonality.dir/test_seasonality.cpp.o"
  "CMakeFiles/test_seasonality.dir/test_seasonality.cpp.o.d"
  "test_seasonality"
  "test_seasonality.pdb"
  "test_seasonality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seasonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
