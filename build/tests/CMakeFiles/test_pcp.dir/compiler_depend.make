# Empty compiler generated dependencies file for test_pcp.
# This may be replaced when dependencies are built.
