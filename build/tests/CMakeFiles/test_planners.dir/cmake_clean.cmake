file(REMOVE_RECURSE
  "CMakeFiles/test_planners.dir/test_planners.cpp.o"
  "CMakeFiles/test_planners.dir/test_planners.cpp.o.d"
  "test_planners"
  "test_planners.pdb"
  "test_planners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
