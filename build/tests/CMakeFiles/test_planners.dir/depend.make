# Empty dependencies file for test_planners.
# This may be replaced when dependencies are built.
