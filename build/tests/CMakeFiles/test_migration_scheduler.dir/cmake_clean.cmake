file(REMOVE_RECURSE
  "CMakeFiles/test_migration_scheduler.dir/test_migration_scheduler.cpp.o"
  "CMakeFiles/test_migration_scheduler.dir/test_migration_scheduler.cpp.o.d"
  "test_migration_scheduler"
  "test_migration_scheduler.pdb"
  "test_migration_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_migration_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
