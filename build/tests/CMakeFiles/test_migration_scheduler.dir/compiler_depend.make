# Empty compiler generated dependencies file for test_migration_scheduler.
# This may be replaced when dependencies are built.
