
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_study_presets.cpp" "tests/CMakeFiles/test_study_presets.dir/test_study_presets.cpp.o" "gcc" "tests/CMakeFiles/test_study_presets.dir/test_study_presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vmcw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/vmcw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vmcw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/vmcw_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/monitoring/CMakeFiles/vmcw_monitoring.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/vmcw_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/vmcw_report.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/vmcw_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/vmcw_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmcw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
