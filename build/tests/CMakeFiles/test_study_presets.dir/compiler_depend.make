# Empty compiler generated dependencies file for test_study_presets.
# This may be replaced when dependencies are built.
