file(REMOVE_RECURSE
  "CMakeFiles/test_study_presets.dir/test_study_presets.cpp.o"
  "CMakeFiles/test_study_presets.dir/test_study_presets.cpp.o.d"
  "test_study_presets"
  "test_study_presets.pdb"
  "test_study_presets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_study_presets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
