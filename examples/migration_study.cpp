// Example: live-migration planning with the pre-copy model.
//
// Answers the operational questions behind Observation 4 for a VM/host
// configuration given on the command line:
//   - how long will the migration take, and what downtime will it cause?
//   - up to what host utilization is migration reliable?
//   - what does that imply for the consolidation utilization bound U?
//
// Usage: migration_study [vm_memory_gb] [link_gbps] [dirty_mb_per_s]

#include <cstdio>
#include <cstdlib>

#include "migration/precopy.h"
#include "migration/reservation_study.h"
#include "util/table.h"

using namespace vmcw;

int main(int argc, char** argv) {
  MigrationConfig config;
  if (argc > 1) config.vm_memory_mb = std::atof(argv[1]) * 1024.0;
  if (argc > 2) config.link_bandwidth_mbps = std::atof(argv[2]) * 125.0;
  if (argc > 3) config.dirty_rate_mbps = std::atof(argv[3]);

  std::printf("VM: %.1f GB, link %.0f MB/s, dirty rate %.0f MB/s, downtime "
              "target %.0f ms\n\n",
              config.vm_memory_mb / 1024.0, config.link_bandwidth_mbps,
              config.dirty_rate_mbps, config.downtime_target_ms);

  TextTable table({"host CPU", "host mem", "duration (s)", "downtime (ms)",
                   "rounds", "verdict"});
  ReservationStudyConfig study;
  study.migration = config;
  for (double cpu : {0.2, 0.4, 0.6, 0.7, 0.75, 0.8, 0.9}) {
    for (double mem : {0.5, 0.9}) {
      const auto r = simulate_precopy_at_load(config, cpu, mem);
      const bool reliable =
          r.converged && r.duration_s <= study.max_acceptable_duration_s;
      table.add_row({fmt_pct(cpu, 0), fmt_pct(mem, 0), fmt(r.duration_s, 1),
                     fmt(r.downtime_ms, 0), std::to_string(r.rounds),
                     reliable ? "ok" : (r.converged ? "prolonged" : "FAILS")});
    }
  }
  std::printf("%s", table.str().c_str());

  const double bound = max_reliable_cpu_utilization(study);
  std::printf(
      "\n=> utilization bound for this configuration: U = %.2f\n"
      "   (reserve %.0f%% of the host for reliable live migration; the\n"
      "   paper's thumb rule is 20%%, VMware's official guidance 30%%)\n",
      bound, (1.0 - bound) * 100.0);
  return 0;
}
