// Quickstart: the whole pipeline in ~60 lines.
//
//  1. Generate a synthetic enterprise estate (30 days of hourly traces).
//  2. Look at its burstiness — the reason consolidation pays.
//  3. Plan consolidation three ways (vanilla semi-static, stochastic PCP,
//     dynamic with a 20% live-migration reservation).
//  4. Replay the actual traces through the emulator and compare cost,
//     utilization and contention.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "analysis/burstiness.h"
#include "analysis/resource_ratio.h"
#include "core/study.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/table.h"

using namespace vmcw;

int main() {
  // 1. A small Banking-flavored estate: 120 physical Windows servers.
  const WorkloadSpec spec = scaled_down(banking_spec(), 120, kHoursPerMonth);
  const Datacenter dc = generate_datacenter(spec, /*seed=*/2014);
  std::printf("generated %zu servers x %zu hours (%s)\n", dc.servers.size(),
              dc.hours(), dc.industry.c_str());

  // 2. Why consolidate dynamically? CPU is bursty... but memory is not,
  //    and memory is what fills a consolidated host.
  const auto cpu = burstiness(dc, Resource::kCpu, 1);
  const auto mem = burstiness(dc, Resource::kMemory, 1);
  std::printf("\nburstiness: CPU median P2A %.1f (heavy-tailed servers %s), "
              "memory median P2A %.2f (%s)\n",
              p2a_cdf(cpu).quantile(0.5),
              fmt_pct(heavy_tailed_fraction(cpu)).c_str(),
              p2a_cdf(mem).quantile(0.5),
              fmt_pct(heavy_tailed_fraction(mem)).c_str());
  std::printf("memory-constrained intervals vs HS23 blade: %s\n",
              fmt_pct(memory_constrained_fraction(dc, 2, 336)).c_str());

  // 3 + 4. Plan all three ways and replay the real traces.
  StudySettings settings;  // Table 3 defaults: 14-day window, 2h intervals,
                           // 20% CPU+memory reserved for live migration
  const StudyResult study = run_study(dc, settings);

  TextTable table({"algorithm", "hosts", "space (norm)", "power (norm)",
                   "contention time", "migrations"});
  for (const auto& r : study.results) {
    table.add_row({to_string(r.algorithm), std::to_string(r.provisioned_hosts),
                   fmt(study.normalized_space_cost(r.algorithm), 3),
                   fmt(study.normalized_power_cost(r.algorithm), 3),
                   fmt_pct(r.emulation.contention_time_fraction()),
                   std::to_string(r.total_migrations)});
  }
  std::printf("\n%s", table.str().c_str());
  std::printf(
      "\nreading the result like the paper does: stochastic semi-static\n"
      "recovers most of dynamic consolidation's space savings without live\n"
      "migration; dynamic wins on power for bursty estates — at the price\n"
      "of contention risk.\n");
  return 0;
}
