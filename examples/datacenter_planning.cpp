// Example: full consolidation-planning study for one (or every) data center.
//
// Runs the paper's Section 5 comparison — vanilla Semi-Static, Stochastic
// (PCP) and Dynamic consolidation — through the trace-replay emulator and
// prints the Fig 7/8 style cost and contention summary, plus migration
// statistics for the dynamic plan.
//
// Usage: datacenter_planning [workload] [servers] [utilization_bound]
//   workload          "A".."D" or industry name; "all" (default) runs all 4
//   servers           fleet size override (default: full Table 2 size)
//   utilization_bound dynamic-consolidation bound U (default 0.8)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/study.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/table.h"

using namespace vmcw;

namespace {

void run_one(const WorkloadSpec& spec, double utilization_bound) {
  const Datacenter dc = generate_datacenter(spec, kStudySeed);
  StudySettings settings;
  settings.dynamic_utilization_bound = utilization_bound;
  const StudyResult study = run_study(dc, settings);

  std::printf("\n=== %s (%s), %zu servers, U=%.2f ===\n", dc.name.c_str(),
              dc.industry.c_str(), dc.servers.size(), utilization_bound);
  TextTable table({"algorithm", "hosts", "space (norm)", "power (norm)",
                   "contention time", "avg util p50", "peak util p50",
                   "migrations"});
  for (const auto& r : study.results) {
    const auto& em = r.emulation;
    std::vector<double> avg = em.host_avg_cpu_util;
    std::vector<double> peak = em.host_peak_cpu_util;
    std::sort(avg.begin(), avg.end());
    std::sort(peak.begin(), peak.end());
    const double avg_p50 = avg.empty() ? 0 : avg[avg.size() / 2];
    const double peak_p50 = peak.empty() ? 0 : peak[peak.size() / 2];
    table.add_row({to_string(r.algorithm), std::to_string(r.provisioned_hosts),
                   fmt(study.normalized_space_cost(r.algorithm), 3),
                   fmt(study.normalized_power_cost(r.algorithm), 3),
                   fmt_pct(em.contention_time_fraction()), fmt(avg_p50, 2),
                   fmt(peak_p50, 2), std::to_string(r.total_migrations)});
  }
  std::printf("%s", table.str().c_str());

  const auto& dyn = study.get(Algorithm::kDynamic).emulation;
  std::vector<std::size_t> active = dyn.active_hosts_per_interval;
  std::sort(active.begin(), active.end());
  if (!active.empty()) {
    std::printf(
        "dynamic active hosts: min=%zu p10=%zu p50=%zu p90=%zu max=%zu "
        "(cpu contention events: %zu, mem: %zu)\n",
        active.front(), active[active.size() / 10], active[active.size() / 2],
        active[active.size() * 9 / 10], active.back(),
        dyn.cpu_contention_samples.size(), dyn.mem_contention_samples.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";
  const int servers = argc > 2 ? std::atoi(argv[2]) : 0;
  const double bound = argc > 3 ? std::atof(argv[3]) : 0.8;

  for (const auto& preset : all_workload_specs()) {
    if (which != "all" && preset.name != which && preset.industry != which)
      continue;
    const WorkloadSpec spec =
        servers > 0 ? scaled_down(preset, servers, preset.hours) : preset;
    run_one(spec, bound);
  }
  return 0;
}
