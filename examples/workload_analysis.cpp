// Example: trace analysis of the four synthetic data centers.
//
// Reproduces the paper's Section 4 workload study end to end: Table 2
// fleet summaries, CPU/memory burstiness (peak-to-average ratio and
// coefficient of variation at 1/2/4-hour consolidation granularity), and
// the aggregate CPU:memory resource ratio against the HS23 blade.
//
// Usage: workload_analysis [servers_per_dc] [hours]
//   Defaults run the full Table 2 fleet sizes over 30 days; pass smaller
//   numbers for a quick look.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/burstiness.h"
#include "analysis/resource_ratio.h"
#include "analysis/workload_report.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/table.h"

using namespace vmcw;

namespace {

void print_burstiness(const Datacenter& dc) {
  std::printf("\n-- %s (%s): burstiness --\n", dc.name.c_str(),
              dc.industry.c_str());
  TextTable table({"resource", "window", "P2A p50", "P2A>2", "P2A>5",
                   "P2A>10", "P2A<1.5", "CoV p50", "CoV>=1"});
  for (Resource resource : {Resource::kCpu, Resource::kMemory}) {
    for (std::size_t window : {1u, 2u, 4u}) {
      const auto result = burstiness(dc, resource, window);
      const auto p2a = p2a_cdf(result);
      const auto cov = cov_cdf(result);
      table.add_row({to_string(resource), std::to_string(window) + "h",
                     fmt(p2a.quantile(0.5), 2), fmt_pct(p2a.fraction_above(2)),
                     fmt_pct(p2a.fraction_above(5)),
                     fmt_pct(p2a.fraction_above(10)), fmt_pct(p2a.at(1.5)),
                     fmt(cov.quantile(0.5), 2),
                     fmt_pct(cov.fraction_above(1.0) + cov.at(1.0) -
                             cov.at(1.0 - 1e-12))});
    }
  }
  std::printf("%s", table.str().c_str());
}

void print_resource_ratio(const Datacenter& dc) {
  const auto cdf = resource_ratio_cdf(dc, 2, 336);
  std::printf(
      "   resource ratio (RPE2/GB, 2h windows, last 14d): "
      "p10=%.0f p50=%.0f p90=%.0f max=%.0f  memory-constrained %.1f%% of "
      "intervals (HS23 ratio = %.0f)\n",
      cdf.quantile(0.10), cdf.quantile(0.50), cdf.quantile(0.90), cdf.max(),
      memory_constrained_fraction(dc, 2, 336) * 100.0, kHs23Rpe2PerGb);
}

}  // namespace

int main(int argc, char** argv) {
  const int servers = argc > 1 ? std::atoi(argv[1]) : 0;
  const std::size_t hours =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : kHoursPerMonth;

  std::vector<Datacenter> dcs;
  std::vector<WorkloadSummary> summaries;
  for (const auto& preset : all_workload_specs()) {
    const WorkloadSpec spec =
        servers > 0 ? scaled_down(preset, servers, hours) : preset;
    dcs.push_back(generate_datacenter(spec, kStudySeed));
    summaries.push_back(summarize_workload(dcs.back()));
  }

  std::printf("Table 2: workload summary\n%s",
              format_table2(summaries).c_str());
  for (const auto& dc : dcs) {
    print_burstiness(dc);
    print_resource_ratio(dc);
  }
  return 0;
}
