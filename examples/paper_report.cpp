// Example: generate the full reproduction report with one call.
//
// Usage: paper_report [output.md] [servers_per_dc] [--data dir]
//   default writes ./vmcw_report.md over fleets of 300 servers per DC
//   (pass 0 for the full Table 2 sizes — a few seconds more); with --data,
//   also emits plot-ready per-figure CSV files into `dir`.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "report/report.h"

int main(int argc, char** argv) {
  std::string path = "vmcw_report.md";
  std::string data_dir;
  vmcw::ReportOptions options;
  options.servers_per_dc = 300;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--data") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (positional == 0) {
      path = argv[i];
      ++positional;
    } else {
      options.servers_per_dc = std::atoi(argv[i]);
    }
  }

  std::printf("running the full study (%s fleets)...\n",
              options.servers_per_dc > 0
                  ? (std::to_string(options.servers_per_dc) + "-server").c_str()
                  : "full Table 2");
  vmcw::write_paper_report(path, options);
  std::printf("report written to %s\n", path.c_str());
  if (!data_dir.empty()) {
    const auto files = vmcw::write_report_data(data_dir, options);
    std::printf("%zu plot-data files written to %s\n", files.size(),
                data_dir.c_str());
  }
  return 0;
}
