// Example: the consolidation advisor — the "comprehensive consolidation
// planning analysis" the paper's conclusion calls for, as a command-line
// tool.
//
// Reads an estate (from the CSV schema of trace_io.h, or generates a
// synthetic one), pushes it through the full engine (monitoring agents ->
// warehouse -> planners -> execution check -> trace-replay evaluation),
// compares all five strategies, and prints an advice line based on the
// paper's decision logic: burstiness decides whether dynamic pays,
// predictability decides whether it is safe, memory-boundedness caps it.
//
// Usage:
//   consolidation_advisor                          # synthetic Banking, 200
//   consolidation_advisor <workload> [servers]     # synthetic preset
//   consolidation_advisor --csv servers.csv traces.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/burstiness.h"
#include "analysis/resource_ratio.h"
#include "analysis/seasonality.h"
#include "engine/engine.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "trace/trace_io.h"
#include "util/table.h"

using namespace vmcw;

int main(int argc, char** argv) {
  Datacenter estate;
  if (argc >= 4 && std::strcmp(argv[1], "--csv") == 0) {
    estate = load_datacenter(argv[2], argv[3], "X", "imported estate");
  } else {
    const std::string which = argc > 1 ? argv[1] : "Banking";
    const int servers = argc > 2 ? std::atoi(argv[2]) : 200;
    estate = generate_datacenter(
        scaled_down(workload_spec_by_name(which), servers, kHoursPerMonth),
        kStudySeed);
  }
  std::printf("estate: %s, %zu servers, %zu hours of history\n\n",
              estate.industry.c_str(), estate.servers.size(), estate.hours());

  ConsolidationEngine engine;
  engine.observe(estate);
  const auto fidelity = engine.monitoring_fidelity();
  std::printf("monitoring fidelity: cpu err %.1f%%, mem err %.1f%% (mean)\n\n",
              fidelity.cpu_mean_abs_rel_error * 100.0,
              fidelity.mem_mean_abs_rel_error * 100.0);

  TextTable table({"strategy", "hosts", "energy (kWh)", "contention",
                   "SLA VM-hours", "migrations", "worst exec makespan"});
  double best_energy = 0, stochastic_hosts = 0, dynamic_hosts = 0;
  for (Strategy s : {Strategy::kStatic, Strategy::kSemiStatic,
                     Strategy::kStochastic, Strategy::kDynamic,
                     Strategy::kHybrid}) {
    const auto rec = engine.recommend(s);
    if (!rec) {
      table.add_row({to_string(s), "infeasible", "-", "-", "-", "-", "-"});
      continue;
    }
    const auto report = engine.evaluate(*rec);
    if (s == Strategy::kStochastic) {
      best_energy = report.energy_wh;
      stochastic_hosts = static_cast<double>(rec->provisioned_hosts);
    }
    if (s == Strategy::kDynamic)
      dynamic_hosts = static_cast<double>(rec->provisioned_hosts);
    table.add_row(
        {to_string(s), std::to_string(rec->provisioned_hosts),
         fmt(report.energy_wh / 1000.0, 0),
         fmt_pct(report.contention_time_fraction()),
         std::to_string(report.total_vm_contention_hours),
         std::to_string(rec->total_migrations),
         rec->execution ? fmt(rec->execution->worst_makespan_s / 60.0, 1) +
                              " min"
                        : "-"});
  }
  std::printf("%s\n", table.str().c_str());

  // The paper's decision logic on this estate's own statistics.
  const auto& view = engine.planner_view();
  const auto cov = burstiness(view, Resource::kCpu, 1);
  const double heavy = heavy_tailed_fraction(cov);
  const double mem_bound = memory_constrained_fraction(view, 2);
  const auto fleet = fleet_predictability(view, 384, 336, 2);
  std::printf("estate character: %.0f%% heavy-tailed CPU, "
              "memory-bound %.0f%% of intervals, predictor hit rate %.0f%%\n",
              heavy * 100.0, mem_bound * 100.0, fleet.mean_hit_rate * 100.0);
  if (mem_bound > 0.95) {
    std::printf(
        "advice: memory-bound estate — stochastic semi-static consolidation; "
        "live migration buys nothing here (paper Section 8).\n");
  } else if (heavy > 0.3 && fleet.mean_hit_rate > 0.85) {
    std::printf(
        "advice: bursty and predictable — hybrid/dynamic consolidation for "
        "power, but keep the 20%% migration reservation and budget for "
        "contention (paper Observations 6-7).\n");
  } else {
    std::printf(
        "advice: moderate profile — stochastic semi-static consolidation "
        "captures most of the gain without migration risk (paper "
        "Observation 5).\n");
  }
  (void)best_energy;
  (void)stochastic_hosts;
  (void)dynamic_hosts;
  return 0;
}
