// Example: drain a host for maintenance.
//
// The paper's field observation (Section 1.2): production estates use live
// migration for maintenance and HA, not for dynamic consolidation. This
// example plans exactly that operation — evacuate one host of a
// consolidated estate, print where every VM goes and the drain timeline
// under the 2-concurrent-migrations-per-host limit.
//
// Usage: host_maintenance [host_index] [servers]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/evacuation.h"
#include "core/planners.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/table.h"

using namespace vmcw;

int main(int argc, char** argv) {
  const std::int32_t host = argc > 1 ? std::atoi(argv[1]) : 0;
  const int servers = argc > 2 ? std::atoi(argv[2]) : 120;

  const auto spec = scaled_down(beverage_spec(), servers, kHoursPerMonth);
  const auto dc = generate_datacenter(spec, kStudySeed);
  const auto vms = to_vm_workloads(dc);
  StudySettings settings;

  const auto plan = plan_semi_static(vms, settings);
  if (!plan) {
    std::printf("planning failed\n");
    return 1;
  }
  std::printf("estate: %zu VMs on %zu hosts; draining host %d for "
              "maintenance\n\n",
              vms.size(), plan->hosts_used, host);

  EvacuationOptions options;
  const auto drain = plan_evacuation(plan->placement, host, vms,
                                     settings.eval_begin(),
                                     HostPool::uniform(settings.target),
                                     options);
  if (!drain) {
    std::printf("no feasible drain: the surviving fleet lacks headroom "
                "(or constraints forbid it).\n");
    return 1;
  }

  TextTable table({"VM", "mem (MB)", "to host", "starts at", "takes"});
  for (std::size_t j = 0; j < drain->jobs.size(); ++j) {
    const auto& job = drain->jobs[j];
    table.add_row({vms[job.vm].id,
                   fmt(vms[job.vm].demand_at(settings.eval_begin()).memory_mb, 0),
                   std::to_string(job.to),
                   fmt(drain->schedule.start_s[j], 0) + " s",
                   fmt(job.duration_s, 0) + " s"});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\ndrain completes in %.1f min (%zu migrations, peak concurrency %zu, "
      "limit %d per host)\n",
      drain->schedule.makespan_s / 60.0, drain->jobs.size(),
      drain->schedule.peak_concurrency, options.per_host_migration_limit);
  return 0;
}
