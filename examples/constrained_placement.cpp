// Example: consolidation under real-world deployment constraints
// (Section 2.2.4).
//
// Enterprise placements are never purely resource-driven. This example
// builds a small estate and layers the constraint types the paper's
// tooling supports — VM-VM affinity, anti-affinity across cluster peers,
// and host pinning for licensed software — then shows their cost: the same
// fleet, packed with progressively more constraints, needs progressively
// more hosts.

#include <cstdio>

#include "core/planners.h"
#include "core/study.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/table.h"

using namespace vmcw;

namespace {

std::size_t hosts_with(const std::vector<VmWorkload>& vms,
                       const StudySettings& settings,
                       const ConstraintSet& constraints,
                       const char* label) {
  const auto plan = plan_semi_static(vms, settings, constraints);
  if (!plan) {
    std::printf("%-38s infeasible!\n", label);
    return 0;
  }
  std::printf("%-38s %zu hosts (constraints satisfied: %s)\n", label,
              plan->hosts_used,
              constraints.empty() || constraints.satisfied_by(plan->placement)
                  ? "yes"
                  : "NO");
  return plan->hosts_used;
}

}  // namespace

int main() {
  const auto spec = scaled_down(beverage_spec(), 100, 336);
  const auto dc = generate_datacenter(spec, 7);
  const auto vms = to_vm_workloads(dc);
  StudySettings settings;
  settings.history_hours = 240;
  settings.eval_hours = 96;

  std::printf("estate: %zu VMs, target blade %s\n\n", vms.size(),
              settings.target.model.c_str());

  // Unconstrained baseline.
  ConstraintSet none(vms.size());
  hosts_with(vms, settings, none, "no constraints");

  // Affinity: chatty app tiers co-located (pairs 0-1, 2-3, ... for the
  // first 20 VMs).
  ConstraintSet affinity(vms.size());
  for (std::size_t i = 0; i + 1 < 20; i += 2) affinity.add_affinity(i, i + 1);
  hosts_with(vms, settings, affinity, "+ 10 affinity pairs");

  // Anti-affinity: database cluster peers on distinct failure domains.
  ConstraintSet anti = affinity;
  for (std::size_t i = 20; i + 2 < 35; i += 3) {
    anti.add_anti_affinity(i, i + 1);
    anti.add_anti_affinity(i + 1, i + 2);
    anti.add_anti_affinity(i, i + 2);
  }
  hosts_with(vms, settings, anti, "+ 5 anti-affine 3-node clusters");

  // Pinning: licensed software bound to specific hosts.
  ConstraintSet pinned = anti;
  pinned.pin(40, 0);
  pinned.pin(41, 1);
  pinned.pin(42, 2);
  hosts_with(vms, settings, pinned, "+ 3 license pins");

  // And an unsatisfiable combination, rejected up front.
  ConstraintSet broken = pinned;
  broken.add_affinity(50, 51);
  broken.add_anti_affinity(50, 51);
  hosts_with(vms, settings, broken,
             "+ contradictory affinity/anti-affinity");

  std::printf(
      "\nconstraints cost capacity: every row above uses at least as many\n"
      "hosts as the one before. The planners (including dynamic) enforce\n"
      "them on every consolidation interval.\n");
  return 0;
}
