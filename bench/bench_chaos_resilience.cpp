// Chaos resilience — how each consolidation strategy degrades when the
// world misbehaves: host crashes (with HA drains), failing/slowed live
// migrations (with retry + backoff), and monitoring gaps (degraded-mode
// planning on last-known-good data).
//
// Grid: 4 workload classes x 3 strategies x fault intensities {0, 0.25,
// 0.5, 1.0}, one SweepDriver cell each; every fault schedule derives from
// the cell seed, so the whole table is bit-identical at any VMCW_THREADS.
// argv[1] scales servers per estate (default 40).
//
// Second axis — correlated outages: rack incidents (every host of a rack
// down together) at two monthly rates, with domain-aware app spread off
// and on. Dense packing concentrates an application's replicas in one
// rack's blast domain; the table shows what that costs in per-app blast
// radius and incident recovery time, and what spread costs in hosts.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "report/report.h"
#include "sweep/sweep.h"

using namespace vmcw;

int main(int argc, char** argv) {
  const bench::WallTimer timer;
  bench::print_header("Chaos resilience",
                      "Strategy robustness vs injected fault intensity");
  // Two independent sweeps, two journals (…_intensity.bin / …_corr.bin):
  // a SIGKILLed run restarted with --resume replays finished cells from
  // both and recomputes only the remainder, byte-identically.
  const bench::BenchOptions opts = bench::parse_options(argc, argv, 40);
  const int servers = opts.servers;

  std::vector<WorkloadSpec> specs;
  for (const auto& preset : all_workload_specs())
    specs.push_back(scaled_down(preset, servers, preset.hours));
  const StudySettings settings[] = {bench::baseline_settings()};
  const Strategy strategies[] = {Strategy::kSemiStatic, Strategy::kStochastic,
                                 Strategy::kDynamic};
  const std::uint64_t seeds[] = {kStudySeed};
  const double intensities[] = {0.0, 0.25, 0.5, 1.0};

  const auto base_cells = SweepDriver::grid(specs, settings, strategies, seeds);
  std::vector<SweepCell> cells;
  std::vector<double> cell_intensity;
  for (const double f : intensities) {
    for (SweepCell cell : base_cells) {
      cell.faults = FaultSpec::at_intensity(f);
      cells.push_back(std::move(cell));
      cell_intensity.push_back(f);
    }
  }
  std::printf("grid: %zu cells (%d servers per estate)\n\n", cells.size(),
              servers);

  const auto results =
      SweepDriver().run(cells, bench::sweep_options(opts, "intensity"));

  std::vector<RobustnessRow> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (!r.planned) {
      std::printf("cell %zu (%s) failed to plan: %s\n", i, r.workload.c_str(),
                  to_string(r.status));
      continue;
    }
    RobustnessRow row;
    row.workload = r.workload;
    row.strategy = to_string(r.strategy);
    row.fault_intensity = cell_intensity[i];
    row.report = r.robustness;
    if (cell_intensity[i] == 0.0) row.report.emulation = r.report;
    rows.push_back(std::move(row));
  }
  std::string dat = render_robustness_report(rows);
  std::printf("%s", dat.c_str());

  // Sanity: the harder intensities must actually exercise the machinery.
  std::size_t retries = 0, stale = 0, crashes = 0, fault_counters_at_zero = 0;
  for (const auto& row : rows) {
    if (row.fault_intensity == 0.0) {
      fault_counters_at_zero += row.report.host_crashes +
                                row.report.migration_retries +
                                row.report.stale_intervals;
      continue;
    }
    retries += row.report.migration_retries;
    stale += row.report.stale_intervals;
    crashes += row.report.host_crashes;
  }
  std::printf("\ntotals at f > 0: %zu retries, %zu stale (degraded-mode) "
              "intervals, %zu host crashes\n",
              retries, stale, crashes);
  if (fault_counters_at_zero != 0) {
    std::printf("FAIL: fault counters nonzero at intensity 0\n");
    return 1;
  }
  if (retries == 0 || stale == 0 || crashes == 0) {
    std::printf("FAIL: some fault class was never exercised\n");
    return 1;
  }

  // ---- Correlated-outage axis: rack incidents, spread off vs on --------
  const Strategy corr_strategies[] = {Strategy::kSemiStatic,
                                      Strategy::kDynamic};
  const double rack_rates[] = {2.0, 4.0};  // incidents per rack per month
  struct CorrMeta {
    bool spread = false;
    double rate = 0;
  };
  std::vector<SweepCell> corr_cells;
  std::vector<CorrMeta> corr_meta;
  for (const bool spread : {false, true})
    for (const double rate : rack_rates)
      for (const auto& spec : specs)
        for (const Strategy strategy : corr_strategies) {
          SweepCell cell;
          cell.spec = spec;
          cell.settings = bench::baseline_settings();
          cell.settings.domains.spread = spread;
          cell.strategy = strategy;
          cell.seed = kStudySeed;
          cell.faults.rack_outages_per_month = rate;
          cell.faults.domain_outage_hours_min = 2;
          cell.faults.domain_outage_hours_max = 8;
          corr_cells.push_back(std::move(cell));
          corr_meta.push_back({spread, rate});
        }
  const auto corr_results =
      SweepDriver().run(corr_cells, bench::sweep_options(opts, "corr"));

  char line[160];
  std::string corr_dat =
      "\n## Correlated rack outages: domain-aware spread off vs on\n\n";
  std::snprintf(line, sizeof(line),
                "%-10s %-12s %6s %7s %6s %10s %11s %10s %10s %6s\n", "Workload",
                "Strategy", "rate", "spread", "incid", "recovery_h",
                "max_blast", "vm_down_h", "peak_down", "hosts");
  corr_dat += line;
  double blast_off = 0, blast_on = 0, recovery_off = 0, recovery_on = 0;
  std::size_t down_off = 0, down_on = 0, corr_planned = 0;
  for (std::size_t i = 0; i < corr_results.size(); ++i) {
    const auto& r = corr_results[i];
    if (!r.planned) {
      std::snprintf(line, sizeof(line), "cell %zu (%s) failed to plan: %s\n",
                    i, r.workload.c_str(), to_string(r.status));
      corr_dat += line;
      continue;
    }
    ++corr_planned;
    const RobustnessReport& rob = r.robustness;
    std::snprintf(line, sizeof(line),
                  "%-10s %-12s %6.1f %7s %6zu %10.1f %10.1f%% %10zu %10zu %6zu\n",
                  r.workload.c_str(), to_string(r.strategy),
                  corr_meta[i].rate, corr_meta[i].spread ? "on" : "off",
                  rob.incidents.size(), rob.worst_incident_recovery_hours,
                  100.0 * rob.max_app_blast_radius, rob.vm_downtime_hours,
                  rob.max_vms_down_simultaneously, r.provisioned_hosts);
    corr_dat += line;
    (corr_meta[i].spread ? blast_on : blast_off) += rob.max_app_blast_radius;
    (corr_meta[i].spread ? recovery_on : recovery_off) +=
        rob.worst_incident_recovery_hours;
    (corr_meta[i].spread ? down_on : down_off) +=
        rob.max_vms_down_simultaneously;
  }
  std::snprintf(line, sizeof(line), "\naggregates (summed over %zu cells per arm):\n",
                corr_planned / 2);
  corr_dat += line;
  std::snprintf(line, sizeof(line), "  app blast radius   off %.2f  ->  on %.2f\n",
                blast_off, blast_on);
  corr_dat += line;
  std::snprintf(line, sizeof(line), "  worst recovery (h) off %.1f  ->  on %.1f\n",
                recovery_off, recovery_on);
  corr_dat += line;
  std::snprintf(line, sizeof(line), "  peak VMs down      off %zu  ->  on %zu\n",
                down_off, down_on);
  corr_dat += line;
  std::printf("%s", corr_dat.c_str());
  dat += corr_dat;
  // The figure artifact goes to chaos_resilience.dat through the atomic
  // temp + rename path: a kill mid-write leaves the previous complete file.
  bench::write_dat(dat);
  if (corr_planned == 0) {
    std::printf("FAIL: no correlated-outage cell planned\n");
    return 1;
  }
  // The headline claim: spreading an application across racks must shrink
  // the share of its replicas a single rack incident can take out.
  if (blast_on >= blast_off) {
    std::printf("FAIL: spread did not reduce aggregate app blast radius\n");
    return 1;
  }
  const double wall = timer.seconds();
  const double total_cells =
      static_cast<double>(results.size() + corr_results.size());
  bench::write_bench_json("chaos_resilience", wall, "cells_per_sec",
                          wall > 0 ? total_cells / wall : 0,
                          {{"cells", total_cells},
                           {"servers_per_estate", static_cast<double>(servers)}});
  std::printf("telemetry sidecar: telemetry_chaos_resilience.json\n");
  return 0;
}
