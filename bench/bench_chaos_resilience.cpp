// Chaos resilience — how each consolidation strategy degrades when the
// world misbehaves: host crashes (with HA drains), failing/slowed live
// migrations (with retry + backoff), and monitoring gaps (degraded-mode
// planning on last-known-good data).
//
// Grid: 4 workload classes x 3 strategies x fault intensities {0, 0.25,
// 0.5, 1.0}, one SweepDriver cell each; every fault schedule derives from
// the cell seed, so the whole table is bit-identical at any VMCW_THREADS.
// argv[1] scales servers per estate (default 40).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.h"
#include "report/report.h"
#include "runtime/sweep.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Chaos resilience",
                      "Strategy robustness vs injected fault intensity");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 40;

  std::vector<WorkloadSpec> specs;
  for (const auto& preset : all_workload_specs())
    specs.push_back(scaled_down(preset, servers, preset.hours));
  const StudySettings settings[] = {bench::baseline_settings()};
  const Strategy strategies[] = {Strategy::kSemiStatic, Strategy::kStochastic,
                                 Strategy::kDynamic};
  const std::uint64_t seeds[] = {kStudySeed};
  const double intensities[] = {0.0, 0.25, 0.5, 1.0};

  const auto base_cells = SweepDriver::grid(specs, settings, strategies, seeds);
  std::vector<SweepCell> cells;
  std::vector<double> cell_intensity;
  for (const double f : intensities) {
    for (SweepCell cell : base_cells) {
      cell.faults = FaultSpec::at_intensity(f);
      cells.push_back(std::move(cell));
      cell_intensity.push_back(f);
    }
  }
  std::printf("grid: %zu cells (%d servers per estate)\n\n", cells.size(),
              servers);

  const auto results = SweepDriver().run(cells);

  std::vector<RobustnessRow> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (!r.planned) {
      std::printf("cell %zu (%s) failed to plan\n", i, r.workload.c_str());
      continue;
    }
    RobustnessRow row;
    row.workload = r.workload;
    row.strategy = to_string(r.strategy);
    row.fault_intensity = cell_intensity[i];
    row.report = r.robustness;
    if (cell_intensity[i] == 0.0) row.report.emulation = r.report;
    rows.push_back(std::move(row));
  }
  std::printf("%s", render_robustness_report(rows).c_str());

  // Sanity: the harder intensities must actually exercise the machinery.
  std::size_t retries = 0, stale = 0, crashes = 0, fault_counters_at_zero = 0;
  for (const auto& row : rows) {
    if (row.fault_intensity == 0.0) {
      fault_counters_at_zero += row.report.host_crashes +
                                row.report.migration_retries +
                                row.report.stale_intervals;
      continue;
    }
    retries += row.report.migration_retries;
    stale += row.report.stale_intervals;
    crashes += row.report.host_crashes;
  }
  std::printf("\ntotals at f > 0: %zu retries, %zu stale (degraded-mode) "
              "intervals, %zu host crashes\n",
              retries, stale, crashes);
  if (fault_counters_at_zero != 0) {
    std::printf("FAIL: fault counters nonzero at intensity 0\n");
    return 1;
  }
  if (retries == 0 || stale == 0 || crashes == 0) {
    std::printf("FAIL: some fault class was never exercised\n");
    return 1;
  }
  std::printf("telemetry sidecar: telemetry_chaos_resilience.json\n");
  return 0;
}
