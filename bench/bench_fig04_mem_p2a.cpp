// Figure 4 — CDF of peak-to-average ratio for memory demand.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 4",
                      "CDF of Peak-to-Average Ratio for Memory");
  const auto fleets = bench::make_fleets(argc, argv);
  const double thresholds[] = {1.5, 2.0, 10.0};
  bench::print_burstiness_figure(fleets, Resource::kMemory, /*plot_cov=*/false,
                                 thresholds);

  std::printf("\nservers with memory P2A <= 1.5 (1h windows):\n");
  TextTable table({"workload", "measured", "paper"});
  const char* paper[] = {">50%", "~90%", "~60%", "(majority)"};
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    const auto cdf = p2a_cdf(burstiness(fleets[i], Resource::kMemory, 1));
    table.add_row({fleets[i].industry, fmt_pct(cdf.at(1.5)), paper[i]});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\npaper: memory ratios are far smaller than CPU's — hardly any\n"
      "Banking server exceeds 10, and most servers sit at or below 1.5\n"
      "(Observation 2: dynamic consolidation can save only ~50%% memory\n"
      "versus ~500%% CPU).\n");
  return 0;
}
