// Figure 12 — distribution of running (active) servers under Dynamic
// consolidation, as a fraction of the provisioned fleet.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 12",
                      "Distribution of Running Servers with Dynamic "
                      "Consolidation");
  const auto fleets = bench::make_fleets(argc, argv);
  const auto studies = bench::run_all_studies(fleets);

  for (std::size_t i = 0; i < studies.size(); ++i) {
    const auto& dyn = studies[i].get(Algorithm::kDynamic);
    std::vector<double> fractions;
    fractions.reserve(dyn.emulation.active_hosts_per_interval.size());
    for (auto active : dyn.emulation.active_hosts_per_interval)
      fractions.push_back(static_cast<double>(active) /
                          static_cast<double>(dyn.provisioned_hosts));
    const EmpiricalCdf cdf(std::move(fractions));

    std::printf("\n%s (provisioned hosts: %zu)\n",
                bench::subfig_label(fleets[i], i).c_str(),
                dyn.provisioned_hosts);
    const std::vector<std::string> names{"active fraction"};
    const std::vector<EmpiricalCdf> cdfs{cdf};
    const std::vector<double> quantiles{0.0, 0.10, 0.50, 0.90, 1.00};
    std::printf("%s", format_cdf_table(names, cdfs, quantiles).c_str());
    std::printf("max servers switched off: %s of the fleet\n",
                fmt_pct(1.0 - cdf.min()).c_str());
  }
  std::printf(
      "\npaper: Banking and Beverage have wide distributions — Banking\n"
      "switches off up to ~70%% of its servers in some intervals, Beverage\n"
      "runs on ~50%% of its servers for 90%% of intervals — while the\n"
      "memory-bound Airlines/Natural Resources stay nearly flat. Dynamic\n"
      "consolidation only pays off for workloads with high burstiness.\n");
  return 0;
}
