// Ablation — PCP design choices (Section 5.1's parameters).
//
// Sweeps the stochastic planner's body percentile (how aggressively the
// always-provisioned share is sized) and the peak-cluster similarity
// threshold (how eagerly workloads are assumed to co-peak), reporting
// footprint and realized contention. The paper's configuration is body=90,
// tail=max.

#include <algorithm>
#include <cstdio>

#include "common.h"
#include "core/emulator.h"
#include "core/planners.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Ablation — stochastic (PCP) parameters",
                      "body percentile x cluster threshold, Banking");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 400;
  const auto spec = scaled_down(banking_spec(), servers, kHoursPerMonth);
  const Datacenter dc = generate_datacenter(spec, kStudySeed);
  const auto vms = to_vm_workloads(dc);
  std::printf("workload: %s (%zu servers)\n\n", dc.industry.c_str(),
              dc.servers.size());

  TextTable table({"body pctile", "cluster sim", "hosts", "contention time",
                   "peak util p99"});
  for (double body : {75.0, 85.0, 90.0, 95.0, 100.0}) {
    for (double similarity : {0.3, 0.6, 0.9}) {
      StudySettings settings = bench::baseline_settings();
      settings.body_percentile = body;
      settings.cluster_similarity = similarity;
      const auto plan = plan_stochastic(vms, settings);
      if (!plan) continue;
      const Placement schedule[] = {plan->placement};
      const auto report = emulate(vms, schedule, settings, false);
      std::vector<double> peaks = report.host_peak_cpu_util;
      std::sort(peaks.begin(), peaks.end());
      const double p99 =
          peaks.empty() ? 0.0 : peaks[peaks.size() * 99 / 100];
      table.add_row({fmt(body, 0), fmt(similarity, 1),
                     std::to_string(plan->hosts_used),
                     fmt_pct(report.contention_time_fraction()),
                     fmt(p99, 2)});
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nlower body percentiles buy a smaller footprint but push realized\n"
      "peaks toward (and past) capacity; looser clustering (low threshold)\n"
      "merges peak groups and over-provisions, stricter clustering\n"
      "multiplies clusters until tails stop sharing. The paper's body=90\n"
      "sits at the contention-free end of the aggressive range.\n");
  return 0;
}
