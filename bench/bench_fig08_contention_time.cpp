// Figure 8 — fraction of the 336 evaluation hours in which some host
// experienced resource contention, per workload and algorithm.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 8", "Fraction of time with contention "
                                  "(absence of value = zero contention)");
  const auto fleets = bench::make_fleets(argc, argv);
  const auto studies = bench::run_all_studies(fleets);

  TextTable table({"workload", "Semi-Static", "Stochastic", "Dynamic",
                   "Dynamic contended host-hours (cpu/mem)"});
  for (const auto& study : studies) {
    auto cell = [&](Algorithm a) {
      const double f = study.get(a).emulation.contention_time_fraction();
      return f > 0 ? fmt_pct(f) : std::string("-");
    };
    const auto& dyn = study.get(Algorithm::kDynamic).emulation;
    table.add_row({study.workload, cell(Algorithm::kSemiStatic),
                   cell(Algorithm::kStochastic), cell(Algorithm::kDynamic),
                   std::to_string(dyn.cpu_contention_samples.size()) + "/" +
                       std::to_string(dyn.mem_contention_samples.size())});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\npaper: contention hours are small everywhere except Banking under\n"
      "Dynamic consolidation; Beverage sees some Dynamic contention; the\n"
      "one static outlier is an isolated Semi-Static case on Natural\n"
      "Resources; Airlines shows none at all.\n");
  return 0;
}
