// Runtime scaling — wall-clock of the paper's evaluation grid at 1..N
// threads, plus a byte-level determinism check: the sweep must produce
// identical results at every thread count (the runtime's contract).
//
// Grid: 4 workload classes x 3 strategies, one cell each — the shape of
// the Fig 7-12 suite. argv[1] scales servers per estate (default 48),
// argv[2] caps the thread counts tried (default VMCW_THREADS / hardware).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common.h"
#include "sweep/sweep.h"
#include "runtime/thread_pool.h"

using namespace vmcw;

namespace {

// The determinism-relevant bytes of one sweep result (wall times excluded).
std::string fingerprint(const std::vector<SweepCellResult>& results) {
  std::string fp;
  char buffer[128];
  for (const auto& r : results) {
    std::snprintf(buffer, sizeof(buffer), "%zu|%s|%d|%d|%zu|%zu|%a|%zu;",
                  r.index, r.workload.c_str(), static_cast<int>(r.strategy),
                  r.planned ? 1 : 0, r.provisioned_hosts, r.total_migrations,
                  r.report.energy_wh, r.report.total_vm_contention_hours);
    fp += buffer;
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Runtime scaling",
                      "Sweep wall-clock vs thread count (+ determinism)");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 48;
  const std::size_t max_threads = argc > 2
                                      ? static_cast<std::size_t>(
                                            std::atoll(argv[2]))
                                      : ThreadPool::default_concurrency();

  std::vector<WorkloadSpec> specs;
  for (const auto& preset : all_workload_specs())
    specs.push_back(scaled_down(preset, servers, preset.hours));
  const StudySettings settings[] = {bench::baseline_settings()};
  const Strategy strategies[] = {Strategy::kSemiStatic, Strategy::kStochastic,
                                 Strategy::kDynamic};
  const std::uint64_t seeds[] = {kStudySeed};
  const auto cells = SweepDriver::grid(specs, settings, strategies, seeds);
  std::printf("grid: %zu cells (%d servers per estate)\n\n", cells.size(),
              servers);

  std::vector<std::size_t> thread_counts{1};
  for (std::size_t t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads && max_threads > 1)
    thread_counts.push_back(max_threads);

  TextTable table({"threads", "wall s", "speedup", "identical"});
  std::string reference;
  double serial_seconds = 0;
  for (const std::size_t threads : thread_counts) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);  // nested phases share the pool
    Stopwatch watch("bench.sweep_seconds");
    const auto results = SweepDriver(&pool).run(cells);
    const double seconds = watch.stop();
    const std::string fp = fingerprint(results);
    if (reference.empty()) {
      reference = fp;
      serial_seconds = seconds;
    }
    table.add_row({std::to_string(threads), fmt(seconds, 2),
                   fmt(serial_seconds / seconds, 2),
                   fp == reference ? "yes" : "NO"});
    if (fp != reference) {
      std::printf("DETERMINISM VIOLATION at %zu threads\n", threads);
      return 1;
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nresults byte-identical at every thread count; telemetry in "
              "telemetry_runtime_scaling.json\n");
  return 0;
}
