// Table 2 — workload types.
//
// Regenerates the four synthetic estates and prints their summary next to
// the paper's reported values.

#include <cstdio>

#include "analysis/workload_report.h"
#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Table 2", "Workload Types");
  const auto fleets = bench::make_fleets(argc, argv);

  struct PaperRow {
    const char* industry;
    int servers;
    double util_pct;
  };
  const PaperRow paper[] = {{"Banking", 816, 5},
                            {"Airlines", 445, 1},
                            {"Natural Resources", 1390, 12},
                            {"Beverage", 722, 6}};

  TextTable table({"Name", "Industry", "# Servers (paper)", "# Servers (ours)",
                   "CPU Util % (paper)", "CPU Util % (ours)", "Web fraction"});
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    const auto summary = summarize_workload(fleets[i]);
    table.add_row({summary.name, summary.industry,
                   std::to_string(paper[i].servers),
                   std::to_string(summary.servers),
                   fmt(paper[i].util_pct, 0),
                   fmt(summary.avg_cpu_util * 100.0, 1),
                   fmt(summary.web_fraction, 2)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\npaper: web-based share ordering A > D > B > C; traces are 30 days\n"
      "of hourly averages per server (June-November 2012 engagements).\n");
  return 0;
}
