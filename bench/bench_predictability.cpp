// Section 8's deciding axis — "Highly bursty and predictable workloads
// ... can benefit from dynamic consolidation."
//
// Quantifies both axes per data center: burstiness (CoV, from Fig 3) and
// predictability (daily autocorrelation, diurnal strength, and the
// seasonal-max predictor's hit rate over the evaluation window), then
// lines them up against the dynamic-consolidation outcome of Fig 7.

#include <cstdio>

#include "analysis/burstiness.h"
#include "analysis/seasonality.h"
#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Burstiness x predictability (Section 8)",
                      "who should consolidate dynamically?");
  const auto fleets = bench::make_fleets(argc, argv);
  const auto settings = bench::baseline_settings();

  TextTable table({"workload", "CoV>=1 (bursty)", "daily ACF",
                   "diurnal strength", "predictor hit rate",
                   "mean miss shortfall", "Fig 7 verdict"});
  const char* verdict[] = {
      "power winner (+contention)", "dynamic loses",
      "all schemes alike", "power winner (+contention)"};
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    const auto& dc = fleets[i];
    const auto cov = burstiness(dc, Resource::kCpu, 1);
    const auto fleet = fleet_predictability(dc, settings.eval_begin(),
                                            settings.eval_hours,
                                            settings.interval_hours);
    table.add_row({dc.industry, fmt_pct(heavy_tailed_fraction(cov)),
                   fmt(fleet.mean_daily_acf, 2),
                   fmt(fleet.mean_diurnal_strength, 2),
                   fmt_pct(fleet.mean_hit_rate),
                   fmt_pct(fleet.mean_miss_shortfall, 0), verdict[i]});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nburstiness creates the savings opportunity; predictability decides\n"
      "whether dynamic consolidation can cash it in without contention.\n"
      "Banking/Beverage are bursty AND mostly predictable (strong diurnal\n"
      "cycle) — they win on power; their misses are the contention hours of\n"
      "Fig 8.\n");
  return 0;
}
