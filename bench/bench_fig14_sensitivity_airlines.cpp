// Figure 14 — sensitivity of Dynamic consolidation to the utilization
// bound, Airlines workload.

#include "sensitivity_common.h"

int main(int argc, char** argv) {
  return vmcw::bench::run_sensitivity_bench(
      "Figure 14", "Airlines",
      "Dynamic only reaches Stochastic's footprint at U=1.00 (no migration\n"
      "reservation at all): the memory-bound estate leaves nothing for\n"
      "fine-grained sizing to reclaim.",
      argc, argv);
}
