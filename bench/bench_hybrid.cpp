// Extension — hybrid consolidation (the paper's Section 8 recommendation
// operationalized): dynamic consolidation only for the servers that are
// bursty AND predictable (Bobroff-style candidates), stochastic
// semi-static for everyone else.
//
// Compares space/power/contention/SLA exposure of the four strategies per
// data center. The hypothesis from the paper's observations: hybrid keeps
// most of dynamic's power savings while shedding most of its contention
// and migration churn.

#include <cstdio>

#include "common.h"
#include "core/emulator.h"
#include "core/hybrid.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Extension — hybrid consolidation",
                      "dynamic for candidates only (25% of VMs)");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 0;

  for (const auto& preset : all_workload_specs()) {
    const auto spec =
        servers > 0 ? scaled_down(preset, servers, preset.hours) : preset;
    const auto dc = generate_datacenter(spec, kStudySeed);
    const auto vms = to_vm_workloads(dc);
    const auto settings = bench::baseline_settings();
    const auto study = run_study(dc, settings);

    const auto hybrid = plan_hybrid(vms, settings, 0.25);
    if (!hybrid) continue;
    const auto hybrid_report =
        emulate(vms, hybrid->per_interval, settings, /*power_off=*/true);

    std::printf("\n%s (%zu servers)\n", dc.industry.c_str(),
                dc.servers.size());
    TextTable table({"strategy", "hosts", "energy (kWh)", "contention time",
                     "SLA VM-hours", "migrations"});
    for (Algorithm a : {Algorithm::kSemiStatic, Algorithm::kStochastic,
                        Algorithm::kDynamic}) {
      const auto& r = study.get(a);
      table.add_row({to_string(a), std::to_string(r.provisioned_hosts),
                     fmt(r.emulation.energy_wh / 1000.0, 0),
                     fmt_pct(r.emulation.contention_time_fraction()),
                     std::to_string(r.emulation.total_vm_contention_hours),
                     std::to_string(r.total_migrations)});
    }
    table.add_row({"Hybrid (25%)",
                   std::to_string(hybrid->provisioned_hosts()),
                   fmt(hybrid_report.energy_wh / 1000.0, 0),
                   fmt_pct(hybrid_report.contention_time_fraction()),
                   std::to_string(hybrid_report.total_vm_contention_hours),
                   std::to_string(hybrid->total_migrations)});
    std::printf("%s", table.str().c_str());
  }
  std::printf(
      "\nthe candidate filter concentrates live migration where it pays:\n"
      "most of dynamic consolidation's power savings at a fraction of its\n"
      "migrations and SLA exposure — the per-workload recommendation of\n"
      "Section 8 applied per server.\n");
  return 0;
}
