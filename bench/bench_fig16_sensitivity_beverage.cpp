// Figure 16 — sensitivity of Dynamic consolidation to the utilization
// bound, Beverage workload.

#include "sensitivity_common.h"

int main(int argc, char** argv) {
  return vmcw::bench::run_sensitivity_bench(
      "Figure 16", "Beverage",
      "same trend as Banking: the crossover against Stochastic sits in the\n"
      "0.80-0.90 range and the reservation dominates the outcome.",
      argc, argv);
}
