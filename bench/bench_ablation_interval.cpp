// Ablation (Section 7, "Enabling Shorter Consolidation Intervals") — how
// the dynamic consolidation interval length trades footprint, power,
// migration churn and contention.
//
// The paper fixes 2 hours as "a practical number based on the time taken
// by live migration today"; faster migration would enable shorter
// intervals and finer consolidation. This sweep quantifies what each
// interval length buys on the Banking estate.

#include <cstdio>

#include "common.h"
#include "core/dynamic.h"
#include "core/migration_scheduler.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Ablation — consolidation interval",
                      "Banking, dynamic consolidation at 1/2/4/8/12h");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 400;
  const auto spec = scaled_down(banking_spec(), servers, kHoursPerMonth);
  const Datacenter dc = generate_datacenter(spec, kStudySeed);
  std::printf("workload: %s (%zu servers)\n\n", dc.industry.c_str(),
              dc.servers.size());

  const auto vms = to_vm_workloads(dc);
  TextTable table({"interval", "intervals", "hosts", "power (norm. to 2h)",
                   "migrations/interval", "contention time",
                   "worst exec makespan", "infeasible intervals"});
  double power_2h = 0;
  std::vector<std::vector<std::string>> rows;
  for (std::size_t hours : {1u, 2u, 4u, 8u, 12u}) {
    StudySettings settings = bench::baseline_settings();
    settings.interval_hours = hours;
    const auto study = run_study(dc, settings);
    const auto& dyn = study.get(Algorithm::kDynamic);
    if (hours == 2) power_2h = dyn.power_cost;

    // Execution step: can the migrations of each interval actually finish
    // inside it? (2 concurrent migrations per host, 1 GbE, pre-copy.)
    const auto plan = plan_dynamic(vms, settings);
    ExecutionFeasibility feasibility;
    if (plan)
      feasibility = execution_feasibility(plan->per_interval, vms,
                                          settings.eval_begin(),
                                          settings.interval_hours,
                                          MigrationConfig{});
    rows.push_back(
        {std::to_string(hours) + "h", std::to_string(settings.intervals()),
         std::to_string(dyn.provisioned_hosts), fmt(dyn.power_cost, 1),
         fmt(static_cast<double>(dyn.total_migrations) /
                 static_cast<double>(settings.intervals()),
             1),
         fmt_pct(dyn.emulation.contention_time_fraction()),
         fmt(feasibility.worst_makespan_s / 60.0, 1) + " min (" +
             fmt_pct(feasibility.worst_utilization) + " of interval)",
         std::to_string(feasibility.infeasible_intervals)});
  }
  for (auto& row : rows) {
    row[3] = fmt(std::stod(row[3]) / power_2h, 3);
    table.add_row(row);
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nshorter intervals track demand more closely (lower power) at the\n"
      "cost of proportionally more migration time per interval — the\n"
      "execution-makespan column is the paper's Section 7 argument for 2h\n"
      "as the practical floor with today's live migration.\n");
  return 0;
}
