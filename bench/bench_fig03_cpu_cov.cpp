// Figure 3 — CDF of coefficient of variation for CPU demand.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 3",
                      "CDF of Coefficient of Variability for CPU");
  const auto fleets = bench::make_fleets(argc, argv);
  const double thresholds[] = {0.5, 1.0, 2.0};
  bench::print_burstiness_figure(fleets, Resource::kCpu, /*plot_cov=*/true,
                                 thresholds);

  std::printf("\nheavy-tailed servers (CoV >= 1, 1h windows):\n");
  TextTable table({"workload", "measured", "paper"});
  const char* paper[] = {">50%", "~30%", "~15%", "~Banking-like"};
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    const auto result = burstiness(fleets[i], Resource::kCpu, 1);
    table.add_row({fleets[i].industry, fmt_pct(heavy_tailed_fraction(result)),
                   paper[i]});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}
