// Figure 7 — infrastructure cost comparison: space & hardware cost and
// power cost of the three consolidation approaches, normalized to vanilla
// Semi-Static, for all four data centers.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 7", "Infrastructure Cost Comparison "
                                  "(normalized to vanilla Semi-Static)");
  const auto fleets = bench::make_fleets(argc, argv);
  const auto studies = bench::run_all_studies(fleets);

  std::printf("\n(a) space and hardware cost\n");
  TextTable space({"workload", "Semi-Static", "Stochastic", "Dynamic",
                   "hosts (SS/St/Dy)"});
  for (const auto& study : studies) {
    space.add_row(
        {study.workload,
         fmt(study.normalized_space_cost(Algorithm::kSemiStatic), 3),
         fmt(study.normalized_space_cost(Algorithm::kStochastic), 3),
         fmt(study.normalized_space_cost(Algorithm::kDynamic), 3),
         std::to_string(study.get(Algorithm::kSemiStatic).provisioned_hosts) +
             "/" +
             std::to_string(study.get(Algorithm::kStochastic).provisioned_hosts) +
             "/" +
             std::to_string(study.get(Algorithm::kDynamic).provisioned_hosts)});
  }
  std::printf("%s", space.str().c_str());

  std::printf("\n(b) power cost\n");
  TextTable power({"workload", "Semi-Static", "Stochastic", "Dynamic"});
  for (const auto& study : studies) {
    power.add_row(
        {study.workload,
         fmt(study.normalized_power_cost(Algorithm::kSemiStatic), 3),
         fmt(study.normalized_power_cost(Algorithm::kStochastic), 3),
         fmt(study.normalized_power_cost(Algorithm::kDynamic), 3)});
  }
  std::printf("%s", power.str().c_str());

  std::printf("\nmigrations per interval (Dynamic):\n");
  TextTable mig({"workload", "total", "mean/interval", "% of VMs/interval"});
  for (std::size_t i = 0; i < studies.size(); ++i) {
    const auto& dyn = studies[i].get(Algorithm::kDynamic);
    const double per_interval =
        static_cast<double>(dyn.total_migrations) /
        static_cast<double>(studies[i].settings.intervals());
    mig.add_row({studies[i].workload, std::to_string(dyn.total_migrations),
                 fmt(per_interval, 1),
                 fmt_pct(per_interval /
                         static_cast<double>(fleets[i].servers.size()))});
  }
  std::printf("%s", mig.str().c_str());

  std::printf(
      "\npaper: Stochastic beats Dynamic on space cost everywhere (the 20%%\n"
      "migration reservation erases fine-grained sizing gains); Dynamic\n"
      "beats vanilla on space for 3 of 4 workloads; on power, Dynamic cuts\n"
      "~50%% for Banking/Beverage but is muted for the memory-bound\n"
      "Airlines/Natural Resources. [29] reports >25%% of VMs migrating per\n"
      "interval.\n");
  return 0;
}
