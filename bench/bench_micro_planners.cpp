// Micro-benchmarks (google-benchmark) for the planning/emulation kernels:
// trace generation, FFD packing, PCP packing, dynamic planning, replay.
//
// These quantify the cost of consolidation planning itself — the tooling
// the paper's team ran inside engagements — and keep regressions visible.

#include <benchmark/benchmark.h>

#include "core/dynamic.h"
#include "core/emulator.h"
#include "core/hybrid.h"
#include "core/migration_scheduler.h"
#include "core/pcp.h"
#include "core/planners.h"
#include "trace/generator.h"
#include "trace/presets.h"

namespace vmcw {
namespace {

StudySettings bench_settings() {
  StudySettings s;
  s.history_hours = 384;
  s.eval_hours = 336;
  return s;
}

const std::vector<VmWorkload>& fleet(int servers) {
  static std::map<int, std::vector<VmWorkload>> cache;
  auto it = cache.find(servers);
  if (it == cache.end()) {
    const auto spec = scaled_down(banking_spec(), servers, kHoursPerMonth);
    it = cache.emplace(servers,
                       to_vm_workloads(generate_datacenter(spec, kStudySeed)))
             .first;
  }
  return it->second;
}

void BM_GenerateDatacenter(benchmark::State& state) {
  const auto spec = scaled_down(banking_spec(),
                                static_cast<int>(state.range(0)),
                                kHoursPerMonth);
  for (auto _ : state) {
    auto dc = generate_datacenter(spec, kStudySeed);
    benchmark::DoNotOptimize(dc.servers.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateDatacenter)->Arg(100)->Arg(400)->Arg(816);

void BM_SemiStaticPlan(benchmark::State& state) {
  const auto& vms = fleet(static_cast<int>(state.range(0)));
  const auto settings = bench_settings();
  for (auto _ : state) {
    auto plan = plan_semi_static(vms, settings);
    benchmark::DoNotOptimize(plan->hosts_used);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SemiStaticPlan)->Arg(100)->Arg(400)->Arg(816);

void BM_StochasticPlan(benchmark::State& state) {
  const auto& vms = fleet(static_cast<int>(state.range(0)));
  const auto settings = bench_settings();
  for (auto _ : state) {
    auto plan = plan_stochastic(vms, settings);
    benchmark::DoNotOptimize(plan->hosts_used);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StochasticPlan)->Arg(100)->Arg(400)->Arg(816);

void BM_DynamicPlan(benchmark::State& state) {
  const auto& vms = fleet(static_cast<int>(state.range(0)));
  const auto settings = bench_settings();
  for (auto _ : state) {
    auto plan = plan_dynamic(vms, settings);
    benchmark::DoNotOptimize(plan->total_migrations);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DynamicPlan)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_Emulate(benchmark::State& state) {
  const auto& vms = fleet(static_cast<int>(state.range(0)));
  const auto settings = bench_settings();
  const auto plan = plan_dynamic(vms, settings);
  for (auto _ : state) {
    auto report = emulate(vms, plan->per_interval, settings, true);
    benchmark::DoNotOptimize(report.energy_wh);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Emulate)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_HybridPlan(benchmark::State& state) {
  const auto& vms = fleet(static_cast<int>(state.range(0)));
  const auto settings = bench_settings();
  for (auto _ : state) {
    auto plan = plan_hybrid(vms, settings, 0.25);
    benchmark::DoNotOptimize(plan->provisioned_hosts());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HybridPlan)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_MigrationScheduling(benchmark::State& state) {
  const auto& vms = fleet(static_cast<int>(state.range(0)));
  const auto settings = bench_settings();
  const auto plan = plan_dynamic(vms, settings);
  for (auto _ : state) {
    const auto feasibility = execution_feasibility(
        plan->per_interval, vms, settings.eval_begin(),
        settings.interval_hours, MigrationConfig{});
    benchmark::DoNotOptimize(feasibility.worst_makespan_s);
  }
}
BENCHMARK(BM_MigrationScheduling)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_MakeStochasticItems(benchmark::State& state) {
  const auto& vms = fleet(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto items = make_stochastic_items(vms, 0, 384);
    benchmark::DoNotOptimize(items.size());
  }
}
BENCHMARK(BM_MakeStochasticItems)->Arg(100)->Arg(400);

}  // namespace
}  // namespace vmcw

BENCHMARK_MAIN();
