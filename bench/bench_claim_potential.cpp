// Sections 1.1 / 1.3 — "the case for dynamic VM consolidation", revisited.
//
// The naive argument (Fig 1): servers average <5% CPU but peak >50%, so
// sizing at the average instead of the peak should cut infrastructure by
// ~10x. The paper's correction: memory — the resource that actually fills
// consolidated hosts — is nearly flat, and dynamic consolidation must
// reserve ~20% for live migration, shrinking the realizable gain to ~1.5x.
// This bench computes all three numbers per data center.

#include <cstdio>

#include "common.h"
#include "core/planners.h"
#include "core/dynamic.h"
#include "util/stats.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Sections 1.1/1.3",
                      "the 10x promise vs the ~1.5x reality");
  const auto fleets = bench::make_fleets(argc, argv);
  const auto settings = bench::baseline_settings();

  TextTable table({"workload", "CPU peak/avg (naive promise)",
                   "memory peak/avg", "static/dynamic hosts (U=0.8)",
                   "static/dynamic hosts (U=1.0)"});
  for (const auto& dc : fleets) {
    double cpu_peak = 0, cpu_avg = 0, mem_peak = 0, mem_avg = 0;
    for (const auto& s : dc.servers) {
      cpu_peak += s.cpu_util.peak() * s.spec.cpu_rpe2;
      cpu_avg += s.cpu_util.mean() * s.spec.cpu_rpe2;
      mem_peak += s.mem_mb.peak();
      mem_avg += s.mem_mb.mean();
    }

    const auto vms = to_vm_workloads(dc);
    const auto semi = plan_semi_static(vms, settings);
    StudySettings open = settings;
    open.dynamic_utilization_bound = 1.0;
    const auto dyn_08 = plan_dynamic(vms, settings);
    const auto dyn_10 = plan_dynamic(vms, open);
    if (!semi || !dyn_08 || !dyn_10) continue;

    table.add_row(
        {dc.industry, fmt(cpu_peak / cpu_avg, 1) + "x",
         fmt(mem_peak / mem_avg, 2) + "x",
         fmt(static_cast<double>(semi->hosts_used) /
                 static_cast<double>(dyn_08->max_active_hosts),
             2) + "x",
         fmt(static_cast<double>(semi->hosts_used) /
                 static_cast<double>(dyn_10->max_active_hosts),
             2) + "x"});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\npaper (Section 1.3): the two observations — memory is an order of\n"
      "magnitude less bursty than CPU, and memory is the binding resource —\n"
      "reduce dynamic consolidation's potential from the naive 10x to a\n"
      "modest ~1.5x, before the 20%% migration reservation takes its cut.\n");
  return 0;
}
