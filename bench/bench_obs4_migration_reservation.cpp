// Section 4.3 / Observation 4 — how much of a host must be reserved for
// live migration to stay reliable.
//
// Sweeps source-host CPU utilization (and memory pressure) through the
// analytic pre-copy model and prints migration duration, downtime and the
// reliability verdict, then derives the utilization bound — the basis for
// the paper's 20% reservation thumb rule (VMware recommends 30%).

#include <cstdio>

#include "common.h"
#include "migration/precopy.h"
#include "migration/reservation_study.h"

using namespace vmcw;

int main() {
  bench::print_header("Observation 4 (Section 4.3)",
                      "resources reserved for reliable live migration");

  ReservationStudyConfig config;
  config.utilization_step = 0.05;

  std::printf("\nCPU sweep (4 GB VM, 1 GbE, memory committed 50%%):\n");
  TextTable cpu_table({"host CPU util", "duration (s)", "downtime (ms)",
                       "rounds", "converged", "reliable"});
  for (const auto& p : sweep_cpu_utilization(config)) {
    cpu_table.add_row({fmt_pct(p.host_cpu_utilization, 0),
                       fmt(p.migration.duration_s, 1),
                       fmt(p.migration.downtime_ms, 0),
                       std::to_string(p.migration.rounds),
                       p.migration.converged ? "yes" : "no",
                       p.reliable ? "yes" : "NO"});
  }
  std::printf("%s", cpu_table.str().c_str());

  std::printf("\nmemory sweep (host CPU 50%%):\n");
  TextTable mem_table({"host mem committed", "duration (s)", "downtime (ms)",
                       "reliable"});
  for (const auto& p : sweep_mem_utilization(config)) {
    mem_table.add_row({fmt_pct(p.host_mem_utilization, 0),
                       fmt(p.migration.duration_s, 1),
                       fmt(p.migration.downtime_ms, 0),
                       p.reliable ? "yes" : "NO"});
  }
  std::printf("%s", mem_table.str().c_str());

  ReservationStudyConfig fine = config;
  fine.utilization_step = 0.01;
  const double bound = max_reliable_cpu_utilization(fine);
  std::printf(
      "\nderived utilization bound: %.0f%% CPU (=> reserve %.0f%% for "
      "migration)\n",
      bound * 100.0, (1.0 - bound) * 100.0);
  std::printf(
      "paper: reliable below ~80%% CPU / ~85%% committed memory (ESXi 4.1);\n"
      "earlier studies say 75%% [29]; Nelson et al. reserve 30%%; the paper\n"
      "adopts a pragmatic 20%% reservation (Table 3).\n");

  std::printf("\nClark et al. (NSDI'05) reference point on an idle host:\n");
  const auto idle = simulate_precopy_at_load(MigrationConfig{}, 0.2, 0.5);
  std::printf(
      "  migration %.0f s, downtime %.0f ms, %d pre-copy rounds "
      "(paper cites 62 s / 210 ms for SpecWeb).\n",
      idle.duration_s, idle.downtime_ms, idle.rounds);
  return 0;
}
