// Figure 2 — CDF of peak-to-average ratio for CPU, per data center, at
// consolidation windows of 1, 2 and 4 hours.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 2",
                      "CDF of Peak-to-Average Ratio for CPU (windows 1/2/4h)");
  const auto fleets = bench::make_fleets(argc, argv);
  const double thresholds[] = {2.0, 5.0, 10.0};
  bench::print_burstiness_figure(fleets, Resource::kCpu, /*plot_cov=*/false,
                                 thresholds);
  std::printf(
      "\npaper: Banking — >50%% of servers exceed ratio 5 at 1-2h windows;\n"
      "ratio >10 for 30%%/15%%/5%% of servers at 1/2/4h. Airlines and\n"
      "Natural Resources — >50%% exceed ratio 2. Beverage resembles Banking\n"
      "with a weaker window effect. (Observation 1.)\n");
  return 0;
}
