// Ablation — demand-predictor design for dynamic consolidation.
//
// Sweeps the seasonal-max predictor's lookback horizon and CPU safety
// margin, reporting the dynamic footprint and the contention that
// prediction misses cause. This quantifies the prediction/provisioning
// trade-off behind the paper's "highly bursty and *predictable* workloads
// can benefit from dynamic consolidation" conclusion.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Ablation — demand predictor",
                      "lookback x safety margin, Banking, dynamic");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 400;
  const auto spec = scaled_down(banking_spec(), servers, kHoursPerMonth);
  const Datacenter dc = generate_datacenter(spec, kStudySeed);
  std::printf("workload: %s (%zu servers)\n\n", dc.industry.c_str(),
              dc.servers.size());

  TextTable table({"lookback (days)", "cpu margin", "hosts",
                   "migrations/interval", "contention time",
                   "cpu contention events"});
  for (int lookback : {1, 3, 7, 14}) {
    for (double margin : {1.0, 1.1, 1.25}) {
      StudySettings settings = bench::baseline_settings();
      settings.predictor.lookback_days = lookback;
      settings.predictor.cpu_safety_margin = margin;
      const auto study = run_study(dc, settings);
      const auto& dyn = study.get(Algorithm::kDynamic);
      table.add_row(
          {std::to_string(lookback), fmt(margin, 2),
           std::to_string(dyn.provisioned_hosts),
           fmt(static_cast<double>(dyn.total_migrations) /
                   static_cast<double>(settings.intervals()),
               1),
           fmt_pct(dyn.emulation.contention_time_fraction()),
           std::to_string(dyn.emulation.cpu_contention_samples.size())});
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nshort lookbacks miss weekly seasonality (smaller footprint, more\n"
      "contention); longer lookbacks and fatter margins buy safety with\n"
      "hosts. The baseline (7 days, 1.10) keeps Banking's contention at\n"
      "the Fig 8 level without forfeiting dynamic consolidation's gains.\n");
  return 0;
}
