// Ingestion throughput bench: N collectors against one IngestServer over
// a real Unix-domain socket.
//
// Generates a deterministic churn stream, partitions it across in-process
// CollectorClients (real sockets, real framing, real acks — no chaos),
// and times the whole delivery into a live daemon. The .dat artifact
// carries only order-independent structural counts (frames, ticks,
// collectors): decision *totals* depend on socket arrival order in serve
// mode, so they stay out of the determinism-checked section. Wall-clock
// numbers go to the BENCH_ingest_throughput.json sidecar for the perf
// gate.
//
//   bench_ingest_throughput [vms] [ticks] [collectors]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common.h"
#include "core/study.h"
#include "service/churn.h"
#include "service/collector.h"
#include "service/daemon.h"
#include "service/ingest.h"

using namespace vmcw;
using namespace vmcw::service;

int main(int argc, char** argv) {
  const bench::WallTimer total_timer;
  bench::print_header("Ingest throughput",
                      "Multi-collector socket delivery into the WAL");

  ChurnOptions churn;
  churn.initial_vms = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1]))
                               : 4000;
  churn.ticks = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;
  const std::size_t collectors =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 4;
  churn.agents = 16;
  churn.apps = 12;
  churn.arrivals_per_tick = static_cast<double>(churn.initial_vms) * 0.002;
  churn.departure_prob = 0.001;
  churn.mean_host_fraction = 0.45;
  churn.blackout_prob = 0.0;
  churn.seed = kStudySeed;

  ControllerConfig config;
  const auto frames = generate_churn(churn, config);
  const auto parts = partition_stream(frames, collectors, churn.agents);
  std::size_t to_deliver = 0;
  for (const auto& part : parts) to_deliver += part.size();
  std::printf("churn: %zu frames across %zu collectors (%zu messages)\n\n",
              frames.size(), collectors, to_deliver);

  // Socket in the temp dir (sun_path is 108 bytes; build trees run long),
  // WAL artifacts next to the other bench outputs.
  const std::string sock =
      (std::filesystem::temp_directory_path() / "bench_ingest.sock").string();
  Daemon::Options daemon_options;
  daemon_options.wal_path = "bench_ingest_throughput.wal";
  daemon_options.decisions_path = "bench_ingest_throughput.decisions";
  daemon_options.durable = false;  // measure the pipeline, not fdatasync
  Daemon daemon(config, daemon_options);
  const auto opened = daemon.open();

  IngestOptions ingest_options;
  ingest_options.unix_path = sock;
  ingest_options.expected_shutdowns = collectors;
  IngestServer server(daemon, ingest_options);
  server.start(opened.wal_frames);

  const bench::WallTimer run_timer;
  std::vector<std::thread> clients;
  clients.reserve(collectors);
  for (std::size_t i = 0; i < collectors; ++i) {
    clients.emplace_back([&, i] {
      CollectorOptions options;
      options.unix_path = sock;
      options.peer = "bench-collector-" + std::to_string(i);
      options.fleet_hash = fleet_config_hash(config);
      options.window = 64;
      CollectorClient client(options);
      client.run(parts[i]);
    });
  }
  for (auto& t : clients) t.join();
  server.wait();
  const double run_seconds = run_timer.seconds();
  daemon.close();

  const IngestStats in = server.stats();
  const DaemonStats& stats = daemon.stats();
  const double rate = run_seconds > 0
                          ? static_cast<double>(in.messages_ingested) /
                                run_seconds
                          : 0;

  // Deterministic section: structural counts only. Decision totals vary
  // with socket arrival order (the WAL's replay identity is the contract
  // there), so they are reported below but never determinism-checked.
  std::string dat;
  char line[160];
  std::snprintf(line, sizeof(line), "frames            %zu\n", to_deliver);
  dat += line;
  std::snprintf(line, sizeof(line), "ticks             %zu\n", churn.ticks);
  dat += line;
  std::snprintf(line, sizeof(line), "collectors        %zu\n", collectors);
  dat += line;
  std::snprintf(line, sizeof(line), "shutdowns         %zu\n",
                in.shutdowns_seen);
  dat += line;
  std::printf("%s", dat.c_str());
  bench::write_dat(dat);

  std::printf("\ningested %zu messages in %.3f s, %.0f frames/sec\n",
              in.messages_ingested, run_seconds, rate);
  std::printf("connections %zu, rejects %zu, backpressure stalls %zu\n",
              in.connections_accepted, in.rejects_sent,
              in.backpressure_stalls);
  std::printf("decisions: %zu batches, %zu admits, %zu migrations\n",
              stats.batches, stats.admits, stats.migrations);

  bench::write_bench_json(
      "ingest_throughput", total_timer.seconds(), "frames_per_sec", rate,
      {{"frames", static_cast<double>(to_deliver)},
       {"ticks", static_cast<double>(churn.ticks)},
       {"collectors", static_cast<double>(collectors)},
       {"batches", static_cast<double>(stats.batches)}});

  if (in.messages_ingested != to_deliver || in.shutdowns_seen != collectors) {
    std::printf("FAIL: delivery incomplete (%zu of %zu messages)\n",
                in.messages_ingested, to_deliver);
    return 1;
  }
  std::printf("telemetry sidecar: telemetry_ingest_throughput.json\n");
  return 0;
}
