// Figure 6 — ratio of aggregate CPU demand (RPE2) to aggregate memory
// demand (GB), per 2-hour consolidation interval over the last two weeks,
// compared against the HS23 Elite blade's ratio of 160.

#include <cstdio>

#include "analysis/resource_ratio.h"
#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 6",
                      "Ratio of CPU to Memory usage vs HS23 blade (160)");
  const auto fleets = bench::make_fleets(argc, argv);
  const auto settings = bench::baseline_settings();

  for (std::size_t i = 0; i < fleets.size(); ++i) {
    const auto& dc = fleets[i];
    std::printf("\n%s\n", bench::subfig_label(dc, i).c_str());
    const auto cdf = resource_ratio_cdf(dc, settings.interval_hours,
                                        settings.eval_hours);
    const std::vector<std::string> names{"RPE2/GB"};
    const std::vector<EmpiricalCdf> cdfs{cdf};
    const std::vector<double> quantiles{0.05, 0.10, 0.25, 0.50,
                                        0.75, 0.90, 0.95, 1.00};
    std::printf("%s", format_cdf_table(names, cdfs, quantiles).c_str());
  }

  std::printf("\nmemory-constrained intervals (ratio < %.0f):\n",
              kHs23Rpe2PerGb);
  TextTable table({"workload", "measured", "paper"});
  const char* paper[] = {"~30% memory-intensive", "100% (entire duration)",
                         "100% (>90% quoted)", ">90%"};
  for (const auto& dc : fleets) {
    table.add_row({dc.industry,
                   fmt_pct(memory_constrained_fraction(
                       dc, settings.interval_hours, settings.eval_hours)),
                   paper[&dc - fleets.data()]});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\npaper (Observation 3): consolidated data centers are constrained\n"
      "by memory more often than CPU, even on extended-memory blades;\n"
      "Banking is the only CPU-intensive estate, Airlines the most\n"
      "memory-intensive (ratio below 50 throughout).\n");
  return 0;
}
