// Figure 9 — distribution of CPU contention magnitude under Dynamic
// consolidation: additional demand on a contended host as a fraction of the
// host's capacity.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 9", "Distribution of CPU Contention (Dynamic). "
                                  "Absence of line = no contention");
  const auto fleets = bench::make_fleets(argc, argv);
  const auto studies = bench::run_all_studies(fleets);

  for (std::size_t i = 0; i < studies.size(); ++i) {
    const auto& samples =
        studies[i].get(Algorithm::kDynamic).emulation.cpu_contention_samples;
    std::printf("\n%s: %zu contended host-hours\n",
                bench::subfig_label(fleets[i], i).c_str(), samples.size());
    if (samples.empty()) {
      std::printf("  (no contention — no line in the figure)\n");
      continue;
    }
    const EmpiricalCdf cdf{std::vector<double>(samples.begin(), samples.end())};
    const std::vector<std::string> names{"excess demand (x capacity)"};
    const std::vector<EmpiricalCdf> cdfs{cdf};
    const std::vector<double> quantiles{0.25, 0.50, 0.75, 0.90, 1.00};
    std::printf("%s", format_cdf_table(names, cdfs, quantiles).c_str());
  }
  std::printf(
      "\npaper: the highly bursty Banking workload can reach very high\n"
      "contention (CPU is its dominant resource and its CoV is extreme);\n"
      "Airlines has no contention line at all.\n");
  return 0;
}
