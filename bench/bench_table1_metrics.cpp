// Table 1 — list of monitored metrics.
//
// The paper's agent collects per-minute OS metrics; the data warehouse
// stores hourly aggregates, and consolidation planning consumes CPU and
// memory (network/disk enter only as host constraints). This bench prints
// the metric list together with how each one is represented in this
// reproduction.

#include <cstdio>

#include "common.h"
#include "util/table.h"

using namespace vmcw;

int main() {
  bench::print_header("Table 1", "List of monitored metrics");
  TextTable table({"Metric", "Description", "In this reproduction"});
  table.add_row({"% Total Processor Time", "Total Processor Time",
                 "ServerTrace::cpu_util (hourly, fraction of capacity)"});
  table.add_row({"% Priv", "Percent time spent in System mode",
                 "folded into cpu_util (not split by mode)"});
  table.add_row({"% User", "Percent time spent in User mode",
                 "folded into cpu_util (not split by mode)"});
  table.add_row({"Proc Queue Length", "Processor Queue Length",
                 "not modeled (saturation via util ceiling)"});
  table.add_row({"Pages Per Sec", "Pages In Per Second",
                 "migration model's memory-pressure factor"});
  table.add_row({"Memory Committed", "Memory Committed in Bytes (MB)",
                 "ServerTrace::mem_mb (hourly)"});
  table.add_row({"Memory Average", "% of Memory Committed Used",
                 "mem_mb / ServerSpec::memory_mb"});
  table.add_row({"DASD % Free", "% time DAS Device is free",
                 "host constraint only (paper: SAN storage)"});
  table.add_row({"# Log Vol Red", "", "not modeled"});
  table.add_row({"TCP/IP Conn", "Number of TCP/IP Packets transferred",
                 "host link-bandwidth constraint only"});
  table.add_row({"TCP/IP Conn v6", "Number of IPv6 Packets transferred",
                 "host link-bandwidth constraint only"});
  std::printf("%s", table.str().c_str());
  std::printf(
      "\npaper: planning optimizes CPU and memory; network and disk are\n"
      "constraints used to pick hosts with sufficient link bandwidth.\n");
  return 0;
}
