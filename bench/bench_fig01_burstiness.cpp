// Figure 1 — "Burstiness in Server Workloads".
//
// The paper picks two physical servers at random from the Banking data
// center: both average below 5% CPU utilization yet peak above 50%. This
// bench reproduces that observation on the synthetic Banking estate: it
// finds servers matching the same profile, prints their two-week hourly
// utilization summary and an ASCII strip chart, and reports how common the
// profile is across the fleet.

#include <algorithm>
#include <cstdio>

#include "common.h"
#include "trace/presets.h"
#include "util/stats.h"

using namespace vmcw;

namespace {

void print_strip_chart(const ServerTrace& server, std::size_t begin,
                       std::size_t hours) {
  // One character per 4 hours, two weeks => 84 characters.
  const char* levels = " .:-=+*#%@";
  std::printf("  ");
  for (std::size_t t = begin; t + 4 <= begin + hours; t += 4) {
    double m = 0;
    for (std::size_t i = 0; i < 4; ++i) m = std::max(m, server.cpu_util[t + i]);
    const int bucket = std::min(static_cast<int>(m * 10.0), 9);
    std::putchar(levels[bucket]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Figure 1", "CPU utilization of two servers from the "
                                  "Banking data center (avg <5%, peak >50%)");
  const auto fleets = bench::make_fleets(argc, argv);
  const auto& banking = fleets[0];
  const auto settings = bench::baseline_settings();

  // The paper's profile: average below 5%, peak above 50%.
  std::vector<const ServerTrace*> matching;
  for (const auto& s : banking.servers) {
    const auto eval = s.cpu_util.slice(settings.eval_begin(),
                                       settings.eval_hours);
    if (mean(eval) < 0.05 && peak(eval) > 0.50) matching.push_back(&s);
  }
  std::printf(
      "servers with the Fig 1 profile (avg <5%%, peak >50%%): %zu of %zu "
      "(%.1f%%)\n\n",
      matching.size(), banking.servers.size(),
      100.0 * static_cast<double>(matching.size()) /
          static_cast<double>(banking.servers.size()));

  TextTable table({"server", "class", "avg util", "p95 util", "peak util",
                   "peak/avg"});
  const std::size_t count = std::min<std::size_t>(matching.size(), 2);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& s = *matching[i];
    const auto eval = s.cpu_util.slice(settings.eval_begin(),
                                       settings.eval_hours);
    table.add_row({s.id, to_string(s.klass), fmt_pct(mean(eval)),
                   fmt_pct(percentile(eval, 95)), fmt_pct(peak(eval)),
                   fmt(peak_to_average(eval), 1)});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("two-week hourly CPU profile (one char per 4h, ' '=idle "
              "'@'=>90%%):\n");
  for (std::size_t i = 0; i < count; ++i) {
    std::printf("%s\n", matching[i]->id.c_str());
    print_strip_chart(*matching[i], settings.eval_begin(),
                      settings.eval_hours);
  }
  std::printf(
      "\npaper: both sampled servers average <5%% with peaks beyond 50%% — "
      "the headline case for dynamic consolidation.\n");
  return 0;
}
