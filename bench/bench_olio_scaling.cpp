// Section 4.1's Olio experiment — the micro-level mechanism behind
// Observation 2: CPU demand grows super-linearly with throughput while
// memory grows sub-linearly.
//
// The paper drove the Olio web benchmark from 10 to 60 ops/s on a dual-core
// Xeon: CPU rose 0.18 -> 1.42 cores (7.9x) while memory rose only 3x.
// This bench sweeps the calibrated model over the same range.

#include <cstdio>

#include "common.h"
#include "trace/app_model.h"

using namespace vmcw;

int main() {
  bench::print_header("Olio experiment (Section 4.1)",
                      "resource scaling with throughput");
  const AppResourceModel olio;

  TextTable table({"throughput (ops/s)", "CPU (cores)", "CPU scale",
                   "memory scale"});
  const double base_cpu = olio.cpu_for_throughput(10.0);
  const double base_mem = olio.mem_for_throughput(10.0);
  for (double tput = 10.0; tput <= 60.0 + 1e-9; tput += 10.0) {
    table.add_row({fmt(tput, 0), fmt(olio.cpu_for_throughput(tput), 2),
                   fmt(olio.cpu_for_throughput(tput) / base_cpu, 2) + "x",
                   fmt(olio.mem_for_throughput(tput) / base_mem, 2) + "x"});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\npaper: 6x throughput -> CPU 0.18 to 1.42 cores (7.9x) but memory\n"
      "only 3x. The trace generator couples every server's memory series to\n"
      "its CPU series through these exponents (mem ~ cpu^%.2f).\n",
      olio.calibration().mem_exponent / olio.calibration().cpu_exponent);
  return 0;
}
