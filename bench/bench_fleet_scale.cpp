// Fleet-scale packing bench: 1M hosts through streamed estates and
// indexed admission, under a hard memory ceiling.
//
// The paper's estates top out near 3000 servers; this bench packs three
// orders of magnitude more. Two src/scale pillars make that possible on
// one machine: the estate is never materialized — a StreamingEstate
// regenerates trace blocks on demand behind a bounded cache (the full
// fleet's traces would be tens of gigabytes; the cache holds a few
// thousand servers) — and ffd_pack's admission runs on the CapacityIndex,
// so each placement costs O(log hosts) instead of a fleet scan.
//
// The memory ceiling is binding: write_bench_json fails the bench (exit
// non-zero) if peak RSS exceeds it, so a regression that quietly
// re-materializes the fleet or bloats the index cannot land as a "slower
// but green" run.
//
//   bench_fleet_scale [servers] [hours] [peak_rss_ceiling_mb]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "core/binpack.h"
#include "core/constraints.h"
#include "core/settings.h"
#include "scale/streaming_estate.h"
#include "trace/presets.h"

using namespace vmcw;

int main(int argc, char** argv) {
  const bench::WallTimer total_timer;
  bench::print_header("Fleet scale",
                      "1M-host estate: streamed generation + indexed packing");

  const int servers = argc > 1 ? std::atoi(argv[1]) : 1000000;
  const std::size_t hours =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 48;
  const long ceiling_mb = argc > 3 ? std::atol(argv[3]) : 1536;

  WorkloadSpec spec = scaled_down(banking_spec(), servers, hours);
  spec.name = "FS";  // own stream family; fig benches keep theirs

  StreamingEstate::Options options;
  options.block_servers = 4096;
  options.max_resident_servers = 8192;
  StreamingEstate estate(std::move(spec), kStudySeed, options);
  std::printf("estate: %zu servers, %zu apps, %zu trace hours\n",
              estate.server_count(), estate.app_count(), hours);

  // Size every VM at its windowed peak (the semi-static sizing rule) while
  // streaming the fleet through the block cache in index order; only the
  // 16-byte size survives per server.
  const bench::WallTimer stream_timer;
  const std::size_t n = estate.server_count();
  std::vector<ResourceVector> sizes(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ServerTrace& server = estate.server(i);
    ResourceVector peak;
    for (std::size_t h = 0; h < hours; ++h) {
      const ResourceVector d = server.demand_at(h);
      peak.cpu_rpe2 = std::max(peak.cpu_rpe2, d.cpu_rpe2);
      peak.memory_mb = std::max(peak.memory_mb, d.memory_mb);
    }
    sizes[i] = peak;
  }
  const double stream_seconds = stream_timer.seconds();
  std::printf(
      "streamed %llu servers in %zu blocks (%llu hits), resident <= %zu\n",
      static_cast<unsigned long long>(estate.servers_generated()),
      static_cast<std::size_t>(estate.block_misses()),
      static_cast<unsigned long long>(estate.block_hits()),
      options.max_resident_servers);

  const StudySettings settings;
  const HostPool pool = HostPool::uniform(settings.target);
  const ConstraintSet constraints(n);
  const bench::WallTimer pack_timer;
  const auto packed =
      ffd_pack(sizes, pool, settings.dynamic_utilization_bound, constraints);
  const double pack_seconds = pack_timer.seconds();
  if (!packed) {
    std::printf("FAIL: ffd_pack failed on the streamed estate\n");
    return 1;
  }

  // Deterministic section (byte-identical at any VMCW_THREADS).
  std::string dat;
  char line[160];
  std::snprintf(line, sizeof(line), "servers           %zu\n", n);
  dat += line;
  std::snprintf(line, sizeof(line), "apps              %zu\n",
                estate.app_count());
  dat += line;
  std::snprintf(line, sizeof(line), "trace hours       %zu\n", hours);
  dat += line;
  std::snprintf(line, sizeof(line), "hosts used        %zu\n",
                packed->hosts_used);
  dat += line;
  std::snprintf(line, sizeof(line), "consolidation     %.3f vms/host\n",
                packed->hosts_used > 0
                    ? static_cast<double>(n) /
                          static_cast<double>(packed->hosts_used)
                    : 0.0);
  dat += line;
  std::printf("%s", dat.c_str());
  bench::write_dat(dat);

  const double pack_rate =
      pack_seconds > 0 ? static_cast<double>(n) / pack_seconds : 0;
  std::printf("\nstream: %.1f s   pack: %.3f s, %.0f VMs/sec placed\n",
              stream_seconds, pack_seconds, pack_rate);

  const bool ok = bench::write_bench_json(
      "fleet_scale", total_timer.seconds(), "packed_vms_per_sec", pack_rate,
      {{"servers", static_cast<double>(n)},
       {"trace_hours", static_cast<double>(hours)},
       {"hosts_used", static_cast<double>(packed->hosts_used)},
       {"stream_seconds", stream_seconds},
       {"pack_seconds", pack_seconds},
       {"blocks_generated", static_cast<double>(estate.block_misses())}},
      ceiling_mb * 1024);
  if (!ok) {
    std::printf("FAIL: bench sidecar write or memory ceiling violated\n");
    return 1;
  }
  std::printf("telemetry sidecar: telemetry_fleet_scale.json\n");
  return 0;
}
