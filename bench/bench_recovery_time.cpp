// Recovery-time bench: cold full-WAL replay vs snapshot + suffix resume.
//
// Builds one deterministic churn WAL through a live daemon with segment
// rotation and controller snapshots on (full chain retained so the cold
// path still exists), then times the two recovery strategies the daemon
// supports:
//
//   * cold:     replay every frame from ordinal zero
//   * bounded:  load the newest snapshot, replay only the WAL suffix
//
// The .dat artifact carries the structural counts (all deterministic at
// any VMCW_THREADS: the feed is direct, no sockets). Wall-clock numbers go
// to BENCH_recovery_time.json for the perf gate: recovery must stay a
// bounded-suffix cost, not creep back toward full-replay time.
//
//   bench_recovery_time [vms] [ticks]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <variant>
#include <vector>

#include "common.h"
#include "core/study.h"
#include "service/churn.h"
#include "service/daemon.h"
#include "service/telemetry_log.h"

using namespace vmcw;
using namespace vmcw::service;

namespace {

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::WallTimer total_timer;
  bench::print_header("Recovery time",
                      "Snapshot + WAL-suffix resume vs cold full replay");

  ChurnOptions churn;
  churn.initial_vms = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1]))
                               : 2000;
  churn.ticks = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 12;
  churn.agents = 16;
  churn.apps = 12;
  churn.arrivals_per_tick = static_cast<double>(churn.initial_vms) * 0.002;
  churn.departure_prob = 0.001;
  churn.mean_host_fraction = 0.45;
  churn.blackout_prob = 0.0;
  churn.seed = kStudySeed;

  const ControllerConfig config;
  const auto frames = generate_churn(churn, config);
  std::printf("churn: %zu frames over %zu ticks\n\n", frames.size(),
              churn.ticks);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bench_recovery_time")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Daemon::Options options;
  options.wal_path = dir + "/live.wal";
  options.decisions_path = dir + "/live.decisions";
  options.durable = false;  // measure recovery compute, not fdatasync
  options.segment_frames = 512;
  options.snapshot_path = dir + "/ctrl.snap";
  options.snapshot_every_frames = 2048;
  options.retain_segments = true;  // keep the chain: the cold path needs it

  // Build phase: one uninterrupted live run with checkpointing on.
  std::size_t snapshot_frames = 0;
  {
    Daemon daemon(config, options);
    daemon.open();
    for (const Frame& frame : frames) {
      daemon.ingest(frame);
      daemon.maybe_snapshot();
    }
    daemon.close();
    if (daemon.stats().snapshots_written == 0) {
      std::printf("FAIL: no snapshot written (stream too short?)\n");
      return 1;
    }
  }

  // Cold recovery: full replay from ordinal zero.
  const bench::WallTimer cold_timer;
  const DaemonStats cold =
      replay_wal(options.wal_path, dir + "/cold.decisions", config,
                 /*resume=*/false, /*durable=*/false);
  const double cold_seconds = cold_timer.seconds();

  // Bounded recovery: snapshot + suffix, averaged over a few resumes
  // (each open is read-only on the WAL, so they are independent).
  const int kResumes = 3;
  double recovery_seconds = 0;
  std::size_t suffix_frames = 0;
  for (int i = 0; i < kResumes; ++i) {
    Daemon::Options resume_options = options;
    resume_options.resume = true;
    Daemon daemon(config, resume_options);
    const bench::WallTimer timer;
    const auto opened = daemon.open();
    recovery_seconds += timer.seconds();
    daemon.close();
    if (!opened.snapshot_loaded) {
      std::printf("FAIL: resume %d did not load the snapshot\n", i);
      return 1;
    }
    snapshot_frames = opened.snapshot_frames;
    suffix_frames = opened.frames_recovered;
  }
  recovery_seconds /= kResumes;

  std::size_t segments = 0;
  while (std::filesystem::exists(segment_path(options.wal_path, segments + 1)))
    ++segments;
  const double cold_rate =
      cold_seconds > 0 ? static_cast<double>(cold.frames) / cold_seconds : 0;
  const double recovery_rate =
      recovery_seconds > 0
          ? static_cast<double>(frames.size()) / recovery_seconds
          : 0;

  // Deterministic section: structural counts only.
  std::string dat;
  char line[160];
  std::snprintf(line, sizeof(line), "frames            %zu\n", frames.size());
  dat += line;
  std::snprintf(line, sizeof(line), "ticks             %zu\n", churn.ticks);
  dat += line;
  std::snprintf(line, sizeof(line), "segments          %zu\n", segments);
  dat += line;
  std::snprintf(line, sizeof(line), "snapshot_frame    %zu\n",
                snapshot_frames);
  dat += line;
  std::snprintf(line, sizeof(line), "suffix_frames     %zu\n", suffix_frames);
  dat += line;
  std::printf("%s", dat.c_str());
  bench::write_dat(dat);

  std::printf("\ncold replay:       %.1f ms (%.0f frames/sec, %zu frames)\n",
              cold_seconds * 1e3, cold_rate, cold.frames);
  std::printf("snapshot recovery: %.1f ms (%zu suffix frames, %.1fx faster)\n",
              recovery_seconds * 1e3, suffix_frames,
              recovery_seconds > 0 ? cold_seconds / recovery_seconds : 0);

  bench::write_bench_json(
      "recovery_time", total_timer.seconds(), "recovery_frames_per_sec",
      recovery_rate,
      {{"frames", static_cast<double>(frames.size())},
       {"ticks", static_cast<double>(churn.ticks)},
       {"cold_frames_per_sec", cold_rate},
       {"cold_replay_ms", cold_seconds * 1e3},
       {"snapshot_recovery_ms", recovery_seconds * 1e3}});

  if (file_bytes(dir + "/cold.decisions") !=
      file_bytes(options.decisions_path)) {
    std::printf("FAIL: cold replay decisions differ from the live run\n");
    return 1;
  }
  std::printf("cold replay matches the live decision log\n");
  std::printf("telemetry sidecar: telemetry_recovery_time.json\n");
  return 0;
}
