// Table 3 — baseline experimental settings, as configured in StudySettings.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main() {
  bench::print_header("Table 3", "Baseline Experimental Settings");
  const auto s = bench::baseline_settings();

  TextTable table({"Metric", "Value (ours)", "Value (paper)"});
  table.add_row({"Experiment Duration",
                 fmt(static_cast<double>(s.eval_hours) / 24.0, 0) + " days",
                 "14 days"});
  table.add_row({"Dynamic Consolidation Interval",
                 std::to_string(s.interval_hours) + " hours", "2 hours"});
  table.add_row({"Number of Intervals", std::to_string(s.intervals()), "168"});
  table.add_row({"CPU reserved for VMotion",
                 fmt_pct(1.0 - s.dynamic_utilization_bound, 0), "20%"});
  table.add_row({"Memory reserved for VMotion",
                 fmt_pct(1.0 - s.dynamic_utilization_bound, 0), "20%"});
  table.add_row({"Planning history", fmt(s.history_hours / 24.0, 0) + " days",
                 "30-day traces"});
  table.add_row({"Target blade", s.target.model,
                 "IBM HS23 Elite (2s, 128 GB)"});
  table.add_row({"PCP body percentile", fmt(s.body_percentile, 0), "90"});
  table.add_row({"PCP tail", "max", "max"});
  std::printf("%s", table.str().c_str());
  return 0;
}
