// Figure 15 — sensitivity of Dynamic consolidation to the utilization
// bound, Natural Resources workload.

#include "sensitivity_common.h"

int main(int argc, char** argv) {
  return vmcw::bench::run_sensitivity_bench(
      "Figure 15", "Natural Resources",
      "best performing at U~0.90; with 100% of resources available Dynamic\n"
      "improves ~17% over Stochastic.",
      argc, argv);
}
