// Figure 11 — CDF of peak host CPU utilization (uncapped: values above 1
// are overload, correlated with the contention of Figs 8-9).

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 11", "CDF of Peak host CPU Utilization");
  const auto fleets = bench::make_fleets(argc, argv);
  const auto studies = bench::run_all_studies(fleets);

  const Algorithm algos[] = {Algorithm::kSemiStatic, Algorithm::kStochastic,
                             Algorithm::kDynamic};
  for (std::size_t i = 0; i < studies.size(); ++i) {
    std::printf("\n%s\n", bench::subfig_label(fleets[i], i).c_str());
    std::vector<std::string> names;
    std::vector<EmpiricalCdf> cdfs;
    for (Algorithm a : algos) {
      names.push_back(to_string(a));
      cdfs.emplace_back(studies[i].get(a).emulation.host_peak_cpu_util);
    }
    const std::vector<double> quantiles{0.25, 0.50, 0.75, 0.90, 1.00};
    std::printf("%s", format_cdf_table(names, cdfs, quantiles).c_str());
    std::printf("hosts crossing 100%% CPU:");
    for (std::size_t a = 0; a < cdfs.size(); ++a)
      std::printf("  %s %s", names[a].c_str(),
                  fmt_pct(cdfs[a].fraction_above(1.0)).c_str());
    std::printf("\n");
  }
  std::printf(
      "\npaper: the workload/scheme with the highest contention —\n"
      "Banking under Dynamic — also has the highest peak utilization, with\n"
      "~15%% of hosts crossing 100%%; all other variants stay well below.\n");
  return 0;
}
