// Daemon throughput bench: the incremental controller against a large
// churn WAL.
//
// Generates a deterministic churn stream sized to pack a >=10k-host fleet
// (default: 25k VMs at ~0.45 host-fractions each, one tick of mass
// arrival then steady churn), records it to a real FrameLog WAL, then
// drives the controller frame-by-frame exactly as the daemon's replay
// path does — timing every tick. Decision *counts* on stdout and in the
// .dat artifact are deterministic; wall-clock numbers go only to the
// BENCH_daemon_throughput.json sidecar.
//
//   bench_daemon_throughput [vms] [ticks]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <variant>
#include <vector>

#include "common.h"
#include "core/study.h"
#include "service/churn.h"
#include "service/daemon.h"
#include "service/telemetry_log.h"

using namespace vmcw;
using namespace vmcw::service;

namespace {

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::WallTimer total_timer;
  bench::print_header("Daemon throughput",
                      "Incremental controller vs a 10k-host churn WAL");

  ChurnOptions churn;
  churn.initial_vms = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1]))
                               : 25000;
  churn.ticks = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 12;
  churn.agents = 64;
  churn.apps = 12;
  churn.arrivals_per_tick = static_cast<double>(churn.initial_vms) * 0.002;
  churn.departure_prob = 0.001;
  // ~0.45 of a host each under a 0.8 bound: most hosts take one VM, so the
  // fleet the WAL drives has roughly as many hosts as VMs.
  churn.mean_host_fraction = 0.45;
  churn.seed = kStudySeed;

  ControllerConfig config;
  const auto frames = generate_churn(churn, config);
  std::printf("churn: %zu frames, %zu initial VMs, %zu ticks\n\n",
              frames.size(), churn.initial_vms, churn.ticks);

  // Record the stream to a real WAL first (bulk append + one sync), so the
  // bench measures the same artifact the daemon would replay.
  const std::string wal_path = "bench_daemon_throughput.wal";
  const std::string decisions_path = "bench_daemon_throughput.decisions";
  {
    FrameLog wal;
    wal.open(wal_path, fleet_config_hash(config), /*resume=*/false);
    for (const Frame& frame : frames) wal.append(frame, /*sync=*/false);
    wal.sync();
  }
  const WalContents recorded = read_frame_log(wal_path);

  // Drive the controller over the recorded frames, decision log riding
  // along (non-durable: this bench measures compute, not fdatasync).
  IncrementalController controller(config);
  FrameLog decisions;
  decisions.open(decisions_path, fleet_config_hash(config), /*resume=*/false);

  std::size_t ticks = 0, decision_count = 0;
  std::size_t admits = 0, migrations = 0, holds = 0;
  std::vector<double> tick_ms;
  const bench::WallTimer run_timer;
  bench::WallTimer tick_timer;
  for (const Frame& frame : recorded.frames) {
    if (const auto* flush = std::get_if<FlushFrame>(&frame)) {
      const DecisionBatchFrame batch = controller.tick(flush->tick);
      decisions.append(Frame{batch}, /*sync=*/false);
      ++ticks;
      decision_count += batch.decisions.size();
      for (const Decision& d : batch.decisions) {
        if (d.action == DecisionAction::kAdmit) ++admits;
        else if (d.action == DecisionAction::kMigrate) ++migrations;
        else ++holds;
      }
      tick_ms.push_back(tick_timer.seconds() * 1e3);
      tick_timer = bench::WallTimer();
    } else if (!std::holds_alternative<DecisionBatchFrame>(frame)) {
      controller.apply(frame);
    }
  }
  const double run_seconds = run_timer.seconds();
  decisions.sync();
  decisions.close();

  std::sort(tick_ms.begin(), tick_ms.end());
  const double p50 = percentile(tick_ms, 0.50);
  const double p99 = percentile(tick_ms, 0.99);
  const double rate =
      run_seconds > 0 ? static_cast<double>(decision_count) / run_seconds : 0;

  // Deterministic section (byte-identical at any VMCW_THREADS).
  std::string dat;
  char line[160];
  std::snprintf(line, sizeof(line), "frames            %zu\n",
                recorded.frames.size());
  dat += line;
  std::snprintf(line, sizeof(line), "ticks             %zu\n", ticks);
  dat += line;
  std::snprintf(line, sizeof(line), "decisions         %zu\n", decision_count);
  dat += line;
  std::snprintf(line, sizeof(line),
                "  admits %zu  migrations %zu  holds %zu\n", admits,
                migrations, holds);
  dat += line;
  std::snprintf(line, sizeof(line), "resident VMs      %zu\n",
                controller.resident_vms());
  dat += line;
  std::snprintf(line, sizeof(line), "active hosts      %zu\n",
                controller.active_hosts());
  dat += line;
  std::printf("%s", dat.c_str());
  bench::write_dat(dat);

  // Timing section (sidecar only; not determinism-checked).
  std::printf("\ncontroller run: %.3f s, %.0f decisions/sec\n", run_seconds,
              rate);
  std::printf("per-tick latency: p50 %.2f ms, p99 %.2f ms\n", p50, p99);

  bench::write_bench_json(
      "daemon_throughput", total_timer.seconds(), "decisions_per_sec", rate,
      {{"frames", static_cast<double>(recorded.frames.size())},
       {"ticks", static_cast<double>(ticks)},
       {"decisions", static_cast<double>(decision_count)},
       {"active_hosts", static_cast<double>(controller.active_hosts())},
       {"resident_vms", static_cast<double>(controller.resident_vms())},
       {"tick_p50_ms", p50},
       {"tick_p99_ms", p99}});

  if (ticks == 0 || decision_count == 0) {
    std::printf("FAIL: churn WAL produced no decisions\n");
    return 1;
  }
  std::printf("telemetry sidecar: telemetry_daemon_throughput.json\n");
  return 0;
}
