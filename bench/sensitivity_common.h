// Shared implementation for Figures 13-16: servers provisioned by Dynamic
// consolidation as a function of the utilization bound U (1-U of each
// host's CPU and memory is reserved for live migration), with the
// U-independent Semi-Static and Stochastic requirements as reference lines.
//
// The grid runs through the durable SweepDriver: two reference cells plus
// one Dynamic cell per bound, each journaled as it finishes, so a killed
// figure resumes with --resume and recomputes only the missing bounds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common.h"

namespace vmcw::bench {

inline int run_sensitivity_bench(const char* figure,
                                 const char* workload_name,
                                 const char* paper_note, int argc,
                                 char** argv) {
  print_header(figure, "Performance vs utilization bound");
  const BenchOptions opts = parse_options(argc, argv);
  WorkloadSpec spec = workload_spec_by_name(workload_name);
  if (opts.servers > 0) spec = scaled_down(spec, opts.servers, spec.hours);
  std::printf("workload: %s (%d servers)\n\n", spec.industry.c_str(),
              spec.num_servers);

  const std::vector<double> bounds{0.60, 0.65, 0.70, 0.75, 0.80,
                                   0.85, 0.90, 0.95, 1.00};
  // Cells 0-1 are the U-independent references; cell 2+i is Dynamic at
  // bounds[i]. One grid, one journal: a resumed run replays whatever the
  // interrupted one finished.
  std::vector<SweepCell> cells;
  {
    SweepCell cell;
    cell.spec = spec;
    cell.settings = baseline_settings();
    cell.seed = kStudySeed;
    cell.strategy = Strategy::kSemiStatic;
    cells.push_back(cell);
    cell.strategy = Strategy::kStochastic;
    cells.push_back(cell);
    cell.strategy = Strategy::kDynamic;
    for (const double bound : bounds) {
      cell.settings.dynamic_utilization_bound = bound;
      cells.push_back(cell);
    }
  }
  const auto results = SweepDriver().run(cells, sweep_options(opts));
  for (const auto& r : results) {
    if (!r.planned) {
      std::printf("FAIL: cell %zu (%s) did not plan: %s\n", r.index,
                  to_string(r.strategy), to_string(r.status));
      return 1;
    }
  }
  const std::size_t semi_static_hosts = results[0].provisioned_hosts;
  const std::size_t stochastic_hosts = results[1].provisioned_hosts;

  TextTable table({"utilization bound U", "Dynamic hosts",
                   "vs Semi-Static", "vs Stochastic"});
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::size_t dynamic_hosts = results[2 + i].provisioned_hosts;
    table.add_row(
        {fmt(bounds[i], 2), std::to_string(dynamic_hosts),
         fmt(static_cast<double>(dynamic_hosts) /
                 static_cast<double>(semi_static_hosts),
             3),
         fmt(static_cast<double>(dynamic_hosts) /
                 static_cast<double>(stochastic_hosts),
             3)});
  }
  std::string out = table.str();
  out += "\nreference lines: Semi-Static = " +
         std::to_string(semi_static_hosts) +
         " hosts, Stochastic = " + std::to_string(stochastic_hosts) +
         " hosts (independent of U)\n";

  // Where does Dynamic cross the Stochastic line?
  double crossover = -1.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (results[2 + i].provisioned_hosts <= stochastic_hosts) {
      crossover = bounds[i];
      break;
    }
  }
  if (crossover > 0) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "Dynamic matches Stochastic at U >= %.2f "
                  "(reservation <= %.0f%%)\n",
                  crossover, (1.0 - crossover) * 100.0);
    out += line;
  } else {
    out += "Dynamic never reaches the Stochastic line in this sweep\n";
  }
  std::printf("%s", out.c_str());
  write_dat(out);

  std::printf("\npaper: %s\n", paper_note);
  return 0;
}

}  // namespace vmcw::bench
