// Shared implementation for Figures 13-16: servers provisioned by Dynamic
// consolidation as a function of the utilization bound U (1-U of each
// host's CPU and memory is reserved for live migration), with the
// U-independent Semi-Static and Stochastic requirements as reference lines.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "common.h"

namespace vmcw::bench {

inline int run_sensitivity_bench(const char* figure,
                                 const char* workload_name,
                                 const char* paper_note, int argc,
                                 char** argv) {
  print_header(figure, "Performance vs utilization bound");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 0;
  WorkloadSpec spec = workload_spec_by_name(workload_name);
  if (servers > 0) spec = scaled_down(spec, servers, spec.hours);
  const Datacenter dc = generate_datacenter(spec, kStudySeed);
  std::printf("workload: %s (%zu servers)\n\n", dc.industry.c_str(),
              dc.servers.size());

  const std::vector<double> bounds{0.60, 0.65, 0.70, 0.75, 0.80,
                                   0.85, 0.90, 0.95, 1.00};
  const auto result = sensitivity_sweep(dc, baseline_settings(), bounds);

  TextTable table({"utilization bound U", "Dynamic hosts",
                   "vs Semi-Static", "vs Stochastic"});
  for (const auto& point : result.dynamic_points) {
    table.add_row(
        {fmt(point.utilization_bound, 2),
         std::to_string(point.dynamic_hosts),
         fmt(static_cast<double>(point.dynamic_hosts) /
                 static_cast<double>(result.semi_static_hosts),
             3),
         fmt(static_cast<double>(point.dynamic_hosts) /
                 static_cast<double>(result.stochastic_hosts),
             3)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nreference lines: Semi-Static = %zu hosts, Stochastic = %zu "
              "hosts (independent of U)\n",
              result.semi_static_hosts, result.stochastic_hosts);

  // Where does Dynamic cross the Stochastic line?
  double crossover = -1.0;
  for (const auto& point : result.dynamic_points) {
    if (point.dynamic_hosts <= result.stochastic_hosts) {
      crossover = point.utilization_bound;
      break;
    }
  }
  if (crossover > 0)
    std::printf("Dynamic matches Stochastic at U >= %.2f "
                "(reservation <= %.0f%%)\n",
                crossover, (1.0 - crossover) * 100.0);
  else
    std::printf("Dynamic never reaches the Stochastic line in this sweep\n");

  std::printf("\npaper: %s\n", paper_note);
  return 0;
}

}  // namespace vmcw::bench
