// Section 5.2 — emulator accuracy validation.
//
// Reproduces the paper's verification methodology: drive a RUBiS-like and
// a daxpy-like workload (plus the top-up micro-benchmark) to consume
// exactly what a controlled trace prescribes, and measure how far achieved
// consumption deviates from the emulator's prediction. The paper's bars:
// 99th percentile error of 5% (RUBiS) and 2% (daxpy).

#include <cstdio>

#include "common.h"
#include "validation/replay.h"

using namespace vmcw;

int main() {
  bench::print_header("Emulator validation (Section 5.2)",
                      "99th percentile replay error per workload");
  const auto trace = make_validation_trace(336, 20140501);

  const RubisLikeApp rubis;
  const DaxpyLikeApp daxpy;
  const auto rubis_report = validate_emulator(rubis, trace, 0, 336, 1);
  const auto daxpy_report = validate_emulator(daxpy, trace, 0, 336, 2);

  TextTable table({"workload", "replayed hours", "CPU p99 error",
                   "memory p99 error", "worst error", "paper bound"});
  table.add_row({"RUBiS-like", std::to_string(rubis_report.points),
                 fmt_pct(rubis_report.cpu_p99_error),
                 fmt_pct(rubis_report.mem_p99_error),
                 fmt_pct(rubis_report.worst_error), "5%"});
  table.add_row({"daxpy-like", std::to_string(daxpy_report.points),
                 fmt_pct(daxpy_report.cpu_p99_error),
                 fmt_pct(daxpy_report.mem_p99_error),
                 fmt_pct(daxpy_report.worst_error), "2%"});
  std::printf("%s", table.str().c_str());

  std::printf(
      "\nmethodology (as in the paper): the application is driven at the\n"
      "intensity that consumes one resource of the trace row; the\n"
      "micro-benchmark consumes the remainder of the other; achieved vs\n"
      "emulated consumption is compared per hour. The interactive web\n"
      "workload validates looser than the dense kernel, as observed.\n");
  return 0;
}
