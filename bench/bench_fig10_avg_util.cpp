// Figure 10 — CDF of average host CPU utilization achieved by each
// consolidation approach.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 10", "CDF of Average host CPU Utilization");
  const auto fleets = bench::make_fleets(argc, argv);
  const auto studies = bench::run_all_studies(fleets);

  const Algorithm algos[] = {Algorithm::kSemiStatic, Algorithm::kStochastic,
                             Algorithm::kDynamic};
  for (std::size_t i = 0; i < studies.size(); ++i) {
    std::printf("\n%s\n", bench::subfig_label(fleets[i], i).c_str());
    std::vector<std::string> names;
    std::vector<EmpiricalCdf> cdfs;
    for (Algorithm a : algos) {
      names.push_back(to_string(a));
      cdfs.emplace_back(studies[i].get(a).emulation.host_avg_cpu_util);
    }
    const std::vector<double> quantiles{0.10, 0.25, 0.50, 0.75, 0.90, 1.00};
    std::printf("%s", format_cdf_table(names, cdfs, quantiles).c_str());
  }
  std::printf(
      "\npaper: Airlines' utilization is very low under every scheme (its\n"
      "memory footprint fills hosts first); for Banking/Beverage the static\n"
      "variants cannot push average utilization high (their variability\n"
      "forces peak-provisioned headroom) while Dynamic does; for Natural\n"
      "Resources all three schemes look alike.\n");
  return 0;
}
