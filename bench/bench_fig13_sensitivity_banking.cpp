// Figure 13 — sensitivity of Dynamic consolidation to the utilization
// bound, Banking workload.

#include "sensitivity_common.h"

int main(int argc, char** argv) {
  return vmcw::bench::run_sensitivity_bench(
      "Figure 13", "Banking",
      "Dynamic starts to outperform Stochastic at U=0.85 (15% reservation);\n"
      "with no reservation it saves ~18% of servers; below U~0.75 it is\n"
      "worse than even vanilla Semi-Static.",
      argc, argv);
}
