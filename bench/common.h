// Shared helpers for the figure/table benches.
//
// Every bench regenerates the four synthetic estates from the same seed
// (kStudySeed), so all figures describe the same fleets — exactly as the
// paper's figures all describe the same four data centers.
#pragma once

#include <sys/resource.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "analysis/burstiness.h"
#include "core/study.h"
#include "sweep/sweep.h"
#include "runtime/telemetry.h"
#include "runtime/thread_pool.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/cdf.h"
#include "util/table.h"

namespace vmcw::bench {

/// Command-line knobs shared by the sweep-backed benches:
///   [servers]              positional: servers per estate (0 = full scale)
///   --resume               replay this bench's cell journal and compute
///                          only the cells a previous (killed) run did not
///                          finish; output is byte-identical to a clean run
///   --journal=PATH         override the journal path (default: next to the
///                          telemetry sidecar, journal_<slug>[_<suffix>].bin)
///   --no-journal           disable journaling entirely
///   --cell-deadline=SECS   per-cell watchdog; a cell past the deadline is
///                          reported timed_out without aborting its siblings
struct BenchOptions {
  int servers = 0;
  bool resume = false;
  bool journal = true;
  std::string journal_override;
  double cell_deadline_seconds = 0;
};

inline BenchOptions parse_options(int argc, char** argv,
                                  int default_servers = 0) {
  BenchOptions opts;
  opts.servers = default_servers;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--resume")
      opts.resume = true;
    else if (arg == "--no-journal")
      opts.journal = false;
    else if (arg.rfind("--journal=", 0) == 0)
      opts.journal_override = arg.substr(10);
    else if (arg.rfind("--cell-deadline=", 0) == 0)
      opts.cell_deadline_seconds = std::atof(arg.c_str() + 16);
    else if (!arg.empty() && arg[0] != '-')
      opts.servers = std::atoi(arg.c_str());
  }
  return opts;
}

/// Generate all four data centers at full Table 2 scale (or a scale
/// override from the command line: argv[1] = servers per DC). Fleets are
/// generated across the thread pool; each is seeded independently from
/// kStudySeed, so the output is identical at any VMCW_THREADS.
inline std::vector<Datacenter> make_fleets(int argc, char** argv) {
  Stopwatch span("bench.make_fleets_seconds");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 0;
  const auto presets = all_workload_specs();
  std::vector<Datacenter> fleets(presets.size());
  parallel_for(0, presets.size(), [&](std::size_t i) {
    const WorkloadSpec spec = servers > 0
                                  ? scaled_down(presets[i], servers,
                                                presets[i].hours)
                                  : presets[i];
    fleets[i] = generate_datacenter(spec, kStudySeed);
  });
  return fleets;
}

/// Baseline Table 3 settings.
inline StudySettings baseline_settings() { return StudySettings{}; }

/// Run the three-way study for every fleet with baseline settings — one
/// sweep cell per fleet across the pool, each writing its own slot.
inline std::vector<StudyResult> run_all_studies(
    const std::vector<Datacenter>& fleets) {
  Stopwatch span("bench.studies_seconds");
  std::vector<StudyResult> studies(fleets.size());
  parallel_for(
      0, fleets.size(),
      [&](std::size_t i) { studies[i] = run_study(fleets[i], baseline_settings()); },
      /*pool=*/nullptr, /*grain=*/1);
  return studies;
}

namespace detail {

inline std::string& telemetry_path() {
  static std::string path;
  return path;
}

inline std::string& output_slug() {
  static std::string slug;
  return slug;
}

inline void dump_telemetry() {
  if (!telemetry_path().empty())
    MetricsRegistry::global().dump_json(telemetry_path());
}

}  // namespace detail

inline std::string slugify(const char* name) {
  std::string slug;
  for (const char* c = name; *c; ++c)
    slug += std::isalnum(static_cast<unsigned char>(*c))
                ? static_cast<char>(std::tolower(static_cast<unsigned char>(*c)))
                : '_';
  return slug;
}

inline void print_header(const char* figure, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("==============================================================\n");
  detail::output_slug() = slugify(figure);
  // Dump per-phase telemetry as JSON next to this bench's output when the
  // process exits (sidecar only — tables on stdout stay byte-identical at
  // any thread count). Disable with VMCW_TELEMETRY=0.
  const char* env = std::getenv("VMCW_TELEMETRY");
  if (env && env[0] == '0') return;
  const bool fresh = detail::telemetry_path().empty();
  detail::telemetry_path() = "telemetry_" + detail::output_slug() + ".json";
  if (fresh) std::atexit(&detail::dump_telemetry);
}

/// SweepOptions for this bench's durable sweep: journal next to the
/// telemetry sidecar (journal_<slug>[_<suffix>].bin), resume/deadline from
/// the command line. Benches with several independent sweeps distinguish
/// their journals by `suffix`.
inline SweepOptions sweep_options(const BenchOptions& opts,
                                  const char* suffix = nullptr) {
  SweepOptions sweep;
  if (opts.journal) {
    if (!opts.journal_override.empty()) {
      sweep.journal_path = opts.journal_override;
      if (suffix != nullptr) {
        sweep.journal_path += '_';
        sweep.journal_path += suffix;
      }
    } else {
      sweep.journal_path = "journal_" + detail::output_slug();
      if (suffix != nullptr) {
        sweep.journal_path += '_';
        sweep.journal_path += suffix;
      }
      sweep.journal_path += ".bin";
    }
  }
  sweep.resume = opts.resume;
  sweep.cell_deadline_seconds = opts.cell_deadline_seconds;
  return sweep;
}

/// Write this bench's figure/table payload to <slug>.dat through the same
/// temp + rename path the telemetry sidecar uses, so a killed bench never
/// leaves a truncated artifact on disk.
inline bool write_dat(const std::string& content) {
  if (detail::output_slug().empty()) return false;
  return write_file_atomic(detail::output_slug() + ".dat", content);
}

/// Wall-clock stopwatch for the machine-readable bench sidecars. Lives in
/// bench/ (not src/) on purpose: the determinism lint bans wall clocks in
/// library code, but a bench measuring itself is exactly what they are for.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Extra key/value pairs for write_bench_json.
struct BenchMetric {
  std::string name;
  double value = 0;
};

inline std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// Machine-readable result sidecar BENCH_<name>.json: wall time, one named
/// rate metric (decisions/sec, cells/sec, ...), peak RSS, plus any extras.
/// Written via the same atomic temp+rename path as the other sidecars.
/// Numbers here are measurements, not determinism-checked output — CI
/// compares the .dat tables and decision logs, never these (the perf gate
/// compares them with a tolerance band, tools/bench_gate).
///
/// `peak_rss_ceiling_kb` > 0 makes a memory budget binding: exceeding it
/// is a hard bench failure (stderr diagnostic + false return; callers exit
/// non-zero), not a number someone has to notice in the sidecar. The
/// violating sidecar is still written first so the evidence survives.
inline bool write_bench_json(const std::string& name, double wall_seconds,
                             const std::string& rate_metric, double rate,
                             const std::vector<BenchMetric>& extras = {},
                             long peak_rss_ceiling_kb = 0) {
  long peak_rss_kb = 0;
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) peak_rss_kb = usage.ru_maxrss;

  std::string json = "{\n";
  json += "  \"bench\": \"" + name + "\",\n";
  json += "  \"wall_seconds\": " + json_number(wall_seconds) + ",\n";
  json += "  \"" + rate_metric + "\": " + json_number(rate) + ",\n";
  for (const BenchMetric& extra : extras)
    json += "  \"" + extra.name + "\": " + json_number(extra.value) + ",\n";
  if (peak_rss_ceiling_kb > 0)
    json += "  \"peak_rss_ceiling_kb\": " +
            json_number(static_cast<double>(peak_rss_ceiling_kb)) + ",\n";
  json += "  \"peak_rss_kb\": " + json_number(static_cast<double>(peak_rss_kb)) +
          "\n}\n";
  const bool wrote = write_file_atomic("BENCH_" + name + ".json", json);
  if (peak_rss_ceiling_kb > 0 && peak_rss_kb > peak_rss_ceiling_kb) {
    std::fprintf(stderr,
                 "BENCH FAIL %s: peak RSS %ld kB exceeds ceiling %ld kB\n",
                 name.c_str(), peak_rss_kb, peak_rss_ceiling_kb);
    return false;
  }
  return wrote;
}

/// "(a) Banking"-style label as the paper's sub-figures use.
inline std::string subfig_label(const Datacenter& dc, std::size_t index) {
  const char letter = static_cast<char>('a' + index);
  return std::string("(") + letter + ") " + dc.industry;
}

/// The CDF series of one burstiness figure (Figs 2-5): one sub-figure per
/// data center, one curve per consolidation window (1/2/4 h).
inline void print_burstiness_figure(const std::vector<Datacenter>& fleets,
                                    Resource resource, bool plot_cov,
                                    std::span<const double> thresholds) {
  const std::size_t windows[] = {1, 2, 4};
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    const auto& dc = fleets[i];
    std::printf("\n%s\n", subfig_label(dc, i).c_str());

    std::vector<std::string> names;
    std::vector<EmpiricalCdf> cdfs;
    for (std::size_t w : windows) {
      const auto result = burstiness(dc, resource, w);
      names.push_back(std::to_string(w) + "h");
      cdfs.push_back(plot_cov ? cov_cdf(result) : p2a_cdf(result));
    }
    const std::vector<double> quantiles{0.10, 0.25, 0.50, 0.75,
                                        0.90, 0.95, 0.99};
    std::printf("%s", format_cdf_table(names, cdfs, quantiles).c_str());

    TextTable fractions({"window", "metric"});
    for (std::size_t w = 0; w < cdfs.size(); ++w) {
      std::string cells;
      for (double th : thresholds) {
        cells += " P(x>" + fmt(th, plot_cov ? 1 : 0) +
                 ")=" + fmt_pct(cdfs[w].fraction_above(th));
      }
      fractions.add_row({names[w], cells});
    }
    std::printf("%s", fractions.str().c_str());
  }
}

}  // namespace vmcw::bench
