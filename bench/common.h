// Shared helpers for the figure/table benches.
//
// Every bench regenerates the four synthetic estates from the same seed
// (kStudySeed), so all figures describe the same fleets — exactly as the
// paper's figures all describe the same four data centers.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "analysis/burstiness.h"
#include "core/study.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/cdf.h"
#include "util/table.h"

namespace vmcw::bench {

/// Generate all four data centers at full Table 2 scale (or a scale
/// override from the command line: argv[1] = servers per DC).
inline std::vector<Datacenter> make_fleets(int argc, char** argv) {
  const int servers = argc > 1 ? std::atoi(argv[1]) : 0;
  std::vector<Datacenter> fleets;
  for (const auto& preset : all_workload_specs()) {
    const WorkloadSpec spec =
        servers > 0 ? scaled_down(preset, servers, preset.hours) : preset;
    fleets.push_back(generate_datacenter(spec, kStudySeed));
  }
  return fleets;
}

/// Baseline Table 3 settings.
inline StudySettings baseline_settings() { return StudySettings{}; }

/// Run the three-way study for every fleet with baseline settings.
inline std::vector<StudyResult> run_all_studies(
    const std::vector<Datacenter>& fleets) {
  std::vector<StudyResult> studies;
  studies.reserve(fleets.size());
  for (const auto& dc : fleets)
    studies.push_back(run_study(dc, baseline_settings()));
  return studies;
}

inline void print_header(const char* figure, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("==============================================================\n");
}

/// "(a) Banking"-style label as the paper's sub-figures use.
inline std::string subfig_label(const Datacenter& dc, std::size_t index) {
  const char letter = static_cast<char>('a' + index);
  return std::string("(") + letter + ") " + dc.industry;
}

/// The CDF series of one burstiness figure (Figs 2-5): one sub-figure per
/// data center, one curve per consolidation window (1/2/4 h).
inline void print_burstiness_figure(const std::vector<Datacenter>& fleets,
                                    Resource resource, bool plot_cov,
                                    std::span<const double> thresholds) {
  const std::size_t windows[] = {1, 2, 4};
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    const auto& dc = fleets[i];
    std::printf("\n%s\n", subfig_label(dc, i).c_str());

    std::vector<std::string> names;
    std::vector<EmpiricalCdf> cdfs;
    for (std::size_t w : windows) {
      const auto result = burstiness(dc, resource, w);
      names.push_back(std::to_string(w) + "h");
      cdfs.push_back(plot_cov ? cov_cdf(result) : p2a_cdf(result));
    }
    const std::vector<double> quantiles{0.10, 0.25, 0.50, 0.75,
                                        0.90, 0.95, 0.99};
    std::printf("%s", format_cdf_table(names, cdfs, quantiles).c_str());

    TextTable fractions({"window", "metric"});
    for (std::size_t w = 0; w < cdfs.size(); ++w) {
      std::string cells;
      for (double th : thresholds) {
        cells += " P(x>" + fmt(th, plot_cov ? 1 : 0) +
                 ")=" + fmt_pct(cdfs[w].fraction_above(th));
      }
      fractions.add_row({names[w], cells});
    }
    std::printf("%s", fractions.str().c_str());
  }
}

}  // namespace vmcw::bench
