// Shared helpers for the figure/table benches.
//
// Every bench regenerates the four synthetic estates from the same seed
// (kStudySeed), so all figures describe the same fleets — exactly as the
// paper's figures all describe the same four data centers.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "analysis/burstiness.h"
#include "core/study.h"
#include "runtime/telemetry.h"
#include "runtime/thread_pool.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/cdf.h"
#include "util/table.h"

namespace vmcw::bench {

/// Generate all four data centers at full Table 2 scale (or a scale
/// override from the command line: argv[1] = servers per DC). Fleets are
/// generated across the thread pool; each is seeded independently from
/// kStudySeed, so the output is identical at any VMCW_THREADS.
inline std::vector<Datacenter> make_fleets(int argc, char** argv) {
  Stopwatch span("bench.make_fleets_seconds");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 0;
  const auto presets = all_workload_specs();
  std::vector<Datacenter> fleets(presets.size());
  parallel_for(0, presets.size(), [&](std::size_t i) {
    const WorkloadSpec spec = servers > 0
                                  ? scaled_down(presets[i], servers,
                                                presets[i].hours)
                                  : presets[i];
    fleets[i] = generate_datacenter(spec, kStudySeed);
  });
  return fleets;
}

/// Baseline Table 3 settings.
inline StudySettings baseline_settings() { return StudySettings{}; }

/// Run the three-way study for every fleet with baseline settings — one
/// sweep cell per fleet across the pool, each writing its own slot.
inline std::vector<StudyResult> run_all_studies(
    const std::vector<Datacenter>& fleets) {
  Stopwatch span("bench.studies_seconds");
  std::vector<StudyResult> studies(fleets.size());
  parallel_for(
      0, fleets.size(),
      [&](std::size_t i) { studies[i] = run_study(fleets[i], baseline_settings()); },
      /*pool=*/nullptr, /*grain=*/1);
  return studies;
}

namespace detail {

inline std::string& telemetry_path() {
  static std::string path;
  return path;
}

inline void dump_telemetry() {
  if (!telemetry_path().empty())
    MetricsRegistry::global().dump_json(telemetry_path());
}

}  // namespace detail

inline void print_header(const char* figure, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("==============================================================\n");
  // Dump per-phase telemetry as JSON next to this bench's output when the
  // process exits (sidecar only — tables on stdout stay byte-identical at
  // any thread count). Disable with VMCW_TELEMETRY=0.
  const char* env = std::getenv("VMCW_TELEMETRY");
  if (env && env[0] == '0') return;
  std::string slug;
  for (const char* c = figure; *c; ++c)
    slug += std::isalnum(static_cast<unsigned char>(*c))
                ? static_cast<char>(std::tolower(static_cast<unsigned char>(*c)))
                : '_';
  const bool fresh = detail::telemetry_path().empty();
  detail::telemetry_path() = "telemetry_" + slug + ".json";
  if (fresh) std::atexit(&detail::dump_telemetry);
}

/// "(a) Banking"-style label as the paper's sub-figures use.
inline std::string subfig_label(const Datacenter& dc, std::size_t index) {
  const char letter = static_cast<char>('a' + index);
  return std::string("(") + letter + ") " + dc.industry;
}

/// The CDF series of one burstiness figure (Figs 2-5): one sub-figure per
/// data center, one curve per consolidation window (1/2/4 h).
inline void print_burstiness_figure(const std::vector<Datacenter>& fleets,
                                    Resource resource, bool plot_cov,
                                    std::span<const double> thresholds) {
  const std::size_t windows[] = {1, 2, 4};
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    const auto& dc = fleets[i];
    std::printf("\n%s\n", subfig_label(dc, i).c_str());

    std::vector<std::string> names;
    std::vector<EmpiricalCdf> cdfs;
    for (std::size_t w : windows) {
      const auto result = burstiness(dc, resource, w);
      names.push_back(std::to_string(w) + "h");
      cdfs.push_back(plot_cov ? cov_cdf(result) : p2a_cdf(result));
    }
    const std::vector<double> quantiles{0.10, 0.25, 0.50, 0.75,
                                        0.90, 0.95, 0.99};
    std::printf("%s", format_cdf_table(names, cdfs, quantiles).c_str());

    TextTable fractions({"window", "metric"});
    for (std::size_t w = 0; w < cdfs.size(); ++w) {
      std::string cells;
      for (double th : thresholds) {
        cells += " P(x>" + fmt(th, plot_cov ? 1 : 0) +
                 ")=" + fmt_pct(cdfs[w].fraction_above(th));
      }
      fractions.add_row({names[w], cells});
    }
    std::printf("%s", fractions.str().c_str());
  }
}

}  // namespace vmcw::bench
