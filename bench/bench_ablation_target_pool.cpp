// Ablation — heterogeneous consolidation targets (an engagement question
// the paper's uniform-HS23 study abstracts away: should an estate reuse
// its existing previous-generation blades, or standardize on new ones?).
//
// Packs the Banking estate semi-statically onto three target pools and
// replays the traces:
//   (a) uniform HS23 Elite (the paper's setting),
//   (b) uniform HS22 (previous generation only),
//   (c) a reused rack of 14 HS22s + as many HS23s as needed.

#include <cstdio>

#include "common.h"
#include "core/planners.h"
#include "hardware/cost_model.h"

using namespace vmcw;

namespace {

struct PoolCase {
  const char* name;
  HostPool pool;
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Ablation — heterogeneous target pools",
                      "reuse old blades vs standardize, Banking");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 400;
  const auto spec = scaled_down(banking_spec(), servers, kHoursPerMonth);
  const Datacenter dc = generate_datacenter(spec, kStudySeed);
  const auto vms = to_vm_workloads(dc);
  const auto settings = bench::baseline_settings();
  const CostModel costs;
  std::printf("workload: %s (%zu servers)\n\n", dc.industry.c_str(),
              dc.servers.size());

  // Peak sizing over the planning history, as in semi-static planning.
  std::vector<ResourceVector> sizes(vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i)
    sizes[i] = vms[i].size_over(0, settings.history_hours, WindowReducer::kMax);

  std::vector<PoolCase> cases;
  cases.push_back({"HS23 only (paper)", HostPool::uniform(hs23_elite_blade())});
  cases.push_back({"HS22 only", HostPool::uniform(hs22_blade())});
  cases.push_back(
      {"14x HS22 reused + HS23",
       HostPool({{hs22_blade(), 14},
                 {hs23_elite_blade(), HostClass::kUnlimited}})});

  TextTable table({"target pool", "hosts", "new HS23s", "energy (kWh)",
                   "hardware+space cost", "contention time"});
  for (const auto& c : cases) {
    const auto packed = ffd_pack(sizes, c.pool, 1.0);
    if (!packed) {
      table.add_row({c.name, "infeasible", "-", "-", "-", "-"});
      continue;
    }
    const Placement schedule[] = {packed->placement};
    const auto report = emulate(vms, schedule, settings, false, c.pool);

    // Cost of the hosts actually used (reused HS22s carry no hardware cost).
    double cost = 0;
    std::size_t new_blades = 0;
    const auto by_host = packed->placement.vms_by_host();
    for (std::size_t h = 0; h < by_host.size(); ++h) {
      if (by_host[h].empty()) continue;
      const auto& host_spec = c.pool.spec_of(h);
      cost += costs.space_hardware_cost(host_spec, 1,
                                        settings.eval_hours / 24.0);
      if (host_spec.model == "IBM HS23 Elite") ++new_blades;
    }
    table.add_row({c.name, std::to_string(packed->hosts_used),
                   std::to_string(new_blades),
                   fmt(report.energy_wh / 1000.0, 0), fmt(cost, 0),
                   fmt_pct(report.contention_time_fraction())});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nreusing the old rack trades a few extra hosts and watts for the\n"
      "avoided acquisition cost — the HostPool API makes the comparison a\n"
      "three-line configuration change.\n");
  return 0;
}
