// Figure 5 — CDF of coefficient of variation for memory demand.

#include <cstdio>

#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Figure 5",
                      "CDF of Coefficient of Variability (CoV) for Memory");
  const auto fleets = bench::make_fleets(argc, argv);
  const double thresholds[] = {0.5, 1.0};
  bench::print_burstiness_figure(fleets, Resource::kMemory, /*plot_cov=*/true,
                                 thresholds);

  std::printf("\nheavy-tailed memory servers (CoV >= 1, 1h windows):\n");
  TextTable table({"workload", "measured", "paper"});
  const char* paper[] = {"~20%", "0%", "0%", "<10%"};
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    const auto result = burstiness(fleets[i], Resource::kMemory, 1);
    table.add_row({fleets[i].industry, fmt_pct(heavy_tailed_fraction(result)),
                   paper[i]});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\npaper: memory CoV is an order of magnitude below CPU CoV — more\n"
      "than 80%% of servers have memory P2A ~1.5 and CoV <= 0.5\n"
      "(Observation 2).\n");
  return 0;
}
