// Observation 5's mechanism — "correlation between workloads is stable
// over time [27]".
//
// Stochastic semi-static consolidation holds its placement for two weeks;
// it keeps working only because which workloads co-peak does not change
// under it. This bench splits every server's CPU series into two
// half-month windows, computes both pairwise correlation matrices, and
// reports how far the entries drift — per data center.

#include <cstdio>

#include "analysis/correlation.h"
#include "common.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Observation 5 mechanism",
                      "stability of pairwise workload correlation");
  // Correlation matrices are O(n^2 x T); a 250-server sample per estate is
  // plenty to estimate the drift distribution.
  const int servers = argc > 1 ? std::atoi(argv[1]) : 250;
  TextTable table({"workload", "pairs", "mean |drift|", "p95 |drift|",
                   "sign flips"});
  for (const auto& preset : all_workload_specs()) {
    const auto spec = scaled_down(preset, servers, preset.hours);
    const auto dc = generate_datacenter(spec, kStudySeed);
    std::vector<std::vector<double>> series;
    series.reserve(dc.servers.size());
    for (const auto& s : dc.servers) {
      const auto daily = s.cpu_util.window_reduce(2, WindowReducer::kMean);
      series.push_back(daily);
    }
    const auto stability = correlation_stability(series);
    table.add_row({dc.industry, std::to_string(stability.pairs),
                   fmt(stability.mean_abs_drift, 3),
                   fmt(stability.p95_abs_drift, 3),
                   fmt_pct(stability.sign_flip_fraction)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nsmall drift and few sign flips mean a peak-clustered placement\n"
      "computed from history stays valid through the evaluation window —\n"
      "which is why intelligent semi-static consolidation matches dynamic\n"
      "consolidation without a single live migration (Observation 5).\n");
  return 0;
}
