// Ablation (Section 7 / Observation 7) — what dynamic consolidation would
// gain from cheaper live migration.
//
// Each migration technology supports a different reliable utilization
// bound U (from the pre-copy model). Re-running the Banking study at each
// technology's bound shows how much of the space/hardware gap to
// stochastic consolidation better migration would close — the paper's
// closing argument for RDMA-style offload research.

#include <cstdio>

#include "common.h"
#include "core/planners.h"
#include "migration/technology.h"

using namespace vmcw;

int main(int argc, char** argv) {
  bench::print_header("Ablation — migration technology (Observation 7)",
                      "dynamic consolidation vs migration efficiency");
  const int servers = argc > 1 ? std::atoi(argv[1]) : 0;
  WorkloadSpec spec = banking_spec();
  if (servers > 0) spec = scaled_down(spec, servers, spec.hours);
  const Datacenter dc = generate_datacenter(spec, kStudySeed);
  const auto vms = to_vm_workloads(dc);
  const auto settings = bench::baseline_settings();

  const auto semi = plan_semi_static(vms, settings);
  const auto stochastic = plan_stochastic(vms, settings);
  if (!semi || !stochastic) return 1;
  std::printf("workload: %s (%zu servers); Semi-Static %zu hosts, "
              "Stochastic %zu hosts\n\n",
              dc.industry.c_str(), dc.servers.size(), semi->hosts_used,
              stochastic->hosts_used);

  TextTable table({"technology", "source CPU need", "supported U",
                   "dynamic hosts", "vs Stochastic"});
  for (MigrationTechnology tech : {MigrationTechnology::kSourcePrecopy,
                                   MigrationTechnology::kTargetAssisted,
                                   MigrationTechnology::kRdmaOffload}) {
    const double bound = supported_utilization_bound(tech);
    StudySettings tuned = settings;
    tuned.dynamic_utilization_bound = bound;
    const auto dynamic = plan_dynamic(vms, tuned);
    if (!dynamic) continue;
    table.add_row({to_string(tech), fmt_pct(source_cpu_fraction(tech), 0),
                   fmt(bound, 2), std::to_string(dynamic->max_active_hosts),
                   fmt(static_cast<double>(dynamic->max_active_hosts) /
                           static_cast<double>(stochastic->hosts_used),
                       3)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\npaper (Observation 7): if the resources reserved for live\n"
      "migration can be reduced without hurting reliability, dynamic\n"
      "consolidation achieves space and hardware savings as well —\n"
      "offloading the copy to the target, or to the NIC via RDMA, is the\n"
      "suggested path.\n");
  return 0;
}
