// Clang Thread Safety Analysis annotations + capability-annotated mutex.
//
// The determinism contract (bit-identical results at any VMCW_THREADS) is
// enforced dynamically by the 1/2/8-thread pin tests and the TSan CI job;
// this header adds the *static* half: every lock-protected structure in the
// runtime declares which mutex guards it, and a clang build with
// -Werror=thread-safety refuses to compile an access that doesn't hold the
// right lock. GCC builds see empty macros — annotations cost nothing and
// change nothing at runtime.
//
// Conventions (see DESIGN.md §5d):
//  - every member a mutex protects carries VMCW_GUARDED_BY(that mutex);
//  - private helpers that assume the lock is already held carry
//    VMCW_REQUIRES(mutex) instead of re-locking;
//  - public entry points that take the lock themselves carry
//    VMCW_EXCLUDES(mutex) so a re-entrant call is a compile error;
//  - condition-variable waits go through CondVar::wait(Mutex&), which
//    REQUIRES the mutex — the unlock/relock inside wait is invisible to the
//    analysis, which is the standard (sound for our use) treatment.
//
// Use vmcw::Mutex + vmcw::MutexLock, not std::mutex + std::lock_guard, for
// any new shared state: libstdc++'s types carry no capability attributes,
// so the analysis cannot see through them.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define VMCW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VMCW_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define VMCW_CAPABILITY(x) VMCW_THREAD_ANNOTATION(capability(x))
#define VMCW_SCOPED_CAPABILITY VMCW_THREAD_ANNOTATION(scoped_lockable)
#define VMCW_GUARDED_BY(x) VMCW_THREAD_ANNOTATION(guarded_by(x))
#define VMCW_PT_GUARDED_BY(x) VMCW_THREAD_ANNOTATION(pt_guarded_by(x))
#define VMCW_REQUIRES(...) \
  VMCW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VMCW_EXCLUDES(...) VMCW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define VMCW_ACQUIRE(...) \
  VMCW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VMCW_RELEASE(...) \
  VMCW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VMCW_TRY_ACQUIRE(...) \
  VMCW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define VMCW_RETURN_CAPABILITY(x) VMCW_THREAD_ANNOTATION(lock_returned(x))
#define VMCW_NO_THREAD_SAFETY_ANALYSIS \
  VMCW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vmcw {

/// std::mutex with a capability attribute, so clang's analysis can track
/// which locks are held. Satisfies BasicLockable — a CondVar (below) waits
/// on it directly.
class VMCW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VMCW_ACQUIRE() { mutex_.lock(); }
  void unlock() VMCW_RELEASE() { mutex_.unlock(); }
  bool try_lock() VMCW_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock over Mutex (std::lock_guard is opaque to the analysis).
class VMCW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) VMCW_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() VMCW_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable that waits on a vmcw::Mutex. wait() REQUIRES the
/// mutex: callers re-check their predicate in an explicit loop (exactly
/// what std::condition_variable::wait(lock, pred) expands to), which keeps
/// guarded reads inside annotated scope instead of inside an unannotatable
/// lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mutex`, sleep until notified, re-acquire.
  /// Spurious wakeups are possible — always wait in a predicate loop.
  void wait(Mutex& mutex) VMCW_REQUIRES(mutex) { cv_.wait(mutex); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace vmcw
