#include "util/distributions.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vmcw {

Pareto::Pareto(double x_m, double alpha) noexcept
    : x_m_(std::max(x_m, 1e-12)), alpha_(std::max(alpha, 1e-6)) {}

double Pareto::sample(Rng& rng) const noexcept {
  // Inverse CDF: x = x_m / U^(1/alpha).
  double u = 1.0 - rng.uniform();  // (0, 1]
  return x_m_ / std::pow(u, 1.0 / alpha_);
}

double Pareto::mean() const noexcept {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * x_m_ / (alpha_ - 1.0);
}

BoundedPareto::BoundedPareto(double x_m, double alpha, double upper) noexcept
    : x_m_(std::max(x_m, 1e-12)),
      alpha_(std::max(alpha, 1e-6)),
      upper_(std::max(upper, x_m_)) {}

double BoundedPareto::sample(Rng& rng) const noexcept {
  // Inverse-CDF sampling of the truncated Pareto.
  const double la = std::pow(x_m_, alpha_);
  const double ha = std::pow(upper_, alpha_);
  const double u = rng.uniform();
  const double denom = ha - u * (ha - la);
  return std::pow(ha * la / std::max(denom, 1e-300), 1.0 / alpha_);
}

Lognormal Lognormal::from_mean_cov(double mean, double cov) noexcept {
  mean = std::max(mean, 1e-12);
  cov = std::max(cov, 0.0);
  // For lognormal: cov^2 = exp(sigma^2) - 1; mean = exp(mu + sigma^2/2).
  const double sigma2 = std::log(1.0 + cov * cov);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return Lognormal(mu, std::sqrt(sigma2));
}

double Lognormal::sample(Rng& rng) const noexcept {
  return std::exp(mu_ + sigma_ * rng.normal());
}

TruncatedNormal::TruncatedNormal(double mean, double sigma, double lo,
                                 double hi) noexcept
    : mean_(mean), sigma_(std::max(sigma, 0.0)), lo_(lo), hi_(std::max(hi, lo)) {}

double TruncatedNormal::sample(Rng& rng) const noexcept {
  for (int attempt = 0; attempt < 16; ++attempt) {
    double x = rng.normal(mean_, sigma_);
    if (x >= lo_ && x <= hi_) return x;
  }
  return std::clamp(mean_, lo_, hi_);
}

Exponential::Exponential(double lambda) noexcept
    : lambda_(std::max(lambda, 1e-12)) {}

double Exponential::sample(Rng& rng) const noexcept {
  return -std::log(1.0 - rng.uniform()) / lambda_;
}

}  // namespace vmcw
