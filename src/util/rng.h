// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic components in this repository draw from Rng, a xoshiro256++
// generator seeded through splitmix64. Experiments construct one Rng per
// logical stream (e.g. one per server trace) via Rng::fork(), which derives
// an independent child stream; this keeps every figure and test reproducible
// bit-for-bit regardless of evaluation order.
#pragma once

#include <cstdint>
#include <string_view>

namespace vmcw {

/// splitmix64 step; used for seeding and for hashing identifiers into seeds.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stable 64-bit hash of a string (FNV-1a finished with splitmix64), used to
/// derive per-entity RNG streams from human-readable names.
std::uint64_t hash64(std::string_view text) noexcept;

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator so it
/// can also drive <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Derive an independent child generator. Deterministic: the n-th fork of
  /// a given parent state is always the same stream.
  Rng fork() noexcept;

  /// Derive a child stream keyed by a name (order-independent).
  Rng fork(std::string_view key) const noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace vmcw
