#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace vmcw {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable::TextTable(std::initializer_list<std::string> header)
    : header_(header) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::str() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += cell;
      if (c + 1 < cols) out.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < cols; ++c) rule += widths[c] + (c + 1 < cols ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string TextTable::csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += quote(row[c]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string TextTable::markdown() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  auto escape = [](const std::string& cell) {
    std::string out;
    for (char ch : cell) {
      if (ch == '|') out += '\\';
      out += ch;
    }
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    out += '|';
    for (std::size_t c = 0; c < cols; ++c) {
      out += ' ';
      out += c < row.size() ? escape(row[c]) : std::string{};
      out += " |";
    }
    out += '\n';
  };
  emit(header_);
  out += '|';
  for (std::size_t c = 0; c < cols; ++c) out += "---|";
  out += '\n';
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace vmcw
