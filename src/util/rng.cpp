#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace vmcw {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed all 256 bits of state from splitmix64, per the xoshiro authors'
  // recommendation; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection-free enough for simulation purposes: use
  // 128-bit multiply to map uniformly.
  const unsigned __int128 wide =
      static_cast<unsigned __int128>((*this)()) * span;
  return lo + static_cast<std::int64_t>(wide >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() noexcept {
  return Rng((*this)());
}

Rng Rng::fork(std::string_view key) const noexcept {
  // Combine parent state with the key hash without advancing the parent.
  return Rng(s_[0] ^ rotl(s_[2], 29) ^ hash64(key));
}

}  // namespace vmcw
