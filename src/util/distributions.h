// Heavy-tailed and bounded distributions used by the workload generator.
//
// Enterprise CPU demand is heavy-tailed (Crovella et al.); the generator
// models burst magnitudes with (bounded) Pareto draws and slowly varying
// baselines with lognormal / truncated-normal draws. Each distribution is a
// small value type: construct once, sample with an Rng.
#pragma once

#include "util/rng.h"

namespace vmcw {

/// Pareto distribution with scale x_m > 0 and shape alpha > 0.
/// Mean is finite only for alpha > 1; variance only for alpha > 2, so
/// alpha in (1, 2] gives the heavy-tailed bursts (CoV >= 1) the paper
/// observes on web-facing servers.
class Pareto {
 public:
  Pareto(double x_m, double alpha) noexcept;

  double sample(Rng& rng) const noexcept;
  double mean() const noexcept;  ///< +inf if alpha <= 1.

  double scale() const noexcept { return x_m_; }
  double shape() const noexcept { return alpha_; }

 private:
  double x_m_;
  double alpha_;
};

/// Pareto truncated to [x_m, upper]; keeps bursts heavy-tailed while
/// respecting a physical capacity ceiling (a server cannot exceed 100% CPU).
class BoundedPareto {
 public:
  BoundedPareto(double x_m, double alpha, double upper) noexcept;

  double sample(Rng& rng) const noexcept;

  double lower() const noexcept { return x_m_; }
  double upper() const noexcept { return upper_; }

 private:
  double x_m_;
  double alpha_;
  double upper_;
};

/// Lognormal parameterized by the mean/CoV of the *resulting* distribution
/// (more convenient for calibration than mu/sigma of the underlying normal).
class Lognormal {
 public:
  /// Requires mean > 0 and cov >= 0.
  static Lognormal from_mean_cov(double mean, double cov) noexcept;

  double sample(Rng& rng) const noexcept;

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

 private:
  Lognormal(double mu, double sigma) noexcept : mu_(mu), sigma_(sigma) {}
  double mu_;
  double sigma_;
};

/// Normal truncated to [lo, hi] by rejection (falls back to clamping after
/// a bounded number of rejections so sampling is always O(1) amortized).
class TruncatedNormal {
 public:
  TruncatedNormal(double mean, double sigma, double lo, double hi) noexcept;

  double sample(Rng& rng) const noexcept;

 private:
  double mean_, sigma_, lo_, hi_;
};

/// Exponential with given rate lambda > 0 (used for burst inter-arrivals).
class Exponential {
 public:
  explicit Exponential(double lambda) noexcept;

  double sample(Rng& rng) const noexcept;

 private:
  double lambda_;
};

}  // namespace vmcw
