// Descriptive statistics over sample vectors.
//
// The paper's trace analysis (Section 4) is built from four primitives:
// mean, peak, percentile, and coefficient of variation. These helpers
// operate on std::span<const double> so callers can pass TimeSeries data,
// window slices, or raw vectors without copies.
#pragma once

#include <span>
#include <vector>

namespace vmcw {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Maximum value; 0 for an empty span.
double peak(std::span<const double> xs) noexcept;

/// Minimum value; 0 for an empty span.
double minimum(std::span<const double> xs) noexcept;

/// Population standard deviation; 0 for spans with fewer than 2 samples.
double stddev(std::span<const double> xs) noexcept;

/// Coefficient of variation = stddev / mean; 0 when the mean is ~0.
/// CoV >= 1 marks a heavy-tailed series in the paper's terminology.
double coefficient_of_variation(std::span<const double> xs) noexcept;

/// Linear-interpolation percentile, p in [0, 100]. Sorts a copy (O(n log n)).
double percentile(std::span<const double> xs, double p);

/// Percentile of an already ascending-sorted span (no copy).
double percentile_sorted(std::span<const double> sorted, double p) noexcept;

/// Peak-to-average ratio = peak / mean; 0 when the mean is ~0.
double peak_to_average(std::span<const double> xs) noexcept;

/// Pearson correlation coefficient of two equal-length series; 0 if either
/// series is constant or the lengths differ/are < 2.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) noexcept;

/// Compact five-number-style summary used in reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

Summary summarize(std::span<const double> xs);

/// Element-wise sum of many equal-length series (the aggregate-demand
/// operation behind Fig 6). Returns empty if `series` is empty; shorter
/// series are treated as zero-padded.
std::vector<double> elementwise_sum(
    std::span<const std::vector<double>> series);

}  // namespace vmcw
