// Plain-text table rendering for bench/example output.
//
// The figure benches print the same rows/series the paper's figures plot;
// TextTable keeps that output aligned and diff-friendly, and can also emit
// CSV for downstream plotting.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace vmcw {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  TextTable(std::initializer_list<std::string> header);

  /// Append a row of pre-formatted cells. Rows shorter than the header are
  /// padded with empty cells; longer rows extend the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Aligned monospace rendering (header, rule, rows).
  std::string str() const;

  /// RFC-4180-ish CSV rendering (cells containing commas/quotes are quoted).
  std::string csv() const;

  /// GitHub-flavored Markdown table (pipes in cells are escaped).
  std::string markdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given number of decimals.
std::string fmt(double value, int precision = 3);

/// Format a fraction as a percentage string, e.g. 0.125 -> "12.5%".
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace vmcw
