// Empirical cumulative distribution functions.
//
// Every figure in the paper's Section 4/5 is a CDF over per-server or
// per-interval statistics. EmpiricalCdf stores the sorted sample set once
// and answers F(x), quantiles, and tail fractions in O(log n).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace vmcw {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Number of samples.
  std::size_t size() const noexcept { return sorted_.size(); }
  bool empty() const noexcept { return sorted_.empty(); }

  /// F(x) = fraction of samples <= x. 0 for an empty CDF.
  double at(double x) const noexcept;

  /// Fraction of samples strictly greater than x (the "more than 30% of
  /// workloads exhibit a ratio greater than 10" style of statement).
  double fraction_above(double x) const noexcept;

  /// Inverse CDF: smallest sample value v with F(v) >= q, q in [0, 1].
  double quantile(double q) const noexcept;

  double min() const noexcept;
  double max() const noexcept;

  /// Access to the sorted samples (for plotting/serialization).
  std::span<const double> sorted() const noexcept { return sorted_; }

  /// Sample the CDF at `points` evenly spaced quantiles — the series a
  /// plotting tool would draw. Returns (x, F(x)) pairs.
  struct Point {
    double x;
    double f;
  };
  std::vector<Point> curve(std::size_t points = 20) const;

 private:
  std::vector<double> sorted_;
};

/// Render one or more CDFs as a fixed-quantile text table, one row per
/// quantile, one column per named CDF. Used by the figure benches.
std::string format_cdf_table(
    std::span<const std::string> names,
    std::span<const EmpiricalCdf> cdfs,
    std::span<const double> quantiles);

}  // namespace vmcw
