#include "util/cdf.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace vmcw {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::fraction_above(double x) const noexcept {
  return sorted_.empty() ? 0.0 : 1.0 - at(x);
}

double EmpiricalCdf::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto n = sorted_.size();
  auto idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted_[idx];
}

double EmpiricalCdf::min() const noexcept {
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double EmpiricalCdf::max() const noexcept {
  return sorted_.empty() ? 0.0 : sorted_.back();
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::curve(std::size_t points) const {
  std::vector<Point> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i + 1) / static_cast<double>(points);
    out.push_back(Point{quantile(q), q});
  }
  return out;
}

std::string format_cdf_table(std::span<const std::string> names,
                             std::span<const EmpiricalCdf> cdfs,
                             std::span<const double> quantiles) {
  std::string out;
  char buf[64];
  out += "quantile";
  for (const auto& n : names) {
    std::snprintf(buf, sizeof buf, "%14s", n.c_str());
    out += buf;
  }
  out += '\n';
  for (double q : quantiles) {
    std::snprintf(buf, sizeof buf, "%7.2f%%", q * 100.0);
    out += buf;
    for (const auto& cdf : cdfs) {
      std::snprintf(buf, sizeof buf, "%14.3f", cdf.quantile(q));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace vmcw
