#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace vmcw {

namespace {
constexpr double kTinyMean = 1e-12;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double peak(std::span<const double> xs) noexcept {
  double best = 0.0;
  bool first = true;
  for (double x : xs) {
    if (first || x > best) best = x;
    first = false;
  }
  return first ? 0.0 : best;
}

double minimum(std::span<const double> xs) noexcept {
  double best = 0.0;
  bool first = true;
  for (double x : xs) {
    if (first || x < best) best = x;
    first = false;
  }
  return first ? 0.0 : best;
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double accum = 0.0;
  for (double x : xs) accum += (x - m) * (x - m);
  return std::sqrt(accum / static_cast<double>(xs.size()));
}

double coefficient_of_variation(std::span<const double> xs) noexcept {
  const double m = mean(xs);
  if (std::abs(m) < kTinyMean) return 0.0;
  return stddev(xs) / m;
}

double percentile_sorted(std::span<const double> sorted, double p) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> xs, double p) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

double peak_to_average(std::span<const double> xs) noexcept {
  const double m = mean(xs);
  if (std::abs(m) < kTinyMean) return 0.0;
  return peak(xs) / m;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx < kTinyMean || syy < kTinyMean) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile_sorted(sorted, 50);
  s.p90 = percentile_sorted(sorted, 90);
  s.p99 = percentile_sorted(sorted, 99);
  return s;
}

std::vector<double> elementwise_sum(
    std::span<const std::vector<double>> series) {
  std::vector<double> total;
  for (const auto& s : series) {
    if (s.size() > total.size()) total.resize(s.size(), 0.0);
    for (std::size_t i = 0; i < s.size(); ++i) total[i] += s[i];
  }
  return total;
}

}  // namespace vmcw
