#include "engine/engine.h"

#include <stdexcept>

#include "runtime/telemetry.h"
#include "topology/spread.h"

namespace vmcw {

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kStatic:
      return "Static";
    case Strategy::kSemiStatic:
      return "Semi-Static";
    case Strategy::kStochastic:
      return "Stochastic";
    case Strategy::kDynamic:
      return "Dynamic";
    case Strategy::kHybrid:
      return "Hybrid";
  }
  return "?";
}

ConsolidationEngine::ConsolidationEngine(Config config)
    : config_(std::move(config)) {}

void ConsolidationEngine::observe(const Datacenter& estate) {
  Stopwatch span("engine.observe_seconds");
  truth_ = estate;
  // collect_datacenter fans the per-server agents across the thread pool.
  const auto warehouse =
      collect_datacenter(estate, config_.agent, config_.monitoring_seed);
  view_ = reconstruct_datacenter(estate, warehouse);
  vms_ = to_vm_workloads(*view_);
}

const Datacenter& ConsolidationEngine::planner_view() const {
  if (!view_) throw std::logic_error("observe() an estate first");
  return *view_;
}

PipelineFidelity ConsolidationEngine::monitoring_fidelity() const {
  if (!truth_ || !view_) throw std::logic_error("observe() an estate first");
  return pipeline_fidelity(*truth_, *view_);
}

FailureDomainMap ConsolidationEngine::failure_domain_map() const {
  if (!view_) throw std::logic_error("observe() an estate first");
  const TopologySpec spec{config_.settings.domains.hosts_per_rack,
                          config_.settings.domains.racks_per_power_domain};
  return FailureDomainMap::generate(
      HostPool::uniform(config_.settings.target), vms_.size(), spec,
      config_.topology_seed);
}

ConstraintSet ConsolidationEngine::compiled_constraints() const {
  // Domain-aware planning: compile each application's spread rules once;
  // every strategy honors the resulting ConstraintSet. Both layers of the
  // topology are compiled — rack spread bounds the blast radius of a
  // ToR/rack outage, power-domain spread bounds a feed failure (which a
  // rack rule alone cannot: k racks may share one power domain).
  ConstraintSet constraints;
  if (config_.settings.domains.spread) {
    const auto groups = app_replica_groups(vms_);
    const FailureDomainMap topology = failure_domain_map();
    spread_across_domains(constraints, groups, topology, DomainKind::kRack,
                          config_.settings.domains.spread_k);
    spread_across_domains(constraints, groups, topology,
                          DomainKind::kPowerDomain,
                          config_.settings.domains.spread_k);
  }
  return constraints;
}

double ConsolidationEngine::bound_for(Strategy strategy) const noexcept {
  const bool dynamic =
      strategy == Strategy::kDynamic || strategy == Strategy::kHybrid;
  return dynamic ? config_.settings.dynamic_utilization_bound
                 : config_.settings.static_utilization_bound;
}

std::optional<ConsolidationEngine::Recommendation>
ConsolidationEngine::recommend(Strategy strategy) const {
  if (!view_) throw std::logic_error("observe() an estate first");
  Stopwatch span(std::string("engine.recommend_seconds.") +
                 to_string(strategy));
  Recommendation rec;
  rec.strategy = strategy;

  const ConstraintSet constraints = compiled_constraints();

  switch (strategy) {
    case Strategy::kStatic:
    case Strategy::kSemiStatic:
    case Strategy::kStochastic: {
      std::optional<StaticPlan> plan;
      if (strategy == Strategy::kStatic)
        plan = plan_static(vms_, config_.settings, constraints);
      else if (strategy == Strategy::kSemiStatic)
        plan = plan_semi_static(vms_, config_.settings, constraints);
      else
        plan = plan_stochastic(vms_, config_.settings, constraints);
      if (!plan) return std::nullopt;
      rec.schedule = {plan->placement};
      rec.provisioned_hosts = plan->hosts_used;
      return rec;
    }
    case Strategy::kDynamic: {
      auto plan = plan_dynamic(vms_, config_.settings, constraints);
      if (!plan) return std::nullopt;
      rec.schedule = std::move(plan->per_interval);
      rec.provisioned_hosts = plan->max_active_hosts;
      rec.total_migrations = plan->total_migrations;
      break;
    }
    case Strategy::kHybrid: {
      auto plan = plan_hybrid(vms_, config_.settings, config_.hybrid_fraction,
                              constraints);
      if (!plan) return std::nullopt;
      rec.provisioned_hosts = plan->provisioned_hosts();
      rec.total_migrations = plan->total_migrations;
      rec.schedule = std::move(plan->per_interval);
      break;
    }
  }

  // Execution feasibility for the strategies that live-migrate.
  rec.execution = execution_feasibility(
      rec.schedule, vms_, config_.settings.eval_begin(),
      config_.settings.interval_hours, MigrationConfig{});
  return rec;
}

std::optional<ConsolidationEngine::OnlineAdmission>
ConsolidationEngine::admit_one_vm(const Recommendation& rec,
                                  const VmWorkload& newcomer) const {
  if (!view_) throw std::logic_error("observe() an estate first");
  if (rec.schedule.empty()) return std::nullopt;
  const ConstraintSet constraints = compiled_constraints();
  const double bound = bound_for(rec.strategy);
  const HostPool pool = HostPool::uniform(config_.settings.target);
  const std::size_t history = config_.settings.history_hours;

  OnlineAdmission admission;
  admission.placement = Placement(vms_.size() + 1);
  const Placement& final_placement = rec.schedule.back();
  std::vector<ResourceVector> host_load(final_placement.host_index_bound());
  for (std::size_t vm = 0; vm < vms_.size(); ++vm) {
    const std::int32_t host = final_placement.host_of(vm);
    admission.placement.assign(vm, host);
    if (host != Placement::kUnplaced)
      host_load[static_cast<std::size_t>(host)] +=
          vms_[vm].size_over(0, history, WindowReducer::kMax);
  }

  const auto host = admit_one(
      vms_.size(), newcomer.size_over(0, history, WindowReducer::kMax),
      host_load, pool, bound, constraints, admission.placement, {});
  if (!host) return std::nullopt;
  admission.host = *host;
  return admission;
}

RepairOutcome ConsolidationEngine::partial_replan(Recommendation& rec,
                                                  std::size_t hour,
                                                  double drain_below) const {
  if (!view_) throw std::logic_error("observe() an estate first");
  if (rec.schedule.empty()) return {};
  const ConstraintSet constraints = compiled_constraints();
  const double bound = bound_for(rec.strategy);
  const HostPool pool = HostPool::uniform(config_.settings.target);

  // Size every VM at the requested hour's interval — the demand the
  // thresholds are judged against.
  std::vector<ResourceVector> sizes(vms_.size());
  for (std::size_t vm = 0; vm < vms_.size(); ++vm)
    sizes[vm] = vms_[vm].size_over(hour, config_.settings.interval_hours,
                                   WindowReducer::kMax);

  Placement& placement = rec.schedule.back();
  std::vector<ResourceVector> host_load(placement.host_index_bound());
  for (std::size_t vm = 0; vm < vms_.size(); ++vm) {
    const std::int32_t host = placement.host_of(vm);
    if (host != Placement::kUnplaced)
      host_load[static_cast<std::size_t>(host)] += sizes[vm];
  }

  RepairOutcome outcome = repair_and_drain(sizes, placement, host_load, pool,
                                           bound, drain_below, constraints);
  rec.total_migrations +=
      outcome.repair_moves.size() + outcome.drain_moves.size();
  rec.provisioned_hosts =
      std::max(rec.provisioned_hosts, placement.active_host_count());
  return outcome;
}

EmulationReport ConsolidationEngine::evaluate(
    const Recommendation& recommendation) const {
  if (!truth_) throw std::logic_error("observe() an estate first");
  Stopwatch span("engine.evaluate_seconds");
  const auto truth_vms = to_vm_workloads(*truth_);
  const bool power_off = recommendation.strategy == Strategy::kDynamic ||
                         recommendation.strategy == Strategy::kHybrid;
  return emulate(truth_vms, recommendation.schedule, config_.settings,
                 power_off);
}

RobustnessReport ConsolidationEngine::evaluate_under_faults(
    const Recommendation& recommendation, const FaultPlan& plan,
    const ChaosOptions& options) const {
  if (!truth_) throw std::logic_error("observe() an estate first");
  Stopwatch span("engine.evaluate_faults_seconds");
  const auto truth_vms = to_vm_workloads(*truth_);
  const bool power_off = recommendation.strategy == Strategy::kDynamic ||
                         recommendation.strategy == Strategy::kHybrid;
  return replay_under_faults(truth_vms, recommendation.schedule,
                             config_.settings, power_off, plan, options);
}

}  // namespace vmcw
