// The consolidation flow of Section 2.1 as one engine:
//
//   Monitoring -> Prediction -> Size Estimation -> Placement -> Execution
//
// The engine observes an estate through per-minute monitoring agents into
// the hourly warehouse (the only data real planning ever sees), then
// produces a consolidation recommendation with any of the implemented
// strategies, including the migration-execution feasibility of the result.
// What the paper's tool suite did across 30+ engagements, in one object.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chaos/replay.h"
#include "core/admission.h"
#include "core/hybrid.h"
#include "core/migration_scheduler.h"
#include "core/study.h"
#include "monitoring/pipeline.h"
#include "topology/failure_domains.h"

namespace vmcw {

/// Strategy selector for recommendations. Extends the paper's three
/// compared algorithms with pure Static and the hybrid extension.
enum class Strategy {
  kStatic,
  kSemiStatic,
  kStochastic,
  kDynamic,
  kHybrid,
};

const char* to_string(Strategy strategy) noexcept;

class ConsolidationEngine {
 public:
  struct Config {
    AgentConfig agent;        ///< monitoring fidelity knobs
    StudySettings settings;   ///< Table 3 parameters
    double hybrid_fraction = 0.25;
    std::uint64_t monitoring_seed = 1;
    /// Seed the failure-domain map (rack / PDU assignment) derives from
    /// when settings.domains.spread is on or a fault plan wants correlated
    /// outages; keyed separately from monitoring so neither perturbs the
    /// other.
    std::uint64_t topology_seed = 1;
  };

  ConsolidationEngine() : ConsolidationEngine(Config{}) {}
  explicit ConsolidationEngine(Config config);

  /// Step 1 (Monitoring): run agents over the estate and fill the
  /// warehouse. The ground truth is kept only for inventory (specs/labels)
  /// and for evaluate().
  void observe(const Datacenter& estate);

  /// The planner's view: the estate as reconstructed from warehouse
  /// aggregates. Requires observe().
  const Datacenter& planner_view() const;

  /// Monitoring fidelity vs the observed ground truth.
  PipelineFidelity monitoring_fidelity() const;

  struct Recommendation {
    Strategy strategy = Strategy::kSemiStatic;
    std::vector<Placement> schedule;  ///< 1 entry for static variants
    std::size_t provisioned_hosts = 0;
    std::size_t total_migrations = 0;
    /// Migration-execution feasibility (dynamic/hybrid only; empty else).
    std::optional<ExecutionFeasibility> execution;
  };

  /// Steps 2-5: size, place and (for dynamic variants) check execution of
  /// the requested strategy, all on the warehouse view. Requires
  /// observe(). Returns std::nullopt when planning fails. When
  /// settings.domains.spread is on, application spread rules (at most
  /// ceil(n/k) replicas per rack) are compiled against failure_domain_map()
  /// and honored by every strategy.
  std::optional<Recommendation> recommend(Strategy strategy) const;

  /// The failure-domain map planning and fault generation share: derived
  /// from the target pool shape, settings.domains, and topology_seed.
  /// Requires observe() (the estate size bounds the materialized table).
  FailureDomainMap failure_domain_map() const;

  /// Online admission of one newcomer into a recommendation's final
  /// placement, without disturbing residents — the same single-VM path
  /// (core/admission's admit_one) the consolidation daemon uses. Residents
  /// and the newcomer are sized by peak demand over the planning history;
  /// compiled spread rules are honored. The newcomer takes VM index
  /// vm_count() in the returned placement.
  struct OnlineAdmission {
    std::size_t host = 0;
    Placement placement;  ///< residents + the newcomer, one VM larger
  };
  std::optional<OnlineAdmission> admit_one_vm(const Recommendation& rec,
                                              const VmWorkload& newcomer) const;

  /// Threshold-triggered partial re-plan of a recommendation's final
  /// placement, sized at `hour`: hosts over the utilization bound are
  /// repaired by evicting and re-admitting single VMs; hosts below
  /// `drain_below` (0 disables) are drained entirely or not at all. The
  /// final schedule entry is updated in place; the returned outcome lists
  /// the moves. This is the batch-side twin of the daemon's per-tick
  /// incremental decisions.
  RepairOutcome partial_replan(Recommendation& rec, std::size_t hour,
                               double drain_below = 0.0) const;

  /// Replay the *ground truth* against a recommendation's schedule — the
  /// emulator step the paper uses to compare algorithms.
  EmulationReport evaluate(const Recommendation& recommendation) const;

  /// Robustness counterpart of evaluate(): replay the ground truth under
  /// an injected fault schedule (src/chaos). With a no-fault plan the
  /// embedded EmulationReport is bit-identical to evaluate()'s.
  RobustnessReport evaluate_under_faults(
      const Recommendation& recommendation, const FaultPlan& plan,
      const ChaosOptions& options = {}) const;

  const Config& config() const noexcept { return config_; }

 private:
  /// Spread rules compiled exactly as recommend() compiles them, so the
  /// online entry points honor the same constraints as batch planning.
  ConstraintSet compiled_constraints() const;
  /// Utilization bound of a strategy (dynamic variants reserve migration
  /// headroom; static ones do not).
  double bound_for(Strategy strategy) const noexcept;

  Config config_;
  std::optional<Datacenter> truth_;
  std::optional<Datacenter> view_;
  std::vector<VmWorkload> vms_;  ///< from the warehouse view
};

}  // namespace vmcw
