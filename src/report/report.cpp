#include "report/report.h"

#include <filesystem>
#include <stdexcept>
#include <vector>

#include "analysis/burstiness.h"
#include "analysis/resource_ratio.h"
#include "analysis/workload_report.h"
#include "core/study.h"
#include "migration/reservation_study.h"
#include "runtime/telemetry.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/table.h"
#include "validation/replay.h"

namespace vmcw {

namespace {

void section_fleets(std::string& md, const std::vector<Datacenter>& fleets) {
  md += "## Workloads (Table 2)\n\n";
  TextTable table({"Name", "Industry", "Servers", "CPU util", "Web share",
                   "Avg committed mem"});
  for (const auto& dc : fleets) {
    const auto s = summarize_workload(dc);
    table.add_row({s.name, s.industry, std::to_string(s.servers),
                   fmt_pct(s.avg_cpu_util), fmt_pct(s.web_fraction, 0),
                   fmt(s.avg_mem_committed_gb, 1) + " GB"});
  }
  md += table.markdown() + "\n";
}

void section_burstiness(std::string& md,
                        const std::vector<Datacenter>& fleets) {
  md += "## Burstiness (Figures 2-5, Observations 1-2)\n\n";
  TextTable table({"Workload", "CPU P2A p50", "CPU CoV>=1", "Mem P2A p50",
                   "Mem CoV>=1"});
  for (const auto& dc : fleets) {
    const auto cpu = burstiness(dc, Resource::kCpu, 1);
    const auto mem = burstiness(dc, Resource::kMemory, 1);
    table.add_row({dc.industry, fmt(p2a_cdf(cpu).quantile(0.5), 1),
                   fmt_pct(heavy_tailed_fraction(cpu)),
                   fmt(p2a_cdf(mem).quantile(0.5), 2),
                   fmt_pct(heavy_tailed_fraction(mem))});
  }
  md += table.markdown();
  md += "\nCPU demand is heavy-tailed for the web-heavy estates while "
        "memory stays an order of magnitude calmer everywhere.\n\n";
}

void section_resource_ratio(std::string& md,
                            const std::vector<Datacenter>& fleets,
                            const StudySettings& settings) {
  md += "## Resource ratio vs the HS23 blade (Figure 6, Observation 3)\n\n";
  TextTable table({"Workload", "ratio p50 (RPE2/GB)", "ratio p90",
                   "memory-constrained intervals"});
  for (const auto& dc : fleets) {
    const auto cdf = resource_ratio_cdf(dc, settings.interval_hours,
                                        settings.eval_hours);
    table.add_row({dc.industry, fmt(cdf.quantile(0.5), 0),
                   fmt(cdf.quantile(0.9), 0),
                   fmt_pct(memory_constrained_fraction(
                       dc, settings.interval_hours, settings.eval_hours))});
  }
  md += table.markdown();
  md += "\nIntervals below the blade's ratio of 160 RPE2/GB run out of "
        "memory before CPU.\n\n";
}

void section_study(std::string& md, const std::vector<StudyResult>& studies) {
  md += "## Consolidation comparison (Figures 7-8, Observations 5-6)\n\n";
  TextTable table({"Workload", "space SS/St/Dy (norm)", "power SS/St/Dy",
                   "contention time Dy", "migrations/interval"});
  for (const auto& study : studies) {
    const auto& dyn = study.get(Algorithm::kDynamic);
    table.add_row(
        {study.workload,
         "1.000 / " +
             fmt(study.normalized_space_cost(Algorithm::kStochastic), 3) +
             " / " + fmt(study.normalized_space_cost(Algorithm::kDynamic), 3),
         "1.000 / " +
             fmt(study.normalized_power_cost(Algorithm::kStochastic), 3) +
             " / " + fmt(study.normalized_power_cost(Algorithm::kDynamic), 3),
         fmt_pct(dyn.emulation.contention_time_fraction()),
         fmt(static_cast<double>(dyn.total_migrations) /
                 static_cast<double>(study.settings.intervals()),
             1)});
  }
  md += table.markdown();
  md += "\nStochastic (PCP) semi-static consolidation holds or beats "
        "dynamic consolidation on space cost; dynamic wins on power only "
        "for the bursty CPU-intensive estates, where it also contends.\n\n";
}

void section_sensitivity(std::string& md,
                         const std::vector<Datacenter>& fleets,
                         const StudySettings& settings,
                         const ReportOptions& options) {
  md += "## Sensitivity to the migration reservation (Figures 13-16, "
        "Observation 7)\n\n";
  std::vector<double> bounds;
  for (double u = options.min_bound; u <= options.max_bound + 1e-9;
       u += options.bound_step)
    bounds.push_back(u);

  for (const auto& dc : fleets) {
    const auto sweep = sensitivity_sweep(dc, settings, bounds);
    md += "**" + dc.industry + "** (Semi-Static " +
          std::to_string(sweep.semi_static_hosts) + " hosts, Stochastic " +
          std::to_string(sweep.stochastic_hosts) + "):\n\n";
    TextTable table({"U", "dynamic hosts", "vs stochastic"});
    for (const auto& p : sweep.dynamic_points) {
      table.add_row({fmt(p.utilization_bound, 2),
                     std::to_string(p.dynamic_hosts),
                     fmt(static_cast<double>(p.dynamic_hosts) /
                             static_cast<double>(sweep.stochastic_hosts),
                         3)});
    }
    md += table.markdown() + "\n";
  }
}

void section_migration(std::string& md) {
  md += "## Live-migration reservation (Observation 4)\n\n";
  ReservationStudyConfig config;
  config.utilization_step = 0.01;
  const double bound = max_reliable_cpu_utilization(config);
  md += "Pre-copy model: migrations stay reliable up to " +
        fmt_pct(bound, 0) + " host CPU utilization, i.e. reserve " +
        fmt_pct(1.0 - bound, 0) +
        " of every host (the paper adopts a pragmatic 20%; VMware "
        "recommends 30%).\n\n";
}

void section_validation(std::string& md) {
  md += "## Emulator validation (Section 5.2)\n\n";
  const auto trace = make_validation_trace(336, 77);
  const RubisLikeApp rubis;
  const DaxpyLikeApp daxpy;
  const auto r = validate_emulator(rubis, trace, 0, 336, 1);
  const auto d = validate_emulator(daxpy, trace, 0, 336, 2);
  TextTable table({"Workload", "CPU p99 error", "Mem p99 error",
                   "paper bound"});
  table.add_row({"RUBiS-like", fmt_pct(r.cpu_p99_error),
                 fmt_pct(r.mem_p99_error), "5%"});
  table.add_row({"daxpy-like", fmt_pct(d.cpu_p99_error),
                 fmt_pct(d.mem_p99_error), "2%"});
  md += table.markdown() + "\n";
}

}  // namespace

std::string build_paper_report(const ReportOptions& options) {
  std::vector<Datacenter> fleets;
  for (const auto& preset : all_workload_specs()) {
    const WorkloadSpec spec =
        options.servers_per_dc > 0
            ? scaled_down(preset, options.servers_per_dc, preset.hours)
            : preset;
    fleets.push_back(generate_datacenter(spec, options.seed));
  }
  const StudySettings settings;
  std::vector<StudyResult> studies;
  for (const auto& dc : fleets) studies.push_back(run_study(dc, settings));

  std::string md;
  md += "# Virtual Machine Consolidation in the Wild — reproduction "
        "report\n\n";
  md += "Synthetic estates, seed " + std::to_string(options.seed) +
        "; Table 3 baseline settings (14-day window, 2h intervals, " +
        fmt_pct(1.0 - settings.dynamic_utilization_bound, 0) +
        " migration reservation).\n\n";
  section_fleets(md, fleets);
  section_burstiness(md, fleets);
  section_resource_ratio(md, fleets, settings);
  section_study(md, studies);
  section_sensitivity(md, fleets, settings, options);
  section_migration(md);
  section_validation(md);
  md += "---\nGenerated by vmcw::build_paper_report().\n";
  return md;
}

namespace {

std::vector<Datacenter> report_fleets(const ReportOptions& options) {
  std::vector<Datacenter> fleets;
  for (const auto& preset : all_workload_specs()) {
    const WorkloadSpec spec =
        options.servers_per_dc > 0
            ? scaled_down(preset, options.servers_per_dc, preset.hours)
            : preset;
    fleets.push_back(generate_datacenter(spec, options.seed));
  }
  return fleets;
}

void write_file(const std::string& path, const std::string& content,
                std::vector<std::string>& written) {
  if (!write_file_atomic(path, content))
    throw std::runtime_error("cannot write " + path);
  written.push_back(path);
}

/// One row per quantile step, one column per (workload, window) curve.
std::string cdf_csv(const std::vector<Datacenter>& fleets, Resource resource,
                    bool plot_cov) {
  TextTable table([&] {
    std::vector<std::string> header{"quantile"};
    for (const auto& dc : fleets)
      for (const char* w : {"1h", "2h", "4h"})
        header.push_back(dc.industry + " " + w);
    return header;
  }());
  std::vector<EmpiricalCdf> cdfs;
  for (const auto& dc : fleets) {
    for (std::size_t window : {1u, 2u, 4u}) {
      const auto result = burstiness(dc, resource, window);
      cdfs.push_back(plot_cov ? cov_cdf(result) : p2a_cdf(result));
    }
  }
  for (int q = 1; q <= 100; ++q) {
    std::vector<std::string> row{fmt(q / 100.0, 2)};
    for (const auto& cdf : cdfs) row.push_back(fmt(cdf.quantile(q / 100.0), 4));
    table.add_row(std::move(row));
  }
  return table.csv();
}

}  // namespace

std::vector<std::string> write_report_data(const std::string& directory,
                                           const ReportOptions& options) {
  std::filesystem::create_directories(directory);
  std::vector<std::string> written;
  const auto fleets = report_fleets(options);
  const StudySettings settings;

  // Figs 2-5: burstiness CDFs.
  write_file(directory + "/fig02_cpu_p2a.csv",
             cdf_csv(fleets, Resource::kCpu, false), written);
  write_file(directory + "/fig03_cpu_cov.csv",
             cdf_csv(fleets, Resource::kCpu, true), written);
  write_file(directory + "/fig04_mem_p2a.csv",
             cdf_csv(fleets, Resource::kMemory, false), written);
  write_file(directory + "/fig05_mem_cov.csv",
             cdf_csv(fleets, Resource::kMemory, true), written);

  // Fig 6: resource-ratio CDFs.
  {
    TextTable table({"quantile", fleets[0].industry, fleets[1].industry,
                     fleets[2].industry, fleets[3].industry});
    std::vector<EmpiricalCdf> cdfs;
    for (const auto& dc : fleets)
      cdfs.push_back(resource_ratio_cdf(dc, settings.interval_hours,
                                        settings.eval_hours));
    for (int q = 1; q <= 100; ++q) {
      std::vector<std::string> row{fmt(q / 100.0, 2)};
      for (const auto& cdf : cdfs)
        row.push_back(fmt(cdf.quantile(q / 100.0), 2));
      table.add_row(std::move(row));
    }
    write_file(directory + "/fig06_resource_ratio.csv", table.csv(), written);
  }

  // Fig 7 + Fig 12: need the studies.
  std::vector<StudyResult> studies;
  for (const auto& dc : fleets) studies.push_back(run_study(dc, settings));
  {
    TextTable table({"workload", "algorithm", "space_norm", "power_norm",
                     "hosts", "contention_time"});
    for (const auto& study : studies) {
      for (Algorithm a : {Algorithm::kSemiStatic, Algorithm::kStochastic,
                          Algorithm::kDynamic}) {
        const auto& r = study.get(a);
        table.add_row({study.workload, to_string(a),
                       fmt(study.normalized_space_cost(a), 4),
                       fmt(study.normalized_power_cost(a), 4),
                       std::to_string(r.provisioned_hosts),
                       fmt(r.emulation.contention_time_fraction(), 4)});
      }
    }
    write_file(directory + "/fig07_costs.csv", table.csv(), written);
  }
  {
    TextTable table({"workload", "interval", "active_fraction"});
    for (const auto& study : studies) {
      const auto& dyn = study.get(Algorithm::kDynamic);
      for (std::size_t k = 0;
           k < dyn.emulation.active_hosts_per_interval.size(); ++k) {
        table.add_row(
            {study.workload, std::to_string(k),
             fmt(static_cast<double>(
                     dyn.emulation.active_hosts_per_interval[k]) /
                     static_cast<double>(dyn.provisioned_hosts),
                 4)});
      }
    }
    write_file(directory + "/fig12_active_servers.csv", table.csv(), written);
  }

  // Figs 13-16: sensitivity curves.
  {
    std::vector<double> bounds;
    for (double u = options.min_bound; u <= options.max_bound + 1e-9;
         u += options.bound_step)
      bounds.push_back(u);
    TextTable table({"workload", "utilization_bound", "dynamic_hosts",
                     "semi_static_hosts", "stochastic_hosts"});
    for (const auto& dc : fleets) {
      const auto sweep = sensitivity_sweep(dc, settings, bounds);
      for (const auto& p : sweep.dynamic_points) {
        table.add_row({dc.industry, fmt(p.utilization_bound, 2),
                       std::to_string(p.dynamic_hosts),
                       std::to_string(sweep.semi_static_hosts),
                       std::to_string(sweep.stochastic_hosts)});
      }
    }
    write_file(directory + "/fig13_16_sensitivity.csv", table.csv(), written);
  }
  return written;
}

std::string render_robustness_report(std::span<const RobustnessRow> rows) {
  std::string md;
  md += "## Robustness under injected faults (src/chaos)\n\n";
  TextTable table({"Workload", "Strategy", "f", "Crashes", "Evac ok/fail",
                   "Stale ivs", "Migr attempts", "Retries", "Deferred",
                   "VM down h", "Availability", "SLA intervals",
                   "Capacity lost (host-h)", "Incidents", "Worst recovery h",
                   "Max app blast", "Peak VMs down"});
  for (const auto& row : rows) {
    const RobustnessReport& r = row.report;
    table.add_row({row.workload, row.strategy, fmt(row.fault_intensity, 2),
                   std::to_string(r.host_crashes),
                   std::to_string(r.evacuations) + "/" +
                       std::to_string(r.failed_evacuations),
                   std::to_string(r.stale_intervals),
                   std::to_string(r.migration_attempts),
                   std::to_string(r.migration_retries),
                   std::to_string(r.migrations_deferred),
                   std::to_string(r.vm_downtime_hours),
                   fmt_pct(r.availability(), 3),
                   std::to_string(r.sla_violation_intervals.size()),
                   fmt(r.capacity_lost_host_hours, 0),
                   std::to_string(r.incidents.size()),
                   fmt(r.worst_incident_recovery_hours, 1),
                   fmt_pct(r.max_app_blast_radius, 1),
                   std::to_string(r.max_vms_down_simultaneously)});
  }
  md += table.markdown();
  md += "\nFault intensity f scales a production-shaped mix (host crashes, "
        "migration failures and slowdowns, monitoring gaps); f = 0 replays "
        "the perfect world and is bit-identical to the plain emulator. "
        "Incident columns cover correlated rack / power-domain outages: "
        "worst detection-to-restored time, the largest share of one "
        "application's replicas lost to a single incident, and the peak "
        "count of VMs offline in any hour.\n";
  return md;
}

void write_paper_report(const std::string& path,
                        const ReportOptions& options) {
  if (!write_file_atomic(path, build_paper_report(options)))
    throw std::runtime_error("cannot write " + path);
}

}  // namespace vmcw
