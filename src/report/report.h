// One-call reproduction report.
//
// Runs the complete study — trace analysis (Figs 2-6), the three-way
// consolidation comparison (Figs 7-12), the sensitivity sweep (Figs
// 13-16), the migration reservation study (Observation 4) and the emulator
// validation (Section 5.2) — and renders everything as a single Markdown
// document. This is the "consolidation planning analysis" artifact the
// paper's Section 8 recommends producing before consolidating an estate.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "chaos/replay.h"

namespace vmcw {

struct ReportOptions {
  /// Servers per data center; 0 = the full Table 2 fleet sizes.
  int servers_per_dc = 0;
  std::uint64_t seed = 20141208;
  /// Utilization bounds for the sensitivity section.
  double min_bound = 0.6;
  double max_bound = 1.0;
  double bound_step = 0.1;
};

/// Build the full report as a Markdown string.
std::string build_paper_report(const ReportOptions& options = {});

/// One replayed cell of a fault-injection study (src/chaos).
struct RobustnessRow {
  std::string workload;
  std::string strategy;
  double fault_intensity = 0;
  RobustnessReport report;
};

/// Render a robustness study as a Markdown section: per cell the injected
/// faults it survived, the retry/deferral work its executor did, and the
/// availability and SLA exposure that resulted.
std::string render_robustness_report(std::span<const RobustnessRow> rows);

/// Convenience: write it to a file. Throws std::runtime_error on I/O error.
void write_paper_report(const std::string& path,
                        const ReportOptions& options = {});

/// Emit plot-ready CSV data files into `directory` (created if missing):
///   fig02_cpu_p2a.csv ... fig05_mem_cov.csv   per-server CDF samples
///   fig06_resource_ratio.csv                  per-interval ratio CDFs
///   fig07_costs.csv                           normalized space/power bars
///   fig12_active_servers.csv                  active-fraction CDFs
///   fig13_16_sensitivity.csv                  hosts vs utilization bound
/// Returns the list of files written. Throws std::runtime_error on I/O
/// error.
std::vector<std::string> write_report_data(const std::string& directory,
                                           const ReportOptions& options = {});

}  // namespace vmcw
