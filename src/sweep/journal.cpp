#include "sweep/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <stdexcept>

#include "runtime/wire.h"

namespace vmcw {

namespace {

using wire::ByteReader;
using wire::ByteWriter;
using wire::fnv1a64;
using wire::load_u32;
using wire::load_u64;
using wire::read_all;
using wire::write_all;

// ------------------------------------------------------------- framing ----

constexpr char kMagic[8] = {'V', 'M', 'C', 'W', 'J', 'N', 'L', '1'};
constexpr std::uint32_t kVersion = 1;
// magic + version + grid hash + cell count.
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8;
// kind + payload length + payload checksum.
constexpr std::size_t kRecordHeaderSize = 1 + 8 + 8;

constexpr std::uint8_t kResultRecord = 1;
constexpr std::uint8_t kAttemptFailedRecord = 2;

// ----------------------------------------------------- result records ----

void put_report(ByteWriter& w, const EmulationReport& r) {
  w.u64(r.eval_hours);
  w.u64(r.intervals);
  w.u64(r.provisioned_hosts);
  w.vec_u64(r.active_hosts_per_interval);
  w.vec_f64(r.host_avg_cpu_util);
  w.vec_f64(r.host_peak_cpu_util);
  w.vec_f64(r.cpu_contention_samples);
  w.vec_f64(r.mem_contention_samples);
  w.u64(r.hours_with_contention);
  w.vec_u64(r.vm_contention_hours);
  w.u64(r.total_vm_contention_hours);
  w.f64(r.energy_wh);
}

EmulationReport get_report(ByteReader& r) {
  EmulationReport rep;
  rep.eval_hours = r.u64();
  rep.intervals = r.u64();
  rep.provisioned_hosts = r.u64();
  rep.active_hosts_per_interval = r.vec_u64();
  rep.host_avg_cpu_util = r.vec_f64();
  rep.host_peak_cpu_util = r.vec_f64();
  rep.cpu_contention_samples = r.vec_f64();
  rep.mem_contention_samples = r.vec_f64();
  rep.hours_with_contention = r.u64();
  rep.vm_contention_hours = r.vec_u64();
  rep.total_vm_contention_hours = r.u64();
  rep.energy_wh = r.f64();
  return rep;
}

void put_robustness(ByteWriter& w, const RobustnessReport& r) {
  put_report(w, r.emulation);
  w.u64(r.host_crashes);
  w.f64(r.capacity_lost_host_hours);
  w.u64(r.stale_intervals);
  w.u64(r.migration_attempts);
  w.u64(r.failed_migration_attempts);
  w.u64(r.migration_retries);
  w.u64(r.migrations_completed);
  w.u64(r.migrations_deferred);
  w.u64(r.evacuations);
  w.u64(r.failed_evacuations);
  w.u64(r.vm_downtime_hours);
  w.vec_u64(r.vm_down_hours);
  w.u64(r.max_vms_down_simultaneously);
  w.u64(r.incidents.size());
  for (const IncidentRecord& inc : r.incidents) {
    w.u8(static_cast<std::uint8_t>(inc.cause));
    w.i32(inc.domain);
    w.u64(inc.start_hour);
    w.u64(inc.hosts_lost);
    w.u64(inc.vms_affected);
    w.u64(inc.vms_stranded);
    w.f64(inc.recovery_hours);
    w.f64(inc.max_app_blast_fraction);
  }
  w.u64(0);  // reserved
  w.f64(r.worst_incident_recovery_hours);
  w.f64(r.max_app_blast_radius);
  w.u64(r.sla_violation_intervals.size());
  for (const auto& [from, to] : r.sla_violation_intervals) {
    w.u64(from);
    w.u64(to);
  }
}

RobustnessReport get_robustness(ByteReader& r) {
  RobustnessReport rob;
  rob.emulation = get_report(r);
  rob.host_crashes = r.u64();
  rob.capacity_lost_host_hours = r.f64();
  rob.stale_intervals = r.u64();
  rob.migration_attempts = r.u64();
  rob.failed_migration_attempts = r.u64();
  rob.migration_retries = r.u64();
  rob.migrations_completed = r.u64();
  rob.migrations_deferred = r.u64();
  rob.evacuations = r.u64();
  rob.failed_evacuations = r.u64();
  rob.vm_downtime_hours = r.u64();
  rob.vm_down_hours = r.vec_u64();
  rob.max_vms_down_simultaneously = r.u64();
  const std::uint64_t incidents = r.u64();
  rob.incidents.reserve(incidents);
  for (std::uint64_t i = 0; i < incidents; ++i) {
    IncidentRecord inc;
    inc.cause = static_cast<OutageCause>(r.u8());
    inc.domain = r.i32();
    inc.start_hour = r.u64();
    inc.hosts_lost = r.u64();
    inc.vms_affected = r.u64();
    inc.vms_stranded = r.u64();
    inc.recovery_hours = r.f64();
    inc.max_app_blast_fraction = r.f64();
    rob.incidents.push_back(inc);
  }
  (void)r.u64();  // reserved
  rob.worst_incident_recovery_hours = r.f64();
  rob.max_app_blast_radius = r.f64();
  const std::uint64_t slas = r.u64();
  rob.sla_violation_intervals.reserve(slas);
  for (std::uint64_t i = 0; i < slas; ++i) {
    const std::size_t from = r.u64();
    const std::size_t to = r.u64();
    rob.sla_violation_intervals.emplace_back(from, to);
  }
  return rob;
}

std::vector<std::uint8_t> encode_result(const SweepCellResult& result) {
  ByteWriter w;
  w.u64(result.index);
  w.str(result.workload);
  w.u8(static_cast<std::uint8_t>(result.strategy));
  w.u64(result.seed);
  w.u8(result.planned ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(result.status));
  w.str(result.error);
  w.u32(result.attempts);
  w.u64(result.provisioned_hosts);
  w.u64(result.total_migrations);
  put_report(w, result.report);
  put_robustness(w, result.robustness);
  w.f64(result.wall_seconds);
  return w.bytes();
}

SweepCellResult decode_result(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  SweepCellResult result;
  result.index = r.u64();
  result.workload = r.str();
  result.strategy = static_cast<Strategy>(r.u8());
  result.seed = r.u64();
  result.planned = r.u8() != 0;
  result.status = static_cast<CellStatus>(r.u8());
  result.error = r.str();
  result.attempts = r.u32();
  result.provisioned_hosts = r.u64();
  result.total_migrations = r.u64();
  result.report = get_report(r);
  result.robustness = get_robustness(r);
  result.wall_seconds = r.f64();
  if (!r.exhausted()) throw std::runtime_error("journal: trailing bytes");
  return result;
}

// -------------------------------------------------------- grid hashing ----

void hash_spec(ByteWriter& w, const CpuClassParams& p) {
  w.f64(p.diurnal_peak_mult);
  w.f64(p.diurnal_dispersion);
  w.i32(p.business_start_hour);
  w.i32(p.business_end_hour);
  w.f64(p.phase_jitter_hours);
  w.f64(p.weekend_factor);
  w.f64(p.month_end_boost);
  w.f64(p.batch_intensity);
  w.i32(p.batch_start_hour);
  w.i32(p.batch_duration_hours);
  w.f64(p.batch_off_level);
  w.i32(p.batch_start_jitter_hours);
  w.f64(p.bursts_per_day);
  w.f64(p.burst_rate_dispersion);
  w.f64(p.burst_alpha);
  w.f64(p.burst_cap_mult);
  w.f64(p.burst_mean_duration_hours);
  w.f64(p.ar1_rho);
  w.f64(p.ar1_sigma);
  w.f64(p.ar1_sigma_dispersion);
}

void hash_spec(ByteWriter& w, const MemClassParams& p) {
  w.f64(p.base_fraction_mean);
  w.f64(p.base_fraction_sigma);
  w.f64(p.coupled_fraction);
  w.f64(p.coupled_fraction_sigma);
  w.f64(p.linear_coupling_probability);
  w.f64(p.linear_coupled_fraction);
  w.f64(p.ar1_rho);
  w.f64(p.ar1_sigma);
}

void hash_spec(ByteWriter& w, const ServerSpec& s) {
  w.str(s.model);
  w.f64(s.cpu_rpe2);
  w.f64(s.memory_mb);
  w.f64(s.idle_watts);
  w.f64(s.peak_watts);
  w.f64(s.rack_units);
  w.f64(s.hardware_cost);
}

void hash_spec(ByteWriter& w, const MigrationConfig& m) {
  w.f64(m.vm_memory_mb);
  w.f64(m.dirty_rate_mbps);
  w.f64(m.writable_working_set_mb);
  w.f64(m.link_bandwidth_mbps);
  w.f64(m.downtime_target_ms);
  w.i32(m.max_rounds);
  w.f64(m.migration_cpu_fraction);
  w.f64(m.host_cpu_utilization);
  w.f64(m.host_mem_utilization);
}

void hash_cell(ByteWriter& w, const SweepCell& cell) {
  const WorkloadSpec& spec = cell.spec;
  w.str(spec.name);
  w.str(spec.industry);
  w.i32(spec.num_servers);
  w.u64(spec.hours);
  w.f64(spec.target_avg_cpu_util);
  w.f64(spec.util_dispersion_cov);
  w.f64(spec.util_ceiling_mean);
  w.f64(spec.util_ceiling_sigma);
  w.f64(spec.web_fraction);
  w.f64(spec.app_size_mean);
  w.f64(spec.shared_burst_fraction);
  w.f64(spec.app_phase_jitter_hours);
  w.f64(spec.fleet_burst_per_day);
  w.f64(spec.fleet_burst_alpha);
  w.f64(spec.fleet_burst_cap_mult);
  w.f64(spec.fleet_burst_mean_duration_hours);
  w.u64(spec.server_mix.weights.size());
  for (const double weight : spec.server_mix.weights) w.f64(weight);
  hash_spec(w, spec.web_cpu);
  hash_spec(w, spec.batch_cpu);
  hash_spec(w, spec.web_mem);
  hash_spec(w, spec.batch_mem);

  const StudySettings& s = cell.settings;
  hash_spec(w, s.target);
  w.u64(s.history_hours);
  w.u64(s.eval_hours);
  w.u64(s.interval_hours);
  w.f64(s.dynamic_utilization_bound);
  w.f64(s.static_utilization_bound);
  w.f64(s.body_percentile);
  w.f64(s.cluster_similarity);
  w.f64(s.stochastic_memory_percentile);
  w.i32(s.predictor.lookback_days);
  w.f64(s.predictor.cpu_safety_margin);
  w.f64(s.predictor.mem_safety_margin);
  w.u8(s.domains.spread ? 1 : 0);
  w.u64(s.domains.spread_k);
  w.u64(s.domains.hosts_per_rack);
  w.u64(s.domains.racks_per_power_domain);

  w.u8(static_cast<std::uint8_t>(cell.strategy));
  w.u64(cell.seed);

  const FaultSpec& f = cell.faults;
  w.f64(f.host_crashes_per_month);
  w.u64(f.reboot_hours_min);
  w.u64(f.reboot_hours_max);
  w.f64(f.migration_failure_rate);
  w.f64(f.migration_slowdown_rate);
  w.f64(f.migration_slowdown_max);
  w.f64(f.monitoring_gap_rate);
  w.u64(f.monitoring_gap_max_intervals);
  w.f64(f.rack_outages_per_month);
  w.f64(f.power_domain_outages_per_month);
  w.u64(f.domain_outage_hours_min);
  w.u64(f.domain_outage_hours_max);

  const ChaosOptions& c = cell.chaos;
  w.i32(c.retry.max_attempts);
  w.f64(c.retry.backoff_base_s);
  w.f64(c.retry.backoff_cap_s);
  w.i32(c.per_host_migration_limit);
  hash_spec(w, c.migration);
  w.f64(c.evacuation.destination_bound);
  w.i32(c.evacuation.per_host_migration_limit);
  hash_spec(w, c.evacuation.migration);
  w.u64(c.evacuation.unavailable_hosts.size());
  for (const std::uint8_t h : c.evacuation.unavailable_hosts) w.u8(h);
}

}  // namespace

std::uint64_t sweep_grid_hash(std::span<const SweepCell> cells) {
  ByteWriter w;
  w.u64(cells.size());
  for (const SweepCell& cell : cells) hash_cell(w, cell);
  return fnv1a64(w.bytes().data(), w.bytes().size());
}

SweepJournal::~SweepJournal() { close(); }

void SweepJournal::close() {
  MutexLock lk(mutex_);
  close_locked();
}

void SweepJournal::close_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SweepJournal::Recovery SweepJournal::open(const std::string& path,
                                          std::uint64_t grid_hash,
                                          std::size_t cell_count,
                                          bool resume) {
  // open() runs before the journal is shared with worker threads, but
  // holding the lock throughout keeps fd_'s guard unconditional.
  MutexLock lk(mutex_);
  close_locked();
  Recovery rec;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw std::runtime_error("SweepJournal: cannot open " + path);

  std::vector<std::uint8_t> bytes;
  const bool readable = read_all(fd_, bytes);
  const bool header_ok =
      readable && bytes.size() >= kHeaderSize &&
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0 &&
      load_u32(bytes.data() + 8) == kVersion &&
      load_u64(bytes.data() + 12) == grid_hash &&
      load_u64(bytes.data() + 20) == cell_count;

  if (resume && header_ok) {
    // Replay intact records; anything from the first bad frame on is the
    // torn tail of a crash and is truncated away.
    std::map<std::size_t, SweepCellResult> terminal;
    std::map<std::size_t, int> attempts;
    std::size_t off = kHeaderSize;
    while (off < bytes.size()) {
      if (bytes.size() - off < kRecordHeaderSize) break;
      const std::uint8_t kind = bytes[off];
      const std::uint64_t len = load_u64(bytes.data() + off + 1);
      const std::uint64_t checksum = load_u64(bytes.data() + off + 9);
      if ((kind != kResultRecord && kind != kAttemptFailedRecord) ||
          len > bytes.size() - off - kRecordHeaderSize)
        break;
      const std::uint8_t* payload = bytes.data() + off + kRecordHeaderSize;
      if (fnv1a64(payload, len) != checksum) break;
      try {
        if (kind == kResultRecord) {
          SweepCellResult result = decode_result(payload, len);
          if (result.index >= cell_count)
            throw std::runtime_error("journal: index out of grid");
          terminal[result.index] = std::move(result);
        } else {
          ByteReader r(payload, len);
          const std::size_t index = r.u64();
          const int attempt = static_cast<int>(r.u32());
          (void)r.u8();   // status
          (void)r.str();  // error text (kept for post-mortems)
          if (index >= cell_count)
            throw std::runtime_error("journal: index out of grid");
          attempts[index] = std::max(attempts[index], attempt);
        }
      } catch (const std::exception&) {
        break;  // decodes cleanly or it is the torn tail
      }
      off += kRecordHeaderSize + len;
    }
    if (off < bytes.size()) {
      rec.torn_tail = true;
      rec.bytes_discarded = bytes.size() - off;
      if (::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
        // Cannot trim the torn tail: appending would interleave with
        // garbage, so fall back to a fresh journal.
        rec.results.clear();
        rec.torn_tail = false;
        goto fresh;
      }
    }
    for (auto& [index, result] : terminal) {
      attempts.erase(index);
      rec.results.push_back(std::move(result));
    }
    for (const auto& [index, attempt] : attempts)
      rec.attempts_used.emplace_back(index, attempt);
    ::lseek(fd_, 0, SEEK_END);
    return rec;
  }

fresh:
  // Not resuming, no journal yet, or a stale one (the grid changed since
  // it was written): start clean. Stale results are never mixed in.
  rec.stale = resume && readable && !bytes.empty();
  rec.results.clear();
  rec.attempts_used.clear();
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    close_locked();
    return rec;  // journaling disabled; the sweep still runs
  }
  ByteWriter header;
  for (const char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kVersion);
  header.u64(grid_hash);
  header.u64(cell_count);
  if (!write_all(fd_, header.bytes().data(), header.bytes().size())) {
    close_locked();
    return rec;
  }
  ::fdatasync(fd_);
  return rec;
}

void SweepJournal::append_record(std::uint8_t kind,
                                 const std::vector<std::uint8_t>& payload) {
  ByteWriter frame;
  frame.u8(kind);
  frame.u64(payload.size());
  frame.u64(fnv1a64(payload.data(), payload.size()));
  std::vector<std::uint8_t> record = frame.bytes();
  record.insert(record.end(), payload.begin(), payload.end());

  MutexLock lk(mutex_);
  if (fd_ < 0) return;
  if (!write_all(fd_, record.data(), record.size())) {
    // A failed append (disk full) must not corrupt what is already
    // durable: stop journaling, keep computing.
    close_locked();
    return;
  }
  ::fdatasync(fd_);
}

void SweepJournal::append_result(const SweepCellResult& result) {
  append_record(kResultRecord, encode_result(result));
}

void SweepJournal::append_failed_attempt(std::size_t index, int attempt,
                                         CellStatus status,
                                         const std::string& error) {
  ByteWriter w;
  w.u64(index);
  w.u32(static_cast<std::uint32_t>(attempt));
  w.u8(static_cast<std::uint8_t>(status));
  w.str(error);
  append_record(kAttemptFailedRecord, w.bytes());
}

}  // namespace vmcw
