// SweepDriver: fan a grid of independent experiment cells across the
// thread pool.
//
// The paper's evaluation is a grid — figures x workload classes x
// strategies — where every cell is one self-contained (estate, settings,
// strategy, seed) run. The driver executes cells in any order on any
// number of threads and still produces bit-identical results, because each
// cell derives every RNG stream it needs (estate generation, monitoring
// noise) from its *own* seed via util/rng.h keyed forks and writes into
// its own result slot. Nothing mutable is shared between cells.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "chaos/replay.h"
#include "core/emulator.h"
#include "core/settings.h"
#include "engine/engine.h"
#include "runtime/thread_pool.h"
#include "trace/generator.h"

namespace vmcw {

/// One independent experiment: generate the estate from `spec` seeded by
/// the cell, observe it through the monitoring pipeline, plan with
/// `strategy`, and replay the ground truth against the plan.
struct SweepCell {
  WorkloadSpec spec;
  StudySettings settings;
  Strategy strategy = Strategy::kSemiStatic;
  std::uint64_t seed = 0;
  /// Fault injection (src/chaos). When faults.any(), the cell replays the
  /// plan under a FaultPlan derived from fork("chaos") of the cell seed and
  /// fills SweepCellResult::robustness; `report` is then the faulted
  /// replay's emulation. The default spec injects nothing, and the cell is
  /// bit-identical to a pre-chaos run. Rack / power-domain rates draw
  /// correlated outages against the failure-domain map the engine derives
  /// from fork("topology") of the cell seed — the same map
  /// settings.domains.spread compiles placement rules against.
  FaultSpec faults;
  ChaosOptions chaos;
};

/// How one cell ended. Anything but kOk leaves `planned == false` and the
/// reports default-constructed; kFailed/kTimedOut carry the exception text
/// in `error`. No outcome ever aborts or perturbs sibling cells.
enum class CellStatus : std::uint8_t {
  kOk = 0,
  kPlannerFailed = 1,  ///< planner returned no placement (deterministic)
  kFailed = 2,         ///< the cell threw; retried up to max_attempts
  kTimedOut = 3,       ///< the per-cell deadline cancelled it cooperatively
};

const char* to_string(CellStatus status) noexcept;

struct SweepCellResult {
  std::size_t index = 0;  ///< position in the submitted grid
  std::string workload;
  Strategy strategy = Strategy::kSemiStatic;
  std::uint64_t seed = 0;
  bool planned = false;  ///< false when the planner failed on this cell
  CellStatus status = CellStatus::kOk;
  std::string error;  ///< exception text for kFailed / kTimedOut
  /// Attempts consumed, counting the one that produced this result.
  /// Journaled, so a resumed sweep keeps the same retry accounting.
  std::uint32_t attempts = 1;
  std::size_t provisioned_hosts = 0;
  std::size_t total_migrations = 0;
  EmulationReport report;  ///< default-constructed when !planned
  /// Fault-injected replay outcome; only meaningful when the cell's
  /// FaultSpec injects something (robustness.emulation == report then).
  RobustnessReport robustness;
  /// Wall time of this cell — telemetry only, excluded from the
  /// determinism contract (a journal replays the original cell's time).
  double wall_seconds = 0;
};

/// Durability and isolation knobs for SweepDriver::run. The defaults run
/// exactly as the pre-journal driver did: no journal, no deadline, one
/// attempt per cell.
struct SweepOptions {
  /// Crash-safe cell journal path; empty disables journaling. Completed
  /// cells are appended atomically as they finish, keyed by a content hash
  /// of the whole grid, so a killed sweep can resume.
  std::string journal_path;
  /// Replay a matching journal's completed cells instead of recomputing
  /// them. A journal written for a different grid (any cell edited, added,
  /// or reordered) is detected by its hash and discarded. Without resume,
  /// an existing journal is truncated and the sweep starts clean.
  bool resume = false;
  /// Per-cell wall-clock watchdog, seconds; <= 0 disables. A cell past its
  /// deadline is cancelled cooperatively at the next interval boundary and
  /// recorded as kTimedOut.
  double cell_deadline_seconds = 0;
  /// Attempts per cell for kFailed / kTimedOut outcomes (1 = never retry).
  /// Failed attempts are journaled, so resumed sweeps do not reset the
  /// retry budget. Planner failures are deterministic and never retried.
  int max_attempts = 1;
  /// Test instrumentation: invoked at the start of every attempt (1-based)
  /// inside the cell's cancellation scope. May throw to simulate transient
  /// cell failures. Not part of the determinism contract.
  std::function<void(const SweepCell& cell, std::size_t index, int attempt)>
      cell_hook;
};

class SweepDriver {
 public:
  /// pool == nullptr uses ThreadPool::global().
  explicit SweepDriver(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Cartesian grid in row-major order: specs x settings x strategies x
  /// seeds.
  static std::vector<SweepCell> grid(std::span<const WorkloadSpec> specs,
                                     std::span<const StudySettings> settings,
                                     std::span<const Strategy> strategies,
                                     std::span<const std::uint64_t> seeds);

  /// Run every cell across the pool. Results are indexed like `cells` and
  /// bit-identical for any thread count. A cell whose planner fails is
  /// reported with planned == false rather than aborting the sweep.
  std::vector<SweepCellResult> run(std::span<const SweepCell> cells) const;

  /// Durable variant: journaled, resumable, watchdogged per `options`. A
  /// resumed sweep replays journaled cells and computes only the rest; the
  /// combined result vector is byte-identical to an uninterrupted run at
  /// any thread count (wall_seconds excepted, as always).
  std::vector<SweepCellResult> run(std::span<const SweepCell> cells,
                                   const SweepOptions& options) const;

 private:
  ThreadPool* pool_;
};

}  // namespace vmcw
