#include "sweep/sweep.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "runtime/cancellation.h"
#include "sweep/journal.h"
#include "runtime/telemetry.h"
#include "util/rng.h"

namespace vmcw {

const char* to_string(CellStatus status) noexcept {
  switch (status) {
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kPlannerFailed:
      return "planner_failed";
    case CellStatus::kFailed:
      return "failed";
    case CellStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

std::vector<SweepCell> SweepDriver::grid(
    std::span<const WorkloadSpec> specs,
    std::span<const StudySettings> settings,
    std::span<const Strategy> strategies,
    std::span<const std::uint64_t> seeds) {
  std::vector<SweepCell> cells;
  cells.reserve(specs.size() * settings.size() * strategies.size() *
                seeds.size());
  for (const auto& spec : specs)
    for (const auto& s : settings)
      for (const auto strategy : strategies)
        for (const auto seed : seeds) {
          SweepCell cell;
          cell.spec = spec;
          cell.settings = s;
          cell.strategy = strategy;
          cell.seed = seed;
          cells.push_back(std::move(cell));
        }
  return cells;
}

namespace {

/// The pure compute core of one cell: everything it consumes derives from
/// the cell itself, so the result is a function of `cell` alone.
void compute_cell(const SweepCell& cell, SweepCellResult& out) {
  // Every stream this cell consumes is a keyed fork of the cell
  // seed: independent of sibling cells and of scheduling order.
  const Rng root(cell.seed);  // vmcw-lint: allow(rng-construction) root of this sweep cell
  const Datacenter estate =
      generate_datacenter(cell.spec, root.fork("estate")());
  out.workload = estate.industry;

  ConsolidationEngine::Config config;
  config.settings = cell.settings;
  config.monitoring_seed = root.fork("monitoring")();
  config.topology_seed = root.fork("topology")();
  ConsolidationEngine engine(std::move(config));
  engine.observe(estate);

  const auto recommendation = engine.recommend(cell.strategy);
  if (!recommendation) {
    out.status = CellStatus::kPlannerFailed;
    return;
  }
  out.planned = true;
  out.provisioned_hosts = recommendation->provisioned_hosts;
  out.total_migrations = recommendation->total_migrations;
  if (cell.faults.any()) {
    // Fault schedule from the cell's own keyed stream: independent
    // of sibling cells and of scheduling order, like every other
    // stream the cell consumes.
    std::size_t host_bound = 0;
    for (const auto& p : recommendation->schedule)
      host_bound = std::max(host_bound, p.host_index_bound());
    // Correlated faults need the same failure-domain map planning
    // saw; with zero domain rates the plan is byte-identical with or
    // without it, so only build the map when a rate asks for it.
    const bool correlated = cell.faults.rack_outages_per_month > 0.0 ||
                            cell.faults.power_domain_outages_per_month > 0.0;
    FailureDomainMap topology;
    if (correlated) topology = engine.failure_domain_map();
    const FaultPlan plan = FaultPlan::generate(
        cell.faults, host_bound, cell.settings, root.fork("chaos")(),
        correlated ? &topology : nullptr);
    out.robustness =
        engine.evaluate_under_faults(*recommendation, plan, cell.chaos);
    out.report = out.robustness.emulation;
  } else {
    out.report = engine.evaluate(*recommendation);
  }
}

/// Run one cell's attempt loop: watchdog scope, retry budget, journaling of
/// consumed attempts and the terminal outcome. Never throws; every outcome
/// lands in `out` so sibling cells are untouched.
void run_cell(const SweepCell& cell, std::size_t index,
              const SweepOptions& options, int attempts_already_used,
              SweepJournal* journal, SweepCellResult& out) {
  Stopwatch cell_span("sweep.cell_seconds");
  out = SweepCellResult{};
  out.index = index;
  out.strategy = cell.strategy;
  out.seed = cell.seed;

  const int max_attempts = std::max(1, options.max_attempts);
  int attempt = attempts_already_used;
  for (;;) {
    ++attempt;
    out.attempts = static_cast<std::uint32_t>(attempt);
    out.status = CellStatus::kOk;
    out.error.clear();
    out.planned = false;
    out.report = EmulationReport{};
    out.robustness = RobustnessReport{};
    out.provisioned_hosts = 0;
    out.total_migrations = 0;
    try {
      // The watchdog is an ambient token: the pool's submit() wrapper
      // carries it into any nested parallel_for chunks this cell spawns,
      // and the emulator/replay loops poll it at interval boundaries.
      CancellationSource watchdog =
          options.cell_deadline_seconds > 0
              ? CancellationSource::with_deadline(options.cell_deadline_seconds)
              : CancellationSource();
      CancellationScope scope(watchdog.token());
      if (options.cell_hook) options.cell_hook(cell, index, attempt);
      compute_cell(cell, out);
    } catch (const CancelledError& e) {
      out.status = e.timed_out() ? CellStatus::kTimedOut : CellStatus::kFailed;
      out.error = e.what();
    } catch (const std::exception& e) {
      out.status = CellStatus::kFailed;
      out.error = e.what();
    } catch (...) {
      out.status = CellStatus::kFailed;
      out.error = "unknown exception";
    }
    if (out.status != CellStatus::kOk) {
      // Whatever the attempt computed before it unwound is partial; the
      // contract says a non-ok cell reports planned == false and
      // default-constructed reports (workload naming is kept for logs).
      out.planned = false;
      out.provisioned_hosts = 0;
      out.total_migrations = 0;
      out.report = EmulationReport{};
      out.robustness = RobustnessReport{};
    }

    if (out.status == CellStatus::kOk) {
      MetricsRegistry::global().add_counter("sweep.cells_done");
      break;
    }
    if (out.status == CellStatus::kPlannerFailed) {
      // Deterministic outcome: retrying would recompute the same refusal.
      MetricsRegistry::global().add_counter("sweep.cells_failed");
      break;
    }
    MetricsRegistry::global().add_counter(
        out.status == CellStatus::kTimedOut ? "sweep.cells_timed_out"
                                            : "sweep.cells_failed");
    if (attempt >= max_attempts) break;
    // Budget left: journal the consumed attempt (so a resumed sweep keeps
    // the same count) and go again.
    MetricsRegistry::global().add_counter("sweep.cells_retried");
    if (journal != nullptr)
      journal->append_failed_attempt(index, attempt, out.status, out.error);
  }

  out.wall_seconds = cell_span.stop();
  if (journal != nullptr) journal->append_result(out);
}

}  // namespace

std::vector<SweepCellResult> SweepDriver::run(
    std::span<const SweepCell> cells) const {
  return run(cells, SweepOptions{});
}

std::vector<SweepCellResult> SweepDriver::run(
    std::span<const SweepCell> cells, const SweepOptions& options) const {
  std::vector<SweepCellResult> results(cells.size());
  Stopwatch sweep_span("sweep.wall_seconds");
  MetricsRegistry::global().add_counter("sweep.cells", cells.size());

  // Open the journal (if any) and replay what a previous run finished.
  SweepJournal journal;
  std::vector<bool> replayed(cells.size(), false);
  std::vector<int> attempts_used(cells.size(), 0);
  if (!options.journal_path.empty()) {
    const std::uint64_t hash = sweep_grid_hash(cells);
    SweepJournal::Recovery recovery =
        journal.open(options.journal_path, hash, cells.size(), options.resume);
    if (recovery.stale)
      MetricsRegistry::global().add_counter("sweep.journal.stale_discarded");
    if (recovery.torn_tail)
      MetricsRegistry::global().add_counter("sweep.journal.torn_tail_bytes",
                                            recovery.bytes_discarded);
    for (SweepCellResult& replay : recovery.results) {
      const std::size_t i = replay.index;
      results[i] = std::move(replay);
      replayed[i] = true;
    }
    for (const auto& [index, attempts] : recovery.attempts_used)
      attempts_used[index] = attempts;
    MetricsRegistry::global().add_counter("sweep.journal.cells_replayed",
                                          recovery.results.size());
  }

  SweepJournal* journal_ptr = journal.is_open() ? &journal : nullptr;
  parallel_for(
      0, cells.size(),
      [&](std::size_t i) {
        if (replayed[i]) return;
        run_cell(cells[i], i, options, attempts_used[i], journal_ptr,
                 results[i]);
      },
      pool_, /*grain=*/1);
  if (journal_ptr != nullptr)
    MetricsRegistry::global().add_counter(
        "sweep.journal.cells_appended",
        cells.size() - static_cast<std::size_t>(std::count(
                           replayed.begin(), replayed.end(), true)));
  return results;
}

}  // namespace vmcw
