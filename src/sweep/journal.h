// Crash-safe cell journal: the durability layer under SweepDriver.
//
// A production-scale sweep is hours of grid computation; an OOM kill or a
// preempted container must not forfeit the cells already finished. The
// journal is an append-only binary file next to the bench's telemetry
// sidecar: a header binds it to one exact grid (a content hash over every
// SweepCell — spec, settings, strategy, seed, faults, chaos options — plus
// the cell count), and each completed SweepCellResult is appended as one
// length- and checksum-framed record written with a single write() and
// fdatasync'd, so a record is either fully present or detectably torn.
//
// Recovery rules, applied at open():
//  - header missing/unreadable, or grid hash / cell count mismatch: the
//    journal is *stale* (the grid was edited since it was written); it is
//    discarded and rewritten. Resuming never mixes results across grids.
//  - a torn tail (partial record from a crash mid-append, or a checksum
//    mismatch): the tail is truncated away and every intact record before
//    it is replayed. The interrupted cell simply recomputes.
//
// Two record kinds keep retries deterministic across crashes: kResult is a
// cell's terminal outcome (success, planner failure, or a failure that
// exhausted its retry budget) and is replayed on resume; kAttemptFailed
// logs one consumed attempt of a cell that will be retried, so a resumed
// sweep continues the retry count instead of resetting it. An attempt
// interrupted by the crash itself leaves no record and costs no budget.
//
// Replayed cells are byte-identical to recomputed ones because a cell is a
// pure function of its SweepCell and the serialization round-trips every
// field bit-exactly (doubles as IEEE-754 bit patterns).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sweep/sweep.h"
#include "util/thread_annotations.h"

namespace vmcw {

/// Content hash of an entire sweep grid: every field of every cell, in
/// order. Any edit — a changed knob, an added seed, a reordered strategy —
/// yields a different hash, which is how stale journals are detected.
std::uint64_t sweep_grid_hash(std::span<const SweepCell> cells);

class SweepJournal {
 public:
  /// What open() recovered from an existing journal.
  struct Recovery {
    /// Terminal cell records, in append order (at most one per index is
    /// kept — the last wins).
    std::vector<SweepCellResult> results;
    /// Highest failed-attempt number journaled per cell index, for cells
    /// without a terminal record yet.
    std::vector<std::pair<std::size_t, int>> attempts_used;
    bool stale = false;      ///< existing journal was for a different grid
    bool torn_tail = false;  ///< trailing partial/corrupt record dropped
    std::size_t bytes_discarded = 0;  ///< size of the discarded tail
  };

  SweepJournal() = default;
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Open (creating if needed) the journal at `path` for the grid
  /// identified by (grid_hash, cell_count). With `resume`, an existing
  /// matching journal's records are recovered; without it — or when the
  /// journal is stale or unreadable — the file is rewritten with a fresh
  /// header. Throws std::runtime_error only when the path cannot be
  /// created at all.
  Recovery open(const std::string& path, std::uint64_t grid_hash,
                std::size_t cell_count, bool resume) VMCW_EXCLUDES(mutex_);

  bool is_open() const VMCW_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    return fd_ >= 0;
  }

  /// Append a terminal record for one cell. Thread-safe; the record is a
  /// single write() followed by fdatasync, so a crash leaves either no
  /// trace or a complete, replayable record.
  void append_result(const SweepCellResult& result);

  /// Append a consumed-attempt record for a cell that will be retried.
  void append_failed_attempt(std::size_t index, int attempt,
                             CellStatus status, const std::string& error);

  void close() VMCW_EXCLUDES(mutex_);

 private:
  void append_record(std::uint8_t kind,
                     const std::vector<std::uint8_t>& payload)
      VMCW_EXCLUDES(mutex_);
  void close_locked() VMCW_REQUIRES(mutex_);

  mutable Mutex mutex_;
  int fd_ VMCW_GUARDED_BY(mutex_) = -1;
};

}  // namespace vmcw
