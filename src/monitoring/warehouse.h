// Central monitoring data warehouse (Section 3.1).
//
// The central server receives per-minute samples from every agent, folds
// them into hourly aggregates (the paper's planning granularity), and
// retains a bounded history per retention policy — "maintains data with
// policies on retention and expiration". Consolidation planning reads the
// most recent 30 days of hourly averages from here.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "monitoring/agent.h"
#include "trace/time_series.h"

namespace vmcw {

/// One hourly aggregate row as stored by the warehouse.
struct HourlyRecord {
  std::uint32_t hour = 0;
  double average = 0;
  double maximum = 0;
  std::uint32_t sample_count = 0;
};

struct RetentionPolicy {
  /// Hourly aggregates kept per (server, metric); older rows expire.
  std::size_t hourly_retention_hours = 30 * 24;
};

class DataWarehouse {
 public:
  explicit DataWarehouse(RetentionPolicy policy = {});

  /// Ingest a batch of minute samples from one server's agent. Samples are
  /// folded into hourly aggregates incrementally; out-of-order delivery
  /// within a batch is fine.
  void ingest(const std::string& server_id,
              std::span<const MetricSample> samples);

  /// Number of servers with any data.
  std::size_t server_count() const noexcept;

  /// All hourly rows currently retained for (server, metric), ordered by
  /// hour. Empty if unknown.
  std::vector<HourlyRecord> hourly_records(const std::string& server_id,
                                           Metric metric) const;

  /// The planner's view: hourly-average series over the retained window.
  /// Hours with no samples (total collection loss) carry the previous
  /// hour's value (standard gap-fill), or 0 at the start.
  TimeSeries hourly_average_series(const std::string& server_id,
                                   Metric metric) const;

  /// One aggregate row, if retained.
  std::optional<HourlyRecord> record_at(const std::string& server_id,
                                        Metric metric,
                                        std::uint32_t hour) const;

  const RetentionPolicy& policy() const noexcept { return policy_; }

 private:
  void expire(std::map<std::uint32_t, HourlyRecord>& rows) const;

  RetentionPolicy policy_;
  // server -> metric -> hour -> aggregate
  std::map<std::string, std::map<Metric, std::map<std::uint32_t, HourlyRecord>>>
      store_;
};

}  // namespace vmcw
