#include "monitoring/agent.h"

#include <algorithm>
#include <cmath>

namespace vmcw {

const char* to_string(Metric metric) noexcept {
  switch (metric) {
    case Metric::kCpuTotalPct:
      return "% Total Processor Time";
    case Metric::kMemCommittedMb:
      return "Memory Committed (MB)";
    case Metric::kPagesPerSec:
      return "Pages Per Sec";
    case Metric::kTcpConnections:
      return "TCP/IP Conn";
  }
  return "?";
}

MonitoringAgent::MonitoringAgent(const ServerTrace& server, AgentConfig config,
                                 Rng rng)
    : server_id_(server.id), server_(&server), config_(config), rng_(rng) {}

std::vector<MetricSample> MonitoringAgent::sample_hour(std::size_t hour) {
  std::vector<MetricSample> samples;
  if (hour >= server_->cpu_util.size()) return samples;
  samples.reserve(4 * 60);

  const double cpu_mean = server_->cpu_util[hour] * 100.0;  // percent
  const double mem_mean = server_->mem_mb[hour];

  for (std::uint32_t m = 0; m < 60; ++m) {
    const auto minute = static_cast<std::uint32_t>(hour) * 60 + m;
    if (rng_.bernoulli(config_.sample_loss_rate)) continue;

    // Intra-hour variation: mean-reverting around the hourly truth, CPU
    // livelier than memory (the same asymmetry as at hour scale).
    cpu_state_ = config_.intra_hour_rho * cpu_state_ +
                 rng_.normal(0.0, config_.intra_hour_sigma);
    mem_state_ = config_.intra_hour_rho * mem_state_ +
                 rng_.normal(0.0, config_.intra_hour_sigma * 0.15);

    auto observed = [&](double mean, double state) {
      const double wiggle = std::max(1.0 + state, 0.0);
      const double noise =
          1.0 + rng_.normal(0.0, config_.measurement_noise);
      return std::max(mean * wiggle * noise, 0.0);
    };

    const double cpu = std::min(observed(cpu_mean, cpu_state_), 100.0);
    const double mem =
        std::min(observed(mem_mean, mem_state_), server_->spec.memory_mb);
    samples.push_back({minute, Metric::kCpuTotalPct, cpu});
    samples.push_back({minute, Metric::kMemCommittedMb, mem});
    // Paging activity correlates with memory pressure; TCP with CPU.
    const double mem_pressure = mem / server_->spec.memory_mb;
    samples.push_back(
        {minute, Metric::kPagesPerSec,
         std::max(0.0, (mem_pressure - 0.7) * 2000.0 * rng_.uniform(0.5, 1.5))});
    samples.push_back(
        {minute, Metric::kTcpConnections, cpu * rng_.uniform(8.0, 12.0)});
  }
  return samples;
}

std::vector<MetricSample> MonitoringAgent::sample_all() {
  std::vector<MetricSample> all;
  for (std::size_t hour = 0; hour < server_->cpu_util.size(); ++hour) {
    auto hour_samples = sample_hour(hour);
    all.insert(all.end(), hour_samples.begin(), hour_samples.end());
  }
  return all;
}

}  // namespace vmcw
