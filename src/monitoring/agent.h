// Agent-based monitoring (Section 3.1).
//
// The paper's consolidation flow starts below the planner: an agent on
// every OS instance samples the Table 1 metrics once a minute and ships
// them to a central server; the warehouse keeps hourly aggregates of the
// most recent 30 days, and *that* is what planning consumes. This module
// reproduces the collection half of the pipeline:
//
//   true hourly demand --> per-minute samples (intra-hour variation +
//   measurement noise) --> MetricRecord stream
//
// so the warehouse half (warehouse.h) can aggregate the samples back to
// hourly records and the whole loop can be validated: the planner's view
// is an *estimate* of the ground truth, not the truth itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/server_trace.h"
#include "util/rng.h"

namespace vmcw {

/// The subset of Table 1 metrics the planner consumes.
enum class Metric {
  kCpuTotalPct,       ///< % Total Processor Time
  kMemCommittedMb,    ///< Memory Committed (MB)
  kPagesPerSec,       ///< Pages In Per Second
  kTcpConnections,    ///< TCP/IP packet counter (host constraint only)
};

const char* to_string(Metric metric) noexcept;

/// One minute-granularity sample as shipped by an agent.
struct MetricSample {
  std::uint32_t minute = 0;  ///< minutes since trace start
  Metric metric = Metric::kCpuTotalPct;
  double value = 0;
};

/// Behavior of the per-minute sampling around the hourly truth.
struct AgentConfig {
  /// Within an hour the instantaneous demand fluctuates around the hourly
  /// mean; modeled as AR(1) with this relative sigma.
  double intra_hour_sigma = 0.15;
  double intra_hour_rho = 0.7;
  /// Multiplicative measurement noise of the agent itself.
  double measurement_noise = 0.01;
  /// Fraction of samples lost in collection (dropped minutes).
  double sample_loss_rate = 0.0;
};

/// Monitoring agent for one server: expands the server's hourly demand
/// series into per-minute samples of the supported metrics.
class MonitoringAgent {
 public:
  MonitoringAgent(const ServerTrace& server, AgentConfig config, Rng rng);

  const std::string& server_id() const noexcept { return server_id_; }

  /// Samples for one hour (up to 60 per metric; fewer under sample loss).
  std::vector<MetricSample> sample_hour(std::size_t hour);

  /// Samples for the whole trace.
  std::vector<MetricSample> sample_all();

 private:
  double minute_value(double hourly_mean, double relative_wiggle) const;

  std::string server_id_;
  const ServerTrace* server_;
  AgentConfig config_;
  Rng rng_;
  double cpu_state_ = 0.0;  // AR(1) state for intra-hour CPU variation
  double mem_state_ = 0.0;
};

}  // namespace vmcw
