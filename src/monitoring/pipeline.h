// End-to-end monitoring pipeline: ground-truth estate -> agents ->
// warehouse -> the planner's reconstructed Datacenter.
//
// This closes the loop the paper's Section 3.1 describes. The
// reconstructed estate differs from the ground truth by intra-hour
// variation that hourly averaging absorbs, agent measurement noise, and
// collection loss — quantified by `fidelity()` so experiments can verify
// that planning on warehouse data is equivalent to planning on the truth
// (the premise of the paper's entire methodology).
#pragma once

#include "monitoring/agent.h"
#include "monitoring/warehouse.h"
#include "trace/server_trace.h"
#include "util/rng.h"

namespace vmcw {

/// Run every server of `truth` through a MonitoringAgent into a fresh
/// warehouse.
DataWarehouse collect_datacenter(const Datacenter& truth,
                                 const AgentConfig& config, std::uint64_t seed);

/// Rebuild a Datacenter from warehouse aggregates (the planner's view).
/// Server ids, specs and class labels are carried over from `truth`
/// (configuration data is inventory, not telemetry).
Datacenter reconstruct_datacenter(const Datacenter& truth,
                                  const DataWarehouse& warehouse);

/// Fidelity of the reconstruction vs ground truth.
struct PipelineFidelity {
  double cpu_mean_abs_rel_error = 0;  ///< mean |est-true|/true over hours
  double cpu_p99_rel_error = 0;       ///< 99th percentile relative error
  double mem_mean_abs_rel_error = 0;
  double mem_p99_rel_error = 0;
};

PipelineFidelity pipeline_fidelity(const Datacenter& truth,
                                   const Datacenter& reconstructed);

}  // namespace vmcw
