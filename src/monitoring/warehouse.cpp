#include "monitoring/warehouse.h"

#include <algorithm>

namespace vmcw {

DataWarehouse::DataWarehouse(RetentionPolicy policy) : policy_(policy) {}

void DataWarehouse::ingest(const std::string& server_id,
                           std::span<const MetricSample> samples) {
  auto& per_metric = store_[server_id];
  for (const auto& sample : samples) {
    const std::uint32_t hour = sample.minute / 60;
    auto& row = per_metric[sample.metric][hour];
    row.hour = hour;
    // Incremental mean: new_mean = old + (x - old) / n.
    ++row.sample_count;
    row.average += (sample.value - row.average) /
                   static_cast<double>(row.sample_count);
    row.maximum = std::max(row.maximum, sample.value);
  }
  for (auto& [metric, rows] : per_metric) expire(rows);
}

void DataWarehouse::expire(std::map<std::uint32_t, HourlyRecord>& rows) const {
  if (rows.empty()) return;
  const std::uint32_t newest = rows.rbegin()->first;
  const std::uint32_t horizon =
      newest >= policy_.hourly_retention_hours
          ? newest - static_cast<std::uint32_t>(policy_.hourly_retention_hours) + 1
          : 0;
  rows.erase(rows.begin(), rows.lower_bound(horizon));
}

std::size_t DataWarehouse::server_count() const noexcept {
  return store_.size();
}

std::vector<HourlyRecord> DataWarehouse::hourly_records(
    const std::string& server_id, Metric metric) const {
  std::vector<HourlyRecord> out;
  const auto server_it = store_.find(server_id);
  if (server_it == store_.end()) return out;
  const auto metric_it = server_it->second.find(metric);
  if (metric_it == server_it->second.end()) return out;
  out.reserve(metric_it->second.size());
  for (const auto& [hour, row] : metric_it->second) out.push_back(row);
  return out;
}

TimeSeries DataWarehouse::hourly_average_series(const std::string& server_id,
                                                Metric metric) const {
  const auto rows = hourly_records(server_id, metric);
  if (rows.empty()) return TimeSeries();
  const std::uint32_t first = rows.front().hour;
  const std::uint32_t last = rows.back().hour;
  std::vector<double> values(last - first + 1, 0.0);
  for (const auto& row : rows) values[row.hour - first] = row.average;
  // Gap-fill hours that lost every sample with the previous hour's value.
  std::vector<bool> present(values.size(), false);
  for (const auto& row : rows) present[row.hour - first] = true;
  for (std::size_t i = 1; i < values.size(); ++i)
    if (!present[i]) values[i] = values[i - 1];
  return TimeSeries(std::move(values));
}

std::optional<HourlyRecord> DataWarehouse::record_at(
    const std::string& server_id, Metric metric, std::uint32_t hour) const {
  const auto server_it = store_.find(server_id);
  if (server_it == store_.end()) return std::nullopt;
  const auto metric_it = server_it->second.find(metric);
  if (metric_it == server_it->second.end()) return std::nullopt;
  const auto row_it = metric_it->second.find(hour);
  if (row_it == metric_it->second.end()) return std::nullopt;
  return row_it->second;
}

}  // namespace vmcw
