#include "monitoring/pipeline.h"

#include <algorithm>
#include <cmath>

#include "runtime/telemetry.h"
#include "runtime/thread_pool.h"
#include "util/stats.h"

namespace vmcw {

DataWarehouse collect_datacenter(const Datacenter& truth,
                                 const AgentConfig& config,
                                 std::uint64_t seed) {
  Stopwatch span("monitoring.collect_seconds");
  // Agents are independent — each samples with its own stream keyed by the
  // server id, so running them across the pool is bit-identical to the
  // serial order. The warehouse is not concurrent; ingest stays serial and
  // in estate order.
  const Rng root(seed);  // vmcw-lint: allow(rng-construction) root of monitoring collection
  std::vector<std::vector<MetricSample>> sampled(truth.servers.size());
  parallel_for(0, truth.servers.size(), [&](std::size_t i) {
    const auto& server = truth.servers[i];
    MonitoringAgent agent(server, config, root.fork(server.id));
    sampled[i] = agent.sample_all();
  });
  DataWarehouse warehouse;
  for (std::size_t i = 0; i < truth.servers.size(); ++i)
    warehouse.ingest(truth.servers[i].id, sampled[i]);
  return warehouse;
}

Datacenter reconstruct_datacenter(const Datacenter& truth,
                                  const DataWarehouse& warehouse) {
  Datacenter estate;
  estate.name = truth.name;
  estate.industry = truth.industry;
  estate.servers.reserve(truth.servers.size());
  for (const auto& server : truth.servers) {
    ServerTrace rebuilt;
    rebuilt.id = server.id;
    // Asset-inventory metadata (CMDB), not telemetry: carried through the
    // rebuild verbatim so domain-aware planning knows app membership.
    rebuilt.app = server.app;
    rebuilt.spec = server.spec;
    rebuilt.klass = server.klass;
    TimeSeries cpu_pct =
        warehouse.hourly_average_series(server.id, Metric::kCpuTotalPct);
    cpu_pct.scale(1.0 / 100.0);  // percent -> fraction
    rebuilt.cpu_util = std::move(cpu_pct);
    rebuilt.mem_mb =
        warehouse.hourly_average_series(server.id, Metric::kMemCommittedMb);
    estate.servers.push_back(std::move(rebuilt));
  }
  return estate;
}

namespace {

void accumulate_errors(const TimeSeries& truth, const TimeSeries& estimate,
                       std::vector<double>& errors) {
  const std::size_t n = std::min(truth.size(), estimate.size());
  for (std::size_t t = 0; t < n; ++t) {
    if (truth[t] < 1e-9) continue;
    errors.push_back(std::abs(estimate[t] - truth[t]) / truth[t]);
  }
}

}  // namespace

PipelineFidelity pipeline_fidelity(const Datacenter& truth,
                                   const Datacenter& reconstructed) {
  PipelineFidelity f;
  std::vector<double> cpu_errors;
  std::vector<double> mem_errors;
  const std::size_t n =
      std::min(truth.servers.size(), reconstructed.servers.size());
  for (std::size_t i = 0; i < n; ++i) {
    accumulate_errors(truth.servers[i].cpu_util,
                      reconstructed.servers[i].cpu_util, cpu_errors);
    accumulate_errors(truth.servers[i].mem_mb, reconstructed.servers[i].mem_mb,
                      mem_errors);
  }
  f.cpu_mean_abs_rel_error = mean(cpu_errors);
  f.cpu_p99_rel_error = percentile(cpu_errors, 99);
  f.mem_mean_abs_rel_error = mean(mem_errors);
  f.mem_p99_rel_error = percentile(mem_errors, 99);
  return f;
}

}  // namespace vmcw
