// Synthetic applications for emulator validation (Section 5.2).
//
// The paper verified its emulator with two workloads whose resource
// consumption can be driven precisely:
//   - RUBiS: an auction web application; a resource model maps client
//     count to CPU and memory (interactive, noisy: 99th pctile emulator
//     error was 5%);
//   - daxpy: a dense kernel; CPU scales linearly with iteration rate and
//     memory is the (constant) vector footprint (clean: error 2%).
// A micro-benchmark then tops up whichever resource the application did
// not saturate, so workload+micro-benchmark together consume exactly what
// a trace prescribes.
//
// We model the same cast analytically: each app maps a drive intensity to
// a resource vector, with an actuation-noise level reflecting how
// controllable the workload is.
#pragma once

#include <string>

#include "hardware/server_spec.h"
#include "util/rng.h"

namespace vmcw {

/// A drivable application: intensity in app-specific units (clients for
/// RUBiS, Mops/s for daxpy) maps deterministically to demand; actual
/// consumption wobbles around it with the app's actuation noise.
class SyntheticApp {
 public:
  virtual ~SyntheticApp() = default;

  virtual const std::string& name() const noexcept = 0;

  /// Nominal demand at a drive intensity.
  virtual ResourceVector demand_at(double intensity) const = 0;

  /// Intensity that nominally consumes `cpu_rpe2` CPU (inverse of
  /// demand_at on the CPU axis).
  virtual double intensity_for_cpu(double cpu_rpe2) const = 0;

  /// Relative std-dev of achieved vs nominal consumption.
  virtual double actuation_noise() const noexcept = 0;

  /// Achieved consumption when driven at `intensity` (nominal + noise).
  ResourceVector run_at(double intensity, Rng& rng) const;
};

/// RUBiS-like interactive web application. CPU grows super-linearly with
/// clients (session management overhead), memory sub-linearly (shared
/// caches) — the same exponents as the Olio model.
class RubisLikeApp final : public SyntheticApp {
 public:
  struct Profile {
    double cpu_per_client_rpe2 = 8.0;   ///< at the reference point
    double mem_per_client_mb = 6.0;
    double base_mem_mb = 512.0;
    double cpu_exponent = 1.15;
    double mem_exponent = 0.61;
    double reference_clients = 100.0;
  };

  RubisLikeApp() : RubisLikeApp(Profile{}) {}
  explicit RubisLikeApp(Profile profile);

  const std::string& name() const noexcept override { return name_; }
  ResourceVector demand_at(double clients) const override;
  double intensity_for_cpu(double cpu_rpe2) const override;
  double actuation_noise() const noexcept override { return 0.017; }

 private:
  std::string name_ = "rubis";
  Profile profile_;
};

/// daxpy-like computational kernel: CPU strictly linear in iteration rate,
/// memory a constant vector footprint. Highly controllable.
class DaxpyLikeApp final : public SyntheticApp {
 public:
  struct Profile {
    double rpe2_per_mops = 2.0;
    double vector_footprint_mb = 1024.0;
  };

  DaxpyLikeApp() : DaxpyLikeApp(Profile{}) {}
  explicit DaxpyLikeApp(Profile profile);

  const std::string& name() const noexcept override { return name_; }
  ResourceVector demand_at(double mops) const override;
  double intensity_for_cpu(double cpu_rpe2) const override;
  double actuation_noise() const noexcept override { return 0.006; }

 private:
  std::string name_ = "daxpy";
  Profile profile_;
};

/// The top-up micro-benchmark: burns exactly the requested CPU and touches
/// exactly the requested memory, with a tiny actuation error.
class MicroBenchmark {
 public:
  ResourceVector run(const ResourceVector& target, Rng& rng) const;
  double actuation_noise() const noexcept { return 0.004; }
};

}  // namespace vmcw
