// Emulator-accuracy validation (Section 5.2's methodology).
//
// "Given the resource consumption in a trace, we run the workload at the
//  appropriate intensity to consume at least one of the two resources. The
//  other resource is then consumed using the micro benchmark. Hence, the
//  workload and the micro benchmark together attempt to consume the same
//  amount of CPU and memory as specified in the trace."
//
// ReplayDriver implements exactly that control law; validate_emulator()
// replays a trace, compares what was *achieved* on the (simulated)
// hardware against what the emulator *predicted* (the trace itself, since
// the emulator is trace-driven), and reports the error distribution. The
// paper's acceptance bar: 99th percentile error of 5% for RUBiS and 2% for
// daxpy.
#pragma once

#include <vector>

#include "core/vm.h"
#include "util/rng.h"
#include "validation/synthetic_apps.h"

namespace vmcw {

/// One replayed hour: the trace target, what the app+micro-benchmark pair
/// achieved, and the relative error per resource.
struct ReplayPoint {
  ResourceVector target;
  ResourceVector achieved;
  double cpu_rel_error = 0;
  double mem_rel_error = 0;
};

class ReplayDriver {
 public:
  /// The app must outlive the driver (the rvalue overload is deleted to
  /// prevent binding a temporary).
  ReplayDriver(const SyntheticApp& app, MicroBenchmark micro, Rng rng);
  ReplayDriver(SyntheticApp&&, MicroBenchmark, Rng) = delete;

  /// Drive one hour at the trace's target consumption.
  ReplayPoint replay_hour(const ResourceVector& target);

  /// Replay a whole VM demand trace over [begin, begin+len).
  std::vector<ReplayPoint> replay(const VmWorkload& vm, std::size_t begin,
                                  std::size_t len);

 private:
  const SyntheticApp* app_;
  MicroBenchmark micro_;
  Rng rng_;
};

/// Validation verdict for one app.
struct ValidationReport {
  std::string app;
  std::size_t points = 0;
  double cpu_p99_error = 0;  ///< 99th percentile relative CPU error
  double mem_p99_error = 0;
  double worst_error = 0;    ///< max over both resources
};

/// Run the full validation for an app against a demand trace.
ValidationReport validate_emulator(const SyntheticApp& app,
                                   const VmWorkload& trace, std::size_t begin,
                                   std::size_t len, std::uint64_t seed);

/// A controlled testbed trace for validation runs, mirroring the paper's
/// methodology: the experiment VM's demand is varied through the app's
/// natural operating range (CPU 500-4000 RPE2 with diurnal + noise,
/// memory 1500-4000 MB, above any app's resident floor). Validation traces
/// are chosen by the experimenter, not taken from a production estate.
VmWorkload make_validation_trace(std::size_t hours, std::uint64_t seed);

}  // namespace vmcw
