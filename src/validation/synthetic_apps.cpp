#include "validation/synthetic_apps.h"

#include <algorithm>
#include <cmath>

namespace vmcw {

ResourceVector SyntheticApp::run_at(double intensity, Rng& rng) const {
  const ResourceVector nominal = demand_at(intensity);
  const double cpu_wobble = 1.0 + rng.normal(0.0, actuation_noise());
  const double mem_wobble = 1.0 + rng.normal(0.0, actuation_noise() * 0.5);
  return ResourceVector{std::max(nominal.cpu_rpe2 * cpu_wobble, 0.0),
                        std::max(nominal.memory_mb * mem_wobble, 0.0)};
}

RubisLikeApp::RubisLikeApp(Profile profile) : profile_(profile) {}

ResourceVector RubisLikeApp::demand_at(double clients) const {
  clients = std::max(clients, 0.0);
  const double scale = clients / profile_.reference_clients;
  const double cpu = profile_.cpu_per_client_rpe2 * profile_.reference_clients *
                     std::pow(scale, profile_.cpu_exponent);
  const double mem = profile_.base_mem_mb +
                     profile_.mem_per_client_mb * profile_.reference_clients *
                         std::pow(scale, profile_.mem_exponent);
  return ResourceVector{cpu, mem};
}

double RubisLikeApp::intensity_for_cpu(double cpu_rpe2) const {
  const double reference_cpu =
      profile_.cpu_per_client_rpe2 * profile_.reference_clients;
  if (cpu_rpe2 <= 0.0 || reference_cpu <= 0.0) return 0.0;
  const double scale =
      std::pow(cpu_rpe2 / reference_cpu, 1.0 / profile_.cpu_exponent);
  return scale * profile_.reference_clients;
}

DaxpyLikeApp::DaxpyLikeApp(Profile profile) : profile_(profile) {}

ResourceVector DaxpyLikeApp::demand_at(double mops) const {
  return ResourceVector{std::max(mops, 0.0) * profile_.rpe2_per_mops,
                        profile_.vector_footprint_mb};
}

double DaxpyLikeApp::intensity_for_cpu(double cpu_rpe2) const {
  return profile_.rpe2_per_mops > 0
             ? std::max(cpu_rpe2, 0.0) / profile_.rpe2_per_mops
             : 0.0;
}

ResourceVector MicroBenchmark::run(const ResourceVector& target,
                                   Rng& rng) const {
  const double cpu_wobble = 1.0 + rng.normal(0.0, actuation_noise());
  const double mem_wobble = 1.0 + rng.normal(0.0, actuation_noise() * 0.5);
  return ResourceVector{std::max(target.cpu_rpe2, 0.0) * cpu_wobble,
                        std::max(target.memory_mb, 0.0) * mem_wobble};
}

}  // namespace vmcw
