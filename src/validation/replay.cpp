#include "validation/replay.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace vmcw {

ReplayDriver::ReplayDriver(const SyntheticApp& app, MicroBenchmark micro,
                           Rng rng)
    : app_(&app), micro_(micro), rng_(rng) {}

ReplayPoint ReplayDriver::replay_hour(const ResourceVector& target) {
  ReplayPoint point;
  point.target = target;

  // Drive the app to consume the trace's CPU, but never beyond the trace's
  // memory: if the app's footprint at that intensity would overshoot the
  // memory target, back off until memory is the saturated resource.
  double intensity = app_->intensity_for_cpu(target.cpu_rpe2);
  const ResourceVector at_cpu = app_->demand_at(intensity);
  if (at_cpu.memory_mb > target.memory_mb) {
    // Binary-search the largest intensity whose footprint fits the target.
    double lo = 0.0, hi = intensity;
    for (int i = 0; i < 40; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (app_->demand_at(mid).memory_mb <= target.memory_mb)
        lo = mid;
      else
        hi = mid;
    }
    intensity = lo;
  }

  const ResourceVector app_used = app_->run_at(intensity, rng_);
  // Micro-benchmark tops up whatever the app left unconsumed.
  const ResourceVector nominal = app_->demand_at(intensity);
  const ResourceVector top_up{
      std::max(target.cpu_rpe2 - nominal.cpu_rpe2, 0.0),
      std::max(target.memory_mb - nominal.memory_mb, 0.0)};
  const ResourceVector micro_used = micro_.run(top_up, rng_);

  point.achieved = app_used + micro_used;
  point.cpu_rel_error =
      target.cpu_rpe2 > 1e-9
          ? std::abs(point.achieved.cpu_rpe2 - target.cpu_rpe2) /
                target.cpu_rpe2
          : 0.0;
  point.mem_rel_error =
      target.memory_mb > 1e-9
          ? std::abs(point.achieved.memory_mb - target.memory_mb) /
                target.memory_mb
          : 0.0;
  return point;
}

std::vector<ReplayPoint> ReplayDriver::replay(const VmWorkload& vm,
                                              std::size_t begin,
                                              std::size_t len) {
  std::vector<ReplayPoint> points;
  const std::size_t end = std::min(begin + len, vm.hours());
  points.reserve(end - begin);
  for (std::size_t hour = begin; hour < end; ++hour)
    points.push_back(replay_hour(vm.demand_at(hour)));
  return points;
}

VmWorkload make_validation_trace(std::size_t hours, std::uint64_t seed) {
  VmWorkload vm;
  vm.id = "validation";
  Rng rng(seed);  // vmcw-lint: allow(rng-construction) root of validation replay
  std::vector<double> cpu(hours), mem(hours);
  for (std::size_t t = 0; t < hours; ++t) {
    const double phase =
        std::sin(2.0 * 3.14159265358979 * static_cast<double>(t % 24) / 24.0);
    cpu[t] = std::clamp(2250.0 + 1500.0 * phase + rng.normal(0.0, 250.0),
                        500.0, 4000.0);
    mem[t] = std::clamp(2750.0 + 1000.0 * phase + rng.normal(0.0, 150.0),
                        1500.0, 4000.0);
  }
  vm.cpu_rpe2 = TimeSeries(std::move(cpu));
  vm.mem_mb = TimeSeries(std::move(mem));
  return vm;
}

ValidationReport validate_emulator(const SyntheticApp& app,
                                   const VmWorkload& trace, std::size_t begin,
                                   std::size_t len, std::uint64_t seed) {
  ReplayDriver driver(app, MicroBenchmark{},
                      Rng(seed));  // vmcw-lint: allow(rng-construction) root of the driver harness
  const auto points = driver.replay(trace, begin, len);

  ValidationReport report;
  report.app = app.name();
  report.points = points.size();
  std::vector<double> cpu_errors, mem_errors;
  cpu_errors.reserve(points.size());
  mem_errors.reserve(points.size());
  for (const auto& p : points) {
    cpu_errors.push_back(p.cpu_rel_error);
    mem_errors.push_back(p.mem_rel_error);
    report.worst_error =
        std::max({report.worst_error, p.cpu_rel_error, p.mem_rel_error});
  }
  report.cpu_p99_error = percentile(cpu_errors, 99);
  report.mem_p99_error = percentile(mem_errors, 99);
  return report;
}

}  // namespace vmcw
