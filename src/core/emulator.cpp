#include "core/emulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "runtime/telemetry.h"

namespace vmcw {

EmulationReport emulate(std::span<const VmWorkload> vms,
                        std::span<const Placement> schedule,
                        const StudySettings& settings,
                        bool power_off_empty_hosts) {
  return emulate(vms, schedule, settings, power_off_empty_hosts,
                 HostPool::uniform(settings.target));
}

EmulationReport emulate(std::span<const VmWorkload> vms,
                        std::span<const Placement> schedule,
                        const StudySettings& settings,
                        bool power_off_empty_hosts, const HostPool& pool) {
  Stopwatch span("emulate.wall_seconds");
  EmulationReport report;
  report.eval_hours = settings.eval_hours;
  report.intervals = settings.intervals();
  if (schedule.empty() || report.intervals == 0) return report;

  // Host index space across the whole schedule.
  std::size_t host_bound = 0;
  for (const auto& p : schedule)
    host_bound = std::max(host_bound, p.host_index_bound());

  // Per-host models from the pool (host 0..host_bound-1).
  std::vector<PowerModel> power;
  std::vector<double> cpu_capacity(host_bound);
  std::vector<double> mem_capacity(host_bound);
  power.reserve(host_bound);
  for (std::size_t h = 0; h < host_bound; ++h) {
    const ServerSpec& spec = pool.spec_of(h);
    power.emplace_back(spec);
    cpu_capacity[h] = spec.cpu_rpe2;
    mem_capacity[h] = spec.memory_mb;
  }

  std::vector<double> host_util_sum(host_bound, 0.0);
  std::vector<std::size_t> host_active_hours(host_bound, 0);
  std::vector<double> host_peak_util(host_bound, 0.0);
  std::vector<bool> host_ever_used(host_bound, false);

  std::vector<double> cpu_demand(host_bound);
  std::vector<double> mem_demand(host_bound);
  std::vector<bool> host_active(host_bound);
  std::vector<bool> host_contended(host_bound);
  report.vm_contention_hours.assign(vms.size(), 0);

  report.active_hosts_per_interval.reserve(report.intervals);

  // Placement-derived state, rebuilt only when the schedule switches to a
  // different placement (for static plans: once for the whole window).
  // `placed` compacts the vm -> host map to the placed VMs so the hourly
  // demand and contention loops touch no unplaced entries and carry no
  // per-VM branch.
  const Placement* current = nullptr;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> placed;  // (vm, host)
  std::size_t active = 0;
  std::uint64_t vm_hours = 0;

  for (std::size_t k = 0; k < report.intervals; ++k) {
    const Placement& placement =
        schedule.size() == 1 ? schedule[0]
                             : schedule[std::min(k, schedule.size() - 1)];
    if (&placement != current) {
      current = &placement;
      placed.clear();
      std::fill(host_active.begin(), host_active.end(), false);
      active = 0;
      const std::size_t vm_bound = std::min(placement.vm_count(), vms.size());
      for (std::size_t vm = 0; vm < placement.vm_count(); ++vm) {
        if (!placement.is_placed(vm)) continue;
        const auto h = static_cast<std::size_t>(placement.host_of(vm));
        if (vm < vm_bound)
          placed.emplace_back(static_cast<std::uint32_t>(vm),
                              static_cast<std::uint32_t>(h));
        if (!host_active[h]) {
          host_active[h] = true;
          ++active;
        }
      }
    }
    for (std::size_t h = 0; h < host_bound; ++h)
      if (host_active[h]) host_ever_used[h] = true;
    report.active_hosts_per_interval.push_back(active);
    report.provisioned_hosts = std::max(report.provisioned_hosts, active);

    const std::size_t interval_begin =
        settings.eval_begin() + k * settings.interval_hours;
    for (std::size_t dt = 0; dt < settings.interval_hours; ++dt) {
      const std::size_t hour = interval_begin + dt;
      std::fill(cpu_demand.begin(), cpu_demand.end(), 0.0);
      std::fill(mem_demand.begin(), mem_demand.end(), 0.0);
      for (const auto& [vm, h] : placed) {
        const ResourceVector d = vms[vm].demand_at(hour);
        cpu_demand[h] += d.cpu_rpe2;
        mem_demand[h] += d.memory_mb;
      }
      vm_hours += placed.size();

      bool any_contention = false;
      std::fill(host_contended.begin(), host_contended.end(), false);
      for (std::size_t h = 0; h < host_bound; ++h) {
        if (host_active[h]) {
          const double util = cpu_demand[h] / cpu_capacity[h];
          const double mem_util = mem_demand[h] / mem_capacity[h];
          host_util_sum[h] += util;
          ++host_active_hours[h];
          host_peak_util[h] = std::max(host_peak_util[h], util);
          if (util > 1.0) {
            report.cpu_contention_samples.push_back(util - 1.0);
            any_contention = true;
            host_contended[h] = true;
          }
          if (mem_util > 1.0) {
            report.mem_contention_samples.push_back(mem_util - 1.0);
            any_contention = true;
            host_contended[h] = true;
          }
          report.energy_wh += power[h].watts(util);
        } else if (!power_off_empty_hosts && host_ever_used[h]) {
          // Static plans keep provisioned-but-idle hosts powered.
          report.energy_wh += power[h].watts(0.0);
        }
      }
      if (any_contention) {
        ++report.hours_with_contention;
        // Every VM sharing a contended host is SLA-exposed for this hour.
        for (const auto& [vm, h] : placed) {
          if (host_contended[h]) {
            ++report.vm_contention_hours[vm];
            ++report.total_vm_contention_hours;
          }
        }
      }
    }
  }

  for (std::size_t h = 0; h < host_bound; ++h) {
    if (!host_ever_used[h]) continue;
    report.host_avg_cpu_util.push_back(
        host_active_hours[h] > 0
            ? host_util_sum[h] / static_cast<double>(host_active_hours[h])
            : 0.0);
    report.host_peak_cpu_util.push_back(host_peak_util[h]);
  }

  MetricsRegistry::global().add_counter("emulate.runs");
  MetricsRegistry::global().add_counter("emulate.intervals", report.intervals);
  MetricsRegistry::global().add_counter("emulate.vm_hours", vm_hours);
  return report;
}

}  // namespace vmcw
