#include "core/emulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "runtime/cancellation.h"
#include "runtime/telemetry.h"

namespace vmcw {

EmulationAccumulator::EmulationAccumulator(std::span<const VmWorkload> vms,
                                           const StudySettings& settings,
                                           bool power_off_empty_hosts,
                                           const HostPool& pool,
                                           std::size_t host_bound)
    : vms_(vms),
      power_off_empty_hosts_(power_off_empty_hosts),
      host_bound_(host_bound),
      interval_hours_(settings.interval_hours) {
  report_.eval_hours = settings.eval_hours;
  report_.intervals = settings.intervals();

  // Per-host models from the pool (host 0..host_bound-1).
  power_.reserve(host_bound_);
  cpu_capacity_.resize(host_bound_);
  mem_capacity_.resize(host_bound_);
  for (std::size_t h = 0; h < host_bound_; ++h) {
    const ServerSpec& spec = pool.spec_of(h);
    power_.emplace_back(spec);
    cpu_capacity_[h] = spec.cpu_rpe2;
    mem_capacity_[h] = spec.memory_mb;
  }

  host_util_sum_.assign(host_bound_, 0.0);
  host_active_hours_.assign(host_bound_, 0);
  host_peak_util_.assign(host_bound_, 0.0);
  host_ever_used_.assign(host_bound_, false);

  cpu_demand_.resize(host_bound_);
  mem_demand_.resize(host_bound_);
  host_active_.resize(host_bound_);
  host_contended_.resize(host_bound_);
  report_.vm_contention_hours.assign(vms_.size(), 0);
  report_.active_hosts_per_interval.reserve(report_.intervals);
}

void EmulationAccumulator::rebuild(const Placement& placement) {
  // `placed_` compacts the vm -> host map to the placed VMs so the hourly
  // demand and contention loops touch no unplaced entries and carry no
  // per-VM branch.
  placed_.clear();
  std::fill(host_active_.begin(), host_active_.end(), false);
  active_ = 0;
  const std::size_t vm_bound = std::min(placement.vm_count(), vms_.size());
  for (std::size_t vm = 0; vm < placement.vm_count(); ++vm) {
    if (!placement.is_placed(vm)) continue;
    const auto h = static_cast<std::size_t>(placement.host_of(vm));
    if (vm < vm_bound)
      placed_.emplace_back(static_cast<std::uint32_t>(vm),
                           static_cast<std::uint32_t>(h));
    if (!host_active_[h]) {
      host_active_[h] = true;
      ++active_;
    }
  }
}

void EmulationAccumulator::begin_interval(const Placement& placement,
                                          bool force) {
  if (force || &placement != current_) {
    current_ = &placement;
    rebuild(placement);
  }
  for (std::size_t h = 0; h < host_bound_; ++h)
    if (host_active_[h]) host_ever_used_[h] = true;
  report_.active_hosts_per_interval.push_back(active_);
  report_.provisioned_hosts = std::max(report_.provisioned_hosts, active_);
}

void EmulationAccumulator::update_placement(const Placement& placement) {
  current_ = &placement;
  rebuild(placement);
  for (std::size_t h = 0; h < host_bound_; ++h)
    if (host_active_[h]) host_ever_used_[h] = true;
}

EmulationAccumulator::HourOutcome EmulationAccumulator::step_hour(
    std::size_t hour, const std::vector<bool>* down_hosts,
    std::vector<std::size_t>* vm_down_hours) {
  HourOutcome out;
  std::fill(cpu_demand_.begin(), cpu_demand_.end(), 0.0);
  std::fill(mem_demand_.begin(), mem_demand_.end(), 0.0);
  if (down_hosts == nullptr) {
    for (const auto& [vm, h] : placed_) {
      const ResourceVector d = vms_[vm].demand_at(hour);
      cpu_demand_[h] += d.cpu_rpe2;
      mem_demand_[h] += d.memory_mb;
    }
    vm_hours_ += placed_.size();
  } else {
    for (const auto& [vm, h] : placed_) {
      if ((*down_hosts)[h]) {
        ++out.vms_down;
        if (vm_down_hours != nullptr) ++(*vm_down_hours)[vm];
        continue;
      }
      const ResourceVector d = vms_[vm].demand_at(hour);
      cpu_demand_[h] += d.cpu_rpe2;
      mem_demand_[h] += d.memory_mb;
      ++vm_hours_;
    }
  }

  bool any_contention = false;
  std::fill(host_contended_.begin(), host_contended_.end(), false);
  for (std::size_t h = 0; h < host_bound_; ++h) {
    const bool offline = down_hosts != nullptr && (*down_hosts)[h];
    if (host_active_[h] && !offline) {
      const double util = cpu_demand_[h] / cpu_capacity_[h];
      const double mem_util = mem_demand_[h] / mem_capacity_[h];
      host_util_sum_[h] += util;
      ++host_active_hours_[h];
      host_peak_util_[h] = std::max(host_peak_util_[h], util);
      if (util > 1.0) {
        report_.cpu_contention_samples.push_back(util - 1.0);
        ++out.cpu_samples;
        any_contention = true;
        host_contended_[h] = true;
      }
      if (mem_util > 1.0) {
        report_.mem_contention_samples.push_back(mem_util - 1.0);
        ++out.mem_samples;
        any_contention = true;
        host_contended_[h] = true;
      }
      report_.energy_wh += power_[h].watts(util);
    } else if (!offline && !power_off_empty_hosts_ && host_ever_used_[h]) {
      // Static plans keep provisioned-but-idle hosts powered.
      report_.energy_wh += power_[h].watts(0.0);
    }
  }
  if (any_contention) {
    ++report_.hours_with_contention;
    // Every VM sharing a contended host is SLA-exposed for this hour.
    for (const auto& [vm, h] : placed_) {
      if (host_contended_[h]) {
        ++report_.vm_contention_hours[vm];
        ++report_.total_vm_contention_hours;
      }
    }
  }
  out.contention = any_contention;
  return out;
}

EmulationReport EmulationAccumulator::finish() {
  for (std::size_t h = 0; h < host_bound_; ++h) {
    if (!host_ever_used_[h]) continue;
    report_.host_avg_cpu_util.push_back(
        host_active_hours_[h] > 0
            ? host_util_sum_[h] / static_cast<double>(host_active_hours_[h])
            : 0.0);
    report_.host_peak_cpu_util.push_back(host_peak_util_[h]);
  }

  MetricsRegistry::global().add_counter("emulate.runs");
  MetricsRegistry::global().add_counter("emulate.intervals",
                                        report_.intervals);
  MetricsRegistry::global().add_counter("emulate.vm_hours", vm_hours_);
  return std::move(report_);
}

EmulationReport emulate(std::span<const VmWorkload> vms,
                        std::span<const Placement> schedule,
                        const StudySettings& settings,
                        bool power_off_empty_hosts) {
  return emulate(vms, schedule, settings, power_off_empty_hosts,
                 HostPool::uniform(settings.target));
}

EmulationReport emulate(std::span<const VmWorkload> vms,
                        std::span<const Placement> schedule,
                        const StudySettings& settings,
                        bool power_off_empty_hosts, const HostPool& pool) {
  Stopwatch span("emulate.wall_seconds");
  if (schedule.empty() || settings.intervals() == 0) {
    EmulationReport report;
    report.eval_hours = settings.eval_hours;
    report.intervals = settings.intervals();
    return report;
  }

  // Host index space across the whole schedule.
  std::size_t host_bound = 0;
  for (const auto& p : schedule)
    host_bound = std::max(host_bound, p.host_index_bound());

  EmulationAccumulator acc(vms, settings, power_off_empty_hosts, pool,
                           host_bound);
  const std::size_t intervals = settings.intervals();
  for (std::size_t k = 0; k < intervals; ++k) {
    // Interval boundaries are the replay's cancellation points: a cell
    // whose watchdog fired unwinds here instead of running the window out.
    cancellation_point();
    const Placement& placement =
        schedule.size() == 1 ? schedule[0]
                             : schedule[std::min(k, schedule.size() - 1)];
    acc.begin_interval(placement);
    const std::size_t interval_begin =
        settings.eval_begin() + k * settings.interval_hours;
    for (std::size_t dt = 0; dt < settings.interval_hours; ++dt)
      acc.step_hour(interval_begin + dt);
  }
  return acc.finish();
}

}  // namespace vmcw
