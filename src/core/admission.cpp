#include "core/admission.h"

#include <algorithm>

#include "runtime/thread_pool.h"
#include "core/capacity_index.h"

namespace vmcw {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

double normalized_load(const ResourceVector& load,
                       const ResourceVector& capacity) {
  const double cpu =
      capacity.cpu_rpe2 > 0 ? load.cpu_rpe2 / capacity.cpu_rpe2 : 0.0;
  const double mem =
      capacity.memory_mb > 0 ? load.memory_mb / capacity.memory_mb : 0.0;
  return std::max(cpu, mem);
}

bool frozen_at(std::span<const std::uint8_t> frozen, std::size_t host) {
  return host < frozen.size() && frozen[host] != 0;
}

}  // namespace

std::vector<std::vector<std::size_t>> placement_groups(
    std::size_t n, const ConstraintSet& constraints) {
  auto groups = constraints.affinity_groups();
  std::vector<bool> covered(n, false);
  for (const auto& g : groups)
    for (std::size_t vm : g)
      if (vm < n) covered[vm] = true;
  for (std::size_t vm = 0; vm < n; ++vm)
    if (!covered[vm]) groups.push_back({vm});
  // Drop group members beyond the item range (constraints on unknown VMs).
  for (auto& g : groups)
    g.erase(std::remove_if(g.begin(), g.end(),
                           [n](std::size_t vm) { return vm >= n; }),
            g.end());
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const auto& g) { return g.empty(); }),
               groups.end());
  return groups;
}

std::optional<std::size_t> admit_group(const std::vector<std::size_t>& group,
                                       const ResourceVector& group_size,
                                       std::vector<ResourceVector>& host_load,
                                       const HostPool& pool,
                                       double utilization_bound,
                                       const ConstraintSet& constraints,
                                       Placement& placement,
                                       const AdmissionOptions& options) {
  CapacityIndex* index = options.index;
  auto try_host = [&](std::size_t host) {
    if (static_cast<std::int32_t>(host) == options.exclude_host) return false;
    if (frozen_at(options.frozen_hosts, host)) return false;
    if (!(group_size + host_load[host])
             .fits_within(pool.capacity_of(host, utilization_bound)))
      return false;
    if (!constraints.allows_group(group, static_cast<std::int32_t>(host),
                                  placement))
      return false;
    for (std::size_t vm : group)
      placement.assign(vm, static_cast<std::int32_t>(host));
    host_load[host] += group_size;
    if (index) index->set_load(host, host_load[host]);
    return true;
  };

  if (index) {
    // Indexed first-fit: enumerate only hosts whose (slack-padded) free
    // capacity covers the group. try_host re-applies the exact predicates,
    // so a filtered candidate failing there just advances the cursor —
    // identical to the linear scan rejecting that host.
    std::size_t from = 0;
    while (from < host_load.size()) {
      const std::size_t host = index->first_fit(group_size, from);
      if (host == CapacityIndex::npos || host >= host_load.size()) break;
      if (try_host(host)) return host;
      from = host + 1;
    }
  } else {
    for (std::size_t host = 0; host < host_load.size(); ++host)
      if (try_host(host)) return host;
  }

  if (!options.open_new_hosts) return std::nullopt;
  // A pinned group can only land on its pin. Opening hosts past that index
  // can never help (allows_group rejects every other host), so probing
  // stops there instead of walking an unbounded pool forever.
  std::int32_t pin = Placement::kUnplaced;
  for (std::size_t vm : group) {
    pin = constraints.pinned_host(vm);
    if (pin != Placement::kUnplaced) break;
  }
  while (true) {
    const std::size_t host = host_load.size();
    if (pin != Placement::kUnplaced && host > static_cast<std::size_t>(pin))
      return std::nullopt;
    if (!pool.valid_host(host)) return std::nullopt;  // bounded pool exhausted
    host_load.emplace_back();
    if (index) index->push_host(pool.capacity_of(host, utilization_bound));
    if (try_host(host)) return host;
    // An empty host rejected the group. If the rejection was capacity (not
    // a finite constraint) and we are already in the trailing unlimited
    // class, every later host is identical: fail instead of looping
    // forever. Bounded classes are simply skipped.
    const bool fits_capacity = group_size.fits_within(
        pool.capacity_of(host, utilization_bound));
    if (!fits_capacity && pool.in_unlimited_class(host)) return std::nullopt;
  }
}

std::optional<std::size_t> admit_one(std::size_t vm, const ResourceVector& size,
                                     std::vector<ResourceVector>& host_load,
                                     const HostPool& pool,
                                     double utilization_bound,
                                     const ConstraintSet& constraints,
                                     Placement& placement,
                                     const AdmissionOptions& options) {
  const std::vector<std::size_t> group{vm};
  return admit_group(group, size, host_load, pool, utilization_bound,
                     constraints, placement, options);
}

bool admit_group_at(const std::vector<std::size_t>& group,
                    const ResourceVector& group_size, std::size_t host,
                    std::vector<ResourceVector>& host_load,
                    const HostPool& pool, double utilization_bound,
                    const ConstraintSet& constraints, Placement& placement,
                    CapacityIndex* index) {
  if (!pool.valid_host(host)) return false;
  while (host_load.size() <= host) {
    if (index)
      index->push_host(pool.capacity_of(host_load.size(), utilization_bound));
    host_load.emplace_back();
  }
  if (!(group_size + host_load[host])
           .fits_within(pool.capacity_of(host, utilization_bound)))
    return false;
  if (!constraints.allows_group(group, static_cast<std::int32_t>(host),
                                placement))
    return false;
  for (std::size_t vm : group)
    placement.assign(vm, static_cast<std::int32_t>(host));
  host_load[host] += group_size;
  if (index) index->set_load(host, host_load[host]);
  return true;
}

RepairOutcome repair_and_drain(std::span<const ResourceVector> sizes,
                               Placement& placement,
                               std::vector<ResourceVector>& host_load,
                               const HostPool& pool, double utilization_bound,
                               double drain_below,
                               const ConstraintSet& constraints,
                               std::span<const std::uint8_t> frozen_hosts,
                               CapacityIndex* index) {
  RepairOutcome out;
  const std::size_t n = placement.vm_count();
  const std::size_t scanned_hosts = host_load.size();
  // Every direct host_load mutation below pairs with a sync; admit_one
  // maintains the index for the mutations it makes itself.
  auto sync = [&](std::size_t host) {
    if (index) index->set_load(host, host_load[host]);
  };

  // Movable = alone in its affinity group and not pinned; everything else
  // stays where the batch planner put it.
  std::vector<std::uint8_t> movable(n, 0);
  for (const auto& g : placement_groups(n, constraints))
    if (g.size() == 1 &&
        constraints.pinned_host(g.front()) == Placement::kUnplaced)
      movable[g.front()] = 1;

  std::vector<std::vector<std::size_t>> vms_by_host(scanned_hosts);
  for (std::size_t vm = 0; vm < n; ++vm) {
    const std::int32_t h = placement.host_of(vm);
    if (h != Placement::kUnplaced &&
        static_cast<std::size_t>(h) < scanned_hosts)
      vms_by_host[static_cast<std::size_t>(h)].push_back(vm);
  }

  // Threshold classification fans across the pool — each slot is written
  // by exactly one task, so the flag vector (and everything sequential
  // below it) is bit-identical at any thread count. Admission never pushes
  // a *target* past its bound, so the overloaded set cannot grow while we
  // repair; drain candidacy is pinned to the loads as classified here.
  std::vector<std::uint8_t> overloaded(scanned_hosts, 0);
  std::vector<std::uint8_t> drainable(scanned_hosts, 0);
  parallel_for(0, scanned_hosts, [&](std::size_t host) {
    const ResourceVector capacity =
        pool.capacity_of(host, utilization_bound);
    if (!host_load[host].fits_within(capacity)) overloaded[host] = 1;
    if (drain_below > 0 && !vms_by_host[host].empty() &&
        normalized_load(host_load[host], capacity) < drain_below)
      drainable[host] = 1;
  });

  // ---- repair: evict until the host fits, re-admitting each evictee ----
  for (std::size_t host = 0; host < scanned_hosts; ++host) {
    if (!overloaded[host] || frozen_at(frozen_hosts, host)) continue;
    const ResourceVector capacity =
        pool.capacity_of(host, utilization_bound);
    while (!host_load[host].fits_within(capacity)) {
      const ResourceVector excess = host_load[host] - capacity;
      // Cheapest adequate action: the smallest VM whose departure resolves
      // the overload; otherwise the largest movable one.
      std::size_t best_single = kNone;
      double best_single_key = 0.0;
      std::size_t largest = kNone;
      double largest_key = -1.0;
      for (std::size_t vm : vms_by_host[host]) {
        if (!movable[vm]) continue;
        const double key = normalized_load(sizes[vm], capacity);
        const bool resolves = sizes[vm].cpu_rpe2 >= excess.cpu_rpe2 - 1e-9 &&
                              sizes[vm].memory_mb >= excess.memory_mb - 1e-9;
        if (resolves && (best_single == kNone || key < best_single_key)) {
          best_single = vm;
          best_single_key = key;
        }
        if (key > largest_key) {
          largest = vm;
          largest_key = key;
        }
      }
      const std::size_t victim = best_single != kNone ? best_single : largest;
      if (victim == kNone) {  // only pinned/grouped VMs remain
        out.unresolved_hosts.push_back(host);
        break;
      }
      placement.unassign(victim);
      host_load[host] -= sizes[victim];
      sync(host);
      AdmissionOptions options;
      options.exclude_host = static_cast<std::int32_t>(host);
      options.frozen_hosts = frozen_hosts;
      options.index = index;
      const auto target = admit_one(victim, sizes[victim], host_load, pool,
                                    utilization_bound, constraints, placement,
                                    options);
      if (!target) {  // nowhere to go: keep the VM, report the host stuck
        placement.assign(victim, static_cast<std::int32_t>(host));
        host_load[host] += sizes[victim];
        sync(host);
        out.unresolved_hosts.push_back(host);
        break;
      }
      auto& residents = vms_by_host[host];
      residents.erase(std::remove(residents.begin(), residents.end(), victim),
                      residents.end());
      if (*target >= vms_by_host.size()) vms_by_host.resize(host_load.size());
      vms_by_host[*target].push_back(victim);
      out.repair_moves.push_back(
          {victim, static_cast<std::int32_t>(host),
           static_cast<std::int32_t>(*target)});
    }
  }

  // ---- drain: empty underutilized hosts entirely, or not at all ----
  for (std::size_t host = 0; host < scanned_hosts; ++host) {
    if (!drainable[host] || frozen_at(frozen_hosts, host)) continue;
    if (vms_by_host[host].empty()) continue;  // repair already emptied it
    bool all_movable = true;
    for (std::size_t vm : vms_by_host[host])
      if (!movable[vm]) all_movable = false;
    if (!all_movable) continue;

    // Targets: non-empty, unfrozen hosts other than the candidate. Opening
    // a fresh host (or refilling a drained one) would free nothing.
    std::vector<std::uint8_t> drain_frozen(host_load.size(), 0);
    for (std::size_t h = 0; h < host_load.size(); ++h)
      drain_frozen[h] =
          frozen_at(frozen_hosts, h) ||
          (h < vms_by_host.size() ? vms_by_host[h].empty() : true);
    drain_frozen[host] = 1;

    std::vector<std::size_t> order = vms_by_host[host];
    const ResourceVector capacity =
        pool.capacity_of(host, utilization_bound);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return normalized_load(sizes[a], capacity) >
                              normalized_load(sizes[b], capacity);
                     });

    std::vector<PlacementMove> trial;
    bool complete = true;
    for (std::size_t vm : order) {
      placement.unassign(vm);
      host_load[host] -= sizes[vm];
      sync(host);
      AdmissionOptions options;
      options.frozen_hosts = drain_frozen;
      options.open_new_hosts = false;
      options.index = index;
      const auto target = admit_one(vm, sizes[vm], host_load, pool,
                                    utilization_bound, constraints, placement,
                                    options);
      if (!target) {
        placement.assign(vm, static_cast<std::int32_t>(host));
        host_load[host] += sizes[vm];
        sync(host);
        complete = false;
        break;
      }
      trial.push_back({vm, static_cast<std::int32_t>(host),
                       static_cast<std::int32_t>(*target)});
    }
    if (!complete) {  // roll the partial drain back; all or nothing
      for (auto it = trial.rbegin(); it != trial.rend(); ++it) {
        placement.assign(it->vm, it->from);
        host_load[static_cast<std::size_t>(it->to)] -= sizes[it->vm];
        host_load[static_cast<std::size_t>(it->from)] += sizes[it->vm];
        sync(static_cast<std::size_t>(it->to));
        sync(static_cast<std::size_t>(it->from));
      }
      continue;
    }
    for (const PlacementMove& move : trial)
      vms_by_host[static_cast<std::size_t>(move.to)].push_back(move.vm);
    vms_by_host[host].clear();
    out.drained_hosts.push_back(host);
    out.drain_moves.insert(out.drain_moves.end(), trial.begin(), trial.end());
  }

  return out;
}

}  // namespace vmcw
