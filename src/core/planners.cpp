#include "core/planners.h"

#include "core/pcp.h"

namespace vmcw {

std::optional<StaticPlan> plan_semi_static(std::span<const VmWorkload> vms,
                                           const StudySettings& settings,
                                           const ConstraintSet& constraints) {
  std::vector<ResourceVector> sizes(vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i)
    sizes[i] = vms[i].size_over(0, settings.history_hours, WindowReducer::kMax);

  auto packed = ffd_pack(sizes, settings.capacity(settings.static_utilization_bound),
                         constraints);
  if (!packed) return std::nullopt;
  return StaticPlan{std::move(packed->placement), packed->hosts_used,
                    std::move(sizes)};
}

std::optional<StaticPlan> plan_static(std::span<const VmWorkload> vms,
                                      const StudySettings& settings,
                                      const ConstraintSet& constraints) {
  std::vector<ResourceVector> sizes(vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i)
    sizes[i] = vms[i].size_over(0, vms[i].hours(), WindowReducer::kMax);

  auto packed = ffd_pack(sizes, settings.capacity(settings.static_utilization_bound),
                         constraints);
  if (!packed) return std::nullopt;
  return StaticPlan{std::move(packed->placement), packed->hosts_used,
                    std::move(sizes)};
}

std::optional<StaticPlan> plan_stochastic(std::span<const VmWorkload> vms,
                                          const StudySettings& settings,
                                          const ConstraintSet& constraints) {
  const auto items =
      make_stochastic_items(vms, 0, settings.history_hours,
                            settings.body_percentile,
                            settings.cluster_similarity,
                            settings.stochastic_memory_percentile);
  auto packed = pcp_pack(items, settings.capacity(settings.static_utilization_bound),
                         constraints);
  if (!packed) return std::nullopt;

  StaticPlan plan;
  plan.placement = std::move(packed->placement);
  plan.hosts_used = packed->hosts_used;
  plan.sizes.resize(items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    plan.sizes[i] = items[i].body;  // the always-provisioned part
  return plan;
}

}  // namespace vmcw
