// Virtual-machine workloads: the unit of consolidation planning.
//
// Consolidation turns each source physical server into one virtual machine
// whose demand is the source's measured usage (P2V). Demand is carried in
// portable units — CPU in RPE2 (so it can be compared against any target
// blade's rating) and memory in MB — at hourly resolution.
#pragma once

#include <string>
#include <vector>

#include "hardware/server_spec.h"
#include "trace/server_trace.h"

namespace vmcw {

struct VmWorkload {
  std::string id;
  std::string app;  ///< owning application label; empty when unknown
  WorkloadClass klass = WorkloadClass::kWeb;
  TimeSeries cpu_rpe2;  ///< hourly CPU demand in RPE2 units
  TimeSeries mem_mb;    ///< hourly committed memory in MB

  std::size_t hours() const noexcept {
    return std::max(cpu_rpe2.size(), mem_mb.size());
  }

  /// Actual demand at one hour (0 beyond the trace).
  ResourceVector demand_at(std::size_t hour) const noexcept;

  /// Reduce demand over [begin, begin+len) with the given sizing function,
  /// independently per resource.
  ResourceVector size_over(std::size_t begin, std::size_t len,
                           WindowReducer reducer) const;
};

/// P2V conversion of a whole data center.
std::vector<VmWorkload> to_vm_workloads(const Datacenter& dc);

}  // namespace vmcw
