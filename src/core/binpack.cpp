#include "core/binpack.h"

#include <algorithm>

#include "core/admission.h"
#include "core/capacity_index.h"

namespace vmcw {

namespace {

double normalized_key(const ResourceVector& size,
                      const ResourceVector& capacity) {
  const double cpu = capacity.cpu_rpe2 > 0 ? size.cpu_rpe2 / capacity.cpu_rpe2
                                           : 0.0;
  const double mem =
      capacity.memory_mb > 0 ? size.memory_mb / capacity.memory_mb : 0.0;
  return std::max(cpu, mem);
}

}  // namespace

std::vector<std::size_t> decreasing_size_order(
    std::span<const ResourceVector> sizes, const ResourceVector& capacity) {
  std::vector<std::size_t> order(sizes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return normalized_key(sizes[a], capacity) >
                            normalized_key(sizes[b], capacity);
                   });
  return order;
}

std::optional<PackResult> ffd_pack(std::span<const ResourceVector> sizes,
                                   const HostPool& pool,
                                   double utilization_bound,
                                   const ConstraintSet& constraints) {
  const std::size_t n = sizes.size();
  if (!constraints.structurally_feasible()) return std::nullopt;

  // Affinity groups become super-items placed atomically.
  const ConstraintSet& cs = constraints;
  const auto groups = placement_groups(n, cs);

  std::vector<ResourceVector> group_sizes(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (std::size_t vm : groups[g]) group_sizes[g] += sizes[vm];

  const auto order = decreasing_size_order(
      group_sizes, pool.reference_capacity(utilization_bound));

  Placement placement(n);
  std::vector<ResourceVector> host_load;
  // Free-capacity index over the open hosts: admission enumerates target
  // candidates in O(log n) instead of scanning the fleet, with placements
  // identical to the scan (capacity_index.h states the argument).
  CapacityIndex index;

  // Pinned groups go first: their host is not negotiable, so it must be
  // claimed before free groups can fill it.
  std::vector<std::int32_t> group_pin(groups.size(), Placement::kUnplaced);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t vm : groups[g]) {
      const std::int32_t p = cs.pinned_host(vm);
      if (p != Placement::kUnplaced) group_pin[g] = p;
    }
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (group_pin[g] == Placement::kUnplaced) continue;
    if (!admit_group_at(groups[g], group_sizes[g],
                        static_cast<std::size_t>(group_pin[g]), host_load,
                        pool, utilization_bound, cs, placement, &index))
      return std::nullopt;
  }

  // Free groups first-fit through the shared single-admission path — the
  // same code the online daemon admits one VM at a time through.
  AdmissionOptions options;
  options.index = &index;
  for (std::size_t g : order) {
    if (group_pin[g] != Placement::kUnplaced) continue;  // already placed
    if (!admit_group(groups[g], group_sizes[g], host_load, pool,
                     utilization_bound, cs, placement, options))
      return std::nullopt;  // pool exhausted or the group fits nowhere
  }

  PackResult result{std::move(placement), 0};
  result.hosts_used = result.placement.active_host_count();
  return result;
}

std::optional<PackResult> ffd_pack(std::span<const ResourceVector> sizes,
                                   const ResourceVector& capacity,
                                   const ConstraintSet& constraints) {
  ServerSpec spec;
  spec.model = "uniform";
  spec.cpu_rpe2 = capacity.cpu_rpe2;
  spec.memory_mb = capacity.memory_mb;
  return ffd_pack(sizes, HostPool::uniform(std::move(spec)), 1.0, constraints);
}

}  // namespace vmcw
