#include "core/binpack.h"

#include <algorithm>

namespace vmcw {

namespace {

double normalized_key(const ResourceVector& size,
                      const ResourceVector& capacity) {
  const double cpu = capacity.cpu_rpe2 > 0 ? size.cpu_rpe2 / capacity.cpu_rpe2
                                           : 0.0;
  const double mem =
      capacity.memory_mb > 0 ? size.memory_mb / capacity.memory_mb : 0.0;
  return std::max(cpu, mem);
}

}  // namespace

std::vector<std::size_t> decreasing_size_order(
    std::span<const ResourceVector> sizes, const ResourceVector& capacity) {
  std::vector<std::size_t> order(sizes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return normalized_key(sizes[a], capacity) >
                            normalized_key(sizes[b], capacity);
                   });
  return order;
}

std::optional<PackResult> ffd_pack(std::span<const ResourceVector> sizes,
                                   const HostPool& pool,
                                   double utilization_bound,
                                   const ConstraintSet& constraints) {
  const std::size_t n = sizes.size();
  if (!constraints.structurally_feasible()) return std::nullopt;

  // Affinity groups become super-items placed atomically.
  const ConstraintSet& cs = constraints;
  auto groups = cs.affinity_groups();
  std::vector<bool> covered(n, false);
  for (const auto& g : groups)
    for (std::size_t vm : g)
      if (vm < n) covered[vm] = true;
  for (std::size_t vm = 0; vm < n; ++vm)
    if (!covered[vm]) groups.push_back({vm});
  // Drop group members beyond the item range (constraints on unknown VMs).
  for (auto& g : groups)
    g.erase(std::remove_if(g.begin(), g.end(),
                           [n](std::size_t vm) { return vm >= n; }),
            g.end());
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const auto& g) { return g.empty(); }),
               groups.end());

  std::vector<ResourceVector> group_sizes(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (std::size_t vm : groups[g]) group_sizes[g] += sizes[vm];

  const auto order = decreasing_size_order(
      group_sizes, pool.reference_capacity(utilization_bound));

  Placement placement(n);
  std::vector<ResourceVector> host_load;

  auto try_host = [&](std::size_t g, std::size_t host) {
    if (!(group_sizes[g] + host_load[host])
             .fits_within(pool.capacity_of(host, utilization_bound)))
      return false;
    if (!cs.allows_group(groups[g], static_cast<std::int32_t>(host),
                         placement))
      return false;
    for (std::size_t vm : groups[g])
      placement.assign(vm, static_cast<std::int32_t>(host));
    host_load[host] += group_sizes[g];
    return true;
  };
  auto open_next_host = [&]() {
    const std::size_t host = host_load.size();
    if (!pool.valid_host(host)) return false;
    host_load.emplace_back();
    return true;
  };

  // Pinned groups go first: their host is not negotiable, so it must be
  // claimed before free groups can fill it.
  std::vector<std::int32_t> group_pin(groups.size(), Placement::kUnplaced);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t vm : groups[g]) {
      const std::int32_t p = cs.pinned_host(vm);
      if (p != Placement::kUnplaced) group_pin[g] = p;
    }
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (group_pin[g] == Placement::kUnplaced) continue;
    const auto pin = static_cast<std::size_t>(group_pin[g]);
    if (!pool.valid_host(pin)) return std::nullopt;
    while (host_load.size() <= pin) host_load.emplace_back();
    if (!try_host(g, pin)) return std::nullopt;
  }

  for (std::size_t g : order) {
    if (group_pin[g] != Placement::kUnplaced) continue;  // already placed
    bool placed = false;
    for (std::size_t host = 0; host < host_load.size() && !placed; ++host)
      placed = try_host(g, host);
    while (!placed) {
      if (!open_next_host()) return std::nullopt;  // bounded pool exhausted
      const std::size_t host = host_load.size() - 1;
      placed = try_host(g, host);
      if (!placed) {
        // An empty host rejected the group. If the rejection was capacity
        // (not a finite constraint) and we are already in the trailing
        // unlimited class, every later host is identical: fail instead of
        // looping forever. Bounded classes are simply skipped.
        const bool fits_capacity = group_sizes[g].fits_within(
            pool.capacity_of(host, utilization_bound));
        if (!fits_capacity && pool.in_unlimited_class(host))
          return std::nullopt;
      }
    }
  }

  PackResult result{std::move(placement), 0};
  result.hosts_used = result.placement.active_host_count();
  return result;
}

std::optional<PackResult> ffd_pack(std::span<const ResourceVector> sizes,
                                   const ResourceVector& capacity,
                                   const ConstraintSet& constraints) {
  ServerSpec spec;
  spec.model = "uniform";
  spec.cpu_rpe2 = capacity.cpu_rpe2;
  spec.memory_mb = capacity.memory_mb;
  return ffd_pack(sizes, HostPool::uniform(std::move(spec)), 1.0, constraints);
}

}  // namespace vmcw
