// VM-to-host assignment.
//
// Hosts are identical target blades indexed 0, 1, 2, ...; a Placement maps
// each VM index to a host index (or kUnplaced). Dynamic consolidation
// produces one Placement per consolidation interval; the difference between
// consecutive placements is the set of live migrations that interval
// requires.
#pragma once

#include <cstdint>
#include <vector>

namespace vmcw {

class Placement {
 public:
  static constexpr std::int32_t kUnplaced = -1;

  Placement() = default;
  explicit Placement(std::size_t vm_count);

  std::size_t vm_count() const noexcept { return host_of_.size(); }

  std::int32_t host_of(std::size_t vm) const noexcept { return host_of_[vm]; }
  bool is_placed(std::size_t vm) const noexcept {
    return host_of_[vm] != kUnplaced;
  }

  void assign(std::size_t vm, std::int32_t host) noexcept {
    host_of_[vm] = host;
  }
  void unassign(std::size_t vm) noexcept { host_of_[vm] = kUnplaced; }

  /// Number of VMs with an assignment.
  std::size_t placed_count() const noexcept;

  /// 1 + highest host index in use (0 if nothing is placed). Host index
  /// space may contain holes after dynamic consolidation powers hosts down.
  std::size_t host_index_bound() const noexcept;

  /// Number of distinct hosts that have at least one VM.
  std::size_t active_host_count() const noexcept;

  /// VM lists grouped by host; size = host_index_bound().
  std::vector<std::vector<std::size_t>> vms_by_host() const;

  /// Live migrations needed to go from `from` to `to`: VMs placed in both
  /// whose host changed. (Newly placed / removed VMs are not migrations.)
  static std::size_t migrations_between(const Placement& from,
                                        const Placement& to) noexcept;

  bool operator==(const Placement&) const = default;

 private:
  std::vector<std::int32_t> host_of_;
};

}  // namespace vmcw
