// Dynamic consolidation planner.
//
// Captures the salient features of the schemes the paper uses ([26]
// pMapper-style power-aware placement, [15] cost-sensitive adaptation): at
// the start of every consolidation interval each VM is re-sized to its
// predicted peak for the coming window, and the placement is *incrementally*
// adapted from the previous interval choosing cheap actions first:
//
//   1. repair   — hosts whose predicted load exceeds the utilization bound
//                 evict VMs; the planner prefers the single smallest VM
//                 whose departure resolves the overload (cheapest adequate
//                 action), falling back to evicting the largest.
//   2. place    — evicted VMs first-fit onto the most-loaded feasible hosts
//                 (tight packing keeps the footprint small).
//   3. consolidate — lightly loaded hosts are emptied entirely onto the
//                 remaining fleet when possible and powered off.
//
// Every VM that changes host is one live migration; the paper's observation
// that >25% of VMs can migrate per interval emerges from exactly this loop.
// Pinned VMs never move; affinity groups move atomically.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/constraints.h"
#include "core/settings.h"
#include "core/vm.h"

namespace vmcw {

struct DynamicPlan {
  std::vector<Placement> per_interval;    ///< one per consolidation interval
  std::vector<std::size_t> migrations;    ///< vs the previous interval
  std::size_t max_active_hosts = 0;       ///< provisioning requirement
  std::size_t total_migrations = 0;
};

std::optional<DynamicPlan> plan_dynamic(std::span<const VmWorkload> vms,
                                        const StudySettings& settings,
                                        const ConstraintSet& constraints = {});

}  // namespace vmcw
