#include "core/predictor.h"

namespace vmcw {

ResourceVector predict_vm_demand(const PeakPredictor& predictor,
                                 const VmWorkload& vm, std::size_t hour,
                                 std::size_t len) noexcept {
  return ResourceVector{
      predictor.predict(vm.cpu_rpe2, hour, len,
                        predictor.options().cpu_safety_margin),
      predictor.predict(vm.mem_mb, hour, len,
                        predictor.options().mem_safety_margin)};
}

}  // namespace vmcw
