// VM-level demand prediction: applies the seasonal-max PeakPredictor
// (analysis/predictor.h) to both resources of a VmWorkload with their
// per-resource safety margins.
#pragma once

#include "analysis/predictor.h"
#include "core/vm.h"
#include "hardware/server_spec.h"

namespace vmcw {

/// Predicted (CPU, memory) peak of `vm` over [hour, hour+len).
ResourceVector predict_vm_demand(const PeakPredictor& predictor,
                                 const VmWorkload& vm, std::size_t hour,
                                 std::size_t len) noexcept;

}  // namespace vmcw
