// Trace-replay consolidation emulator.
//
// The paper cannot replay production workloads against competing
// consolidation plans, so it evaluates them in an emulator driven by the
// recorded resource traces (its accuracy was validated against RUBiS/daxpy
// to within 5%/2% at the 99th percentile — we reproduce that experiment as
// an integration test). This emulator does the same job: given the actual
// hourly demand of every VM and a placement schedule, it replays the
// evaluation window and reports, per the paper's Section 5.3 parameters:
//
//   - space/hardware: the provisioning requirement (max active hosts);
//   - power: energy from per-interval active hosts and their utilization;
//   - server utilization: per-host average and peak CPU utilization;
//   - resource contention: demand beyond a host's physical capacity.
//
// Utilization and contention are computed against the host's *full*
// capacity: the migration reservation is a planning constraint, not a
// physical limit, so replayed demand may exceed the bound without
// contention but becomes contention beyond 100%.
#pragma once

#include <span>
#include <vector>

#include "core/host_pool.h"
#include "core/placement.h"
#include "core/settings.h"
#include "core/vm.h"
#include "hardware/power_model.h"

namespace vmcw {

struct EmulationReport {
  std::size_t eval_hours = 0;
  std::size_t intervals = 0;

  /// Max simultaneously active hosts over the window (the space/hardware
  /// provisioning requirement — "the largest number of servers provisioned
  /// across all consolidation intervals").
  std::size_t provisioned_hosts = 0;

  std::vector<std::size_t> active_hosts_per_interval;

  /// Per active host: average CPU utilization over hours the host ran, and
  /// peak CPU utilization over the window (uncapped; >1 = overload). Hosts
  /// never used do not appear.
  std::vector<double> host_avg_cpu_util;
  std::vector<double> host_peak_cpu_util;

  /// One sample per host-hour with demand above physical capacity, as a
  /// fraction of capacity (Fig 9's contention magnitude).
  std::vector<double> cpu_contention_samples;
  std::vector<double> mem_contention_samples;

  /// Hours (of eval_hours) in which at least one host was contended.
  std::size_t hours_with_contention = 0;

  /// SLA exposure: per-VM count of hours spent on a contended host (the
  /// "higher risk of SLA violations" of Section 7 made countable), and the
  /// fleet total of such VM-hours.
  std::vector<std::size_t> vm_contention_hours;
  std::size_t total_vm_contention_hours = 0;

  double energy_wh = 0;

  double contention_time_fraction() const noexcept {
    return eval_hours > 0 ? static_cast<double>(hours_with_contention) /
                                static_cast<double>(eval_hours)
                          : 0.0;
  }
};

/// Replay `vms` against a placement schedule. `schedule` holds either one
/// placement (fixed for the whole window — semi-static variants) or one per
/// consolidation interval. `power_off_empty_hosts` distinguishes dynamic
/// consolidation (empty hosts are powered down within the interval) from
/// static plans (provisioned hosts idle at idle wattage).
EmulationReport emulate(std::span<const VmWorkload> vms,
                        std::span<const Placement> schedule,
                        const StudySettings& settings,
                        bool power_off_empty_hosts);

/// Heterogeneous-pool variant: utilization, contention and power are
/// evaluated against each host's own spec from `pool` (host indices in the
/// placements must be valid pool indices).
EmulationReport emulate(std::span<const VmWorkload> vms,
                        std::span<const Placement> schedule,
                        const StudySettings& settings,
                        bool power_off_empty_hosts, const HostPool& pool);

}  // namespace vmcw
