// Trace-replay consolidation emulator.
//
// The paper cannot replay production workloads against competing
// consolidation plans, so it evaluates them in an emulator driven by the
// recorded resource traces (its accuracy was validated against RUBiS/daxpy
// to within 5%/2% at the 99th percentile — we reproduce that experiment as
// an integration test). This emulator does the same job: given the actual
// hourly demand of every VM and a placement schedule, it replays the
// evaluation window and reports, per the paper's Section 5.3 parameters:
//
//   - space/hardware: the provisioning requirement (max active hosts);
//   - power: energy from per-interval active hosts and their utilization;
//   - server utilization: per-host average and peak CPU utilization;
//   - resource contention: demand beyond a host's physical capacity.
//
// Utilization and contention are computed against the host's *full*
// capacity: the migration reservation is a planning constraint, not a
// physical limit, so replayed demand may exceed the bound without
// contention but becomes contention beyond 100%.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/host_pool.h"
#include "core/placement.h"
#include "core/settings.h"
#include "core/vm.h"
#include "hardware/power_model.h"

namespace vmcw {

struct EmulationReport {
  std::size_t eval_hours = 0;
  std::size_t intervals = 0;

  /// Max simultaneously active hosts over the window (the space/hardware
  /// provisioning requirement — "the largest number of servers provisioned
  /// across all consolidation intervals").
  std::size_t provisioned_hosts = 0;

  std::vector<std::size_t> active_hosts_per_interval;

  /// Per active host: average CPU utilization over hours the host ran, and
  /// peak CPU utilization over the window (uncapped; >1 = overload). Hosts
  /// never used do not appear.
  std::vector<double> host_avg_cpu_util;
  std::vector<double> host_peak_cpu_util;

  /// One sample per host-hour with demand above physical capacity, as a
  /// fraction of capacity (Fig 9's contention magnitude).
  std::vector<double> cpu_contention_samples;
  std::vector<double> mem_contention_samples;

  /// Hours (of eval_hours) in which at least one host was contended.
  std::size_t hours_with_contention = 0;

  /// SLA exposure: per-VM count of hours spent on a contended host (the
  /// "higher risk of SLA violations" of Section 7 made countable), and the
  /// fleet total of such VM-hours.
  std::vector<std::size_t> vm_contention_hours;
  std::size_t total_vm_contention_hours = 0;

  double energy_wh = 0;

  double contention_time_fraction() const noexcept {
    return eval_hours > 0 ? static_cast<double>(hours_with_contention) /
                                static_cast<double>(eval_hours)
                          : 0.0;
  }
};

/// Incremental form of the emulator: callers drive the replay interval by
/// interval and hour by hour. emulate() is a thin loop over this class, so
/// the batch and incremental paths produce bit-identical reports for the
/// same inputs; the failure-aware replay (src/chaos) drives the same
/// accumulator while swapping placements mid-window and taking hosts
/// offline, so its fault-free accounting is exactly the emulator's.
class EmulationAccumulator {
 public:
  /// `host_bound` is 1 + the highest host index any placement will use.
  EmulationAccumulator(std::span<const VmWorkload> vms,
                       const StudySettings& settings,
                       bool power_off_empty_hosts, const HostPool& pool,
                       std::size_t host_bound);

  /// Start the next consolidation interval with `placement` in force.
  /// Placement-derived state is rebuilt when the object differs from the
  /// previous call (pointer identity, as in batch replay) or when `force`
  /// is set (for callers that mutate one placement object in place).
  void begin_interval(const Placement& placement, bool force = false);

  /// Swap the in-force placement mid-interval (a crash evacuation moves
  /// VMs between hours): rebuilds placement state without starting a new
  /// interval, so per-interval accounting is unaffected.
  void update_placement(const Placement& placement);

  struct HourOutcome {
    bool contention = false;   ///< some host's demand exceeded capacity
    std::size_t vms_down = 0;  ///< placed VMs whose host is offline
    /// Contention samples appended to the report this hour. Sharded
    /// emulation (scale/shard.h) uses these to interleave per-shard sample
    /// streams back into the global (hour, host) order.
    std::uint32_t cpu_samples = 0;
    std::uint32_t mem_samples = 0;
  };

  /// Replay one absolute trace hour. `down_hosts` (optional) marks hosts
  /// offline this hour: their VMs serve no demand (counted in vms_down
  /// and, when `vm_down_hours` is given, per VM) and the host neither
  /// draws power nor accrues utilization.
  HourOutcome step_hour(std::size_t hour,
                        const std::vector<bool>* down_hosts = nullptr,
                        std::vector<std::size_t>* vm_down_hours = nullptr);

  /// Finalize per-host utilization and telemetry counters. Call once.
  EmulationReport finish();

 private:
  void rebuild(const Placement& placement);

  std::span<const VmWorkload> vms_;
  bool power_off_empty_hosts_ = false;
  std::size_t host_bound_ = 0;
  std::size_t interval_hours_ = 0;

  std::vector<PowerModel> power_;
  std::vector<double> cpu_capacity_;
  std::vector<double> mem_capacity_;

  std::vector<double> host_util_sum_;
  std::vector<std::size_t> host_active_hours_;
  std::vector<double> host_peak_util_;
  std::vector<bool> host_ever_used_;

  std::vector<double> cpu_demand_;
  std::vector<double> mem_demand_;
  std::vector<bool> host_active_;
  std::vector<bool> host_contended_;

  const Placement* current_ = nullptr;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> placed_;  // (vm, host)
  std::size_t active_ = 0;
  std::uint64_t vm_hours_ = 0;
  EmulationReport report_;
};

/// Replay `vms` against a placement schedule. `schedule` holds either one
/// placement (fixed for the whole window — semi-static variants) or one per
/// consolidation interval. `power_off_empty_hosts` distinguishes dynamic
/// consolidation (empty hosts are powered down within the interval) from
/// static plans (provisioned hosts idle at idle wattage).
EmulationReport emulate(std::span<const VmWorkload> vms,
                        std::span<const Placement> schedule,
                        const StudySettings& settings,
                        bool power_off_empty_hosts);

/// Heterogeneous-pool variant: utilization, contention and power are
/// evaluated against each host's own spec from `pool` (host indices in the
/// placements must be valid pool indices).
EmulationReport emulate(std::span<const VmWorkload> vms,
                        std::span<const Placement> schedule,
                        const StudySettings& settings,
                        bool power_off_empty_hosts, const HostPool& pool);

}  // namespace vmcw
