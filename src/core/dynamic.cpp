#include "core/dynamic.h"

#include <algorithm>
#include <cmath>

#include "core/admission.h"
#include "core/binpack.h"

namespace vmcw {

namespace {

/// Planner state over affinity groups: groups are the atomic unit of
/// placement and migration.
class GroupModel {
 public:
  GroupModel(std::span<const VmWorkload> vms, const ConstraintSet& constraints)
      : vms_(vms), constraints_(constraints) {
    groups_ = placement_groups(vms.size(), constraints);

    pinned_.resize(groups_.size(), Placement::kUnplaced);
    for (std::size_t g = 0; g < groups_.size(); ++g)
      for (std::size_t vm : groups_[g]) {
        const std::int32_t p = constraints.pinned_host(vm);
        if (p != Placement::kUnplaced) pinned_[g] = p;
      }
  }

  std::size_t count() const { return groups_.size(); }
  const std::vector<std::size_t>& members(std::size_t g) const {
    return groups_[g];
  }
  std::int32_t pinned_host(std::size_t g) const { return pinned_[g]; }

  ResourceVector predicted_size(std::size_t g, const PeakPredictor& predictor,
                                std::size_t hour, std::size_t len) const {
    ResourceVector size;
    for (std::size_t vm : groups_[g])
      size += predict_vm_demand(predictor, vms_[vm], hour, len);
    return size;
  }

  bool allowed_on(std::size_t g, std::int32_t host,
                  const Placement& placement) const {
    return constraints_.allows_group(groups_[g], host, placement);
  }

 private:
  std::span<const VmWorkload> vms_;
  const ConstraintSet& constraints_;
  std::vector<std::vector<std::size_t>> groups_;
  std::vector<std::int32_t> pinned_;
};

double normalized_load(const ResourceVector& load,
                       const ResourceVector& capacity) {
  const double cpu =
      capacity.cpu_rpe2 > 0 ? load.cpu_rpe2 / capacity.cpu_rpe2 : 0.0;
  const double mem =
      capacity.memory_mb > 0 ? load.memory_mb / capacity.memory_mb : 0.0;
  return std::max(cpu, mem);
}

/// One interval's incremental adaptation.
class IntervalAdapter {
 public:
  IntervalAdapter(const GroupModel& model,
                  std::span<const ResourceVector> group_sizes,
                  const ResourceVector& capacity, Placement placement)
      : model_(model),
        sizes_(group_sizes),
        capacity_(capacity),
        placement_(std::move(placement)) {
    // Rebuild host state from the placement (host of a group = host of its
    // first member; all members share a host by construction).
    host_groups_.resize(max_host_bound());
    host_load_.resize(host_groups_.size());
    group_host_.resize(model.count(), Placement::kUnplaced);
    for (std::size_t g = 0; g < model.count(); ++g) {
      const std::size_t vm0 = model.members(g).front();
      const std::int32_t h = placement_.host_of(vm0);
      group_host_[g] = h;
      if (h != Placement::kUnplaced) {
        host_groups_[static_cast<std::size_t>(h)].push_back(g);
        host_load_[static_cast<std::size_t>(h)] += sizes_[g];
      }
    }
  }

  void adapt() {
    repair_overloaded_hosts();
    place_pending();
    consolidate();
  }

  Placement take_placement() { return std::move(placement_); }

 private:
  std::size_t max_host_bound() const {
    std::size_t bound = placement_.host_index_bound();
    for (std::size_t g = 0; g < model_.count(); ++g) {
      const std::int32_t p = model_.pinned_host(g);
      if (p != Placement::kUnplaced)
        bound = std::max(bound, static_cast<std::size_t>(p) + 1);
    }
    return bound;
  }

  bool fits(std::size_t host, const ResourceVector& extra) const {
    return (host_load_[host] + extra).fits_within(capacity_);
  }

  void detach(std::size_t g) {
    const std::int32_t h = group_host_[g];
    if (h == Placement::kUnplaced) return;
    auto& list = host_groups_[static_cast<std::size_t>(h)];
    list.erase(std::remove(list.begin(), list.end(), g), list.end());
    host_load_[static_cast<std::size_t>(h)] -= sizes_[g];
    group_host_[g] = Placement::kUnplaced;
    for (std::size_t vm : model_.members(g)) placement_.unassign(vm);
  }

  void attach(std::size_t g, std::size_t host) {
    host_groups_[host].push_back(g);
    host_load_[host] += sizes_[g];
    group_host_[g] = static_cast<std::int32_t>(host);
    for (std::size_t vm : model_.members(g))
      placement_.assign(vm, static_cast<std::int32_t>(host));
  }

  std::size_t open_host() {
    for (std::size_t h = 0; h < host_groups_.size(); ++h)
      if (host_groups_[h].empty()) return h;
    host_groups_.emplace_back();
    host_load_.emplace_back();
    return host_groups_.size() - 1;
  }

  /// Evict groups from hosts whose predicted load violates the bound.
  /// Cheapest adequate action: the smallest group whose departure resolves
  /// the overload; otherwise the largest evictable group, repeated.
  void repair_overloaded_hosts() {
    for (std::size_t host = 0; host < host_groups_.size(); ++host) {
      while (!host_load_[host].fits_within(capacity_)) {
        const ResourceVector excess = host_load_[host] - capacity_;
        std::size_t best_single = model_.count();
        double best_single_key = 0.0;
        std::size_t largest = model_.count();
        double largest_key = -1.0;
        for (std::size_t g : host_groups_[host]) {
          if (model_.pinned_host(g) != Placement::kUnplaced) continue;
          const double key = normalized_load(sizes_[g], capacity_);
          const bool resolves =
              sizes_[g].cpu_rpe2 >= excess.cpu_rpe2 - 1e-9 &&
              sizes_[g].memory_mb >= excess.memory_mb - 1e-9;
          if (resolves &&
              (best_single == model_.count() || key < best_single_key)) {
            best_single = g;
            best_single_key = key;
          }
          if (key > largest_key) {
            largest = g;
            largest_key = key;
          }
        }
        const std::size_t victim =
            best_single != model_.count() ? best_single : largest;
        if (victim == model_.count()) break;  // only pinned groups remain
        detach(victim);
        pending_.push_back(victim);
      }
    }
  }

  /// First-fit pending groups onto the most-loaded feasible hosts.
  void place_pending() {
    std::stable_sort(pending_.begin(), pending_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return normalized_load(sizes_[a], capacity_) >
                              normalized_load(sizes_[b], capacity_);
                     });
    for (std::size_t g : pending_) {
      std::vector<std::size_t> hosts_by_load = active_hosts_desc();
      bool placed = false;
      for (std::size_t host : hosts_by_load) {
        if (fits(host, sizes_[g]) &&
            model_.allowed_on(g, static_cast<std::int32_t>(host),
                              placement_)) {
          attach(g, host);
          placed = true;
          break;
        }
      }
      if (!placed) {
        const std::size_t host = open_host();
        attach(g, host);  // a fresh host always fits a single group
      }
    }
    pending_.clear();
  }

  std::vector<std::size_t> active_hosts_desc() const {
    std::vector<std::size_t> hosts;
    for (std::size_t h = 0; h < host_groups_.size(); ++h)
      if (!host_groups_[h].empty()) hosts.push_back(h);
    std::stable_sort(hosts.begin(), hosts.end(),
                     [&](std::size_t a, std::size_t b) {
                       return normalized_load(host_load_[a], capacity_) >
                              normalized_load(host_load_[b], capacity_);
                     });
    return hosts;
  }

  /// Try to empty the most lightly loaded hosts entirely; commit only when
  /// every group of the candidate host relocates.
  void consolidate() {
    bool progress = true;
    while (progress) {
      progress = false;
      auto hosts = active_hosts_desc();
      std::reverse(hosts.begin(), hosts.end());  // ascending load
      for (std::size_t candidate : hosts) {
        if (host_groups_[candidate].empty()) continue;
        bool has_pinned = false;
        for (std::size_t g : host_groups_[candidate])
          if (model_.pinned_host(g) != Placement::kUnplaced) has_pinned = true;
        if (has_pinned) continue;
        if (try_empty_host(candidate)) {
          progress = true;
          break;  // host set changed; recompute order
        }
      }
    }
  }

  bool try_empty_host(std::size_t candidate) {
    // Trial relocation: groups in decreasing size, targets in decreasing
    // load, excluding the candidate itself.
    const std::vector<std::size_t> groups = host_groups_[candidate];
    std::vector<std::size_t> order = groups;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return normalized_load(sizes_[a], capacity_) >
                              normalized_load(sizes_[b], capacity_);
                     });
    // Snapshot state for rollback.
    const auto saved_load = host_load_;
    const auto saved_groups = host_groups_;
    const auto saved_group_host = group_host_;
    const Placement saved_placement = placement_;

    for (std::size_t g : order) {
      detach(g);
      bool placed = false;
      for (std::size_t host : active_hosts_desc()) {
        if (host == candidate) continue;
        if (fits(host, sizes_[g]) &&
            model_.allowed_on(g, static_cast<std::int32_t>(host),
                              placement_)) {
          attach(g, host);
          placed = true;
          break;
        }
      }
      if (!placed) {
        host_load_ = saved_load;
        host_groups_ = saved_groups;
        group_host_ = saved_group_host;
        placement_ = saved_placement;
        return false;
      }
    }
    return true;
  }

  const GroupModel& model_;
  std::span<const ResourceVector> sizes_;
  ResourceVector capacity_;
  Placement placement_;
  std::vector<std::vector<std::size_t>> host_groups_;
  std::vector<ResourceVector> host_load_;
  std::vector<std::int32_t> group_host_;
  std::vector<std::size_t> pending_;
};

}  // namespace

std::optional<DynamicPlan> plan_dynamic(std::span<const VmWorkload> vms,
                                        const StudySettings& settings,
                                        const ConstraintSet& constraints) {
  if (!constraints.structurally_feasible()) return std::nullopt;
  const GroupModel model(vms, constraints);
  const PeakPredictor predictor(settings.predictor);
  const ResourceVector capacity =
      settings.capacity(settings.dynamic_utilization_bound);
  const std::size_t intervals = settings.intervals();

  DynamicPlan plan;
  plan.per_interval.reserve(intervals);
  plan.migrations.reserve(intervals);

  Placement previous;
  for (std::size_t k = 0; k < intervals; ++k) {
    const std::size_t hour = settings.eval_begin() + k * settings.interval_hours;
    std::vector<ResourceVector> group_sizes(model.count());
    for (std::size_t g = 0; g < model.count(); ++g)
      group_sizes[g] =
          model.predicted_size(g, predictor, hour, settings.interval_hours);

    Placement current;
    if (k == 0) {
      // Initial placement: plain constrained FFD on the predicted sizes.
      std::vector<ResourceVector> vm_sizes(vms.size());
      for (std::size_t g = 0; g < model.count(); ++g) {
        // Spread the group size across members for ffd_pack (which
        // re-aggregates by affinity group internally).
        for (std::size_t vm : model.members(g))
          vm_sizes[vm] = predict_vm_demand(predictor, vms[vm], hour,
                                              settings.interval_hours);
      }
      auto packed = ffd_pack(vm_sizes, capacity, constraints);
      if (!packed) return std::nullopt;
      current = std::move(packed->placement);
    } else {
      IntervalAdapter adapter(model, group_sizes, capacity, previous);
      adapter.adapt();
      current = adapter.take_placement();
    }

    const std::size_t moved =
        k == 0 ? 0 : Placement::migrations_between(previous, current);
    plan.migrations.push_back(moved);
    plan.total_migrations += moved;
    plan.max_active_hosts =
        std::max(plan.max_active_hosts, current.active_host_count());
    previous = current;
    plan.per_interval.push_back(std::move(current));
  }
  return plan;
}

}  // namespace vmcw
