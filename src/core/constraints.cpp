#include "core/constraints.h"

#include <algorithm>
#include <map>

namespace vmcw {

ConstraintSet::ConstraintSet(std::size_t vm_count) {
  parent_.resize(vm_count);
  for (std::size_t i = 0; i < vm_count; ++i) parent_[i] = i;
}

void ConstraintSet::ensure_size(std::size_t vm) {
  while (parent_.size() <= vm) parent_.push_back(parent_.size());
}

std::size_t ConstraintSet::find_root(std::size_t vm) const noexcept {
  std::size_t root = vm;
  while (parent_[root] != root) root = parent_[root];
  return root;
}

std::size_t ConstraintSet::compress_to_root(std::size_t vm) {
  const std::size_t root = find_root(vm);
  while (parent_[vm] != root) {
    const std::size_t next = parent_[vm];
    parent_[vm] = root;
    vm = next;
  }
  return root;
}

void ConstraintSet::add_affinity(std::size_t a, std::size_t b) {
  ensure_size(std::max(a, b));
  const std::size_t ra = compress_to_root(a);
  const std::size_t rb = compress_to_root(b);
  if (ra != rb) parent_[std::max(ra, rb)] = std::min(ra, rb);
  has_affinity_ = true;
}

void ConstraintSet::add_anti_affinity(std::size_t a, std::size_t b) {
  ensure_size(std::max(a, b));
  anti_affinity_.emplace_back(a, b);
}

void ConstraintSet::pin(std::size_t vm, std::int32_t host) {
  ensure_size(vm);
  pins_.emplace_back(vm, host);
}

void ConstraintSet::forbid(std::size_t vm, std::int32_t host) {
  ensure_size(vm);
  forbidden_.emplace_back(vm, host);
}

std::vector<std::vector<std::size_t>> ConstraintSet::affinity_groups() const {
  std::map<std::size_t, std::vector<std::size_t>> by_root;
  for (std::size_t vm = 0; vm < parent_.size(); ++vm)
    by_root[find_root(vm)].push_back(vm);
  std::vector<std::vector<std::size_t>> groups;
  groups.reserve(by_root.size());
  for (auto& [root, members] : by_root) groups.push_back(std::move(members));
  return groups;
}

std::int32_t ConstraintSet::pinned_host(std::size_t vm) const noexcept {
  for (const auto& [pinned_vm, host] : pins_)
    if (pinned_vm == vm) return host;
  return Placement::kUnplaced;
}

bool ConstraintSet::allows(std::size_t vm, std::int32_t host,
                           const Placement& partial) const noexcept {
  const std::int32_t pin_host = pinned_host(vm);
  if (pin_host != Placement::kUnplaced && pin_host != host) return false;
  for (const auto& [fvm, fhost] : forbidden_)
    if (fvm == vm && fhost == host) return false;
  for (const auto& [a, b] : anti_affinity_) {
    const std::size_t other = a == vm ? b : (b == vm ? a : vm);
    if (other == vm) continue;
    if (other < partial.vm_count() && partial.is_placed(other) &&
        partial.host_of(other) == host)
      return false;
  }
  return true;
}

bool ConstraintSet::allows_group(const std::vector<std::size_t>& group,
                                 std::int32_t host,
                                 const Placement& partial) const noexcept {
  for (std::size_t vm : group)
    if (!allows(vm, host, partial)) return false;
  // Anti-affinity inside the group itself (conflicts with affinity).
  for (const auto& [a, b] : anti_affinity_) {
    const bool a_in = std::find(group.begin(), group.end(), a) != group.end();
    const bool b_in = std::find(group.begin(), group.end(), b) != group.end();
    if (a_in && b_in) return false;
  }
  return true;
}

bool ConstraintSet::satisfied_by(const Placement& placement) const noexcept {
  for (std::size_t vm = 0; vm < parent_.size(); ++vm) {
    if (vm >= placement.vm_count() || !placement.is_placed(vm)) return false;
    const std::size_t root = find_root(vm);
    if (root != vm && placement.host_of(vm) != placement.host_of(root))
      return false;
  }
  for (const auto& [a, b] : anti_affinity_) {
    if (a < placement.vm_count() && b < placement.vm_count() &&
        placement.is_placed(a) && placement.is_placed(b) &&
        placement.host_of(a) == placement.host_of(b))
      return false;
  }
  for (const auto& [vm, host] : pins_) {
    if (vm >= placement.vm_count() || placement.host_of(vm) != host)
      return false;
  }
  for (const auto& [vm, host] : forbidden_) {
    if (vm < placement.vm_count() && placement.host_of(vm) == host)
      return false;
  }
  return true;
}

bool ConstraintSet::structurally_feasible() const {
  // Two members of one affinity group pinned to different hosts.
  for (const auto& [vm_a, host_a] : pins_) {
    for (const auto& [vm_b, host_b] : pins_) {
      if (find_root(vm_a) == find_root(vm_b) && host_a != host_b) return false;
    }
    // A pin to a host the same VM is forbidden from.
    for (const auto& [fvm, fhost] : forbidden_)
      if (fvm == vm_a && fhost == host_a) return false;
  }
  // Anti-affinity within one affinity group.
  for (const auto& [a, b] : anti_affinity_)
    if (find_root(a) == find_root(b)) return false;
  return true;
}

}  // namespace vmcw
