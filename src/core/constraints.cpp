#include "core/constraints.h"

#include <algorithm>
#include <map>

namespace vmcw {

std::int32_t DomainLookup::domain_of(std::int32_t host) const noexcept {
  const std::int64_t shifted =
      static_cast<std::int64_t>(host) + static_cast<std::int64_t>(host_offset);
  if (shifted < 0) return -1;
  const auto h = static_cast<std::size_t>(shifted);
  if (h < table.size()) return table[h];
  if (tail_first_domain < 0 || h < tail_base) return -1;
  const std::size_t stride = tail_hosts_per_domain > 0 ? tail_hosts_per_domain : 1;
  return tail_first_domain + static_cast<std::int32_t>((h - tail_base) / stride);
}

ConstraintSet::ConstraintSet(std::size_t vm_count) {
  parent_.resize(vm_count);
  for (std::size_t i = 0; i < vm_count; ++i) parent_[i] = i;
}

void ConstraintSet::ensure_size(std::size_t vm) {
  while (parent_.size() <= vm) parent_.push_back(parent_.size());
}

std::size_t ConstraintSet::find_root(std::size_t vm) const noexcept {
  std::size_t root = vm;
  while (parent_[root] != root) root = parent_[root];
  return root;
}

std::size_t ConstraintSet::compress_to_root(std::size_t vm) {
  const std::size_t root = find_root(vm);
  while (parent_[vm] != root) {
    const std::size_t next = parent_[vm];
    parent_[vm] = root;
    vm = next;
  }
  return root;
}

void ConstraintSet::add_affinity(std::size_t a, std::size_t b) {
  ensure_size(std::max(a, b));
  const std::size_t ra = compress_to_root(a);
  const std::size_t rb = compress_to_root(b);
  if (ra != rb) parent_[std::max(ra, rb)] = std::min(ra, rb);
  has_affinity_ = true;
}

void ConstraintSet::add_anti_affinity(std::size_t a, std::size_t b) {
  ensure_size(std::max(a, b));
  anti_affinity_.emplace_back(a, b);
}

void ConstraintSet::pin(std::size_t vm, std::int32_t host) {
  ensure_size(vm);
  pins_.emplace_back(vm, host);
}

void ConstraintSet::forbid(std::size_t vm, std::int32_t host) {
  ensure_size(vm);
  forbidden_.emplace_back(vm, host);
}

void ConstraintSet::add_domain_spread(
    std::vector<std::size_t> vms, DomainLookup domains, std::size_t cap,
    std::vector<std::pair<std::int32_t, std::size_t>> preplaced) {
  if (vms.empty()) return;
  const std::size_t max_vm = *std::max_element(vms.begin(), vms.end());
  ensure_size(max_vm);
  if (spread_of_vm_.size() <= max_vm) spread_of_vm_.resize(max_vm + 1);
  const auto rule_index = static_cast<std::uint32_t>(spread_.size());
  for (const std::size_t vm : vms) spread_of_vm_[vm].push_back(rule_index);
  spread_.push_back(SpreadRule{std::move(vms), std::move(domains), cap,
                               std::move(preplaced)});
}

namespace {

/// Baseline members committed to `domain` outside this sub-problem.
std::size_t preplaced_in(const SpreadRule& rule, std::int32_t domain) noexcept {
  for (const auto& [d, count] : rule.preplaced)
    if (d == domain) return count;
  return 0;
}

}  // namespace

std::vector<std::vector<std::size_t>> ConstraintSet::affinity_groups() const {
  std::map<std::size_t, std::vector<std::size_t>> by_root;
  for (std::size_t vm = 0; vm < parent_.size(); ++vm)
    by_root[find_root(vm)].push_back(vm);
  std::vector<std::vector<std::size_t>> groups;
  groups.reserve(by_root.size());
  for (auto& [root, members] : by_root) groups.push_back(std::move(members));
  return groups;
}

std::int32_t ConstraintSet::pinned_host(std::size_t vm) const noexcept {
  for (const auto& [pinned_vm, host] : pins_)
    if (pinned_vm == vm) return host;
  return Placement::kUnplaced;
}

bool ConstraintSet::allows(std::size_t vm, std::int32_t host,
                           const Placement& partial) const noexcept {
  const std::int32_t pin_host = pinned_host(vm);
  if (pin_host != Placement::kUnplaced && pin_host != host) return false;
  for (const auto& [fvm, fhost] : forbidden_)
    if (fvm == vm && fhost == host) return false;
  for (const auto& [a, b] : anti_affinity_) {
    const std::size_t other = a == vm ? b : (b == vm ? a : vm);
    if (other == vm) continue;
    if (other < partial.vm_count() && partial.is_placed(other) &&
        partial.host_of(other) == host)
      return false;
  }
  if (vm < spread_of_vm_.size()) {
    for (const std::uint32_t r : spread_of_vm_[vm]) {
      const SpreadRule& rule = spread_[r];
      const std::int32_t d = rule.domains.domain_of(host);
      if (d < 0) continue;  // unknown domain: unconstrained
      if (preplaced_in(rule, d) + placed_in_same_domain(rule, vm, d, partial) +
              1 >
          rule.cap)
        return false;
    }
  }
  return true;
}

std::size_t ConstraintSet::placed_in_same_domain(
    const SpreadRule& rule, std::size_t vm, std::int32_t domain,
    const Placement& partial) const noexcept {
  std::size_t members = 0;
  for (const std::size_t other : rule.vms) {
    if (other == vm || other >= partial.vm_count() ||
        !partial.is_placed(other))
      continue;
    if (rule.domains.domain_of(partial.host_of(other)) == domain) ++members;
  }
  return members;
}

bool ConstraintSet::allows_group(const std::vector<std::size_t>& group,
                                 std::int32_t host,
                                 const Placement& partial) const noexcept {
  for (std::size_t vm : group)
    if (!allows(vm, host, partial)) return false;
  // Anti-affinity inside the group itself (conflicts with affinity).
  for (const auto& [a, b] : anti_affinity_) {
    const bool a_in = std::find(group.begin(), group.end(), a) != group.end();
    const bool b_in = std::find(group.begin(), group.end(), b) != group.end();
    if (a_in && b_in) return false;
  }
  // Domain caps must hold with the whole group landing at once: allows()
  // above admits each member singly, but co-placed members count together.
  for (const SpreadRule& rule : spread_) {
    std::size_t in_group = 0;
    for (const std::size_t vm : rule.vms)
      in_group += std::find(group.begin(), group.end(), vm) != group.end();
    if (in_group == 0) continue;  // the group cannot change this rule
    const std::int32_t d = rule.domains.domain_of(host);
    if (d < 0) continue;
    std::size_t members = in_group + preplaced_in(rule, d);
    for (const std::size_t vm : rule.vms) {
      if (std::find(group.begin(), group.end(), vm) != group.end()) continue;
      if (vm < partial.vm_count() && partial.is_placed(vm) &&
          rule.domains.domain_of(partial.host_of(vm)) == d)
        ++members;
    }
    if (members > rule.cap) return false;
  }
  return true;
}

bool ConstraintSet::satisfied_by(const Placement& placement) const noexcept {
  for (std::size_t vm = 0; vm < parent_.size(); ++vm) {
    if (vm >= placement.vm_count() || !placement.is_placed(vm)) return false;
    const std::size_t root = find_root(vm);
    if (root != vm && placement.host_of(vm) != placement.host_of(root))
      return false;
  }
  for (const auto& [a, b] : anti_affinity_) {
    if (a < placement.vm_count() && b < placement.vm_count() &&
        placement.is_placed(a) && placement.is_placed(b) &&
        placement.host_of(a) == placement.host_of(b))
      return false;
  }
  for (const auto& [vm, host] : pins_) {
    if (vm >= placement.vm_count() || placement.host_of(vm) != host)
      return false;
  }
  for (const auto& [vm, host] : forbidden_) {
    if (vm < placement.vm_count() && placement.host_of(vm) == host)
      return false;
  }
  for (const SpreadRule& rule : spread_) {
    // Count members per domain (rules are application-sized: O(n^2) here
    // is cheap and keeps this validation allocation-light).
    for (const std::size_t vm : rule.vms) {
      if (vm >= placement.vm_count() || !placement.is_placed(vm)) continue;
      const std::int32_t d = rule.domains.domain_of(placement.host_of(vm));
      if (d < 0) continue;
      std::size_t members = preplaced_in(rule, d);
      for (const std::size_t other : rule.vms) {
        if (other >= placement.vm_count() || !placement.is_placed(other))
          continue;
        members +=
            rule.domains.domain_of(placement.host_of(other)) == d ? 1 : 0;
      }
      if (members > rule.cap) return false;
    }
  }
  return true;
}

bool ConstraintSet::structurally_feasible() const {
  // Two members of one affinity group pinned to different hosts.
  for (const auto& [vm_a, host_a] : pins_) {
    for (const auto& [vm_b, host_b] : pins_) {
      if (find_root(vm_a) == find_root(vm_b) && host_a != host_b) return false;
    }
    // A pin to a host the same VM is forbidden from.
    for (const auto& [fvm, fhost] : forbidden_)
      if (fvm == vm_a && fhost == host_a) return false;
  }
  // Anti-affinity within one affinity group.
  for (const auto& [a, b] : anti_affinity_)
    if (find_root(a) == find_root(b)) return false;
  // A zero-cap spread rule forbids its members everywhere a domain is
  // known; an affinity group larger than a rule's cap can never co-locate.
  for (const SpreadRule& rule : spread_) {
    if (rule.cap == 0) return false;
    for (const std::size_t vm : rule.vms) {
      std::size_t same_affinity = 0;
      for (const std::size_t other : rule.vms)
        same_affinity += find_root(other) == find_root(vm) ? 1 : 0;
      if (same_affinity > rule.cap) return false;
    }
    // Pins forcing more members into one domain than the cap allows.
    for (const std::size_t vm : rule.vms) {
      const std::int32_t host = pinned_host(vm);
      if (host == Placement::kUnplaced) continue;
      const std::int32_t d = rule.domains.domain_of(host);
      if (d < 0) continue;
      std::size_t pinned_here = preplaced_in(rule, d);
      for (const std::size_t other : rule.vms) {
        const std::int32_t other_host = pinned_host(other);
        if (other_host != Placement::kUnplaced &&
            rule.domains.domain_of(other_host) == d)
          ++pinned_here;
      }
      if (pinned_here > rule.cap) return false;
    }
  }
  return true;
}

}  // namespace vmcw
