#include "core/study.h"

#include <stdexcept>

#include "runtime/telemetry.h"
#include "runtime/thread_pool.h"

namespace vmcw {

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kSemiStatic:
      return "Semi-Static";
    case Algorithm::kStochastic:
      return "Stochastic";
    case Algorithm::kDynamic:
      return "Dynamic";
  }
  return "?";
}

const AlgorithmResult& StudyResult::get(Algorithm a) const {
  for (const auto& r : results)
    if (r.algorithm == a) return r;
  throw std::out_of_range("algorithm not present in study result");
}

double StudyResult::normalized_space_cost(Algorithm a) const {
  const double base = get(Algorithm::kSemiStatic).space_cost;
  return base > 0 ? get(a).space_cost / base : 0.0;
}

double StudyResult::normalized_power_cost(Algorithm a) const {
  const double base = get(Algorithm::kSemiStatic).power_cost;
  return base > 0 ? get(a).power_cost / base : 0.0;
}

namespace {

AlgorithmResult evaluate_static(Algorithm algorithm, const StaticPlan& plan,
                                std::span<const VmWorkload> vms,
                                const StudySettings& settings,
                                const CostModel& costs) {
  AlgorithmResult result;
  result.algorithm = algorithm;
  const Placement schedule[] = {plan.placement};
  result.emulation =
      emulate(vms, schedule, settings, /*power_off_empty_hosts=*/false);
  result.provisioned_hosts = plan.hosts_used;
  result.space_cost = costs.space_hardware_cost(
      settings.target, result.provisioned_hosts,
      static_cast<double>(settings.eval_hours) / 24.0);
  result.power_cost = costs.power_cost(result.emulation.energy_wh);
  return result;
}

}  // namespace

StudyResult run_study(std::string workload_name,
                      std::span<const VmWorkload> vms,
                      const StudySettings& settings,
                      const ConstraintSet& constraints,
                      const CostModel& costs) {
  Stopwatch span("study.wall_seconds");
  StudyResult study;
  study.workload = std::move(workload_name);
  study.settings = settings;

  // The three algorithms plan and replay independently; fan them out as a
  // task group and collect into fixed slots so the result order (and every
  // byte of it) is identical at any thread count. ConstraintSet is
  // physically const-clean (no compression under const), so all tasks
  // share the caller's set directly.
  AlgorithmResult semi_result;
  AlgorithmResult stochastic_result;
  AlgorithmResult dynamic_result;
  TaskGroup group;
  group.run([&] {
    Stopwatch plan_span("study.semi_static_seconds");
    auto semi = plan_semi_static(vms, settings, constraints);
    if (!semi) throw std::runtime_error("semi-static planning failed");
    semi_result =
        evaluate_static(Algorithm::kSemiStatic, *semi, vms, settings, costs);
  });
  group.run([&] {
    Stopwatch plan_span("study.stochastic_seconds");
    auto stochastic = plan_stochastic(vms, settings, constraints);
    if (!stochastic) throw std::runtime_error("stochastic planning failed");
    stochastic_result = evaluate_static(Algorithm::kStochastic, *stochastic,
                                        vms, settings, costs);
  });
  group.run([&] {
    Stopwatch plan_span("study.dynamic_seconds");
    auto dynamic = plan_dynamic(vms, settings, constraints);
    if (!dynamic) throw std::runtime_error("dynamic planning failed");
    AlgorithmResult dyn;
    dyn.algorithm = Algorithm::kDynamic;
    dyn.emulation = emulate(vms, dynamic->per_interval, settings,
                            /*power_off_empty_hosts=*/true);
    dyn.provisioned_hosts = dynamic->max_active_hosts;
    dyn.space_cost = costs.space_hardware_cost(
        settings.target, dyn.provisioned_hosts,
        static_cast<double>(settings.eval_hours) / 24.0);
    dyn.power_cost = costs.power_cost(dyn.emulation.energy_wh);
    dyn.migrations_per_interval = std::move(dynamic->migrations);
    dyn.total_migrations = dynamic->total_migrations;
    dynamic_result = std::move(dyn);
  });
  group.wait();

  study.results.push_back(std::move(semi_result));
  study.results.push_back(std::move(stochastic_result));
  study.results.push_back(std::move(dynamic_result));
  return study;
}

StudyResult run_study(const Datacenter& dc, const StudySettings& settings,
                      const ConstraintSet& constraints,
                      const CostModel& costs) {
  const auto vms = to_vm_workloads(dc);
  return run_study(dc.industry, vms, settings, constraints, costs);
}

SensitivityResult sensitivity_sweep(
    const Datacenter& dc, const StudySettings& base_settings,
    std::span<const double> utilization_bounds) {
  Stopwatch span("sensitivity.wall_seconds");
  SensitivityResult result;
  result.workload = dc.industry;
  const auto vms = to_vm_workloads(dc);

  // The reference plans and every utilization-bound point are independent
  // cells of one grid: run them all on the pool, each writing its own slot.
  std::optional<StaticPlan> semi;
  std::optional<StaticPlan> stochastic;
  std::vector<std::size_t> dynamic_hosts(utilization_bounds.size(), 0);
  TaskGroup group;
  group.run([&] { semi = plan_semi_static(vms, base_settings); });
  group.run([&] { stochastic = plan_stochastic(vms, base_settings); });
  for (std::size_t i = 0; i < utilization_bounds.size(); ++i) {
    group.run([&, i] {
      StudySettings settings = base_settings;
      settings.dynamic_utilization_bound = utilization_bounds[i];
      auto dynamic = plan_dynamic(vms, settings);
      if (!dynamic)
        throw std::runtime_error(
            "dynamic planning failed in sensitivity sweep");
      dynamic_hosts[i] = dynamic->max_active_hosts;
    });
  }
  group.wait();

  if (!semi || !stochastic)
    throw std::runtime_error("static planning failed in sensitivity sweep");
  result.semi_static_hosts = semi->hosts_used;
  result.stochastic_hosts = stochastic->hosts_used;
  result.dynamic_points.reserve(utilization_bounds.size());
  for (std::size_t i = 0; i < utilization_bounds.size(); ++i)
    result.dynamic_points.push_back(
        SensitivityPoint{utilization_bounds[i], dynamic_hosts[i]});
  return result;
}

}  // namespace vmcw
