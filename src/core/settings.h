// Experimental settings (Table 3 of the paper).
//
// Traces cover 30 days (720 h). The first 16 days are planning history; the
// last 14 days (336 h) are the evaluation window the emulator replays —
// matching the paper's 14-day experiment with a 2-hour dynamic
// consolidation interval (168 intervals) and 20% of every host's CPU and
// memory reserved for reliable live migration (utilization bound 0.8).
// Semi-static variants relocate VMs during planned downtime, so they do not
// reserve migration headroom (the "20% handicap" of Section 5.4 applies to
// dynamic consolidation only).
#pragma once

#include <cstddef>

#include "core/predictor.h"
#include "hardware/catalog.h"
#include "hardware/server_spec.h"

namespace vmcw {

/// Failure-domain knobs: the physical rack / power shape assumed for the
/// target estate and whether planning compiles application spread rules
/// against it (src/topology derives the actual map; these stay plain
/// numbers so core does not depend on that layer).
struct FailureDomainSettings {
  bool spread = false;       ///< compile app-spread rules into planning
  std::size_t spread_k = 2;  ///< target failure domains per application
  std::size_t hosts_per_rack = 8;
  std::size_t racks_per_power_domain = 4;
};

struct StudySettings {
  ServerSpec target = hs23_elite_blade();

  std::size_t history_hours = 384;  ///< planning history [0, 384)
  std::size_t eval_hours = 336;     ///< evaluation window [384, 720)
  std::size_t interval_hours = 2;   ///< dynamic consolidation interval

  /// Utilization bound U for dynamic consolidation; 1-U of CPU and memory
  /// is reserved for live migration (Observation 4 / Table 3).
  double dynamic_utilization_bound = 0.8;
  /// Semi-static variants take downtime instead of live-migrating.
  double static_utilization_bound = 1.0;

  /// PCP parameters (Section 5.1): body of the distribution.
  double body_percentile = 90.0;
  double cluster_similarity = 0.60;
  /// Stochastic body percentile for memory: higher than for CPU because
  /// memory cannot be time-multiplexed without ballooning/swapping a live
  /// guest.
  double stochastic_memory_percentile = 95.0;

  PeakPredictor::Options predictor;

  FailureDomainSettings domains;

  std::size_t eval_begin() const noexcept { return history_hours; }
  std::size_t eval_end() const noexcept { return history_hours + eval_hours; }
  std::size_t intervals() const noexcept {
    return interval_hours > 0 ? eval_hours / interval_hours : 0;
  }

  /// Usable capacity of one target host under a utilization bound.
  ResourceVector capacity(double utilization_bound) const noexcept {
    return ResourceVector{target.cpu_rpe2, target.memory_mb} *
           utilization_bound;
  }
};

}  // namespace vmcw
