// Heterogeneous consolidation-target pools.
//
// The paper's study consolidates onto a uniform fleet of HS23 Elite blades,
// but real engagements often mix blade generations — e.g. reuse an existing
// rack of older blades and buy new ones only for the remainder. A HostPool
// describes the available hosts as ordered classes; host indices are dealt
// class by class (class 0 owns indices [0, n0), class 1 the next n1, ...),
// and only the final class may be unlimited ("buy as many as needed").
//
// A uniform unlimited pool reproduces the paper's setting exactly; every
// packer/planner overload taking a HostPool degenerates to the legacy
// behavior for it (asserted by tests).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "hardware/server_spec.h"

namespace vmcw {

struct HostClass {
  ServerSpec spec;
  /// Number of hosts of this class; kUnlimited = open-ended.
  std::size_t count = 0;

  static constexpr std::size_t kUnlimited =
      std::numeric_limits<std::size_t>::max();
};

class HostPool {
 public:
  /// The paper's setting: as many identical hosts as needed.
  static HostPool uniform(ServerSpec spec);

  /// Classes are consumed in order; only the last may be unlimited.
  /// Throws std::invalid_argument on an empty pool, a zero-count class, or
  /// an unlimited class that is not last.
  explicit HostPool(std::vector<HostClass> classes);

  /// Total host count; kUnbounded if the last class is unlimited.
  static constexpr std::size_t kUnbounded = HostClass::kUnlimited;
  std::size_t max_hosts() const noexcept { return max_hosts_; }
  bool is_bounded() const noexcept { return max_hosts_ != kUnbounded; }

  /// Does this host index exist in the pool?
  bool valid_host(std::size_t host) const noexcept {
    return host < max_hosts_;
  }

  /// Is this host in the trailing unlimited class (every later host is
  /// identical to it)?
  bool in_unlimited_class(std::size_t host) const noexcept;

  /// Spec of the host at an index. Precondition: valid_host(host).
  const ServerSpec& spec_of(std::size_t host) const noexcept;

  /// Usable capacity of a host under a utilization bound.
  ResourceVector capacity_of(std::size_t host,
                             double utilization_bound = 1.0) const noexcept;

  /// The largest per-host capacity in the pool (used as the normalization
  /// reference when ordering items).
  ResourceVector reference_capacity(double utilization_bound = 1.0) const
      noexcept;

  std::size_t class_count() const noexcept { return classes_.size(); }
  const HostClass& host_class(std::size_t i) const noexcept {
    return classes_[i];
  }

  /// Sub-pool covering global host indices [begin, end): host i of the
  /// slice has the spec of host begin + i here. Used by sharded emulation,
  /// where each shard evaluates its host range against a local pool.
  /// Requires begin < end and every index in range valid.
  HostPool slice(std::size_t begin, std::size_t end) const;

 private:
  std::vector<HostClass> classes_;
  std::vector<std::size_t> class_begin_;  ///< first host index per class
  std::size_t max_hosts_ = 0;
};

}  // namespace vmcw
