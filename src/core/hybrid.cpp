#include "core/hybrid.h"

#include <algorithm>
#include <numeric>

#include "analysis/seasonality.h"
#include "util/stats.h"

namespace vmcw {

namespace {

/// Re-key the parent's domain-spread rules for one side of the split:
/// members are remapped through old_to_side (parent VM index -> side VM
/// index, or kNotOnSide), and the side's host indices are shifted against
/// the merged fleet by `host_offset` (0 for the stochastic block, the
/// stochastic host count for the dynamic block).
///
/// The cap is joint across the split: when the other side is already
/// planned (`old_to_other` + `other_placement`, host indices unshifted
/// against the merged fleet), its members' per-domain occupancy seeds the
/// side rule's preplaced baseline. Without the baseline a group split
/// across both sides could admit up to 2x its cap in one domain — each
/// side alone under cap, jointly over it.
constexpr std::size_t kNotOnSide = static_cast<std::size_t>(-1);

ConstraintSet side_spread_rules(
    const ConstraintSet& constraints,
    const std::vector<std::size_t>& old_to_side, std::int32_t host_offset,
    const std::vector<std::size_t>* old_to_other = nullptr,
    const Placement* other_placement = nullptr) {
  ConstraintSet side;
  for (const SpreadRule& rule : constraints.spread_rules()) {
    std::vector<std::size_t> members;
    for (const std::size_t vm : rule.vms)
      if (vm < old_to_side.size() && old_to_side[vm] != kNotOnSide)
        members.push_back(old_to_side[vm]);
    if (members.empty()) continue;

    std::vector<std::pair<std::int32_t, std::size_t>> preplaced;
    if (old_to_other != nullptr && other_placement != nullptr) {
      for (const std::size_t vm : rule.vms) {
        if (vm >= old_to_other->size()) continue;
        const std::size_t j = (*old_to_other)[vm];
        if (j == kNotOnSide || j >= other_placement->vm_count() ||
            !other_placement->is_placed(j))
          continue;
        const std::int32_t d =
            rule.domains.domain_of(other_placement->host_of(j));
        if (d < 0) continue;
        const auto it = std::find_if(
            preplaced.begin(), preplaced.end(),
            [d](const auto& entry) { return entry.first == d; });
        if (it == preplaced.end())
          preplaced.emplace_back(d, 1);
        else
          ++it->second;
      }
    }
    // With no baseline, a side holding <= cap members can never exceed the
    // cap on its own; only then is the rule droppable.
    if (preplaced.empty() && (members.size() < 2 || rule.cap >= members.size()))
      continue;
    DomainLookup domains = rule.domains;
    domains.host_offset += host_offset;
    side.add_domain_spread(std::move(members), std::move(domains), rule.cap,
                           std::move(preplaced));
  }
  return side;
}

}  // namespace

std::vector<CandidateScore> score_dynamic_candidates(
    std::span<const VmWorkload> vms, const StudySettings& settings) {
  std::vector<CandidateScore> scores(vms.size());
  const PeakPredictor predictor(settings.predictor);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const auto cpu = vms[i].cpu_rpe2.slice(0, settings.history_hours);
    const double peak_demand = peak(cpu);
    const double mean_demand = mean(cpu);
    scores[i].burstiness_gain =
        peak_demand > 1e-9 ? 1.0 - mean_demand / peak_demand : 0.0;
    // Hit rate over the second half of the history (the first half seeds
    // the predictor's lookback).
    const std::size_t half = settings.history_hours / 2;
    scores[i].predictability =
        predictability(vms[i].cpu_rpe2, half, settings.history_hours - half,
                       settings.interval_hours, predictor)
            .hit_rate;
    scores[i].score = scores[i].burstiness_gain * scores[i].predictability;
  }
  return scores;
}

std::optional<HybridPlan> plan_hybrid(std::span<const VmWorkload> vms,
                                      const StudySettings& settings,
                                      double candidate_fraction,
                                      const ConstraintSet& constraints) {
  HybridPlan plan;
  plan.is_dynamic.assign(vms.size(), false);
  candidate_fraction = std::clamp(candidate_fraction, 0.0, 1.0);

  // Pick the top-scoring fraction as dynamic candidates.
  const auto scores = score_dynamic_candidates(vms, settings);
  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a].score > scores[b].score;
                   });
  const auto dynamic_count = static_cast<std::size_t>(
      candidate_fraction * static_cast<double>(vms.size()) + 0.5);
  for (std::size_t rank = 0; rank < dynamic_count && rank < order.size();
       ++rank)
    plan.is_dynamic[order[rank]] = true;

  // Split the fleet.
  std::vector<VmWorkload> stochastic_vms, dynamic_vms;
  std::vector<std::size_t> stochastic_index, dynamic_index;
  std::vector<std::size_t> old_to_stochastic(vms.size(), kNotOnSide);
  std::vector<std::size_t> old_to_dynamic(vms.size(), kNotOnSide);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    if (plan.is_dynamic[i]) {
      old_to_dynamic[i] = dynamic_vms.size();
      dynamic_vms.push_back(vms[i]);
      dynamic_index.push_back(i);
    } else {
      old_to_stochastic[i] = stochastic_vms.size();
      stochastic_vms.push_back(vms[i]);
      stochastic_index.push_back(i);
    }
  }

  // Plan each side with its own strategy.
  const ConstraintSet stochastic_cs =
      side_spread_rules(constraints, old_to_stochastic, 0);
  const auto stochastic_plan =
      plan_stochastic(stochastic_vms, settings, stochastic_cs);
  if (!stochastic_plan) return std::nullopt;
  plan.stochastic_hosts = stochastic_plan->hosts_used;

  DynamicPlan dynamic_plan;
  if (!dynamic_vms.empty()) {
    // The dynamic side counts the stochastic side's per-domain occupancy
    // as a preplaced baseline, so the spread cap binds jointly across the
    // split (stochastic hosts are unshifted against the merged fleet).
    const ConstraintSet dynamic_cs = side_spread_rules(
        constraints, old_to_dynamic,
        static_cast<std::int32_t>(plan.stochastic_hosts), &old_to_stochastic,
        &stochastic_plan->placement);
    auto planned = plan_dynamic(dynamic_vms, settings, dynamic_cs);
    if (!planned) return std::nullopt;
    dynamic_plan = std::move(*planned);
  } else {
    dynamic_plan.per_interval.assign(settings.intervals(), Placement(0));
    dynamic_plan.migrations.assign(settings.intervals(), 0);
  }
  plan.max_dynamic_hosts = dynamic_plan.max_active_hosts;
  plan.total_migrations = dynamic_plan.total_migrations;

  // Merge: stochastic hosts first, the dynamic group shifted above them.
  const auto offset = static_cast<std::int32_t>(plan.stochastic_hosts);
  plan.per_interval.reserve(settings.intervals());
  const Placement no_dynamic(0);
  for (std::size_t k = 0; k < settings.intervals(); ++k) {
    Placement merged(vms.size());
    for (std::size_t j = 0; j < stochastic_index.size(); ++j)
      merged.assign(stochastic_index[j],
                    stochastic_plan->placement.host_of(j));
    const Placement& dyn =
        dynamic_plan.per_interval.empty()
            ? no_dynamic
            : dynamic_plan.per_interval[std::min(
                  k, dynamic_plan.per_interval.size() - 1)];
    for (std::size_t j = 0; j < dynamic_index.size(); ++j) {
      if (j < dyn.vm_count() && dyn.is_placed(j))
        merged.assign(dynamic_index[j], dyn.host_of(j) + offset);
    }
    plan.per_interval.push_back(std::move(merged));
  }
  return plan;
}

}  // namespace vmcw
