// Hybrid consolidation: dynamic for the servers that benefit, stochastic
// semi-static for everyone else.
//
// The paper's conclusion (Section 8) is a per-workload recommendation:
// "Highly bursty and predictable workloads with high CPU contention can
// benefit from dynamic consolidation ... we recommend semi-static
// consolidation for [memory-contended] workloads." Bobroff et al. [4] made
// the same call per *server*. This planner operationalizes both: each VM
// is scored as a dynamic-placement candidate (burstiness gain x
// predictability, per Bobroff's recipe), the top fraction is consolidated
// dynamically on its own host group, and the remainder is packed once with
// the stochastic (PCP) planner.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/dynamic.h"
#include "core/planners.h"
#include "core/settings.h"
#include "core/vm.h"

namespace vmcw {

/// Dynamic-placement candidate score for one VM.
struct CandidateScore {
  /// Resource a dynamic consolidator could reclaim: 1 - mean/peak of the
  /// windowed CPU demand over the planning history (0 = flat, ->1 = spiky).
  double burstiness_gain = 0;
  /// Seasonal-max predictor hit rate over the history (misses become
  /// contention, so unpredictable gain is not bankable).
  double predictability = 0;
  /// Bankable gain: burstiness_gain x predictability.
  double score = 0;
};

/// Score every VM over the planning history [0, settings.history_hours).
std::vector<CandidateScore> score_dynamic_candidates(
    std::span<const VmWorkload> vms, const StudySettings& settings);

struct HybridPlan {
  std::vector<bool> is_dynamic;       ///< per VM: consolidated dynamically?
  std::size_t stochastic_hosts = 0;   ///< host indices [0, stochastic_hosts)
  std::size_t max_dynamic_hosts = 0;  ///< peak extra hosts beyond that
  std::size_t total_migrations = 0;
  /// Merged schedule: stochastic VMs keep their host all window; dynamic
  /// VMs move within host indices >= stochastic_hosts.
  std::vector<Placement> per_interval;

  std::size_t provisioned_hosts() const noexcept {
    return stochastic_hosts + max_dynamic_hosts;
  }
};

/// Plan hybrid consolidation: the `candidate_fraction` of VMs with the
/// highest candidate scores go to the dynamic group. Of the deployment
/// constraints only domain-spread rules are supported (each side re-checks
/// them with remapped VM indices and, for the dynamic block, the merged
/// fleet's host offset); affinity, pins and forbids are not — the two
/// groups plan independently, so pass VMs otherwise unconstrained. A
/// spread group split across the two sides is enforced per side (the cap
/// holds within each side, which can admit up to 2x the cap across both).
std::optional<HybridPlan> plan_hybrid(std::span<const VmWorkload> vms,
                                      const StudySettings& settings,
                                      double candidate_fraction = 0.25,
                                      const ConstraintSet& constraints = {});

}  // namespace vmcw
