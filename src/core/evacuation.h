// Host evacuation for maintenance / high availability.
//
// Section 1.2's field observation: production estates use live migration
// not for dynamic consolidation but for HA and server maintenance —
// draining a host before taking it down. This planner computes the drain:
// every VM on the host is relocated to the remaining fleet (respecting
// capacity headroom and deployment constraints), and the migration
// scheduler prices how long the drain takes — the number an operator needs
// before a maintenance window.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/constraints.h"
#include "core/host_pool.h"
#include "core/migration_scheduler.h"
#include "core/placement.h"
#include "core/vm.h"

namespace vmcw {

struct EvacuationPlan {
  Placement after;                  ///< placement with the host empty
  std::vector<MigrationJob> jobs;   ///< one per relocated VM
  MigrationSchedule schedule;       ///< drain timing under slot limits
};

struct EvacuationOptions {
  /// Headroom bound on destination hosts: a drain target may be filled to
  /// this fraction of capacity (leaving room for the workload to breathe
  /// while its host count is reduced).
  double destination_bound = 0.9;
  int per_host_migration_limit = 2;
  MigrationConfig migration;  ///< pre-copy parameters for job pricing
  /// Hosts that must not receive evacuees (indexed by host; nonzero =
  /// excluded). Fault-injected replay drains a crashed host while other
  /// hosts may also be down; empty means every surviving host is eligible.
  std::vector<std::uint8_t> unavailable_hosts;
};

/// Drain `host`: relocate all of its VMs, sized by their demand at `hour`,
/// onto the other hosts of `current` (no new hosts are opened — maintenance
/// must fit the surviving fleet). Returns std::nullopt if some VM cannot be
/// placed (insufficient headroom or constraints, e.g. a VM pinned to the
/// draining host).
std::optional<EvacuationPlan> plan_evacuation(
    const Placement& current, std::int32_t host,
    std::span<const VmWorkload> vms, std::size_t hour, const HostPool& pool,
    const EvacuationOptions& options = {},
    const ConstraintSet& constraints = {});

}  // namespace vmcw
