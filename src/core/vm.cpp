#include "core/vm.h"

namespace vmcw {

ResourceVector VmWorkload::demand_at(std::size_t hour) const noexcept {
  ResourceVector v;
  if (hour < cpu_rpe2.size()) v.cpu_rpe2 = cpu_rpe2[hour];
  if (hour < mem_mb.size()) v.memory_mb = mem_mb[hour];
  return v;
}

ResourceVector VmWorkload::size_over(std::size_t begin, std::size_t len,
                                     WindowReducer reducer) const {
  ResourceVector v;
  v.cpu_rpe2 = reduce(cpu_rpe2.slice(begin, len), reducer);
  v.memory_mb = reduce(mem_mb.slice(begin, len), reducer);
  return v;
}

std::vector<VmWorkload> to_vm_workloads(const Datacenter& dc) {
  std::vector<VmWorkload> vms;
  vms.reserve(dc.servers.size());
  for (const auto& server : dc.servers) {
    VmWorkload vm;
    vm.id = server.id;
    vm.app = server.app;
    vm.klass = server.klass;
    vm.cpu_rpe2 = server.cpu_rpe2();
    vm.mem_mb = server.mem_mb;
    vms.push_back(std::move(vm));
  }
  return vms;
}

}  // namespace vmcw
