#include "core/evacuation.h"

#include <algorithm>

#include "core/binpack.h"

namespace vmcw {

std::optional<EvacuationPlan> plan_evacuation(
    const Placement& current, std::int32_t host,
    std::span<const VmWorkload> vms, std::size_t hour, const HostPool& pool,
    const EvacuationOptions& options, const ConstraintSet& constraints) {
  if (!constraints.structurally_feasible()) return std::nullopt;
  // A VM pinned to the draining host cannot be moved.
  for (std::size_t vm = 0; vm < current.vm_count(); ++vm) {
    if (current.is_placed(vm) && current.host_of(vm) == host &&
        constraints.pinned_host(vm) == host)
      return std::nullopt;
  }

  EvacuationPlan plan;
  plan.after = current;

  // Current load of every surviving host at this hour.
  const std::size_t host_bound =
      std::max<std::size_t>(current.host_index_bound(),
                            static_cast<std::size_t>(host) + 1);
  std::vector<ResourceVector> load(host_bound);
  std::vector<std::size_t> evacuees;
  for (std::size_t vm = 0; vm < current.vm_count() && vm < vms.size(); ++vm) {
    if (!current.is_placed(vm)) continue;
    const auto h = static_cast<std::size_t>(current.host_of(vm));
    if (current.host_of(vm) == host)
      evacuees.push_back(vm);
    else
      load[h] += vms[vm].demand_at(hour);
  }

  // Biggest evacuees first (FFD on current demand).
  std::vector<ResourceVector> demands(vms.size());
  for (std::size_t vm : evacuees) demands[vm] = vms[vm].demand_at(hour);
  std::stable_sort(evacuees.begin(), evacuees.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demands[a].cpu_rpe2 + demands[a].memory_mb >
                            demands[b].cpu_rpe2 + demands[b].memory_mb;
                   });

  for (std::size_t vm : evacuees) plan.after.unassign(vm);
  for (std::size_t vm : evacuees) {
    bool placed = false;
    for (std::size_t h = 0; h < host_bound && !placed; ++h) {
      if (static_cast<std::int32_t>(h) == host) continue;
      if (h < options.unavailable_hosts.size() &&
          options.unavailable_hosts[h] != 0)
        continue;
      if (load[h].cpu_rpe2 == 0 && load[h].memory_mb == 0) {
        // Skip hosts that were empty before the drain: maintenance should
        // not power servers back on.
        bool was_used = false;
        for (std::size_t other = 0; other < current.vm_count(); ++other)
          if (current.is_placed(other) &&
              current.host_of(other) == static_cast<std::int32_t>(h))
            was_used = true;
        if (!was_used) continue;
      }
      if (!pool.valid_host(h)) continue;
      const auto capacity = pool.capacity_of(h, options.destination_bound);
      if (!(load[h] + demands[vm]).fits_within(capacity)) continue;
      if (!constraints.allows(vm, static_cast<std::int32_t>(h), plan.after))
        continue;
      plan.after.assign(vm, static_cast<std::int32_t>(h));
      load[h] += demands[vm];
      placed = true;
    }
    if (!placed) return std::nullopt;
  }

  plan.jobs = migration_jobs(current, plan.after, vms, hour,
                             options.migration);
  plan.schedule =
      schedule_migrations(plan.jobs, options.per_host_migration_limit);
  return plan;
}

}  // namespace vmcw
