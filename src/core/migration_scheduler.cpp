#include "core/migration_scheduler.h"

#include <algorithm>
#include <map>
#include <queue>

namespace vmcw {

std::vector<MigrationJob> migration_jobs(const Placement& prev,
                                         const Placement& next,
                                         std::span<const VmWorkload> vms,
                                         std::size_t hour,
                                         const MigrationConfig& base) {
  std::vector<MigrationJob> jobs;
  const std::size_t n = std::min({prev.vm_count(), next.vm_count(),
                                  vms.size()});
  for (std::size_t vm = 0; vm < n; ++vm) {
    if (!prev.is_placed(vm) || !next.is_placed(vm)) continue;
    if (prev.host_of(vm) == next.host_of(vm)) continue;
    MigrationJob job;
    job.vm = vm;
    job.from = prev.host_of(vm);
    job.to = next.host_of(vm);
    MigrationConfig config = base;
    config.vm_memory_mb = std::max(vms[vm].demand_at(hour).memory_mb, 64.0);
    // Scale the writable working set with the footprint, capped by it.
    config.writable_working_set_mb =
        std::min(config.writable_working_set_mb, config.vm_memory_mb);
    job.duration_s = simulate_precopy(config).duration_s;
    jobs.push_back(job);
  }
  return jobs;
}

MigrationSchedule schedule_migrations(std::span<const MigrationJob> jobs,
                                      int per_host_limit) {
  MigrationSchedule schedule;
  schedule.start_s.assign(jobs.size(), 0.0);
  if (jobs.empty()) return schedule;
  per_host_limit = std::max(per_host_limit, 1);

  // Longest job first.
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].duration_s > jobs[b].duration_s;
                   });

  // Event-driven list scheduling.
  std::map<std::int32_t, int> busy;  // concurrent migrations per host
  struct Running {
    double finish;
    std::size_t job;
  };
  auto later = [](const Running& a, const Running& b) {
    return a.finish > b.finish;
  };
  std::priority_queue<Running, std::vector<Running>, decltype(later)>
      running(later);
  std::vector<bool> started(jobs.size(), false);
  double now = 0.0;
  std::size_t remaining = jobs.size();
  std::size_t concurrent = 0;

  while (remaining > 0 || !running.empty()) {
    // Start everything startable at `now`.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t idx : order) {
        if (started[idx]) continue;
        const auto& job = jobs[idx];
        if (busy[job.from] >= per_host_limit ||
            busy[job.to] >= per_host_limit)
          continue;
        started[idx] = true;
        --remaining;
        ++busy[job.from];
        ++busy[job.to];
        schedule.start_s[idx] = now;
        running.push({now + job.duration_s, idx});
        ++concurrent;
        schedule.peak_concurrency =
            std::max(schedule.peak_concurrency, concurrent);
        progress = true;
      }
    }
    if (running.empty()) break;  // nothing running and nothing startable
    // Advance to the next completion.
    const Running done = running.top();
    running.pop();
    now = done.finish;
    --busy[jobs[done.job].from];
    --busy[jobs[done.job].to];
    --concurrent;
    schedule.makespan_s = std::max(schedule.makespan_s, done.finish);
  }
  return schedule;
}

double RetryPolicy::backoff_for(int failures) const noexcept {
  if (failures <= 0) return 0.0;
  double backoff = backoff_base_s;
  for (int i = 1; i < failures && backoff < backoff_cap_s; ++i) backoff *= 2.0;
  return std::min(backoff, backoff_cap_s);
}

FaultyMigrationSchedule schedule_migrations_with_retries(
    std::span<const MigrationJob> jobs, int per_host_limit,
    const RetryPolicy& policy, double deadline_s,
    const std::function<bool(std::size_t, int)>& attempt_fails,
    const std::function<double(std::size_t)>& slowdown) {
  FaultyMigrationSchedule result;
  result.jobs.assign(jobs.size(), JobAttempts{});
  if (jobs.empty()) return result;
  per_host_limit = std::max(per_host_limit, 1);
  const int max_attempts = std::max(policy.max_attempts, 1);

  // Effective durations: a slowed migration runs longer on every attempt.
  std::vector<double> duration(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const double factor = slowdown ? std::max(slowdown(j), 1.0) : 1.0;
    duration[j] = jobs[j].duration_s * factor;
  }

  // Longest job first, as in the fault-free scheduler.
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return duration[a] > duration[b];
                   });

  enum class State { kPending, kRunning, kDone, kAbandoned };
  std::vector<State> state(jobs.size(), State::kPending);
  std::vector<double> ready_at(jobs.size(), 0.0);  // earliest next try

  std::map<std::int32_t, int> busy;
  struct Running {
    double finish;
    std::size_t job;
  };
  auto later = [](const Running& a, const Running& b) {
    return a.finish > b.finish;
  };
  std::priority_queue<Running, std::vector<Running>, decltype(later)> running(
      later);
  double now = 0.0;

  auto abandon = [&](std::size_t idx) {
    state[idx] = State::kAbandoned;
    ++result.abandoned;
  };

  for (;;) {
    // Start every job startable at `now`.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t idx : order) {
        if (state[idx] != State::kPending || ready_at[idx] > now) continue;
        const auto& job = jobs[idx];
        if (busy[job.from] >= per_host_limit ||
            busy[job.to] >= per_host_limit)
          continue;
        if (now + duration[idx] > deadline_s) {
          // Cannot finish inside the interval: defer to the next one
          // rather than occupying slots for a doomed attempt.
          abandon(idx);
          continue;
        }
        state[idx] = State::kRunning;
        ++result.jobs[idx].attempts;
        ++result.total_attempts;
        ++busy[job.from];
        ++busy[job.to];
        running.push({now + duration[idx], idx});
        progress = true;
      }
    }
    if (running.empty()) {
      // Nothing running: jump to the earliest backoff expiry, if any.
      double next = -1.0;
      for (std::size_t idx : order)
        if (state[idx] == State::kPending &&
            (next < 0.0 || ready_at[idx] < next))
          next = ready_at[idx];
      if (next < 0.0) break;  // everything done or abandoned
      now = std::max(now, next);
      continue;
    }
    const Running done = running.top();
    running.pop();
    now = done.finish;
    const std::size_t idx = done.job;
    --busy[jobs[idx].from];
    --busy[jobs[idx].to];
    const int attempt = result.jobs[idx].attempts - 1;  // 0-based
    if (attempt_fails && attempt_fails(idx, attempt)) {
      ++result.failed_attempts;
      if (result.jobs[idx].attempts >= max_attempts) {
        abandon(idx);
      } else {
        const double back = policy.backoff_for(result.jobs[idx].attempts);
        ready_at[idx] = now + back;
        if (ready_at[idx] >= deadline_s)
          abandon(idx);
        else
          state[idx] = State::kPending;
      }
    } else {
      state[idx] = State::kDone;
      result.jobs[idx].completed = true;
      result.jobs[idx].finish_s = now;
      result.makespan_s = std::max(result.makespan_s, now);
    }
  }

  for (const auto& j : result.jobs)
    if (j.attempts > 1)
      result.retries += static_cast<std::size_t>(j.attempts - 1);
  return result;
}

ExecutionFeasibility execution_feasibility(
    std::span<const Placement> per_interval, std::span<const VmWorkload> vms,
    std::size_t eval_begin_hour, std::size_t interval_hours,
    const MigrationConfig& base, int per_host_limit) {
  ExecutionFeasibility result;
  const double interval_s =
      static_cast<double>(interval_hours) * 3600.0;
  for (std::size_t k = 1; k < per_interval.size(); ++k) {
    const std::size_t hour = eval_begin_hour + k * interval_hours;
    const auto jobs = migration_jobs(per_interval[k - 1], per_interval[k],
                                     vms, hour, base);
    const auto schedule = schedule_migrations(jobs, per_host_limit);
    result.makespan_s.push_back(schedule.makespan_s);
    result.worst_makespan_s =
        std::max(result.worst_makespan_s, schedule.makespan_s);
    if (schedule.makespan_s > interval_s) ++result.infeasible_intervals;
  }
  if (interval_s > 0)
    result.worst_utilization = result.worst_makespan_s / interval_s;
  return result;
}

}  // namespace vmcw
