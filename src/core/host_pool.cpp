#include "core/host_pool.h"

#include <stdexcept>

namespace vmcw {

HostPool HostPool::uniform(ServerSpec spec) {
  return HostPool({HostClass{std::move(spec), HostClass::kUnlimited}});
}

HostPool::HostPool(std::vector<HostClass> classes)
    : classes_(std::move(classes)) {
  if (classes_.empty()) throw std::invalid_argument("empty host pool");
  class_begin_.reserve(classes_.size());
  std::size_t next = 0;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const auto& c = classes_[i];
    if (c.count == 0) throw std::invalid_argument("zero-count host class");
    if (c.count == HostClass::kUnlimited && i + 1 != classes_.size())
      throw std::invalid_argument("unlimited host class must be last");
    class_begin_.push_back(next);
    if (c.count == HostClass::kUnlimited) {
      next = kUnbounded;
      break;
    }
    next += c.count;
  }
  max_hosts_ = next;
}

bool HostPool::in_unlimited_class(std::size_t host) const noexcept {
  return !is_bounded() && host >= class_begin_.back();
}

const ServerSpec& HostPool::spec_of(std::size_t host) const noexcept {
  // Classes are few; linear scan is fine and avoids storing per-host data.
  for (std::size_t i = classes_.size(); i-- > 0;) {
    if (host >= class_begin_[i]) return classes_[i].spec;
  }
  return classes_.front().spec;
}

ResourceVector HostPool::capacity_of(std::size_t host,
                                     double utilization_bound) const noexcept {
  const ServerSpec& spec = spec_of(host);
  return ResourceVector{spec.cpu_rpe2, spec.memory_mb} * utilization_bound;
}

HostPool HostPool::slice(std::size_t begin, std::size_t end) const {
  if (begin >= end || !valid_host(begin) || (end != kUnbounded && end > 0 && !valid_host(end - 1)))
    throw std::invalid_argument("HostPool::slice: bad range");
  std::vector<HostClass> classes;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const std::size_t class_lo = class_begin_[i];
    const std::size_t class_hi = classes_[i].count == HostClass::kUnlimited
                                     ? kUnbounded
                                     : class_lo + classes_[i].count;
    const std::size_t lo = std::max(class_lo, begin);
    const std::size_t hi = std::min(class_hi, end);
    if (lo >= hi) continue;
    classes.push_back(HostClass{classes_[i].spec, hi - lo});
  }
  return HostPool(std::move(classes));
}

ResourceVector HostPool::reference_capacity(
    double utilization_bound) const noexcept {
  ResourceVector best;
  for (const auto& c : classes_) {
    best.cpu_rpe2 = std::max(best.cpu_rpe2, c.spec.cpu_rpe2);
    best.memory_mb = std::max(best.memory_mb, c.spec.memory_mb);
  }
  return best * utilization_bound;
}

}  // namespace vmcw
