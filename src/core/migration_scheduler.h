// Execution step of the consolidation flow (Section 2.1): scheduling the
// live migrations that realize a placement change.
//
// Dynamic consolidation is only viable if each interval's migrations
// actually complete well inside the interval — "the time taken by live
// migration today" is exactly why the paper settles on 2-hour intervals
// (Section 7). This module turns a placement diff into migration jobs,
// prices each job with the pre-copy model, and list-schedules them under
// the real constraint: a host can drive only a limited number of
// simultaneous migrations (VMware ESX of the paper's era allowed 2 per
// host on 1 GbE), whether as source or as target.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/placement.h"
#include "core/vm.h"
#include "migration/precopy.h"

namespace vmcw {

struct MigrationJob {
  std::size_t vm = 0;
  std::int32_t from = -1;
  std::int32_t to = -1;
  double duration_s = 0;  ///< from the pre-copy model at the VM's footprint
};

/// Jobs required to go from `prev` to `next`. Each migrating VM's memory
/// footprint at `hour` prices its pre-copy duration via `base` (bandwidth,
/// dirty-rate and host-load parameters).
std::vector<MigrationJob> migration_jobs(const Placement& prev,
                                         const Placement& next,
                                         std::span<const VmWorkload> vms,
                                         std::size_t hour,
                                         const MigrationConfig& base);

struct MigrationSchedule {
  double makespan_s = 0;          ///< when the last migration finishes
  std::size_t peak_concurrency = 0;
  std::vector<double> start_s;    ///< per job, parallel to the input
};

/// Greedy longest-job-first list scheduling: a job may start when both its
/// source and target host have a free migration slot (each host serves at
/// most `per_host_limit` concurrent migrations in either role).
MigrationSchedule schedule_migrations(std::span<const MigrationJob> jobs,
                                      int per_host_limit = 2);

/// Retry behavior when a migration attempt can fail (fault-injected replay,
/// src/chaos): a failed attempt is retried after capped exponential backoff
/// until it succeeds, the attempt budget is exhausted, or the interval
/// deadline passes.
struct RetryPolicy {
  int max_attempts = 4;          ///< total tries per job (1 = never retry)
  double backoff_base_s = 30.0;  ///< wait before the second attempt
  double backoff_cap_s = 480.0;  ///< exponential backoff ceiling

  /// Backoff after the `failures`-th consecutive failure (1-based):
  /// min(base * 2^(failures-1), cap).
  double backoff_for(int failures) const noexcept;
};

/// Per-job outcome of fault-aware scheduling.
struct JobAttempts {
  int attempts = 0;        ///< tries actually started
  bool completed = false;  ///< finished successfully before the deadline
  double finish_s = 0;     ///< completion time (valid when completed)
};

struct FaultyMigrationSchedule {
  double makespan_s = 0;  ///< completion time of the last successful job
  std::size_t total_attempts = 0;
  std::size_t failed_attempts = 0;
  std::size_t retries = 0;    ///< attempts beyond each job's first
  std::size_t abandoned = 0;  ///< jobs not completed by the deadline
  std::vector<JobAttempts> jobs;  ///< parallel to the input jobs
};

/// List-schedule `jobs` under the per-host slot limits of
/// schedule_migrations(), where attempt `a` (0-based) of job `j` fails when
/// `attempt_fails(j, a)` and runs `slowdown(j)`x longer than priced (both
/// callbacks must be deterministic pure functions for replay determinism;
/// `slowdown` may be empty for none). An attempt is only started if it can
/// finish by `deadline_s`; a failed attempt occupies its slots for its full
/// duration, then the job backs off per `policy` before recompeting for
/// slots. Jobs that run out of attempts or deadline are reported abandoned.
FaultyMigrationSchedule schedule_migrations_with_retries(
    std::span<const MigrationJob> jobs, int per_host_limit,
    const RetryPolicy& policy, double deadline_s,
    const std::function<bool(std::size_t, int)>& attempt_fails,
    const std::function<double(std::size_t)>& slowdown = {});

/// Feasibility of a whole dynamic plan: for each interval, the ratio of
/// migration makespan to interval length. Ratios above 1 mean the plan
/// cannot be executed at that cadence.
struct ExecutionFeasibility {
  std::vector<double> makespan_s;       ///< per interval
  double worst_makespan_s = 0;
  double worst_utilization = 0;         ///< worst makespan / interval length
  std::size_t infeasible_intervals = 0; ///< makespan > interval length
};

ExecutionFeasibility execution_feasibility(
    std::span<const Placement> per_interval, std::span<const VmWorkload> vms,
    std::size_t eval_begin_hour, std::size_t interval_hours,
    const MigrationConfig& base, int per_host_limit = 2);

}  // namespace vmcw
