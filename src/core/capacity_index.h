// Indexed first-fit: the free-capacity index behind O(log n) admission.
//
// Every packer in this repository places by first-fit: the lowest-indexed
// host where capacity and constraints allow. The linear scan behind that
// rule is what caps fleet size — at 19k hosts the daemon controller spent
// ~80 ms per tick walking hosts (bench/baselines/BENCH_daemon_throughput),
// and the mapping study on distributed consolidation (PAPERS.md,
// arXiv 1803.03094) names centralized full-scan packers as *the*
// scalability bottleneck. A CapacityIndex replaces the scan with a segment
// tree over host indices: each leaf holds one host's free capacity (per
// resource), each internal node the component-wise maximum over its
// subtree, so "first host at index >= from with free_cpu >= c and
// free_mem >= m" resolves by descending the tree — O(log n) typical,
// pruning whole subtrees where either component's maximum falls short.
//
// Placements are provably identical to the linear scan, by construction:
//
//  - The index is only a *filter*. A candidate it returns is re-tested by
//    the caller with the exact ResourceVector::fits_within predicate (and
//    the exclude/frozen/constraint checks), so a false positive merely
//    advances the search — precisely what the linear scan does when it
//    rejects a host.
//  - False negatives are excluded by slack: each leaf's stored free
//    capacity is (capacity - load) plus a slack strictly larger than both
//    fits_within's relative epsilon and the floating-point error of the
//    subtraction, so any host the exact predicate would accept passes the
//    filter. Hosts the index skips are hosts the linear scan would have
//    rejected on capacity.
//
// The caller owns synchronization: after any change to a host's load it
// calls set_load(host, authoritative_load). The leaf is recomputed from the
// capacity and the caller's own accumulator (a single subtraction), so the
// index cannot drift from the true load no matter how many place/evict
// cycles a host sees.
//
// The index is deliberately dependency-light (hardware/ only) and
// header-only, so core's admission path and the PCP packer can use it
// without a link cycle onto the scale library.
#pragma once

#include <cstddef>
#include <vector>

#include "hardware/server_spec.h"

namespace vmcw {

class CapacityIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  CapacityIndex() = default;

  std::size_t size() const noexcept { return count_; }

  void reserve(std::size_t hosts) {
    if (hosts > slots_) regrow(hosts);
  }

  /// Append one host with zero load (free = its full capacity).
  void push_host(const ResourceVector& capacity) {
    if (count_ == slots_) regrow(count_ == 0 ? 64 : count_ * 2);
    capacity_.push_back(capacity);
    const std::size_t host = count_++;
    write_leaf(host);
  }

  /// Re-derive host's free capacity from the caller's authoritative load
  /// accumulator. O(log n).
  void set_load(std::size_t host, const ResourceVector& load) {
    load_[host] = load;
    write_leaf(host);
  }

  /// First host index >= `from` whose free capacity covers `need` in both
  /// dimensions (up to the slack — callers re-test exactly), or npos.
  /// O(log n) when a nearby host fits; degrades gracefully toward the
  /// linear scan it replaces when almost nothing does.
  std::size_t first_fit(const ResourceVector& need,
                        std::size_t from = 0) const noexcept {
    if (from >= count_) return npos;
    return descend(1, 0, slots_, from, need);
  }

  /// The slack added to each leaf: strictly dominates fits_within's
  /// relative epsilon (1e-9) and the rounding error of capacity - load, so
  /// the filter can never reject a host the exact predicate would accept.
  static double slack_for(double capacity) noexcept {
    return capacity * 1e-8 + 1e-6;
  }

 private:
  struct Free {
    double cpu = -1.0;  ///< unused slots never match (need >= 0 always)
    double mem = -1.0;
  };

  void write_leaf(std::size_t host) noexcept {
    const ResourceVector& cap = capacity_[host];
    const ResourceVector& load = load_[host];
    Free& leaf = tree_[slots_ + host];
    leaf.cpu = cap.cpu_rpe2 - load.cpu_rpe2 + slack_for(cap.cpu_rpe2);
    leaf.mem = cap.memory_mb - load.memory_mb + slack_for(cap.memory_mb);
    for (std::size_t node = (slots_ + host) / 2; node >= 1; node /= 2) {
      const Free& a = tree_[node * 2];
      const Free& b = tree_[node * 2 + 1];
      tree_[node].cpu = a.cpu > b.cpu ? a.cpu : b.cpu;
      tree_[node].mem = a.mem > b.mem ? a.mem : b.mem;
    }
  }

  std::size_t descend(std::size_t node, std::size_t lo, std::size_t hi,
                      std::size_t from,
                      const ResourceVector& need) const noexcept {
    if (hi <= from || lo >= count_) return npos;
    const Free& f = tree_[node];
    if (f.cpu < need.cpu_rpe2 || f.mem < need.memory_mb) return npos;
    if (hi - lo == 1) return lo;
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::size_t left = descend(node * 2, lo, mid, from, need);
    if (left != npos) return left;
    return descend(node * 2 + 1, mid, hi, from, need);
  }

  void regrow(std::size_t min_slots) {
    std::size_t slots = 1;
    while (slots < min_slots) slots *= 2;
    tree_.assign(2 * slots, Free{});
    slots_ = slots;
    capacity_.reserve(slots);
    load_.resize(slots);
    // Rebuild leaves bottom-up: write_leaf refreshes every ancestor, so
    // seeding each leaf once restores the whole tree.
    for (std::size_t host = 0; host < count_; ++host) write_leaf(host);
  }

  std::vector<Free> tree_;  ///< 1-based heap layout; leaves at slots_ + i
  std::vector<ResourceVector> capacity_;
  std::vector<ResourceVector> load_;
  std::size_t slots_ = 0;
  std::size_t count_ = 0;
};

}  // namespace vmcw
