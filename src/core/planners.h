// Semi-static planners: vanilla (peak + FFD) and stochastic (PCP).
//
// Both produce one placement that stays fixed for the whole 14-day
// evaluation window; re-planning happens only at the next consolidation
// event (with downtime + relocation, hence no live-migration reservation).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/binpack.h"
#include "core/constraints.h"
#include "core/settings.h"
#include "core/vm.h"

namespace vmcw {

struct StaticPlan {
  Placement placement;
  std::size_t hosts_used = 0;
  std::vector<ResourceVector> sizes;  ///< the demand estimate packed
};

/// Vanilla semi-static: size each VM at its *peak* demand over the planning
/// history, pack with FFD (Section 5.1 "Semi-Static Consolidation").
std::optional<StaticPlan> plan_semi_static(
    std::span<const VmWorkload> vms, const StudySettings& settings,
    const ConstraintSet& constraints = {});

/// Pure static consolidation (Section 2.2.1): one-time placement sized at
/// the expected peak over the *whole workload lifetime* — history and
/// future alike — so the placement never needs to change. This is the
/// most conservative (and in the wild, the most common) variant; it
/// differs from semi-static only in the sizing horizon, since semi-static
/// re-plans at every maintenance window and can size on the recent past.
std::optional<StaticPlan> plan_static(
    std::span<const VmWorkload> vms, const StudySettings& settings,
    const ConstraintSet& constraints = {});

/// Stochastic semi-static: PCP with body = 90th percentile, tail = max
/// (Section 5.1 "Stochastic Consolidation").
std::optional<StaticPlan> plan_stochastic(
    std::span<const VmWorkload> vms, const StudySettings& settings,
    const ConstraintSet& constraints = {});

}  // namespace vmcw
