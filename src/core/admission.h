// Single-VM admission and threshold-triggered partial re-planning.
//
// Before this layer existed, admission logic — "where does one more VM
// land?" — was only reachable through a full re-pack: ffd_pack owned the
// first-fit loop, so any caller with an *existing* placement (the online
// consolidation daemon, an operator asking "can I add this VM?") had to
// re-pack the estate to find out. The primitives here operate on explicit
// incremental state (a Placement plus per-host loads) and are shared by the
// batch packers (ffd_pack routes every group through admit_group) and the
// service-layer controller, so both give the same answer by construction.
//
// All loops are index-ordered and all state is caller-owned: results are a
// pure function of the inputs, bit-identical at any thread count.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/constraints.h"
#include "core/host_pool.h"
#include "core/placement.h"
#include "hardware/server_spec.h"

namespace vmcw {

class CapacityIndex;  // core/capacity_index.h

/// Knobs for admit_one / admit_group beyond capacity and constraints.
struct AdmissionOptions {
  /// Host excluded as a target (e.g. the source of an eviction).
  std::int32_t exclude_host = -1;
  /// Hosts with a nonzero entry are never targets (e.g. hosts frozen in
  /// degraded mode because their telemetry went stale). Indices past the
  /// span's size are unrestricted.
  std::span<const std::uint8_t> frozen_hosts;
  /// Allow opening hosts beyond host_load.size() (up to the pool bound).
  /// Draining turns this off: relocating onto a fresh host frees nothing.
  bool open_new_hosts = true;
  /// Optional free-capacity index over exactly the hosts in `host_load`
  /// (index->size() == host_load.size(), leaves derived from the same
  /// bound-scaled capacities and loads). When set, candidate hosts are
  /// enumerated in O(log n) through the index instead of a linear scan —
  /// every candidate is still re-tested with the exact capacity/constraint
  /// predicates, so placements are identical. Admission keeps the index in
  /// sync with every host_load mutation it makes (including opened hosts).
  CapacityIndex* index = nullptr;
};

/// First-fit an affinity group (a single VM is the singleton group) into
/// the lowest-indexed host where capacity and constraints allow, opening
/// hosts from the pool as needed. On success `host_load` and `placement`
/// are updated and the host index returned; on failure both are unchanged
/// except that `host_load` may have grown by empty trailing hosts probed
/// along the way (they carry zero load and are reused by later calls).
/// Returns std::nullopt when no host in the pool can take the group.
std::optional<std::size_t> admit_group(const std::vector<std::size_t>& group,
                                       const ResourceVector& group_size,
                                       std::vector<ResourceVector>& host_load,
                                       const HostPool& pool,
                                       double utilization_bound,
                                       const ConstraintSet& constraints,
                                       Placement& placement,
                                       const AdmissionOptions& options = {});

/// Single-VM admission: the daemon's arrival path and the unit the batch
/// packers are built from.
std::optional<std::size_t> admit_one(std::size_t vm,
                                     const ResourceVector& size,
                                     std::vector<ResourceVector>& host_load,
                                     const HostPool& pool,
                                     double utilization_bound,
                                     const ConstraintSet& constraints,
                                     Placement& placement,
                                     const AdmissionOptions& options = {});

/// Pinned admission: the group goes on exactly `host` or nowhere.
/// `host_load` is extended up to the pin when needed. When `index` is set
/// it is kept in sync (opened hosts pushed, the pinned host's load
/// refreshed on success).
bool admit_group_at(const std::vector<std::size_t>& group,
                    const ResourceVector& group_size, std::size_t host,
                    std::vector<ResourceVector>& host_load,
                    const HostPool& pool, double utilization_bound,
                    const ConstraintSet& constraints, Placement& placement,
                    CapacityIndex* index = nullptr);

/// The affinity groups of a ConstraintSet extended to cover all `n` VMs
/// (uncovered VMs become singletons), with out-of-range members dropped.
/// The common preamble of every packer/planner that treats affinity groups
/// as atomic items.
std::vector<std::vector<std::size_t>> placement_groups(
    std::size_t n, const ConstraintSet& constraints);

/// One relocation proposed by repair_and_drain.
struct PlacementMove {
  std::size_t vm = 0;
  std::int32_t from = Placement::kUnplaced;
  std::int32_t to = Placement::kUnplaced;
};

struct RepairOutcome {
  /// Evictions that resolved overloaded hosts, in the order committed.
  std::vector<PlacementMove> repair_moves;
  /// Whole-host drains of underutilized hosts, in the order committed.
  std::vector<PlacementMove> drain_moves;
  /// Hosts still violating the bound (only pinned/grouped VMs remained, or
  /// no target had room). The caller decides what a stuck host means —
  /// the daemon emits hold-with-reason decisions for them.
  std::vector<std::size_t> unresolved_hosts;
  /// Hosts emptied by the drain phase.
  std::vector<std::size_t> drained_hosts;
};

/// Threshold-triggered partial re-plan: instead of re-packing the estate,
/// visit only hosts that cross a threshold.
///
///  - Repair: hosts whose load exceeds their capacity (scaled by
///    `utilization_bound`) evict VMs — the smallest VM whose departure
///    resolves the overload, else the largest movable one — and each
///    evictee is re-admitted through admit_one (excluding the source).
///  - Drain: hosts whose normalized load is below `drain_below` (> 0) are
///    emptied entirely onto other non-empty hosts when every resident VM
///    relocates; otherwise the host is left untouched (trial + rollback).
///
/// Only movable VMs participate: not pinned, and alone in their affinity
/// group (moving one member of a group would tear it; groups stay where
/// the batch planner put them). Hosts with a nonzero `frozen_hosts` entry
/// are skipped as sources and never receive VMs — the daemon freezes hosts
/// whose telemetry went stale. `sizes[vm]` is each VM's current demand
/// estimate; `placement` and `host_load` must agree and are updated in
/// place. An optional `index` (in sync with `host_load` on entry, see
/// AdmissionOptions::index) accelerates every re-admission's target search
/// and is kept in sync with each eviction/relocation/rollback.
RepairOutcome repair_and_drain(std::span<const ResourceVector> sizes,
                               Placement& placement,
                               std::vector<ResourceVector>& host_load,
                               const HostPool& pool, double utilization_bound,
                               double drain_below,
                               const ConstraintSet& constraints,
                               std::span<const std::uint8_t> frozen_hosts = {},
                               CapacityIndex* index = nullptr);

}  // namespace vmcw
