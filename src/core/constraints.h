// Deployment-constraint framework (Section 2.2.4).
//
// Enterprise placements are never purely resource-driven: applications pin
// VMs to licensed hosts, cluster peers must not share a failure domain
// (anti-affinity), and chatty tiers must share one (affinity). The paper's
// tooling supports inclusion and exclusion constraints; every packer in
// this repository consults a ConstraintSet.
//
//  - affinity(a, b):       a and b must land on the same host. Affinity is
//                          transitive; packers treat each affinity group as
//                          one super-item.
//  - anti_affinity(a, b):  a and b must land on different hosts.
//  - pin(vm, host):        vm must land on exactly this host index.
//  - forbid(vm, host):     vm must not land on this host index.
//  - domain spread:        at most `cap` members of a replica group may
//                          share one failure domain (rack, power feed).
//                          Anti-affinity is the degenerate case where the
//                          domain is the host itself and cap is 1.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/placement.h"

namespace vmcw {

/// Total host -> failure-domain lookup, decoupled from the topology layer
/// so core stays free of it: an explicit table for the first hosts plus an
/// optional affine tail (domains of `tail_hosts_per_domain` consecutive
/// hosts from `tail_base` on), matching maps derived over pools whose last
/// class is unlimited. Packers may open host indices past any table a
/// caller could precompute; the tail keeps the constraint binding there.
struct DomainLookup {
  std::vector<std::int32_t> table;      ///< domain of host h for h < size()
  std::size_t tail_base = 0;            ///< first extrapolated host index
  std::int32_t tail_first_domain = -1;  ///< -1: no tail (unknown past table)
  std::size_t tail_hosts_per_domain = 1;
  /// Added to the host index before lookup — sub-problems whose host
  /// indices are shifted against the real fleet (hybrid's dynamic block)
  /// reuse the parent lookup through this offset.
  std::int32_t host_offset = 0;

  /// Domain of a host; -1 when unknown (such hosts are never constrained).
  std::int32_t domain_of(std::int32_t host) const noexcept;
};

/// One compiled spread rule: of the VMs in `vms` (one application's
/// replicas), at most `cap` may be placed on hosts sharing a domain.
struct SpreadRule {
  std::vector<std::size_t> vms;
  DomainLookup domains;
  std::size_t cap = 1;
  /// Per-domain counts of group members already committed *outside* this
  /// sub-problem (hybrid plans its two sides separately; the side planned
  /// second must count the first side's occupancy or a group split across
  /// both sides can admit up to 2x its cap in one domain). The cap is
  /// enforced jointly: preplaced + placed here + candidate <= cap.
  std::vector<std::pair<std::int32_t, std::size_t>> preplaced;
};

class ConstraintSet {
 public:
  ConstraintSet() = default;
  explicit ConstraintSet(std::size_t vm_count);

  std::size_t vm_count() const noexcept { return parent_.size(); }
  bool empty() const noexcept {
    return anti_affinity_.empty() && pins_.empty() && forbidden_.empty() &&
           spread_.empty() && !has_affinity_;
  }

  void add_affinity(std::size_t a, std::size_t b);
  void add_anti_affinity(std::size_t a, std::size_t b);
  void pin(std::size_t vm, std::int32_t host);
  void forbid(std::size_t vm, std::int32_t host);
  /// At most `cap` of `vms` on hosts sharing one domain of `domains`.
  /// `preplaced` seeds per-domain baseline counts of members committed
  /// outside this sub-problem (see SpreadRule::preplaced).
  void add_domain_spread(
      std::vector<std::size_t> vms, DomainLookup domains, std::size_t cap,
      std::vector<std::pair<std::int32_t, std::size_t>> preplaced = {});
  const std::vector<SpreadRule>& spread_rules() const noexcept {
    return spread_;
  }

  /// Affinity groups as disjoint VM-index lists covering all VMs
  /// (singletons included), ordered by smallest member.
  std::vector<std::vector<std::size_t>> affinity_groups() const;

  /// Host this VM is pinned to, or Placement::kUnplaced.
  std::int32_t pinned_host(std::size_t vm) const noexcept;

  /// May `vm` go on `host` given the partial placement so far?
  /// Checks pin, forbid, and anti-affinity against already placed VMs.
  bool allows(std::size_t vm, std::int32_t host,
              const Placement& partial) const noexcept;

  /// May the whole affinity `group` go on `host` together?
  bool allows_group(const std::vector<std::size_t>& group, std::int32_t host,
                    const Placement& partial) const noexcept;

  /// Validate a complete placement (used by tests and as a post-condition).
  bool satisfied_by(const Placement& placement) const noexcept;

  /// Quick structural feasibility checks (pins conflicting with affinity or
  /// anti-affinity are unsatisfiable regardless of capacity).
  bool structurally_feasible() const;

 private:
  /// Root lookup without mutation — logically and physically const, so a
  /// single ConstraintSet can be shared by concurrent planner tasks.
  std::size_t find_root(std::size_t vm) const noexcept;
  /// Root lookup with path compression; only mutators call this, keeping
  /// chains short without ever writing under const.
  std::size_t compress_to_root(std::size_t vm);
  void ensure_size(std::size_t vm);

  /// Spread members of `spread_[r]` placed (other than `vm`) in the same
  /// domain as `host`; kNoDomain hosts never count.
  std::size_t placed_in_same_domain(const SpreadRule& rule, std::size_t vm,
                                    std::int32_t domain,
                                    const Placement& partial) const noexcept;

  std::vector<std::size_t> parent_;  // union-find, compressed on mutation
  bool has_affinity_ = false;
  std::vector<std::pair<std::size_t, std::size_t>> anti_affinity_;
  std::vector<std::pair<std::size_t, std::int32_t>> pins_;
  std::vector<std::pair<std::size_t, std::int32_t>> forbidden_;
  std::vector<SpreadRule> spread_;
  /// Per VM: indices into spread_ of the rules containing it, so the hot
  /// allows() path touches only the (few, small) rules a VM is part of.
  std::vector<std::vector<std::uint32_t>> spread_of_vm_;
};

}  // namespace vmcw
