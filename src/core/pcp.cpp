#include "core/pcp.h"

#include <algorithm>
#include <map>

#include "analysis/correlation.h"
#include "core/admission.h"
#include "core/capacity_index.h"

namespace vmcw {

std::vector<StochasticItem> make_stochastic_items(
    std::span<const VmWorkload> vms, std::size_t begin, std::size_t len,
    double body_percentile, double cluster_similarity,
    double memory_body_percentile) {
  std::vector<StochasticItem> items(vms.size());
  std::vector<std::vector<double>> signatures(vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const auto cpu = vms[i].cpu_rpe2.slice(begin, len);
    const auto mem = vms[i].mem_mb.slice(begin, len);
    const BodyTail cpu_bt = body_tail(cpu, body_percentile);
    const BodyTail mem_bt = body_tail(mem, memory_body_percentile);
    items[i].body = ResourceVector{cpu_bt.body, mem_bt.body};
    items[i].tail = ResourceVector{cpu_bt.tail, mem_bt.tail};
    // Signature over the window slice; hour-of-day phase is preserved
    // because `begin` is always a multiple of 24 in the planners.
    signatures[i] = peak_signature(
        TimeSeries(std::vector<double>(cpu.begin(), cpu.end())), cpu_bt.body);
  }
  const auto clusters = cluster_signatures(signatures, cluster_similarity);
  for (std::size_t i = 0; i < vms.size(); ++i) items[i].cluster = clusters[i];
  return items;
}

namespace {

/// Incrementally maintained host envelope.
struct HostEnvelope {
  ResourceVector body_sum;
  // Ordered map: provisioned()/provisioned_with() fold over the entries,
  // and envelope math must not depend on hash iteration order.
  std::map<std::size_t, ResourceVector> cluster_tails;

  ResourceVector provisioned() const {
    ResourceVector worst_tail;
    for (const auto& [cluster, tail] : cluster_tails) {
      worst_tail.cpu_rpe2 = std::max(worst_tail.cpu_rpe2, tail.cpu_rpe2);
      worst_tail.memory_mb = std::max(worst_tail.memory_mb, tail.memory_mb);
    }
    return body_sum + worst_tail;
  }

  ResourceVector provisioned_with(const StochasticItem& item) const {
    ResourceVector worst_tail;
    for (const auto& [cluster, tail] : cluster_tails) {
      ResourceVector t = tail;
      if (cluster == item.cluster) t += item.tail;
      worst_tail.cpu_rpe2 = std::max(worst_tail.cpu_rpe2, t.cpu_rpe2);
      worst_tail.memory_mb = std::max(worst_tail.memory_mb, t.memory_mb);
    }
    if (!cluster_tails.contains(item.cluster)) {
      worst_tail.cpu_rpe2 = std::max(worst_tail.cpu_rpe2, item.tail.cpu_rpe2);
      worst_tail.memory_mb =
          std::max(worst_tail.memory_mb, item.tail.memory_mb);
    }
    return body_sum + item.body + worst_tail;
  }

  void add(const StochasticItem& item) {
    body_sum += item.body;
    cluster_tails[item.cluster] += item.tail;
  }
};

}  // namespace

ResourceVector pcp_envelope(std::span<const StochasticItem> items,
                            std::span<const std::size_t> members) {
  HostEnvelope env;
  for (std::size_t m : members) env.add(items[m]);
  return env.provisioned();
}

std::optional<PackResult> pcp_pack(std::span<const StochasticItem> items,
                                   const ResourceVector& capacity,
                                   const ConstraintSet& constraints) {
  const std::size_t n = items.size();
  if (!constraints.structurally_feasible()) return std::nullopt;

  // Order by decreasing worst-case single-item footprint (body + tail).
  std::vector<ResourceVector> worst_case(n);
  for (std::size_t i = 0; i < n; ++i)
    worst_case[i] = items[i].body + items[i].tail;

  // Affinity groups placed atomically (same mechanics as ffd_pack).
  const auto groups = placement_groups(n, constraints);

  std::vector<ResourceVector> group_worst(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (std::size_t vm : groups[g]) group_worst[g] += worst_case[vm];
  const auto order = decreasing_size_order(group_worst, capacity);

  Placement placement(n);
  std::vector<HostEnvelope> hosts;

  // Skip-filter over envelope headroom. The leaf for a host stores
  // capacity - provisioned(host); a group is queried with its body sum.
  // Sound because fits_on implies the group's final envelope fits, and
  // that envelope exceeds provisioned(host) by at least the body sum (the
  // worst tail only grows when items are added) — so any host fits_on
  // would accept has headroom >= body sum and survives the filter. Hosts
  // the filter skips are hosts fits_on must reject, and every surviving
  // candidate is re-tested with fits_on exactly.
  CapacityIndex index;
  std::vector<ResourceVector> group_body(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (std::size_t vm : groups[g]) group_body[g] += items[vm].body;
  auto open_host = [&]() {
    hosts.emplace_back();
    index.push_host(capacity);
  };
  auto refresh_host = [&](std::size_t host) {
    index.set_load(host, hosts[host].provisioned());
  };

  auto fits_on = [&](std::size_t g, std::size_t host) {
    HostEnvelope trial = hosts[host];
    for (std::size_t vm : groups[g]) {
      if (!trial.provisioned_with(items[vm]).fits_within(capacity))
        return false;
      trial.add(items[vm]);
    }
    return constraints.allows_group(groups[g], static_cast<std::int32_t>(host),
                                    placement);
  };
  auto place_on = [&](std::size_t g, std::size_t host) {
    for (std::size_t vm : groups[g]) {
      hosts[host].add(items[vm]);
      placement.assign(vm, static_cast<std::int32_t>(host));
    }
  };

  // Pinned groups claim their hosts before anything else fills them.
  std::vector<std::int32_t> group_pin(groups.size(), Placement::kUnplaced);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t vm : groups[g]) {
      const std::int32_t p = constraints.pinned_host(vm);
      if (p != Placement::kUnplaced) group_pin[g] = p;
    }
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (group_pin[g] == Placement::kUnplaced) continue;
    while (hosts.size() <= static_cast<std::size_t>(group_pin[g])) open_host();
    if (!fits_on(g, static_cast<std::size_t>(group_pin[g])))
      return std::nullopt;
    place_on(g, static_cast<std::size_t>(group_pin[g]));
    refresh_host(static_cast<std::size_t>(group_pin[g]));
  }

  for (std::size_t g : order) {
    if (group_pin[g] != Placement::kUnplaced) continue;  // already placed
    bool placed = false;
    std::size_t from = 0;
    while (from < hosts.size()) {
      const std::size_t host = index.first_fit(group_body[g], from);
      if (host == CapacityIndex::npos || host >= hosts.size()) break;
      if (fits_on(g, host)) {
        place_on(g, host);
        refresh_host(host);
        placed = true;
        break;
      }
      from = host + 1;
    }
    if (!placed) {
      open_host();
      if (!fits_on(g, hosts.size() - 1)) return std::nullopt;
      place_on(g, hosts.size() - 1);
      refresh_host(hosts.size() - 1);
    }
  }

  PackResult result{std::move(placement), 0};
  result.hosts_used = result.placement.active_host_count();
  return result;
}

}  // namespace vmcw
