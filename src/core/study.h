// The Section-5 experimental study: run all three consolidation approaches
// on one data center and collect every performance parameter the paper
// compares (space & hardware cost, power cost, utilization, contention),
// plus the Fig 13-16 sensitivity sweep over the utilization bound.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/dynamic.h"
#include "core/emulator.h"
#include "core/planners.h"
#include "hardware/cost_model.h"
#include "trace/server_trace.h"

namespace vmcw {

enum class Algorithm { kSemiStatic, kStochastic, kDynamic };

const char* to_string(Algorithm a) noexcept;

struct AlgorithmResult {
  Algorithm algorithm = Algorithm::kSemiStatic;
  std::size_t provisioned_hosts = 0;
  double space_cost = 0;  ///< space + hardware over the window
  double power_cost = 0;
  EmulationReport emulation;
  std::vector<std::size_t> migrations_per_interval;  ///< dynamic only
  std::size_t total_migrations = 0;
};

struct StudyResult {
  std::string workload;
  StudySettings settings;
  std::vector<AlgorithmResult> results;

  const AlgorithmResult& get(Algorithm a) const;

  /// Fig 7 normalization: cost of `a` / cost of vanilla Semi-Static.
  double normalized_space_cost(Algorithm a) const;
  double normalized_power_cost(Algorithm a) const;
};

/// Run the full three-way comparison. Throws std::runtime_error if any
/// planner fails (a VM larger than a host, or unsatisfiable constraints).
StudyResult run_study(const Datacenter& dc, const StudySettings& settings,
                      const ConstraintSet& constraints = {},
                      const CostModel& costs = CostModel{});

/// Same, starting from pre-converted VM workloads (lets callers reuse the
/// conversion across settings, e.g. in the sensitivity sweep).
StudyResult run_study(std::string workload_name,
                      std::span<const VmWorkload> vms,
                      const StudySettings& settings,
                      const ConstraintSet& constraints = {},
                      const CostModel& costs = CostModel{});

/// Fig 13-16: servers provisioned by dynamic consolidation as a function of
/// the utilization bound U, with the (U-independent) semi-static and
/// stochastic requirements for reference.
struct SensitivityPoint {
  double utilization_bound = 0;
  std::size_t dynamic_hosts = 0;
};

struct SensitivityResult {
  std::string workload;
  std::size_t semi_static_hosts = 0;
  std::size_t stochastic_hosts = 0;
  std::vector<SensitivityPoint> dynamic_points;
};

SensitivityResult sensitivity_sweep(const Datacenter& dc,
                                    const StudySettings& base_settings,
                                    std::span<const double> utilization_bounds);

}  // namespace vmcw
