// First-Fit-Decreasing 2-D vector bin packing.
//
// The paper's Static and vanilla Semi-Static consolidation use FFD over
// scalar-sized VMs. With two resources (CPU RPE2, memory MB) the standard
// generalization sorts items by their largest capacity-normalized dimension
// and first-fits each into the lowest-indexed host where both dimensions
// and all deployment constraints are satisfied, opening a new host when
// none fits. FFD is a 11/9 OPT + 1 approximation in 1-D and remains the
// industry workhorse in 2-D.
#pragma once

#include <optional>
#include <span>

#include "core/constraints.h"
#include "core/host_pool.h"
#include "core/placement.h"
#include "hardware/server_spec.h"

namespace vmcw {

struct PackResult {
  Placement placement;
  std::size_t hosts_used = 0;
};

/// Pack `sizes[vm]` items into identical hosts of the given capacity.
/// Returns std::nullopt when some item (or affinity group) cannot be placed
/// anywhere: an item exceeding capacity, or unsatisfiable constraints.
std::optional<PackResult> ffd_pack(std::span<const ResourceVector> sizes,
                                   const ResourceVector& capacity,
                                   const ConstraintSet& constraints = {});

/// Heterogeneous-pool variant: hosts come from `pool` in index order, each
/// with its own capacity scaled by `utilization_bound`. Also fails when a
/// bounded pool runs out of hosts.
std::optional<PackResult> ffd_pack(std::span<const ResourceVector> sizes,
                                   const HostPool& pool,
                                   double utilization_bound,
                                   const ConstraintSet& constraints = {});

/// Sort order used by FFD and the PCP packer: indices of `sizes` by
/// descending max normalized dimension.
std::vector<std::size_t> decreasing_size_order(
    std::span<const ResourceVector> sizes, const ResourceVector& capacity);

}  // namespace vmcw
