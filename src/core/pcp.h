// Stochastic consolidation: Peak-Clustering-based Placement (PCP variant).
//
// The algorithm the paper uses as its "intelligent semi-static" baseline
// (Verma et al., USENIX ATC'09, parameters as in Section 5.1: body = 90th
// percentile, tail = max). Each VM's demand is split into a body (sized
// always) and a tail (sized only against peers that peak at the same time).
// VMs are clustered by *when* they peak (peak-epoch signatures); on any
// host, the provisioned envelope is
//
//   sum(bodies)  +  max over clusters( sum of tails of that cluster's VMs )
//
// per resource dimension. VMs from different clusters peak at different
// epochs, so their tails never stack — that is what lets PCP size at the
// body yet almost never experience contention, and why it recovers most of
// dynamic consolidation's gains without live migration.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/binpack.h"
#include "core/constraints.h"
#include "core/vm.h"

namespace vmcw {

struct StochasticItem {
  ResourceVector body;
  ResourceVector tail;
  std::size_t cluster = 0;
};

/// Build PCP items from VM histories over [begin, begin+len): body is the
/// `body_percentile` of hourly demand, tail = max - body, and the cluster
/// comes from peak-signature clustering of the CPU series.
///
/// Memory gets its own (higher) body percentile: reclaiming memory from a
/// running guest means ballooning or swapping, so the stochastic sizing is
/// less aggressive on memory than on time-multiplexable CPU.
std::vector<StochasticItem> make_stochastic_items(
    std::span<const VmWorkload> vms, std::size_t begin, std::size_t len,
    double body_percentile = 90.0, double cluster_similarity = 0.60,
    double memory_body_percentile = 95.0);

/// Pack with the PCP envelope rule. Same contract as ffd_pack.
std::optional<PackResult> pcp_pack(std::span<const StochasticItem> items,
                                   const ResourceVector& capacity,
                                   const ConstraintSet& constraints = {});

/// The provisioned envelope of one host's item set (exposed for tests).
ResourceVector pcp_envelope(std::span<const StochasticItem> items,
                            std::span<const std::size_t> members);

}  // namespace vmcw
