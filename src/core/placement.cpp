#include "core/placement.h"

#include <algorithm>

namespace vmcw {

Placement::Placement(std::size_t vm_count)
    : host_of_(vm_count, kUnplaced) {}

std::size_t Placement::placed_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(host_of_.begin(), host_of_.end(),
                    [](std::int32_t h) { return h != kUnplaced; }));
}

std::size_t Placement::host_index_bound() const noexcept {
  std::int32_t top = kUnplaced;
  for (std::int32_t h : host_of_) top = std::max(top, h);
  return top == kUnplaced ? 0 : static_cast<std::size_t>(top) + 1;
}

std::size_t Placement::active_host_count() const noexcept {
  std::vector<bool> seen(host_index_bound(), false);
  std::size_t count = 0;
  for (std::int32_t h : host_of_) {
    if (h == kUnplaced) continue;
    if (!seen[static_cast<std::size_t>(h)]) {
      seen[static_cast<std::size_t>(h)] = true;
      ++count;
    }
  }
  return count;
}

std::vector<std::vector<std::size_t>> Placement::vms_by_host() const {
  std::vector<std::vector<std::size_t>> by_host(host_index_bound());
  for (std::size_t vm = 0; vm < host_of_.size(); ++vm) {
    if (host_of_[vm] != kUnplaced)
      by_host[static_cast<std::size_t>(host_of_[vm])].push_back(vm);
  }
  return by_host;
}

std::size_t Placement::migrations_between(const Placement& from,
                                          const Placement& to) noexcept {
  const std::size_t n = std::min(from.vm_count(), to.vm_count());
  std::size_t moved = 0;
  for (std::size_t vm = 0; vm < n; ++vm) {
    if (from.is_placed(vm) && to.is_placed(vm) &&
        from.host_of(vm) != to.host_of(vm))
      ++moved;
  }
  return moved;
}

}  // namespace vmcw
