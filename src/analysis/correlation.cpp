#include "analysis/correlation.h"

#include <algorithm>
#include <cmath>

#include "trace/patterns.h"
#include "util/stats.h"

namespace vmcw {

BodyTail body_tail(std::span<const double> windowed_demand,
                   double body_percentile) {
  BodyTail bt;
  if (windowed_demand.empty()) return bt;
  bt.body = percentile(windowed_demand, body_percentile);
  bt.tail = std::max(peak(windowed_demand) - bt.body, 0.0);
  return bt;
}

std::vector<double> peak_signature(const TimeSeries& series, double body,
                                   std::size_t bucket_hours) {
  bucket_hours = std::clamp<std::size_t>(bucket_hours, 1, kHoursPerDay);
  const std::size_t buckets = kHoursPerDay / bucket_hours;
  std::vector<double> above(buckets, 0.0);
  std::vector<double> total(buckets, 0.0);
  for (std::size_t t = 0; t < series.size(); ++t) {
    const std::size_t bucket = hour_of_day(t) / bucket_hours;
    if (bucket >= buckets) continue;  // ragged tail when 24 % bucket_hours
    total[bucket] += 1.0;
    if (series[t] > body) above[bucket] += 1.0;
  }
  for (std::size_t b = 0; b < buckets; ++b)
    above[b] = total[b] > 0 ? above[b] / total[b] : 0.0;
  return above;
}

double signature_similarity(std::span<const double> a,
                            std::span<const double> b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return dot / std::sqrt(na * nb);
}

std::vector<std::size_t> cluster_signatures(
    std::span<const std::vector<double>> signatures,
    double similarity_threshold) {
  std::vector<std::size_t> assignment(signatures.size(), 0);
  std::vector<std::size_t> leaders;  // index of each cluster's founder
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    bool placed = false;
    for (std::size_t c = 0; c < leaders.size(); ++c) {
      if (signature_similarity(signatures[i], signatures[leaders[c]]) >=
          similarity_threshold) {
        assignment[i] = c;
        placed = true;
        break;
      }
    }
    if (!placed) {
      assignment[i] = leaders.size();
      leaders.push_back(i);
    }
  }
  return assignment;
}

CorrelationStability correlation_stability(
    std::span<const std::vector<double>> series) {
  CorrelationStability result;
  const std::size_t n = series.size();
  if (n < 2) return result;

  std::vector<double> drifts;
  std::size_t flips = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t half_i = series[i].size() / 2;
    const std::span<const double> i1(series[i].data(), half_i);
    const std::span<const double> i2(series[i].data() + half_i,
                                     series[i].size() - half_i);
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t half_j = series[j].size() / 2;
      const std::size_t len1 = std::min(half_i, half_j);
      const std::size_t len2 = std::min(series[i].size() - half_i,
                                        series[j].size() - half_j);
      const double c1 = pearson_correlation(
          i1.first(len1), std::span<const double>(series[j].data(), len1));
      const double c2 = pearson_correlation(
          i2.first(len2),
          std::span<const double>(series[j].data() + half_j, len2));
      drifts.push_back(std::abs(c2 - c1));
      if (c1 * c2 < 0 && (std::abs(c1) > 0.2 || std::abs(c2) > 0.2)) ++flips;
    }
  }
  result.pairs = drifts.size();
  result.mean_abs_drift = mean(drifts);
  result.p95_abs_drift = percentile(drifts, 95);
  result.sign_flip_fraction =
      result.pairs > 0
          ? static_cast<double>(flips) / static_cast<double>(result.pairs)
          : 0.0;
  return result;
}

std::vector<double> correlation_matrix(
    std::span<const std::vector<double>> windowed_series) {
  const std::size_t n = windowed_series.size();
  std::vector<double> m(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    m[i * n + i] = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double r =
          pearson_correlation(windowed_series[i], windowed_series[j]);
      m[i * n + j] = r;
      m[j * n + i] = r;
    }
  }
  return m;
}

}  // namespace vmcw
