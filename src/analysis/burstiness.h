// Per-server burstiness analysis (Figures 2-5, Observations 1-2).
//
// For a consolidation period of W hours, a server's demand series is
// resampled to one average-demand value per period; the peak-to-average
// ratio and coefficient of variation of that resampled series measure how
// much a consolidator operating at that granularity could save over static
// peak sizing. W = 1 reproduces the raw hourly series.
#pragma once

#include <vector>

#include "trace/server_trace.h"
#include "util/cdf.h"

namespace vmcw {

enum class Resource { kCpu, kMemory };

const char* to_string(Resource r) noexcept;

/// One value per server.
struct BurstinessResult {
  std::vector<double> peak_to_average;
  std::vector<double> cov;
};

/// Compute per-server P2A and CoV for the given resource at consolidation
/// granularity `window_hours`, over the last `analysis_hours` of the trace
/// (0 = whole trace). Servers with ~zero mean demand are reported as 0.
BurstinessResult burstiness(const Datacenter& dc, Resource resource,
                            std::size_t window_hours,
                            std::size_t analysis_hours = 0);

/// CDFs straight from a BurstinessResult (convenience for figure benches).
EmpiricalCdf p2a_cdf(const BurstinessResult& r);
EmpiricalCdf cov_cdf(const BurstinessResult& r);

/// Fraction of servers with CoV >= 1 — the paper's "heavy-tailed" count.
double heavy_tailed_fraction(const BurstinessResult& r) noexcept;

}  // namespace vmcw
