#include "analysis/predictor.h"

#include <algorithm>

#include "trace/patterns.h"
#include "util/stats.h"

namespace vmcw {

double PeakPredictor::predict(const TimeSeries& series, std::size_t hour,
                              std::size_t len,
                              double safety_margin) const noexcept {
  double estimate = 0.0;
  // Same window on previous days.
  for (int day = 1; day <= options_.lookback_days; ++day) {
    const std::size_t back = static_cast<std::size_t>(day) * kHoursPerDay;
    if (back > hour) break;
    estimate = std::max(estimate, peak(series.slice(hour - back, len)));
  }
  // Immediately preceding window.
  if (hour >= len)
    estimate = std::max(estimate, peak(series.slice(hour - len, len)));
  return estimate * safety_margin;
}

}  // namespace vmcw
