// Workload correlation and peak-clustering substrate for stochastic
// (PCP-style) consolidation.
//
// The PCP insight (Verma et al., USENIX ATC'09) is that pairwise workload
// correlation is stable over time, so placement can size each VM at the
// *body* (90th percentile) of its demand as long as VMs whose *peaks*
// co-occur are not stacked on the same host. We implement the substrate:
// per-VM body/tail decomposition, a peak-epoch signature (in which hours of
// the day does the VM run above its body?), and clustering of signatures —
// VMs in the same cluster are assumed to peak together, VMs in different
// clusters are not.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "trace/time_series.h"

namespace vmcw {

/// Body/tail sizing decomposition of a demand series.
struct BodyTail {
  double body = 0;  ///< percentile sizing (the paper uses the 90th)
  double tail = 0;  ///< peak - body, the part provisioned only for spikes
};

/// Decompose a windowed demand series: body = `body_percentile` of the
/// per-window demand values, tail = max - body (>= 0).
BodyTail body_tail(std::span<const double> windowed_demand,
                   double body_percentile = 90.0);

/// Peak-epoch signature: for each hour-of-day bucket (24 / bucket_hours
/// buckets), the fraction of days on which this series exceeded its body
/// during that bucket. Length = 24 / bucket_hours.
std::vector<double> peak_signature(const TimeSeries& series, double body,
                                   std::size_t bucket_hours = 4);

/// Cosine similarity of two signatures (0 when either is all-zero).
double signature_similarity(std::span<const double> a,
                            std::span<const double> b) noexcept;

/// Greedy leader-based clustering: each signature joins the first cluster
/// whose leader is at least `similarity_threshold` similar, else founds a
/// new cluster. Returns cluster id per input (dense ids from 0).
std::vector<std::size_t> cluster_signatures(
    std::span<const std::vector<double>> signatures,
    double similarity_threshold = 0.60);

/// Pairwise Pearson correlation matrix of windowed demand series
/// (n x n, row-major). O(n^2 * T) — intended for analysis and tests, not
/// for the planner inner loop.
std::vector<double> correlation_matrix(
    std::span<const std::vector<double>> windowed_series);

/// Correlation stability across time (the mechanism behind Observation 5:
/// "correlation between workloads is stable over time", which is why a
/// placement computed from two weeks of history keeps working for the next
/// two). Splits every series in half, computes the pairwise correlation
/// matrix of each half, and summarizes how much the entries move.
struct CorrelationStability {
  std::size_t pairs = 0;
  double mean_abs_drift = 0;  ///< mean |corr_half2 - corr_half1|
  double p95_abs_drift = 0;
  /// Fraction of pairs whose correlation sign flips between halves while
  /// being meaningfully large (|corr| > 0.2) in at least one half.
  double sign_flip_fraction = 0;
};

CorrelationStability correlation_stability(
    std::span<const std::vector<double>> series);

}  // namespace vmcw
