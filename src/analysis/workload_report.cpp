#include "analysis/workload_report.h"

#include "util/table.h"

namespace vmcw {

WorkloadSummary summarize_workload(const Datacenter& dc) {
  WorkloadSummary s;
  s.name = dc.name;
  s.industry = dc.industry;
  s.servers = dc.servers.size();
  s.avg_cpu_util = dc.average_cpu_utilization();
  s.web_fraction = dc.web_fraction();
  double mem_gb = 0, rpe2 = 0, installed_gb = 0;
  for (const auto& server : dc.servers) {
    mem_gb += server.mem_mb.mean() / 1024.0;
    rpe2 += server.spec.cpu_rpe2;
    installed_gb += server.spec.memory_mb / 1024.0;
  }
  if (!dc.servers.empty())
    s.avg_mem_committed_gb = mem_gb / static_cast<double>(dc.servers.size());
  s.total_rpe2_capacity = rpe2;
  s.total_memory_gb = installed_gb;
  return s;
}

std::string format_table2(std::span<const WorkloadSummary> rows) {
  TextTable table({"Name", "Industry", "# of Servers", "CPU Util (%)",
                   "Web fraction", "Avg mem (GB)"});
  for (const auto& r : rows) {
    table.add_row({r.name, r.industry, std::to_string(r.servers),
                   fmt(r.avg_cpu_util * 100.0, 1), fmt(r.web_fraction, 2),
                   fmt(r.avg_mem_committed_gb, 1)});
  }
  return table.str();
}

}  // namespace vmcw
