#include "analysis/resource_ratio.h"

#include <algorithm>

#include "util/stats.h"

namespace vmcw {

std::vector<double> resource_ratio_series(const Datacenter& dc,
                                          std::size_t window_hours,
                                          std::size_t analysis_hours) {
  if (window_hours == 0) return {};

  // Aggregate hourly demand across the fleet, then reduce per interval.
  std::vector<double> cpu_total;  // RPE2
  std::vector<double> mem_total;  // MB
  for (const auto& server : dc.servers) {
    const TimeSeries cpu_series = analysis_hours > 0
                                      ? server.cpu_rpe2().tail(analysis_hours)
                                      : server.cpu_rpe2();
    const TimeSeries mem_series =
        analysis_hours > 0 ? server.mem_mb.tail(analysis_hours) : server.mem_mb;
    if (cpu_series.size() > cpu_total.size())
      cpu_total.resize(cpu_series.size(), 0.0);
    if (mem_series.size() > mem_total.size())
      mem_total.resize(mem_series.size(), 0.0);
    for (std::size_t t = 0; t < cpu_series.size(); ++t)
      cpu_total[t] += cpu_series[t];
    for (std::size_t t = 0; t < mem_series.size(); ++t)
      mem_total[t] += mem_series[t];
  }

  const auto cpu_windows =
      TimeSeries(std::move(cpu_total)).window_reduce(window_hours,
                                                     WindowReducer::kMean);
  const auto mem_windows =
      TimeSeries(std::move(mem_total)).window_reduce(window_hours,
                                                     WindowReducer::kMean);

  std::vector<double> ratio;
  const std::size_t n = std::min(cpu_windows.size(), mem_windows.size());
  ratio.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mem_gb = mem_windows[i] / 1024.0;
    ratio.push_back(mem_gb > 1e-9 ? cpu_windows[i] / mem_gb : 0.0);
  }
  return ratio;
}

EmpiricalCdf resource_ratio_cdf(const Datacenter& dc, std::size_t window_hours,
                                std::size_t analysis_hours) {
  return EmpiricalCdf(
      resource_ratio_series(dc, window_hours, analysis_hours));
}

double memory_constrained_fraction(const Datacenter& dc,
                                   std::size_t window_hours,
                                   std::size_t analysis_hours,
                                   double blade_rpe2_per_gb) {
  const auto ratios =
      resource_ratio_series(dc, window_hours, analysis_hours);
  if (ratios.empty()) return 0.0;
  std::size_t constrained = 0;
  for (double r : ratios)
    if (r < blade_rpe2_per_gb) ++constrained;
  return static_cast<double>(constrained) / static_cast<double>(ratios.size());
}

}  // namespace vmcw
