#include "analysis/burstiness.h"

#include "util/stats.h"

namespace vmcw {

const char* to_string(Resource r) noexcept {
  switch (r) {
    case Resource::kCpu:
      return "cpu";
    case Resource::kMemory:
      return "memory";
  }
  return "?";
}

BurstinessResult burstiness(const Datacenter& dc, Resource resource,
                            std::size_t window_hours,
                            std::size_t analysis_hours) {
  BurstinessResult result;
  result.peak_to_average.reserve(dc.servers.size());
  result.cov.reserve(dc.servers.size());
  for (const auto& server : dc.servers) {
    const TimeSeries& raw =
        resource == Resource::kCpu ? server.cpu_util : server.mem_mb;
    const TimeSeries series =
        analysis_hours > 0 ? raw.tail(analysis_hours) : raw;
    const auto demand = series.window_reduce(window_hours, WindowReducer::kMean);
    result.peak_to_average.push_back(peak_to_average(demand));
    result.cov.push_back(coefficient_of_variation(demand));
  }
  return result;
}

EmpiricalCdf p2a_cdf(const BurstinessResult& r) {
  return EmpiricalCdf(r.peak_to_average);
}

EmpiricalCdf cov_cdf(const BurstinessResult& r) { return EmpiricalCdf(r.cov); }

double heavy_tailed_fraction(const BurstinessResult& r) noexcept {
  if (r.cov.empty()) return 0.0;
  std::size_t heavy = 0;
  for (double c : r.cov)
    if (c >= 1.0) ++heavy;
  return static_cast<double>(heavy) / static_cast<double>(r.cov.size());
}

}  // namespace vmcw
