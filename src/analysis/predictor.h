// Demand prediction for dynamic consolidation.
//
// A dynamic consolidator cannot see the interval it is about to plan; it
// sizes each VM at the *estimated* peak demand of the coming consolidation
// window (Section 5.1). The estimator here is the standard seasonal-max
// predictor used by the paper's tool family: the maximum of (a) the demand
// observed in the same window on each of the previous `lookback_days` days
// (captures diurnal/weekly seasonality) and (b) the immediately preceding
// window (captures level shifts), scaled by a safety margin. Unpredictable
// heavy-tailed spikes — Banking's defining trait — are exactly what this
// cannot foresee, which is how dynamic consolidation ends up with the
// contention of Figs 8-9.
#pragma once

#include <cstddef>

#include "trace/time_series.h"

namespace vmcw {

class PeakPredictor {
 public:
  struct Options {
    int lookback_days = 7;
    /// Headroom multipliers applied to the estimate. Production dynamic
    /// consolidators never size at the raw point prediction; pMapper-family
    /// tools add ~10% buffer against estimation error. Memory needs far
    /// less: Section 4 shows it is an order of magnitude less bursty.
    double cpu_safety_margin = 1.10;
    double mem_safety_margin = 1.03;
  };

  PeakPredictor() noexcept : PeakPredictor(Options{}) {}
  explicit PeakPredictor(Options options) noexcept : options_(options) {}

  /// Predicted peak of `series` over [hour, hour+len); `safety_margin`
  /// scales the raw seasonal-max estimate.
  double predict(const TimeSeries& series, std::size_t hour, std::size_t len,
                 double safety_margin) const noexcept;

  const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

}  // namespace vmcw
