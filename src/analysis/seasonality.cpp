#include "analysis/seasonality.h"

#include <algorithm>
#include <cmath>

#include "trace/patterns.h"
#include "util/stats.h"

namespace vmcw {

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (xs.size() < lag + 2) return 0.0;
  const double m = mean(xs);
  double num = 0.0, den = 0.0;
  for (std::size_t t = 0; t < xs.size(); ++t) {
    const double d = xs[t] - m;
    den += d * d;
    if (t + lag < xs.size()) num += d * (xs[t + lag] - m);
  }
  if (den < 1e-12) return 0.0;
  // Length-normalized estimator: a perfectly periodic series scores ~1 at
  // its period regardless of how many periods the sample covers.
  const auto n = static_cast<double>(xs.size());
  const auto overlap = static_cast<double>(xs.size() - lag);
  return (num / overlap) / (den / n);
}

SeasonalityProfile seasonality_profile(const TimeSeries& series) {
  SeasonalityProfile profile;
  profile.daily_acf = autocorrelation(series.samples(), kHoursPerDay);
  profile.weekly_acf = autocorrelation(series.samples(), kHoursPerWeek);

  // Diurnal strength: variance of the mean hour-of-day profile over total
  // variance (a one-way ANOVA R^2 with hour-of-day as the factor).
  if (series.size() >= 2 * kHoursPerDay) {
    double hour_mean[kHoursPerDay] = {};
    std::size_t hour_count[kHoursPerDay] = {};
    for (std::size_t t = 0; t < series.size(); ++t) {
      hour_mean[hour_of_day(t)] += series[t];
      ++hour_count[hour_of_day(t)];
    }
    for (std::size_t h = 0; h < kHoursPerDay; ++h)
      if (hour_count[h] > 0)
        hour_mean[h] /= static_cast<double>(hour_count[h]);

    const double total_mean = mean(series.samples());
    double between = 0.0, total = 0.0;
    for (std::size_t t = 0; t < series.size(); ++t) {
      const double d = series[t] - total_mean;
      total += d * d;
      const double b = hour_mean[hour_of_day(t)] - total_mean;
      between += b * b;
    }
    profile.diurnal_strength = total > 1e-12 ? between / total : 0.0;
  }
  return profile;
}

PredictabilityReport predictability(const TimeSeries& series,
                                    std::size_t begin, std::size_t len,
                                    std::size_t window_hours,
                                    const PeakPredictor& predictor,
                                    double safety_margin) {
  PredictabilityReport report;
  if (window_hours == 0) return report;
  double shortfall_sum = 0.0;
  std::size_t misses = 0;
  for (std::size_t hour = begin; hour + window_hours <= begin + len &&
                                 hour + window_hours <= series.size();
       hour += window_hours) {
    const double predicted =
        predictor.predict(series, hour, window_hours, safety_margin);
    const double actual = peak(series.slice(hour, window_hours));
    ++report.windows;
    if (actual > predicted) {
      ++misses;
      if (predicted > 1e-12)
        shortfall_sum += (actual - predicted) / predicted;
    }
  }
  if (report.windows > 0) {
    report.hit_rate = 1.0 - static_cast<double>(misses) /
                                static_cast<double>(report.windows);
  }
  report.mean_miss_shortfall =
      misses > 0 ? shortfall_sum / static_cast<double>(misses) : 0.0;
  return report;
}

FleetPredictability fleet_predictability(const Datacenter& dc,
                                         std::size_t begin, std::size_t len,
                                         std::size_t window_hours) {
  FleetPredictability fleet;
  if (dc.servers.empty()) return fleet;
  const PeakPredictor predictor;
  for (const auto& server : dc.servers) {
    const auto profile = seasonality_profile(server.cpu_util);
    fleet.mean_daily_acf += profile.daily_acf;
    fleet.mean_diurnal_strength += profile.diurnal_strength;
    const auto report =
        predictability(server.cpu_util, begin, len, window_hours, predictor);
    fleet.mean_hit_rate += report.hit_rate;
    fleet.mean_miss_shortfall += report.mean_miss_shortfall;
  }
  const auto n = static_cast<double>(dc.servers.size());
  fleet.mean_daily_acf /= n;
  fleet.mean_diurnal_strength /= n;
  fleet.mean_hit_rate /= n;
  fleet.mean_miss_shortfall /= n;
  return fleet;
}

}  // namespace vmcw
