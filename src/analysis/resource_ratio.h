// Aggregate CPU:memory resource ratio (Figure 6, Observation 3).
//
// For each consolidation interval, total CPU demand (RPE2) and total memory
// demand (GB) are summed across every server in the data center; their
// ratio tells which resource constrains a consolidated fleet in that
// interval. The comparison point is the consolidation target blade's own
// ratio — 160 RPE2/GB for the HS23 Elite. Intervals with ratio below the
// blade's are memory-constrained: memory runs out before CPU does.
#pragma once

#include <vector>

#include "trace/server_trace.h"
#include "util/cdf.h"

namespace vmcw {

/// The HS23 Elite reference ratio quoted in Fig 6's caption.
constexpr double kHs23Rpe2PerGb = 160.0;

/// Ratio of aggregate CPU demand (RPE2) to aggregate memory demand (GB),
/// one value per consolidation interval of `window_hours`, over the last
/// `analysis_hours` of the traces (0 = whole trace). Demand per interval is
/// the interval average, matching the burstiness analysis.
std::vector<double> resource_ratio_series(const Datacenter& dc,
                                          std::size_t window_hours,
                                          std::size_t analysis_hours = 0);

EmpiricalCdf resource_ratio_cdf(const Datacenter& dc, std::size_t window_hours,
                                std::size_t analysis_hours = 0);

/// Fraction of intervals in which the fleet is memory-constrained relative
/// to a target blade with `blade_rpe2_per_gb`.
double memory_constrained_fraction(const Datacenter& dc,
                                   std::size_t window_hours,
                                   std::size_t analysis_hours = 0,
                                   double blade_rpe2_per_gb = kHs23Rpe2PerGb);

}  // namespace vmcw
