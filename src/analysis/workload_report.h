// Fleet-level summaries (Table 2 and the headline Section 4 statements).
#pragma once

#include <string>

#include "trace/server_trace.h"

namespace vmcw {

struct WorkloadSummary {
  std::string name;
  std::string industry;
  std::size_t servers = 0;
  double avg_cpu_util = 0;      ///< Table 2 "CPU Util (%)" (as a fraction)
  double web_fraction = 0;
  double avg_mem_committed_gb = 0;  ///< fleet-average committed memory
  double total_rpe2_capacity = 0;
  double total_memory_gb = 0;
};

WorkloadSummary summarize_workload(const Datacenter& dc);

/// Render Table 2 for a set of data centers.
std::string format_table2(std::span<const WorkloadSummary> rows);

}  // namespace vmcw
