// Seasonality and predictability analysis.
//
// The paper's conclusion hinges on predictability: "Highly bursty and
// predictable workloads ... can benefit from dynamic consolidation"
// (Section 8). These helpers quantify both halves for a demand series:
// autocorrelation at the daily and weekly lags (how seasonal is the
// demand?), and the hit rate of the seasonal-max predictor (how often does
// prediction actually cover realized demand?).
#pragma once

#include <cstddef>
#include <span>

#include "core/predictor.h"
#include "trace/server_trace.h"
#include "trace/time_series.h"

namespace vmcw {

/// Sample autocorrelation of the series at a lag; 0 for degenerate input
/// (shorter than lag+2 samples, or constant).
double autocorrelation(std::span<const double> xs, std::size_t lag);

struct SeasonalityProfile {
  double daily_acf = 0;   ///< autocorrelation at lag 24 h
  double weekly_acf = 0;  ///< autocorrelation at lag 168 h
  /// Share of total variance explained by the mean daily profile
  /// (between-hours-of-day variance / total variance), in [0, 1].
  double diurnal_strength = 0;
};

SeasonalityProfile seasonality_profile(const TimeSeries& series);

/// Predictability under the dynamic planner's own predictor: the fraction
/// of consolidation windows in [begin, begin+len) whose realized peak was
/// covered by the prediction made at window start ("hit"), plus the mean
/// relative shortfall of the misses.
struct PredictabilityReport {
  std::size_t windows = 0;
  double hit_rate = 0;
  double mean_miss_shortfall = 0;  ///< mean (actual-pred)/pred over misses
};

PredictabilityReport predictability(const TimeSeries& series,
                                    std::size_t begin, std::size_t len,
                                    std::size_t window_hours,
                                    const PeakPredictor& predictor = {},
                                    double safety_margin = 1.0);

/// Fleet-level averages of the above (CPU series of every server).
struct FleetPredictability {
  double mean_daily_acf = 0;
  double mean_diurnal_strength = 0;
  double mean_hit_rate = 0;
  /// How badly the misses miss: fleet mean of per-server mean relative
  /// shortfall ((actual-pred)/pred on missed windows).
  double mean_miss_shortfall = 0;
};

FleetPredictability fleet_predictability(const Datacenter& dc,
                                         std::size_t begin, std::size_t len,
                                         std::size_t window_hours);

}  // namespace vmcw
