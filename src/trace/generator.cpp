#include "trace/generator.h"

#include <algorithm>
#include <cmath>

#include "runtime/thread_pool.h"
#include "trace/app_model.h"
#include "trace/patterns.h"
#include "util/distributions.h"
#include "util/stats.h"

namespace vmcw {

namespace {

constexpr double kMinUtil = 0.001;  // monitoring floor: an idle OS still ticks
constexpr double kMaxUtil = 1.0;
constexpr double kMinMemMb = 64.0;

std::vector<double> generate_cpu_series(const WorkloadSpec& spec,
                                        const CpuClassParams& p,
                                        WorkloadClass klass, double mean_util,
                                        std::size_t hours, Rng& rng,
                                        const AppContext* app) {
  // Per-server character: how diurnal and how spiky is *this* box?
  double peak_mult = p.diurnal_peak_mult;
  if (p.diurnal_dispersion > 0 && peak_mult > 1.0) {
    const auto bump = Lognormal::from_mean_cov(peak_mult - 1.0,
                                               p.diurnal_dispersion);
    peak_mult = 1.0 + bump.sample(rng);
  }
  // Burst activity splits into an app-shared part (arrives via `app`) and a
  // private remainder; the per-server rate dispersion applies to the
  // private part only.
  const double shared_fraction =
      app != nullptr ? std::clamp(spec.shared_burst_fraction, 0.0, 1.0) : 0.0;
  double burst_rate = p.bursts_per_day * (1.0 - shared_fraction);
  if (p.burst_rate_dispersion > 0 && burst_rate > 0) {
    const auto rate = Lognormal::from_mean_cov(burst_rate,
                                               p.burst_rate_dispersion);
    burst_rate = rate.sample(rng);
  }
  double ar1_sigma = p.ar1_sigma;
  if (p.ar1_sigma_dispersion > 0 && ar1_sigma > 0) {
    const auto sigma = Lognormal::from_mean_cov(ar1_sigma,
                                                p.ar1_sigma_dispersion);
    ar1_sigma = std::min(sigma.sample(rng), 0.6);
  }

  // The app's phase offset shifts the whole business window; per-server
  // jitter still applies on top.
  const double app_phase = app != nullptr ? app->phase_offset_hours : 0.0;
  const DiurnalPattern diurnal(
      peak_mult, p.business_start_hour + static_cast<int>(app_phase),
      p.business_end_hour + static_cast<int>(app_phase), p.phase_jitter_hours,
      rng);
  const WeekendPattern weekend(p.weekend_factor);
  const MonthEndPattern month_end(p.month_end_boost, 1);
  const bool batch_shape = klass == WorkloadClass::kBatch && p.batch_intensity > 0;
  const BatchWindowPattern batch(p.batch_start_hour, p.batch_duration_hours,
                                 p.batch_intensity, p.batch_off_level,
                                 p.batch_start_jitter_hours, rng);
  auto bursts =
      generate_burst_train(hours, burst_rate, p.burst_alpha, p.burst_cap_mult,
                           p.burst_mean_duration_hours, rng);
  if (app != nullptr) {
    for (std::size_t t = 0; t < hours && t < app->shared_bursts.size(); ++t)
      bursts[t] += app->shared_bursts[t];
  }
  Ar1Noise noise(p.ar1_rho, ar1_sigma);

  std::vector<double> raw(hours);
  for (std::size_t t = 0; t < hours; ++t) {
    double shape = batch_shape ? batch.at(t) : diurnal.at(t);
    shape *= weekend.at(t) * month_end.at(t);
    const double n = std::max(1.0 + noise.next(rng), 0.05);
    raw[t] = std::max(shape, 0.01) * (1.0 + bursts[t]) * n;
  }
  // Normalize the shape to the server's drawn mean utilization, then clamp
  // to the server's saturation ceiling. Clamping the busiest hours lowers
  // the realized mean slightly — exactly what saturation does to a real
  // server.
  const TruncatedNormal ceiling_dist(spec.util_ceiling_mean,
                                     spec.util_ceiling_sigma, 0.35, kMaxUtil);
  const double ceiling = ceiling_dist.sample(rng);
  const double raw_mean = mean(raw);
  const double k = raw_mean > 0 ? mean_util / raw_mean : 0.0;
  for (double& x : raw) x = std::clamp(x * k, kMinUtil, ceiling);
  return raw;
}

std::vector<double> generate_mem_series(const MemClassParams& p,
                                        const ServerSpec& hw,
                                        std::span<const double> cpu,
                                        Rng& rng) {
  const TruncatedNormal base_frac_dist(p.base_fraction_mean,
                                       p.base_fraction_sigma, 0.02, 0.90);
  const double base_mb = base_frac_dist.sample(rng) * hw.memory_mb;
  const double cpu_mean = std::max(mean(cpu), 1e-6);
  // Per-server coupling: most footprints are dominated by resident
  // code/heap, but a minority (in-memory caches, session stores) track load
  // closely — those are the servers whose memory CoV exceeds 1 in Fig 5.
  const bool linear_coupling = rng.bernoulli(p.linear_coupling_probability);
  const TruncatedNormal coupled_dist(
      linear_coupling ? p.linear_coupled_fraction : p.coupled_fraction,
      linear_coupling ? 0.15 : p.coupled_fraction_sigma, 0.0, 0.95);
  const double c = coupled_dist.sample(rng);
  const AppResourceModel olio;
  Ar1Noise noise(p.ar1_rho, p.ar1_sigma);

  std::vector<double> mem(cpu.size());
  // Load-proportional footprints grow *faster* than CPU under load
  // (per-session buffers x longer sessions under contention; analytic jobs
  // materializing datasets): working set ~ load^1.5. These are the minority
  // of servers whose memory CoV exceeds 1 in Fig 5 (a)/(d).
  constexpr double kHotMemExponent = 1.5;
  for (std::size_t t = 0; t < cpu.size(); ++t) {
    const double cpu_scale = cpu[t] / cpu_mean;
    const double coupled =
        linear_coupling ? std::pow(cpu_scale, kHotMemExponent)
                        : olio.mem_scale_for_cpu_scale(cpu_scale);
    const double level = base_mb * ((1.0 - c) + c * coupled);
    const double n = std::max(1.0 + noise.next(rng), 0.2);
    mem[t] = std::clamp(level * n, kMinMemMb, hw.memory_mb);
  }
  return mem;
}

}  // namespace

/// Fleet-wide events land in business hours: market opens, promotions and
/// breaking news surge when users are active — which is also when a
/// consolidated host has the least headroom.
std::vector<double> generate_fleet_events(const WorkloadSpec& spec, Rng& rng) {
  std::vector<double> train(spec.hours, 0.0);
  if (spec.fleet_burst_per_day <= 0.0) return train;
  const BoundedPareto magnitude(1.0, spec.fleet_burst_alpha,
                                std::max(spec.fleet_burst_cap_mult, 1.0));
  const double continue_p =
      spec.fleet_burst_mean_duration_hours > 1.0
          ? 1.0 - 1.0 / spec.fleet_burst_mean_duration_hours
          : 0.0;
  const std::size_t days = spec.hours / kHoursPerDay;
  for (std::size_t day = 0; day < days; ++day) {
    if (!rng.bernoulli(spec.fleet_burst_per_day)) continue;
    const auto start_hour = static_cast<std::size_t>(rng.uniform_int(8, 17));
    std::size_t h = day * kHoursPerDay + start_hour;
    const double add = magnitude.sample(rng) - 1.0;
    do {
      if (h >= spec.hours) break;
      train[h] += add;
      ++h;
    } while (rng.bernoulli(continue_p));
  }
  return train;
}

AppContext make_app_context(const WorkloadSpec& spec, WorkloadClass klass,
                            Rng& rng, std::span<const double> fleet_bursts) {
  AppContext app;
  app.klass = klass;
  app.phase_offset_hours =
      spec.app_phase_jitter_hours > 0
          ? rng.uniform(-spec.app_phase_jitter_hours,
                        spec.app_phase_jitter_hours)
          : 0.0;
  const CpuClassParams& p =
      klass == WorkloadClass::kWeb ? spec.web_cpu : spec.batch_cpu;
  const double shared_rate =
      p.bursts_per_day * std::clamp(spec.shared_burst_fraction, 0.0, 1.0);
  app.shared_bursts =
      generate_burst_train(spec.hours, shared_rate, p.burst_alpha,
                           p.burst_cap_mult, p.burst_mean_duration_hours, rng);
  if (klass == WorkloadClass::kWeb) {
    for (std::size_t t = 0;
         t < app.shared_bursts.size() && t < fleet_bursts.size(); ++t)
      app.shared_bursts[t] += fleet_bursts[t];
  }
  return app;
}

ServerTrace generate_server(const WorkloadSpec& spec, WorkloadClass klass,
                            const std::string& id, Rng& rng,
                            const AppContext* app) {
  ServerTrace server;
  server.id = id;
  server.klass = klass;
  server.spec = spec.server_mix.sample(rng);

  // Per-server mean utilization: lognormal around the fleet target, so a
  // fleet mixes nearly idle servers with a busy minority (Fig 1's "<5%
  // average" servers live in the same estate as much hotter ones).
  const auto util_dist = Lognormal::from_mean_cov(spec.target_avg_cpu_util,
                                                  spec.util_dispersion_cov);
  const double mean_util = std::clamp(util_dist.sample(rng), 0.002, 0.60);

  const CpuClassParams& cpu_params =
      klass == WorkloadClass::kWeb ? spec.web_cpu : spec.batch_cpu;
  const MemClassParams& mem_params =
      klass == WorkloadClass::kWeb ? spec.web_mem : spec.batch_mem;

  auto cpu = generate_cpu_series(spec, cpu_params, klass, mean_util,
                                 spec.hours, rng, app);
  auto mem = generate_mem_series(mem_params, server.spec, cpu, rng);
  server.cpu_util = TimeSeries(std::move(cpu));
  server.mem_mb = TimeSeries(std::move(mem));
  return server;
}

Datacenter generate_datacenter(const WorkloadSpec& spec, std::uint64_t seed) {
  Datacenter dc;
  dc.name = spec.name;
  dc.industry = spec.industry;

  Rng root(seed);  // vmcw-lint: allow(rng-construction) root of estate generation
  Rng master = root.fork(spec.name + "/" + spec.industry);
  Rng fleet_rng = master.fork("fleet-events");
  const std::vector<double> fleet_bursts = generate_fleet_events(spec, fleet_rng);

  // Pass 1 (serial, cheap): carve the fleet into applications and draw each
  // app's shared context from its own keyed stream. One application at a
  // time: size ~ Uniform[1, 2*mean-1], one class for all of its servers,
  // one shared context.
  struct ServerPlan {
    std::string id;
    WorkloadClass klass = WorkloadClass::kWeb;
    std::size_t app = 0;
  };
  std::vector<AppContext> apps;
  std::vector<ServerPlan> plans;
  plans.reserve(static_cast<std::size_t>(std::max(spec.num_servers, 0)));
  int produced = 0;
  int app_index = 0;
  while (produced < spec.num_servers) {
    const std::string app_id = spec.name + "-app-" + std::to_string(app_index);
    Rng app_rng = master.fork(app_id);
    const int max_size =
        std::max(static_cast<int>(2.0 * spec.app_size_mean) - 1, 1);
    const int app_size = std::min<int>(
        static_cast<int>(app_rng.uniform_int(1, max_size)),
        spec.num_servers - produced);
    const WorkloadClass klass = app_rng.bernoulli(spec.web_fraction)
                                    ? WorkloadClass::kWeb
                                    : WorkloadClass::kBatch;
    apps.push_back(make_app_context(spec, klass, app_rng, fleet_bursts));

    for (int j = 0; j < app_size; ++j) {
      ServerPlan plan;
      plan.id = spec.name + "-srv-" + std::to_string(produced + 1);
      plan.klass = klass;
      plan.app = apps.size() - 1;
      plans.push_back(std::move(plan));
      ++produced;
    }
    ++app_index;
  }

  // Pass 2 (parallel, the expensive trace synthesis): every server draws
  // only from its own stream keyed by id — adding or removing servers does
  // not perturb the traces of the others, and sharding the loop across the
  // pool writes each trace into its own slot, bit-identical to the serial
  // order at any VMCW_THREADS.
  dc.servers.resize(plans.size());
  parallel_for(0, plans.size(), [&](std::size_t i) {
    const ServerPlan& plan = plans[i];
    Rng server_rng = master.fork(plan.id);
    dc.servers[i] = generate_server(spec, plan.klass, plan.id, server_rng,
                                    &apps[plan.app]);
    dc.servers[i].app = spec.name + "-app-" + std::to_string(plan.app);
  });
  return dc;
}

}  // namespace vmcw
