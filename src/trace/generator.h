// Synthetic enterprise-trace generator (the proprietary-data substitute).
//
// The paper's traces come from production monitoring of >3000 physical
// Windows servers and cannot be redistributed. This generator synthesizes
// per-server (CPU-utilization, committed-memory) hour series whose
// *distributional* properties match what Section 4 reports per data center:
// peak-to-average and CoV CDFs for CPU and memory (Figs 2-5), and the
// aggregate CPU:memory resource-ratio CDF against the HS23 blade (Fig 6).
//
// Model per server:
//   cpu(t) = m * shape(t) * (1 + bursts(t)) * noise(t)     clamped to [0,1]
// where m is a per-server mean drawn from a lognormal (fleets mix nearly
// idle boxes with busy ones), shape(t) composes diurnal/weekend/month-end
// calendar patterns (web class) or nightly batch windows (batch class),
// bursts(t) is a heavy-tailed Pareto burst train, and noise(t) is
// mean-reverting AR(1).
//
//   mem(t) = base_mb * [(1 - c) + c * olio(cpu(t)/cpu_mean)] * (1+n(t))
// couples memory to CPU through the sub-linear Olio exponent (app_model.h)
// over a large fixed footprint — which is precisely why memory comes out an
// order of magnitude less bursty than CPU (Observation 2).
#pragma once

#include <span>
#include <string>

#include "hardware/catalog.h"
#include "trace/patterns.h"
#include "trace/server_trace.h"
#include "util/rng.h"

namespace vmcw {

/// CPU-shape parameters for one workload class inside one data center.
struct CpuClassParams {
  // Calendar shape (web class): business-hours bump.
  double diurnal_peak_mult = 4.0;  ///< multiplier at the top of the bump
  /// Per-server dispersion of the bump height (lognormal CoV applied to
  /// peak_mult - 1): real estates mix flat servers with strongly diurnal
  /// ones, which is what spreads the CoV CDFs of Fig 3.
  double diurnal_dispersion = 0.0;
  int business_start_hour = 9;
  int business_end_hour = 18;
  double phase_jitter_hours = 1.5;
  double weekend_factor = 0.6;
  double month_end_boost = 1.0;  ///< >1 enables payroll-style edges

  // Batch shape (batch class); enabled when batch_intensity > 0.
  double batch_intensity = 0.0;  ///< multiplier inside the nightly window
  int batch_start_hour = 1;
  int batch_duration_hours = 4;
  double batch_off_level = 0.25;  ///< multiplier outside the window
  /// Per-server start staggering (+-hours): operators deliberately spread
  /// batch schedules across the night.
  int batch_start_jitter_hours = 2;

  // Heavy-tailed bursts.
  double bursts_per_day = 1.0;
  /// Per-server dispersion of the burst rate (lognormal CoV): only a
  /// fraction of a real fleet is spiky.
  double burst_rate_dispersion = 0.0;
  double burst_alpha = 1.5;      ///< Pareto shape; smaller = heavier tail
  double burst_cap_mult = 25.0;  ///< cap on a single burst's multiplier
  double burst_mean_duration_hours = 1.5;

  // AR(1) noise.
  double ar1_rho = 0.6;
  double ar1_sigma = 0.10;
  /// Per-server dispersion of ar1_sigma (lognormal CoV): spreads the CoV
  /// CDF so only part of the fleet is heavy-tailed.
  double ar1_sigma_dispersion = 0.0;
};

/// Memory-model parameters for one workload class.
struct MemClassParams {
  double base_fraction_mean = 0.45;   ///< committed fraction of installed
  double base_fraction_sigma = 0.12;  ///< dispersion across servers
  double coupled_fraction = 0.15;     ///< share of footprint that tracks CPU
  double coupled_fraction_sigma = 0.0;  ///< per-server dispersion of the above
  /// Probability that a server's coupled footprint tracks load at or above
  /// linearly (in-memory caches, session stores, analytic jobs) instead of
  /// through the sub-linear Olio exponent — the minority of servers with
  /// heavy-tailed memory in Fig 5 (a)/(d).
  double linear_coupling_probability = 0.0;
  /// Mean coupled fraction for that subpopulation (such servers keep most
  /// of their footprint in load-dependent data).
  double linear_coupled_fraction = 0.70;
  double ar1_rho = 0.85;
  double ar1_sigma = 0.02;  ///< relative noise on the footprint
};

/// Full recipe for one synthetic data center.
struct WorkloadSpec {
  std::string name;      ///< "A".."D"
  std::string industry;  ///< "Banking", ...
  int num_servers = 100;
  std::size_t hours = kHoursPerMonth;  ///< 720 = 30 days

  double target_avg_cpu_util = 0.05;  ///< Table 2 "CPU Util" column
  double util_dispersion_cov = 1.0;   ///< lognormal CoV of per-server means

  /// Per-server saturation ceiling on total CPU utilization. Production
  /// boxes rarely reach 100% of all cores even in bursts (single-threaded
  /// components, I/O waits, connection limits): Fig 1's bursty bank servers
  /// average <5% but peak just above 50%. Drawn per server from
  /// N(mean, sigma) truncated to [0.35, 1.0].
  double util_ceiling_mean = 0.65;
  double util_ceiling_sigma = 0.15;
  double web_fraction = 0.5;          ///< share of servers labeled web

  /// Servers belong to applications (the paper labels whole applications
  /// web or batch, and all servers of an application share its class).
  /// Application-level events — a market open, a promotion, a failed batch
  /// rerun — hit every server of the app at once, so a fraction of each
  /// server's burst activity is an app-shared train. This correlation is
  /// what defeats statistical multiplexing on a consolidated host and
  /// produces the contention of Figs 8-9.
  double app_size_mean = 8.0;          ///< mean servers per application
  double shared_burst_fraction = 0.5;  ///< share of burst rate that is app-wide
  double app_phase_jitter_hours = 1.0; ///< app-level diurnal phase offset

  /// Fleet-wide events hitting every *web* server at once (market
  /// open/close at a bank, fare sales at an airline): rare, but they defeat
  /// both statistical multiplexing and windowed prediction, producing the
  /// very high dynamic-consolidation contention of Fig 9. Static variants
  /// are largely immune — with a month of history their peak sizing has
  /// usually seen such an event already.
  double fleet_burst_per_day = 0.0;
  double fleet_burst_alpha = 1.6;
  double fleet_burst_cap_mult = 4.0;
  double fleet_burst_mean_duration_hours = 2.0;

  ServerMix server_mix = default_server_mix();

  CpuClassParams web_cpu;
  CpuClassParams batch_cpu;
  MemClassParams web_mem;
  MemClassParams batch_mem;
};

/// Shared per-application context: class label, diurnal phase, and the
/// app-wide burst train every member server superimposes on its own.
struct AppContext {
  WorkloadClass klass = WorkloadClass::kWeb;
  double phase_offset_hours = 0.0;
  std::vector<double> shared_bursts;  ///< additive multiplier per hour
};

/// Build the shared context for one application. `fleet_bursts` (may be
/// empty) is superimposed for web-class apps.
AppContext make_app_context(const WorkloadSpec& spec, WorkloadClass klass,
                            Rng& rng,
                            std::span<const double> fleet_bursts = {});

/// Generate one server trace (exposed for unit tests / examples).
/// `app` may be nullptr for a standalone server with no shared component.
ServerTrace generate_server(const WorkloadSpec& spec, WorkloadClass klass,
                            const std::string& id, Rng& rng,
                            const AppContext* app = nullptr);

/// The fleet-wide business-hours burst train every web-class app
/// superimposes (see WorkloadSpec::fleet_burst_per_day). Exposed so
/// streaming estate generation (scale/streaming_estate.h) can replay the
/// exact draw `generate_datacenter` makes from `master.fork("fleet-events")`.
std::vector<double> generate_fleet_events(const WorkloadSpec& spec, Rng& rng);

/// Generate the whole fleet. Deterministic in (spec, seed).
Datacenter generate_datacenter(const WorkloadSpec& spec, std::uint64_t seed);

}  // namespace vmcw
