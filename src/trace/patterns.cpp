#include "trace/patterns.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace vmcw {

DiurnalPattern::DiurnalPattern(double peak_multiplier, int start_hour,
                               int end_hour, double phase_jitter_hours,
                               Rng& rng)
    : peak_(std::max(peak_multiplier, 1.0)) {
  const double jitter =
      phase_jitter_hours > 0 ? rng.uniform(-phase_jitter_hours, phase_jitter_hours)
                             : 0.0;
  start_ = static_cast<double>(start_hour) + jitter;
  end_ = static_cast<double>(end_hour) + jitter;
  if (end_ <= start_) end_ = start_ + 1.0;
}

double DiurnalPattern::at(std::size_t hour) const noexcept {
  const double h = static_cast<double>(hour_of_day(hour));
  // Evaluate the raised cosine on the window, treating the day circularly
  // so jitter across midnight behaves.
  auto in_window = [&](double x) { return x >= start_ && x < end_; };
  double pos = h;
  if (!in_window(pos) && in_window(pos + kHoursPerDay)) pos += kHoursPerDay;
  if (!in_window(pos)) return 1.0;
  const double span = end_ - start_;
  const double phase = (pos - start_) / span;  // 0..1 across the window
  const double bump = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * phase));
  return 1.0 + (peak_ - 1.0) * bump;
}

WeekendPattern::WeekendPattern(double weekend_factor) noexcept
    : factor_(std::max(weekend_factor, 0.0)) {}

double WeekendPattern::at(std::size_t hour) const noexcept {
  return is_weekend(hour) ? factor_ : 1.0;
}

MonthEndPattern::MonthEndPattern(double boost, int days) noexcept
    : boost_(std::max(boost, 0.0)), days_(std::max(days, 0)) {}

double MonthEndPattern::at(std::size_t hour) const noexcept {
  const auto day = day_of_month(hour);
  const bool edge = day < static_cast<std::size_t>(days_) ||
                    day >= kDaysPerMonth - static_cast<std::size_t>(days_);
  return edge ? boost_ : 1.0;
}

BatchWindowPattern::BatchWindowPattern(int start_hour, int duration_hours,
                                       double intensity, double off_level,
                                       int start_jitter_hours, Rng& rng)
    : duration_(std::max(duration_hours, 1)),
      intensity_(std::max(intensity, 0.0)),
      off_(std::max(off_level, 0.0)) {
  int jitter = start_jitter_hours > 0
                   ? static_cast<int>(rng.uniform_int(-start_jitter_hours,
                                                      start_jitter_hours))
                   : 0;
  start_ = ((start_hour + jitter) % static_cast<int>(kHoursPerDay) +
            static_cast<int>(kHoursPerDay)) %
           static_cast<int>(kHoursPerDay);
}

double BatchWindowPattern::at(std::size_t hour) const noexcept {
  const int h = static_cast<int>(hour_of_day(hour));
  const int rel = (h - start_ + static_cast<int>(kHoursPerDay)) %
                  static_cast<int>(kHoursPerDay);
  return rel < duration_ ? intensity_ : off_;
}

Ar1Noise::Ar1Noise(double rho, double sigma) noexcept
    : rho_(std::clamp(rho, 0.0, 0.999)), sigma_(std::max(sigma, 0.0)) {}

double Ar1Noise::next(Rng& rng) noexcept {
  state_ = rho_ * state_ + rng.normal(0.0, sigma_);
  return state_;
}

std::vector<double> generate_burst_train(std::size_t hours,
                                         double bursts_per_day, double alpha,
                                         double cap_multiplier,
                                         double mean_duration_hours,
                                         Rng& rng) {
  std::vector<double> train(hours, 0.0);
  if (hours == 0 || bursts_per_day <= 0.0) return train;
  const BoundedPareto magnitude(1.0, alpha, std::max(cap_multiplier, 1.0));
  const Exponential inter_arrival(bursts_per_day / kHoursPerDay);
  const double continue_p =
      mean_duration_hours > 1.0 ? 1.0 - 1.0 / mean_duration_hours : 0.0;

  double t = inter_arrival.sample(rng);
  while (t < static_cast<double>(hours)) {
    const double add = magnitude.sample(rng) - 1.0;  // additive part, >= 0
    auto h = static_cast<std::size_t>(t);
    // Geometric duration: continue burst hour-by-hour with prob continue_p.
    do {
      if (h >= hours) break;
      train[h] += add;
      ++h;
    } while (rng.bernoulli(continue_p));
    t += inter_arrival.sample(rng);
  }
  return train;
}

}  // namespace vmcw
