#include "trace/time_series.h"

#include <algorithm>

#include "util/stats.h"

namespace vmcw {

double reduce(std::span<const double> window, WindowReducer reducer) {
  switch (reducer) {
    case WindowReducer::kMax:
      return peak(window);
    case WindowReducer::kMean:
      return mean(window);
    case WindowReducer::kP90:
      return percentile(window, 90.0);
    case WindowReducer::kP95:
      return percentile(window, 95.0);
  }
  return 0.0;
}

TimeSeries::TimeSeries(std::vector<double> samples)
    : samples_(std::move(samples)) {}

TimeSeries TimeSeries::zeros(std::size_t n) {
  return TimeSeries(std::vector<double>(n, 0.0));
}

std::span<const double> TimeSeries::slice(std::size_t begin,
                                          std::size_t len) const noexcept {
  if (begin >= samples_.size()) return {};
  len = std::min(len, samples_.size() - begin);
  return std::span<const double>(samples_).subspan(begin, len);
}

TimeSeries TimeSeries::tail(std::size_t n) const {
  if (n >= samples_.size()) return *this;
  return TimeSeries(
      std::vector<double>(samples_.end() - static_cast<std::ptrdiff_t>(n),
                          samples_.end()));
}

void TimeSeries::scale(double k) noexcept {
  for (double& x : samples_) x *= k;
}

std::vector<double> TimeSeries::window_reduce(std::size_t window_hours,
                                              WindowReducer reducer) const {
  std::vector<double> out;
  if (window_hours == 0 || samples_.empty()) return out;
  out.reserve((samples_.size() + window_hours - 1) / window_hours);
  for (std::size_t begin = 0; begin < samples_.size(); begin += window_hours) {
    out.push_back(reduce(slice(begin, window_hours), reducer));
  }
  return out;
}

double TimeSeries::mean() const noexcept { return vmcw::mean(samples_); }
double TimeSeries::peak() const noexcept { return vmcw::peak(samples_); }
double TimeSeries::stddev() const noexcept { return vmcw::stddev(samples_); }
double TimeSeries::cov() const noexcept {
  return coefficient_of_variation(samples_);
}
double TimeSeries::peak_to_average() const noexcept {
  return vmcw::peak_to_average(samples_);
}
double TimeSeries::percentile(double p) const {
  return vmcw::percentile(samples_, p);
}

}  // namespace vmcw
