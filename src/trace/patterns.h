// Composable workload-pattern components.
//
// A synthetic server trace is the product of deterministic calendar shapes
// (diurnal business hours, weekend damping, month-end boost) and stochastic
// components (heavy-tailed burst trains, AR(1) noise). Using the last 30
// days at hourly resolution, hour 0 is 00:00 on day 1 of a 30-day month and
// day 1 is a Monday, so diurnal, weekly and monthly variation are all
// represented — the reason the paper uses a full month of history.
#pragma once

#include <cstddef>
#include <vector>

#include "util/distributions.h"
#include "util/rng.h"

namespace vmcw {

constexpr std::size_t kHoursPerDay = 24;
constexpr std::size_t kHoursPerWeek = 7 * kHoursPerDay;
constexpr std::size_t kDaysPerMonth = 30;
constexpr std::size_t kHoursPerMonth = kDaysPerMonth * kHoursPerDay;

inline std::size_t hour_of_day(std::size_t hour) { return hour % kHoursPerDay; }
inline std::size_t day_of_month(std::size_t hour) {
  return (hour / kHoursPerDay) % kDaysPerMonth;
}
/// Day 0 is a Monday; 5 and 6 are the weekend.
inline bool is_weekend(std::size_t hour) {
  return ((hour / kHoursPerDay) % 7) >= 5;
}

/// Raised-cosine business-hours bump: multiplier 1 outside the window,
/// rising smoothly to `peak_multiplier` at the middle of
/// [start_hour, end_hour). Handles phase jitter per server.
class DiurnalPattern {
 public:
  DiurnalPattern(double peak_multiplier, int start_hour, int end_hour,
                 double phase_jitter_hours, Rng& rng);

  double at(std::size_t hour) const noexcept;
  double peak_multiplier() const noexcept { return peak_; }

 private:
  double peak_;
  double start_;
  double end_;
};

/// Weekend damping: multiplier `weekend_factor` on Saturday/Sunday, 1 else.
class WeekendPattern {
 public:
  explicit WeekendPattern(double weekend_factor) noexcept;
  double at(std::size_t hour) const noexcept;

 private:
  double factor_;
};

/// Month-end/month-start boost (payroll-style): multiplier `boost` on the
/// first and last `days` days of the 30-day month, 1 elsewhere.
class MonthEndPattern {
 public:
  MonthEndPattern(double boost, int days = 1) noexcept;
  double at(std::size_t hour) const noexcept;

 private:
  double boost_;
  int days_;
};

/// Nightly batch window: multiplier `intensity` for `duration_hours` hours
/// starting at `start_hour` (with per-server start jitter), `off_level`
/// outside the window. Models the custom batch estates of workload C.
class BatchWindowPattern {
 public:
  BatchWindowPattern(int start_hour, int duration_hours, double intensity,
                     double off_level, int start_jitter_hours, Rng& rng);
  double at(std::size_t hour) const noexcept;

 private:
  int start_;
  int duration_;
  double intensity_;
  double off_;
};

/// Mean-reverting multiplicative AR(1) noise: n_t = rho*n_{t-1} + eps,
/// eps ~ N(0, sigma); the multiplier applied is max(1 + n_t, floor).
class Ar1Noise {
 public:
  Ar1Noise(double rho, double sigma) noexcept;
  double next(Rng& rng) noexcept;
  double state() const noexcept { return state_; }

 private:
  double rho_;
  double sigma_;
  double state_ = 0.0;
};

/// Heavy-tailed burst train: Poisson arrivals at `bursts_per_day`, each
/// burst lasting Geometric(1/mean_duration_hours) hours with additive
/// magnitude (BoundedPareto(1, alpha, cap) - 1). Returns one additive
/// multiplier per hour (0 = no burst in that hour). Overlapping bursts sum.
std::vector<double> generate_burst_train(std::size_t hours,
                                         double bursts_per_day, double alpha,
                                         double cap_multiplier,
                                         double mean_duration_hours, Rng& rng);

}  // namespace vmcw
