#include "trace/app_model.h"

#include <algorithm>
#include <cmath>

namespace vmcw {

double AppResourceModel::cpu_for_throughput(double ops_per_sec) const noexcept {
  const double ratio = std::max(ops_per_sec, 1e-9) / c_.throughput_ref;
  return c_.cpu_cores_ref * std::pow(ratio, c_.cpu_exponent);
}

double AppResourceModel::mem_for_throughput(double ops_per_sec) const noexcept {
  const double ratio = std::max(ops_per_sec, 1e-9) / c_.throughput_ref;
  return c_.mem_ref * std::pow(ratio, c_.mem_exponent);
}

double AppResourceModel::mem_scale_for_cpu_scale(
    double cpu_scale) const noexcept {
  const double exponent = c_.mem_exponent / c_.cpu_exponent;
  return std::pow(std::max(cpu_scale, 1e-9), exponent);
}

}  // namespace vmcw
