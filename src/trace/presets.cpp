#include "trace/presets.h"

#include <array>
#include <stdexcept>

namespace vmcw {

namespace {

// Server mixes (weights over source_server_models(), small -> large).
// Banking runs scale-out web tiers on many small boxes; Airlines runs
// reservation/booking systems on memory-rich midrange boxes.
constexpr std::array<double, 6> kBankingMix = {0.18, 0.52, 0.20, 0.07, 0.02, 0.01};
constexpr std::array<double, 6> kAirlinesMix = {0.03, 0.00, 0.15, 0.37, 0.33, 0.12};
constexpr std::array<double, 6> kNatResMix = {0.10, 0.00, 0.30, 0.35, 0.18, 0.07};
constexpr std::array<double, 6> kBeverageMix = {0.25, 0.22, 0.31, 0.14, 0.05, 0.03};

}  // namespace

WorkloadSpec banking_spec() {
  WorkloadSpec spec;
  spec.name = "A";
  spec.industry = "Banking";
  spec.num_servers = 816;
  spec.target_avg_cpu_util = 0.05;
  spec.util_dispersion_cov = 1.1;
  spec.web_fraction = 0.78;
  spec.app_size_mean = 12.0;
  spec.shared_burst_fraction = 0.75;
  spec.util_ceiling_mean = 0.80;
  spec.util_ceiling_sigma = 0.12;
  spec.fleet_burst_per_day = 0.30;
  spec.fleet_burst_alpha = 2.0;
  spec.fleet_burst_cap_mult = 2.5;
  spec.server_mix = ServerMix{kBankingMix};

  spec.web_cpu.diurnal_peak_mult = 6.0;
  spec.web_cpu.diurnal_dispersion = 0.8;
  spec.web_cpu.business_start_hour = 8;
  spec.web_cpu.business_end_hour = 19;
  spec.web_cpu.phase_jitter_hours = 1.0;
  spec.web_cpu.weekend_factor = 0.5;
  spec.web_cpu.bursts_per_day = 0.60;
  spec.web_cpu.burst_rate_dispersion = 1.2;
  spec.web_cpu.burst_alpha = 1.4;
  spec.web_cpu.burst_cap_mult = 10.0;
  spec.web_cpu.burst_mean_duration_hours = 2.0;
  spec.web_cpu.ar1_sigma = 0.10;

  spec.batch_cpu.batch_intensity = 3.5;
  spec.batch_cpu.batch_duration_hours = 3;
  spec.batch_cpu.batch_off_level = 0.35;
  spec.batch_cpu.bursts_per_day = 0.3;
  spec.batch_cpu.burst_rate_dispersion = 1.0;
  spec.batch_cpu.burst_alpha = 1.5;
  spec.batch_cpu.burst_cap_mult = 15.0;
  spec.batch_cpu.month_end_boost = 2.0;

  spec.web_mem.base_fraction_mean = 0.09;
  spec.web_mem.base_fraction_sigma = 0.028;
  spec.web_mem.coupled_fraction = 0.12;
  spec.web_mem.coupled_fraction_sigma = 0.08;
  spec.web_mem.linear_coupling_probability = 0.35;
  spec.web_mem.linear_coupled_fraction = 0.90;
  spec.web_mem.ar1_sigma = 0.02;

  spec.batch_mem.base_fraction_mean = 0.10;
  spec.batch_mem.coupled_fraction = 0.12;
  spec.batch_mem.coupled_fraction_sigma = 0.08;
  spec.batch_mem.linear_coupling_probability = 0.10;
  return spec;
}

WorkloadSpec airlines_spec() {
  WorkloadSpec spec;
  spec.name = "B";
  spec.industry = "Airlines";
  spec.num_servers = 445;
  spec.target_avg_cpu_util = 0.01;
  spec.util_dispersion_cov = 0.9;
  spec.web_fraction = 0.45;
  spec.server_mix = ServerMix{kAirlinesMix};

  spec.web_cpu.diurnal_peak_mult = 1.8;
  spec.web_cpu.diurnal_dispersion = 0.6;
  spec.web_cpu.phase_jitter_hours = 2.5;
  spec.web_cpu.weekend_factor = 0.9;  // travel traffic persists on weekends
  spec.web_cpu.bursts_per_day = 0.3;
  spec.web_cpu.burst_rate_dispersion = 1.2;
  spec.web_cpu.burst_alpha = 1.5;
  spec.web_cpu.burst_cap_mult = 10.0;
  spec.web_cpu.burst_mean_duration_hours = 2.0;
  spec.web_cpu.ar1_rho = 0.92;
  spec.web_cpu.ar1_sigma = 0.34;
  spec.web_cpu.ar1_sigma_dispersion = 0.60;

  spec.batch_cpu.batch_intensity = 2.0;
  spec.batch_cpu.batch_duration_hours = 4;
  spec.batch_cpu.batch_off_level = 0.6;
  spec.batch_cpu.bursts_per_day = 0.3;
  spec.batch_cpu.burst_rate_dispersion = 1.2;
  spec.batch_cpu.burst_alpha = 1.5;
  spec.batch_cpu.burst_cap_mult = 8.0;
  spec.batch_cpu.burst_mean_duration_hours = 2.0;
  spec.batch_cpu.ar1_rho = 0.92;
  spec.batch_cpu.ar1_sigma = 0.28;
  spec.batch_cpu.ar1_sigma_dispersion = 0.60;

  spec.web_mem.base_fraction_mean = 0.62;
  spec.web_mem.base_fraction_sigma = 0.12;
  spec.web_mem.coupled_fraction = 0.06;
  spec.web_mem.coupled_fraction_sigma = 0.04;
  spec.web_mem.ar1_sigma = 0.010;

  spec.batch_mem.base_fraction_mean = 0.58;
  spec.batch_mem.coupled_fraction = 0.05;
  spec.batch_mem.coupled_fraction_sigma = 0.03;
  spec.batch_mem.ar1_sigma = 0.010;
  return spec;
}

WorkloadSpec natural_resources_spec() {
  WorkloadSpec spec;
  spec.name = "C";
  spec.industry = "Natural Resources";
  spec.num_servers = 1390;
  spec.target_avg_cpu_util = 0.12;
  spec.util_dispersion_cov = 0.8;
  spec.web_fraction = 0.20;
  spec.server_mix = ServerMix{kNatResMix};

  spec.web_cpu.diurnal_peak_mult = 2.5;
  spec.web_cpu.diurnal_dispersion = 0.6;
  spec.web_cpu.phase_jitter_hours = 2.0;
  spec.web_cpu.weekend_factor = 0.6;
  spec.web_cpu.bursts_per_day = 0.3;
  spec.web_cpu.burst_rate_dispersion = 1.5;
  spec.web_cpu.burst_alpha = 1.35;
  spec.web_cpu.burst_cap_mult = 15.0;
  spec.web_cpu.burst_mean_duration_hours = 2.5;
  spec.web_cpu.ar1_rho = 0.90;
  spec.web_cpu.ar1_sigma = 0.22;
  spec.web_cpu.ar1_sigma_dispersion = 0.60;

  spec.batch_cpu.batch_intensity = 2.2;
  spec.batch_cpu.batch_duration_hours = 5;
  spec.batch_cpu.batch_off_level = 0.7;
  spec.batch_cpu.batch_start_jitter_hours = 5;
  spec.batch_cpu.bursts_per_day = 0.25;
  spec.batch_cpu.burst_rate_dispersion = 1.6;
  spec.batch_cpu.burst_alpha = 1.4;
  spec.batch_cpu.burst_cap_mult = 15.0;
  spec.batch_cpu.burst_mean_duration_hours = 2.5;
  spec.batch_cpu.ar1_rho = 0.90;
  spec.batch_cpu.ar1_sigma = 0.18;
  spec.batch_cpu.ar1_sigma_dispersion = 0.60;
  spec.batch_cpu.month_end_boost = 1.6;
  spec.batch_cpu.ar1_sigma = 0.06;

  spec.web_mem.base_fraction_mean = 0.50;
  spec.web_mem.coupled_fraction = 0.30;
  spec.web_mem.coupled_fraction_sigma = 0.15;
  spec.web_mem.linear_coupling_probability = 0.08;
  spec.web_mem.ar1_sigma = 0.018;

  spec.batch_mem.base_fraction_mean = 0.52;
  spec.batch_mem.coupled_fraction = 0.28;
  spec.batch_mem.coupled_fraction_sigma = 0.14;
  spec.batch_mem.linear_coupling_probability = 0.05;
  spec.batch_mem.ar1_sigma = 0.018;
  return spec;
}

WorkloadSpec beverage_spec() {
  WorkloadSpec spec;
  spec.name = "D";
  spec.industry = "Beverage";
  spec.num_servers = 722;
  spec.target_avg_cpu_util = 0.06;
  spec.util_dispersion_cov = 1.0;
  spec.web_fraction = 0.60;
  spec.app_size_mean = 9.0;
  spec.shared_burst_fraction = 0.65;
  spec.util_ceiling_mean = 0.72;
  spec.fleet_burst_per_day = 0.30;
  spec.fleet_burst_alpha = 2.0;
  spec.fleet_burst_cap_mult = 3.5;
  spec.server_mix = ServerMix{kBeverageMix};

  spec.web_cpu.diurnal_peak_mult = 4.8;
  spec.web_cpu.diurnal_dispersion = 0.8;
  spec.web_cpu.phase_jitter_hours = 1.5;
  spec.web_cpu.weekend_factor = 0.55;
  spec.web_cpu.bursts_per_day = 0.60;
  spec.web_cpu.burst_rate_dispersion = 1.2;
  spec.web_cpu.burst_alpha = 1.35;
  spec.web_cpu.burst_cap_mult = 15.0;
  spec.web_cpu.burst_mean_duration_hours = 1.8;
  spec.web_cpu.ar1_sigma = 0.09;

  spec.batch_cpu.batch_intensity = 3.0;
  spec.batch_cpu.batch_duration_hours = 4;
  spec.batch_cpu.batch_off_level = 0.4;
  spec.batch_cpu.bursts_per_day = 0.3;
  spec.batch_cpu.burst_rate_dispersion = 1.0;
  spec.batch_cpu.burst_alpha = 1.6;
  spec.batch_cpu.burst_cap_mult = 12.0;
  spec.batch_cpu.month_end_boost = 1.8;

  spec.web_mem.base_fraction_mean = 0.135;
  spec.web_mem.base_fraction_sigma = 0.045;
  spec.web_mem.coupled_fraction = 0.22;
  spec.web_mem.coupled_fraction_sigma = 0.15;
  spec.web_mem.linear_coupling_probability = 0.10;
  spec.web_mem.linear_coupled_fraction = 0.85;
  spec.web_mem.ar1_sigma = 0.02;

  spec.batch_mem.base_fraction_mean = 0.16;
  spec.batch_mem.coupled_fraction = 0.12;
  spec.batch_mem.coupled_fraction_sigma = 0.08;
  spec.batch_mem.linear_coupling_probability = 0.05;
  return spec;
}

std::vector<WorkloadSpec> all_workload_specs() {
  return {banking_spec(), airlines_spec(), natural_resources_spec(),
          beverage_spec()};
}

WorkloadSpec workload_spec_by_name(std::string_view name) {
  for (auto& spec : all_workload_specs()) {
    if (spec.name == name || spec.industry == name) return spec;
  }
  throw std::invalid_argument("unknown workload: " + std::string(name));
}

WorkloadSpec scaled_down(WorkloadSpec spec, int servers, std::size_t hours) {
  spec.num_servers = servers;
  spec.hours = hours;
  return spec;
}

}  // namespace vmcw
