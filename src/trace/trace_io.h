// Trace serialization: export/import a Datacenter as CSV.
//
// The paper's tooling consumed warehouse extracts; downstream users of this
// library will want to bring their own monitoring exports. The format is a
// pair of CSVs:
//
//   servers.csv:  id,industry_class,model,cpu_rpe2,memory_mb,
//                 idle_watts,peak_watts,rack_units,hardware_cost
//   traces.csv:   id,hour,cpu_util,mem_mb
//
// Both are written/read losslessly (full double precision), so a
// write/read roundtrip reproduces the estate bit-for-bit.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "trace/server_trace.h"

namespace vmcw {

/// Write the fleet inventory (one row per server).
void write_servers_csv(const Datacenter& dc, std::ostream& out);

/// Write the demand traces (one row per server-hour).
void write_traces_csv(const Datacenter& dc, std::ostream& out);

/// Read both CSVs back into a Datacenter. The name/industry are taken from
/// the arguments (they are not part of the CSV schema).
/// Throws std::runtime_error on malformed input.
Datacenter read_datacenter_csv(std::istream& servers, std::istream& traces,
                               std::string name, std::string industry);

/// Convenience: write/read via file paths. Throws std::runtime_error on
/// I/O failure.
void save_datacenter(const Datacenter& dc, const std::string& servers_path,
                     const std::string& traces_path);
Datacenter load_datacenter(const std::string& servers_path,
                           const std::string& traces_path, std::string name,
                           std::string industry);

}  // namespace vmcw
