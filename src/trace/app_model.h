// Application resource-scaling model (the paper's Olio experiment).
//
// Section 4.1 reports that driving the Olio web benchmark from 10 to 60
// operations/sec (6x) on a Xeon dual-core grew CPU demand from 0.18 to 1.42
// cores (7.9x) while memory grew only 3x. Fitting power laws
//   cpu ~ throughput^a,  mem ~ throughput^b
// to those endpoints gives a = ln(7.9)/ln(6) ~= 1.153 (super-linear: per-op
// cost rises with concurrency) and b = ln(3)/ln(6) ~= 0.613 (sub-linear:
// much of the footprint is code/heap baseline). This asymmetry is the
// micro-level mechanism behind Observation 2 — memory demand is an order of
// magnitude less bursty than CPU demand — and the generator uses the same
// exponents to couple a server's memory series to its CPU series.
#pragma once

namespace vmcw {

class AppResourceModel {
 public:
  /// Defaults reproduce the paper's Olio measurement exactly.
  struct Calibration {
    double throughput_ref = 10.0;  ///< ops/sec at the reference point
    double cpu_cores_ref = 0.18;   ///< cores at the reference point
    double mem_ref = 1.0;          ///< normalized memory at reference
    double cpu_exponent = 1.1530;  ///< ln(7.9)/ln(6)
    double mem_exponent = 0.6131;  ///< ln(3)/ln(6)
  };

  AppResourceModel() noexcept : AppResourceModel(Calibration{}) {}
  explicit AppResourceModel(const Calibration& c) noexcept : c_(c) {}

  /// CPU demand (cores) at a given throughput (ops/sec).
  double cpu_for_throughput(double ops_per_sec) const noexcept;

  /// Memory demand (in units of mem_ref) at a given throughput.
  double mem_for_throughput(double ops_per_sec) const noexcept;

  /// Given a CPU demand scale factor relative to some operating point,
  /// the corresponding memory scale factor: cpu_scale^(b/a). This is the
  /// coupling the trace generator applies hour by hour.
  double mem_scale_for_cpu_scale(double cpu_scale) const noexcept;

  const Calibration& calibration() const noexcept { return c_; }

 private:
  Calibration c_;
};

}  // namespace vmcw
