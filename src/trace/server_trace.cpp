#include "trace/server_trace.h"

namespace vmcw {

const char* to_string(WorkloadClass klass) noexcept {
  switch (klass) {
    case WorkloadClass::kWeb:
      return "web";
    case WorkloadClass::kBatch:
      return "batch";
  }
  return "?";
}

TimeSeries ServerTrace::cpu_rpe2() const {
  std::vector<double> rpe2(cpu_util.size());
  for (std::size_t i = 0; i < cpu_util.size(); ++i)
    rpe2[i] = cpu_util[i] * spec.cpu_rpe2;
  return TimeSeries(std::move(rpe2));
}

ResourceVector ServerTrace::demand_at(std::size_t hour) const noexcept {
  ResourceVector v;
  if (hour < cpu_util.size()) v.cpu_rpe2 = cpu_util[hour] * spec.cpu_rpe2;
  if (hour < mem_mb.size()) v.memory_mb = mem_mb[hour];
  return v;
}

std::size_t Datacenter::hours() const noexcept {
  std::size_t h = 0;
  for (const auto& s : servers) h = std::max(h, s.cpu_util.size());
  return h;
}

double Datacenter::average_cpu_utilization() const noexcept {
  if (servers.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : servers) total += s.cpu_util.mean();
  return total / static_cast<double>(servers.size());
}

double Datacenter::web_fraction() const noexcept {
  if (servers.empty()) return 0.0;
  std::size_t web = 0;
  for (const auto& s : servers)
    if (s.klass == WorkloadClass::kWeb) ++web;
  return static_cast<double>(web) / static_cast<double>(servers.size());
}

ResourceVector Datacenter::aggregate_demand_at(
    std::size_t hour) const noexcept {
  ResourceVector total;
  for (const auto& s : servers) total += s.demand_at(hour);
  return total;
}

}  // namespace vmcw
