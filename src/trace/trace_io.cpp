#include "trace/trace_io.h"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "runtime/telemetry.h"

namespace vmcw {

namespace {

void write_double(std::ostream& out, double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::runtime_error("double formatting failed");
  out.write(buf, ptr - buf);
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

double parse_double(const std::string& cell, const char* context) {
  double value = 0;
  const auto* begin = cell.data();
  const auto* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw std::runtime_error(std::string("bad number in ") + context + ": '" +
                             cell + "'");
  return value;
}

}  // namespace

void write_servers_csv(const Datacenter& dc, std::ostream& out) {
  out << "id,class,model,cpu_rpe2,memory_mb,idle_watts,peak_watts,"
         "rack_units,hardware_cost\n";
  for (const auto& s : dc.servers) {
    out << s.id << ',' << to_string(s.klass) << ',' << s.spec.model << ',';
    write_double(out, s.spec.cpu_rpe2);
    out << ',';
    write_double(out, s.spec.memory_mb);
    out << ',';
    write_double(out, s.spec.idle_watts);
    out << ',';
    write_double(out, s.spec.peak_watts);
    out << ',';
    write_double(out, s.spec.rack_units);
    out << ',';
    write_double(out, s.spec.hardware_cost);
    out << '\n';
  }
}

void write_traces_csv(const Datacenter& dc, std::ostream& out) {
  out << "id,hour,cpu_util,mem_mb\n";
  for (const auto& s : dc.servers) {
    for (std::size_t t = 0; t < s.cpu_util.size(); ++t) {
      out << s.id << ',' << t << ',';
      write_double(out, s.cpu_util[t]);
      out << ',';
      write_double(out, t < s.mem_mb.size() ? s.mem_mb[t] : 0.0);
      out << '\n';
    }
  }
}

Datacenter read_datacenter_csv(std::istream& servers, std::istream& traces,
                               std::string name, std::string industry) {
  Datacenter dc;
  dc.name = std::move(name);
  dc.industry = std::move(industry);

  std::map<std::string, std::size_t> index;
  std::string line;

  // servers.csv
  if (!std::getline(servers, line))
    throw std::runtime_error("servers.csv: missing header");
  while (std::getline(servers, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != 9)
      throw std::runtime_error("servers.csv: expected 9 columns, got " +
                               std::to_string(cells.size()));
    ServerTrace server;
    server.id = cells[0];
    server.klass =
        cells[1] == "batch" ? WorkloadClass::kBatch : WorkloadClass::kWeb;
    server.spec.model = cells[2];
    server.spec.cpu_rpe2 = parse_double(cells[3], "cpu_rpe2");
    server.spec.memory_mb = parse_double(cells[4], "memory_mb");
    server.spec.idle_watts = parse_double(cells[5], "idle_watts");
    server.spec.peak_watts = parse_double(cells[6], "peak_watts");
    server.spec.rack_units = parse_double(cells[7], "rack_units");
    server.spec.hardware_cost = parse_double(cells[8], "hardware_cost");
    index[server.id] = dc.servers.size();
    dc.servers.push_back(std::move(server));
  }

  // traces.csv — rows may arrive in any order; collect then commit.
  std::vector<std::vector<double>> cpu(dc.servers.size());
  std::vector<std::vector<double>> mem(dc.servers.size());
  if (!std::getline(traces, line))
    throw std::runtime_error("traces.csv: missing header");
  while (std::getline(traces, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != 4)
      throw std::runtime_error("traces.csv: expected 4 columns, got " +
                               std::to_string(cells.size()));
    const auto it = index.find(cells[0]);
    if (it == index.end())
      throw std::runtime_error("traces.csv: unknown server id " + cells[0]);
    const auto hour = static_cast<std::size_t>(parse_double(cells[1], "hour"));
    auto& c = cpu[it->second];
    auto& m = mem[it->second];
    if (hour >= c.size()) {
      c.resize(hour + 1, 0.0);
      m.resize(hour + 1, 0.0);
    }
    c[hour] = parse_double(cells[2], "cpu_util");
    m[hour] = parse_double(cells[3], "mem_mb");
  }
  for (std::size_t i = 0; i < dc.servers.size(); ++i) {
    dc.servers[i].cpu_util = TimeSeries(std::move(cpu[i]));
    dc.servers[i].mem_mb = TimeSeries(std::move(mem[i]));
  }
  return dc;
}

void save_datacenter(const Datacenter& dc, const std::string& servers_path,
                     const std::string& traces_path) {
  // Render in memory, land with temp+rename: a crashed export never leaves
  // a torn CSV pair behind for a later load_datacenter to misparse.
  std::ostringstream servers;
  write_servers_csv(dc, servers);
  std::ostringstream traces;
  write_traces_csv(dc, traces);
  if (!write_file_atomic(servers_path, servers.str()))
    throw std::runtime_error("cannot write " + servers_path);
  if (!write_file_atomic(traces_path, traces.str()))
    throw std::runtime_error("cannot write " + traces_path);
}

Datacenter load_datacenter(const std::string& servers_path,
                           const std::string& traces_path, std::string name,
                           std::string industry) {
  std::ifstream servers(servers_path);
  if (!servers) throw std::runtime_error("cannot open " + servers_path);
  std::ifstream traces(traces_path);
  if (!traces) throw std::runtime_error("cannot open " + traces_path);
  return read_datacenter_csv(servers, traces, std::move(name),
                             std::move(industry));
}

}  // namespace vmcw
