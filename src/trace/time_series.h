// Hourly resource-usage time series.
//
// The paper's data warehouse stores hourly averages of per-minute monitoring
// samples for the most recent 30 days (720 samples). TimeSeries is that
// object: a fixed-interval sample vector with the window-statistics
// operations consolidation planning needs (peak/mean/percentile over
// consolidation windows of 1, 2, 4, ... hours).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vmcw {

/// Reduction applied to the samples inside one consolidation window when
/// converting a trace into one demand value per window ("sizing function"
/// in the paper's terminology — Section 2.1).
enum class WindowReducer {
  kMax,   ///< peak demand in the window (static/dynamic sizing)
  kMean,  ///< average demand (the theoretical optimum dynamic sizing)
  kP90,   ///< 90th percentile ("body" of the PCP stochastic sizing)
  kP95,
};

double reduce(std::span<const double> window, WindowReducer reducer);

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> samples);
  static TimeSeries zeros(std::size_t n);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double operator[](std::size_t i) const noexcept { return samples_[i]; }
  double& operator[](std::size_t i) noexcept { return samples_[i]; }

  std::span<const double> samples() const noexcept { return samples_; }

  /// Clamped sub-range view: [begin, begin+len) intersected with the series.
  std::span<const double> slice(std::size_t begin, std::size_t len) const noexcept;

  /// Last n samples (all samples if n >= size).
  TimeSeries tail(std::size_t n) const;

  /// Scale every sample by k, in place.
  void scale(double k) noexcept;

  /// Split the series into consecutive windows of `window_hours` samples and
  /// reduce each window to one value. A trailing partial window is reduced
  /// too. Empty result for an empty series or window_hours == 0.
  std::vector<double> window_reduce(std::size_t window_hours,
                                    WindowReducer reducer) const;

  // Whole-series statistics (thin wrappers over util/stats.h).
  double mean() const noexcept;
  double peak() const noexcept;
  double stddev() const noexcept;
  double cov() const noexcept;               ///< coefficient of variation
  double peak_to_average() const noexcept;
  double percentile(double p) const;

 private:
  std::vector<double> samples_;
};

}  // namespace vmcw
