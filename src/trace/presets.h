// The four data-center presets of Table 2.
//
//   A  Banking            816 servers   5% mean CPU util   most web-heavy
//   B  Airlines           445 servers   1%                 memory-intensive
//   C  Natural Resources 1390 servers  12%                 most batch-heavy
//   D  Beverage           722 servers   6%                 bursty, mixed
//
// Parameter choices are calibrated so the generated fleets reproduce the
// distributional findings of Section 4 (see EXPERIMENTS.md for the
// paper-vs-measured comparison): Banking/Beverage heavy-tailed in CPU
// (CoV >= 1 for ~50% of servers, P2A >= 5), Airlines/Natural Resources
// moderate (P2A >= 2 for ~50%); memory everywhere an order of magnitude
// calmer; Airlines/Natural Resources memory-bound in every interval,
// Banking CPU-bound ~30% of intervals, Beverage ~10%.
#pragma once

#include <span>
#include <string_view>

#include "trace/generator.h"

namespace vmcw {

WorkloadSpec banking_spec();
WorkloadSpec airlines_spec();
WorkloadSpec natural_resources_spec();
WorkloadSpec beverage_spec();

/// All four, in the paper's A-D order.
std::vector<WorkloadSpec> all_workload_specs();

/// Look up a preset by data-center name ("A".."D") or industry (case
/// sensitive, e.g. "Banking"). Throws std::invalid_argument if unknown.
WorkloadSpec workload_spec_by_name(std::string_view name);

/// Shrink a preset for fast tests/examples: keep the workload character but
/// generate only `servers` servers and `hours` hours.
WorkloadSpec scaled_down(WorkloadSpec spec, int servers, std::size_t hours);

/// Seed used by all benches so every figure is generated from the same
/// synthetic estates.
constexpr std::uint64_t kStudySeed = 20141208;  // Middleware'14 opening day

}  // namespace vmcw
