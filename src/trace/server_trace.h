// Per-server traces and the data-center container.
//
// A ServerTrace is one source (physical, non-virtualized Windows) server:
// its hardware spec, its workload class label (the paper labels every
// server of an application web-based or batch), and 30 days of hourly CPU
// utilization and committed-memory samples. A Datacenter is a named fleet
// of such servers — the unit at which consolidation planning runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hardware/server_spec.h"
#include "trace/time_series.h"

namespace vmcw {

enum class WorkloadClass {
  kWeb,    ///< interactive / web-facing application component
  kBatch,  ///< computational or batch-processing job
};

const char* to_string(WorkloadClass klass) noexcept;

struct ServerTrace {
  std::string id;
  std::string app;  ///< owning application label; empty when unknown
  ServerSpec spec;
  WorkloadClass klass = WorkloadClass::kWeb;
  TimeSeries cpu_util;  ///< fraction of this server's CPU capacity, [0, 1]
  TimeSeries mem_mb;    ///< committed memory in MB

  /// CPU demand converted to portable RPE2 units (util x server rating) —
  /// the form in which demand is compared against target-blade capacity.
  TimeSeries cpu_rpe2() const;

  /// Demand vector for one hour.
  ResourceVector demand_at(std::size_t hour) const noexcept;
};

struct Datacenter {
  std::string name;      ///< e.g. "A"
  std::string industry;  ///< e.g. "Banking"
  std::vector<ServerTrace> servers;

  std::size_t hours() const noexcept;

  /// Fleet-average CPU utilization (unweighted across servers, matching the
  /// "CPU Util (%)" column of Table 2).
  double average_cpu_utilization() const noexcept;

  /// Fraction of servers labeled web-based.
  double web_fraction() const noexcept;

  /// Aggregate demand across all servers at one hour.
  ResourceVector aggregate_demand_at(std::size_t hour) const noexcept;
};

}  // namespace vmcw
