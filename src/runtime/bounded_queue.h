// Bounded multi-producer queue with annotated locks.
//
// The ingestion front-end (service/ingest) moves decoded frames from the
// socket poll loop to the single WAL writer through this queue; its bound
// is the backpressure mechanism — when the WAL writer falls behind, the
// queue fills, try_push fails, and the poll loop stops reading the slow
// producer's socket instead of buffering without limit. The queue is
// deliberately lock-based (one Mutex, two CondVars) rather than lock-free:
// the WAL fsync dominates every push/pop by orders of magnitude, and the
// annotated Mutex keeps the structure inside the -Werror=thread-safety
// static layer like the rest of src/runtime (DESIGN.md §5d).
//
// Determinism note: pop order is FIFO over push order. Arrival order at
// the queue is scheduling-dependent — which is exactly why the WAL, not
// this queue, is the system's source of truth (DESIGN.md §8): whatever
// order the writer serializes becomes *the* order, and every replay of
// that WAL is byte-identical regardless of how the race went.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace vmcw {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push. Returns false when the queue is full or closed —
  /// the producer's signal to apply backpressure upstream (stop reading
  /// the socket) rather than drop or buffer unboundedly.
  bool try_push(T item) VMCW_EXCLUDES(mutex_) {
    {
      MutexLock lk(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push; waits for room. Returns false only when the queue is
  /// closed before the item could be enqueued.
  bool push(T item) VMCW_EXCLUDES(mutex_) {
    {
      MutexLock lk(mutex_);
      while (!closed_ && items_.size() >= capacity_) not_full_.wait(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop. Empty optional means the queue was closed and fully
  /// drained — the consumer's shutdown signal.
  std::optional<T> pop() VMCW_EXCLUDES(mutex_) {
    std::optional<T> out;
    {
      MutexLock lk(mutex_);
      while (!closed_ && items_.empty()) not_empty_.wait(mutex_);
      if (items_.empty()) return out;  // closed and drained
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Drain up to `max` queued items into `out` without blocking. Returns
  /// the number of items moved. One lock acquisition for the whole batch:
  /// the WAL writer amortizes a single fdatasync over everything a drain
  /// returns, so the drain itself must not cost one wakeup per item.
  std::size_t drain(std::vector<T>& out, std::size_t max)
      VMCW_EXCLUDES(mutex_) {
    std::size_t moved = 0;
    {
      MutexLock lk(mutex_);
      while (moved < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++moved;
      }
    }
    if (moved > 0) not_full_.notify_all();
    return moved;
  }

  /// Non-blocking pop; empty optional when nothing is queued right now.
  std::optional<T> try_pop() VMCW_EXCLUDES(mutex_) {
    std::optional<T> out;
    {
      MutexLock lk(mutex_);
      if (items_.empty()) return out;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Close the queue: pending items remain poppable, new pushes fail, and
  /// blocked producers/consumers wake.
  void close() VMCW_EXCLUDES(mutex_) {
    {
      MutexLock lk(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const VMCW_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    return closed_;
  }

  std::size_t size() const VMCW_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::deque<T> items_ VMCW_GUARDED_BY(mutex_);
  bool closed_ VMCW_GUARDED_BY(mutex_) = false;
  CondVar not_empty_;
  CondVar not_full_;
};

}  // namespace vmcw
