#include "runtime/wire.h"

#include <cerrno>
#include <sys/stat.h>
#include <unistd.h>

namespace vmcw::wire {

bool read_all(int fd, std::vector<std::uint8_t>& out) {
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) return false;
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::pread(fd, out.data() + off, out.size() - off,
                              static_cast<off_t>(off));
    if (n < 0 && errno == EINTR) continue;  // signal landed mid-read; retry
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    // A signal (SIGCHLD from a collector fork, a profiler tick) can
    // interrupt write() before any byte moved; a WAL append must survive
    // that, not turn it into a torn record.
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace vmcw::wire
