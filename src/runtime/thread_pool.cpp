#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>

#include "runtime/cancellation.h"

namespace vmcw {

namespace {

// Identity of the current thread inside its owning pool, for deque routing
// and for help-while-waiting.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;

std::atomic<ThreadPool*> g_global_override{nullptr};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_concurrency();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::size_t ThreadPool::default_concurrency() {
  if (const char* env = std::getenv("VMCW_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& ThreadPool::global() {
  if (ThreadPool* override = g_global_override.load(std::memory_order_acquire))
    return *override;
  static ThreadPool pool;
  return pool;
}

void ThreadPool::submit(std::function<void()> task) {
  // Tasks inherit the submitter's ambient cancellation token: a sweep
  // cell's nested parallel_for chunks stay under the cell's watchdog no
  // matter which worker steals them, and help-while-waiting restores the
  // helper's own token when the scope unwinds.
  if (CancellationScope::current().valid()) {
    task = [token = CancellationScope::current(),
            inner = std::move(task)]() mutable {
      CancellationScope scope(std::move(token));
      inner();
    };
  }
  if (tl_pool == this) {
    Worker& own = *workers_[tl_index];
    MutexLock lk(own.mutex);
    own.tasks.push_back(std::move(task));
  } else {
    MutexLock lk(mutex_);
    queue_.push_back(std::move(task));
  }
  {
    MutexLock lk(mutex_);
    ++epoch_;
  }
  wake_.notify_one();
}

bool ThreadPool::try_run_one() {
  const std::size_t preferred =
      tl_pool == this ? tl_index : workers_.size();
  std::function<void()> task;
  if (!pop_task(preferred, task)) return false;
  run_task(task);
  return true;
}

bool ThreadPool::pop_task(std::size_t preferred, std::function<void()>& out) {
  const std::size_t n = workers_.size();
  // Own deque first, newest-first: keeps nested fork/join cache-warm.
  if (preferred < n) {
    Worker& own = *workers_[preferred];
    MutexLock lk(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  {
    MutexLock lk(mutex_);
    if (!queue_.empty()) {
      out = std::move(queue_.front());
      queue_.pop_front();
      return true;
    }
  }
  // Steal oldest-first from the other workers.
  for (std::size_t off = 0; off < n; ++off) {
    const std::size_t victim = (preferred + 1 + off) % n;
    if (victim == preferred) continue;
    Worker& other = *workers_[victim];
    MutexLock lk(other.mutex);
    if (!other.tasks.empty()) {
      out = std::move(other.tasks.front());
      other.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(std::function<void()>& task) {
  {
    MutexLock lk(mutex_);
    ++executing_;
  }
  task();
  {
    MutexLock lk(mutex_);
    --executing_;
    ++epoch_;  // completions re-wake sleepers: a finished task may unblock
               // the shutdown drain or have spawned work into its deque
  }
  wake_.notify_all();
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_index = index;
  std::function<void()> task;
  for (;;) {
    std::uint64_t seen;
    {
      MutexLock lk(mutex_);
      seen = epoch_;
    }
    while (pop_task(index, task)) {
      run_task(task);
      task = nullptr;
    }
    MutexLock lk(mutex_);
    if (epoch_ != seen) continue;  // raced with a submit: rescan
    if (stop_ && executing_ == 0) return;
    while (!((stop_ && executing_ == 0) || epoch_ != seen)) wake_.wait(mutex_);
    if (epoch_ == seen) return;  // stop with nothing left to drain
  }
}

ScopedPoolOverride::ScopedPoolOverride(ThreadPool& pool)
    : previous_(g_global_override.exchange(&pool, std::memory_order_acq_rel)) {}

ScopedPoolOverride::~ScopedPoolOverride() {
  g_global_override.store(previous_, std::memory_order_release);
}

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool ? *pool : ThreadPool::global()) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // wait() was never called: the task's exception has nowhere to go.
  }
}

void TaskGroup::run(std::function<void()> task) {
  {
    MutexLock lk(mutex_);
    ++pending_;
    ++queued_;
  }
  pool_.submit([this, task = std::move(task)]() mutable {
    {
      MutexLock lk(mutex_);
      --queued_;
    }
    try {
      task();
    } catch (...) {
      MutexLock lk(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    MutexLock lk(mutex_);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::wait() {
  for (;;) {
    {
      MutexLock lk(mutex_);
      if (pending_ == 0) break;
      if (queued_ == 0) {
        // Every remaining task is in flight on some other thread; it will
        // notify on completion.
        while (pending_ > 0 && queued_ == 0) done_.wait(mutex_);
        continue;
      }
    }
    // Group tasks are still sitting in a queue: help instead of sleeping
    // (the helper may pick up unrelated tasks too — still progress).
    pool_.try_run_one();
  }
  MutexLock lk(mutex_);
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool_ptr, std::size_t grain) {
  if (begin >= end) return;
  ThreadPool& pool = pool_ptr ? *pool_ptr : ThreadPool::global();
  const std::size_t n = end - begin;
  if (grain == 0) {
    const std::size_t chunks = std::max<std::size_t>(1, pool.thread_count() * 4);
    grain = std::max<std::size_t>(1, n / chunks);
  }
  if (pool.thread_count() <= 1 || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  TaskGroup group(&pool);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    group.run([&body, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  group.wait();
}

}  // namespace vmcw
