#include "runtime/cancellation.h"

namespace vmcw {

namespace {

thread_local CancellationToken tl_ambient;

}  // namespace

bool CancellationToken::cancelled() const noexcept {
  if (!state_) return false;
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  return state_->has_deadline &&
         std::chrono::steady_clock::now() >= state_->deadline;
}

bool CancellationToken::timed_out() const noexcept {
  return state_ != nullptr && state_->has_deadline &&
         std::chrono::steady_clock::now() >= state_->deadline;
}

void CancellationToken::check() const {
  if (!state_) return;
  if (state_->has_deadline &&
      std::chrono::steady_clock::now() >= state_->deadline)
    throw CancelledError(/*timed_out=*/true);
  if (state_->cancelled.load(std::memory_order_relaxed))
    throw CancelledError(/*timed_out=*/false);
}

CancellationSource CancellationSource::with_deadline(double deadline_seconds) {
  CancellationSource source;
  if (deadline_seconds > 0) {
    source.state_->has_deadline = true;
    source.state_->deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(deadline_seconds));
  }
  return source;
}

CancellationScope::CancellationScope(CancellationToken token) noexcept
    : previous_(std::move(tl_ambient)) {
  tl_ambient = std::move(token);
}

CancellationScope::~CancellationScope() { tl_ambient = std::move(previous_); }

const CancellationToken& CancellationScope::current() noexcept {
  return tl_ambient;
}

}  // namespace vmcw
