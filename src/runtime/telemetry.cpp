#include "runtime/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace vmcw {

namespace {

std::size_t bucket_index(double value) {
  if (value <= MetricsRegistry::kBucketFloor) return 0;
  const double b = std::log2(value / MetricsRegistry::kBucketFloor);
  if (b >= static_cast<double>(MetricsRegistry::kBuckets - 1))
    return MetricsRegistry::kBuckets - 1;
  return static_cast<std::size_t>(b);
}

void append_json_number(std::ostringstream& out, double value) {
  if (!std::isfinite(value)) {
    out << "0";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out << buffer;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  // Leaked deliberately: benches dump the registry from atexit handlers,
  // which can run after function-local statics are destroyed.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  MutexLock lk(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  MutexLock lk(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  Histogram& h = it->second;
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[bucket_index(value)];
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  MutexLock lk(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

MetricsRegistry::Histogram MetricsRegistry::histogram(
    std::string_view name) const {
  MutexLock lk(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

std::string MetricsRegistry::to_json() const {
  MutexLock lk(mutex_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {";
    out << "\"count\": " << h.count << ", \"sum\": ";
    append_json_number(out, h.sum);
    out << ", \"min\": ";
    append_json_number(out, h.min);
    out << ", \"max\": ";
    append_json_number(out, h.max);
    out << ", \"mean\": ";
    append_json_number(out, h.count > 0
                                ? h.sum / static_cast<double>(h.count)
                                : 0.0);
    out << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out << ", ";
      out << "[" << b << ", " << h.buckets[b] << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (!file) return false;
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  if (written != content.size() || std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::fclose(file) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool MetricsRegistry::dump_json(const std::string& path) const {
  return write_file_atomic(path, to_json());
}

void MetricsRegistry::clear() {
  MutexLock lk(mutex_);
  counters_.clear();
  histograms_.clear();
}

Stopwatch::Stopwatch(std::string name, MetricsRegistry* registry)
    : name_(std::move(name)),
      registry_(registry ? registry : &MetricsRegistry::global()),
      start_(std::chrono::steady_clock::now()) {}

Stopwatch::~Stopwatch() {
  if (stopped_seconds_ < 0) stop();
}

double Stopwatch::seconds() const {
  if (stopped_seconds_ >= 0) return stopped_seconds_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double Stopwatch::stop() {
  if (stopped_seconds_ < 0) {
    stopped_seconds_ = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
    registry_->observe(name_, stopped_seconds_);
  }
  return stopped_seconds_;
}

}  // namespace vmcw
