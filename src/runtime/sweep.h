// SweepDriver: fan a grid of independent experiment cells across the
// thread pool.
//
// The paper's evaluation is a grid — figures x workload classes x
// strategies — where every cell is one self-contained (estate, settings,
// strategy, seed) run. The driver executes cells in any order on any
// number of threads and still produces bit-identical results, because each
// cell derives every RNG stream it needs (estate generation, monitoring
// noise) from its *own* seed via util/rng.h keyed forks and writes into
// its own result slot. Nothing mutable is shared between cells.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "chaos/replay.h"
#include "core/emulator.h"
#include "core/settings.h"
#include "engine/engine.h"
#include "runtime/thread_pool.h"
#include "trace/generator.h"

namespace vmcw {

/// One independent experiment: generate the estate from `spec` seeded by
/// the cell, observe it through the monitoring pipeline, plan with
/// `strategy`, and replay the ground truth against the plan.
struct SweepCell {
  WorkloadSpec spec;
  StudySettings settings;
  Strategy strategy = Strategy::kSemiStatic;
  std::uint64_t seed = 0;
  /// Fault injection (src/chaos). When faults.any(), the cell replays the
  /// plan under a FaultPlan derived from fork("chaos") of the cell seed and
  /// fills SweepCellResult::robustness; `report` is then the faulted
  /// replay's emulation. The default spec injects nothing, and the cell is
  /// bit-identical to a pre-chaos run. Rack / power-domain rates draw
  /// correlated outages against the failure-domain map the engine derives
  /// from fork("topology") of the cell seed — the same map
  /// settings.domains.spread compiles placement rules against.
  FaultSpec faults;
  ChaosOptions chaos;
};

struct SweepCellResult {
  std::size_t index = 0;  ///< position in the submitted grid
  std::string workload;
  Strategy strategy = Strategy::kSemiStatic;
  std::uint64_t seed = 0;
  bool planned = false;  ///< false when the planner failed on this cell
  std::size_t provisioned_hosts = 0;
  std::size_t total_migrations = 0;
  EmulationReport report;  ///< default-constructed when !planned
  /// Fault-injected replay outcome; only meaningful when the cell's
  /// FaultSpec injects something (robustness.emulation == report then).
  RobustnessReport robustness;
  /// Wall time of this cell — telemetry only, excluded from the
  /// determinism contract.
  double wall_seconds = 0;
};

class SweepDriver {
 public:
  /// pool == nullptr uses ThreadPool::global().
  explicit SweepDriver(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Cartesian grid in row-major order: specs x settings x strategies x
  /// seeds.
  static std::vector<SweepCell> grid(std::span<const WorkloadSpec> specs,
                                     std::span<const StudySettings> settings,
                                     std::span<const Strategy> strategies,
                                     std::span<const std::uint64_t> seeds);

  /// Run every cell across the pool. Results are indexed like `cells` and
  /// bit-identical for any thread count. A cell whose planner fails is
  /// reported with planned == false rather than aborting the sweep.
  std::vector<SweepCellResult> run(std::span<const SweepCell> cells) const;

 private:
  ThreadPool* pool_;
};

}  // namespace vmcw
