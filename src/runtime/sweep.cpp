#include "runtime/sweep.h"

#include <algorithm>

#include "runtime/telemetry.h"
#include "util/rng.h"

namespace vmcw {

std::vector<SweepCell> SweepDriver::grid(
    std::span<const WorkloadSpec> specs,
    std::span<const StudySettings> settings,
    std::span<const Strategy> strategies,
    std::span<const std::uint64_t> seeds) {
  std::vector<SweepCell> cells;
  cells.reserve(specs.size() * settings.size() * strategies.size() *
                seeds.size());
  for (const auto& spec : specs)
    for (const auto& s : settings)
      for (const auto strategy : strategies)
        for (const auto seed : seeds) {
          SweepCell cell;
          cell.spec = spec;
          cell.settings = s;
          cell.strategy = strategy;
          cell.seed = seed;
          cells.push_back(std::move(cell));
        }
  return cells;
}

std::vector<SweepCellResult> SweepDriver::run(
    std::span<const SweepCell> cells) const {
  std::vector<SweepCellResult> results(cells.size());
  Stopwatch sweep_span("sweep.wall_seconds");
  MetricsRegistry::global().add_counter("sweep.cells", cells.size());
  parallel_for(
      0, cells.size(),
      [&](std::size_t i) {
        Stopwatch cell_span("sweep.cell_seconds");
        const SweepCell& cell = cells[i];
        SweepCellResult& out = results[i];
        out.index = i;
        out.strategy = cell.strategy;
        out.seed = cell.seed;

        // Every stream this cell consumes is a keyed fork of the cell
        // seed: independent of sibling cells and of scheduling order.
        const Rng root(cell.seed);
        const Datacenter estate =
            generate_datacenter(cell.spec, root.fork("estate")());
        out.workload = estate.industry;

        ConsolidationEngine::Config config;
        config.settings = cell.settings;
        config.monitoring_seed = root.fork("monitoring")();
        config.topology_seed = root.fork("topology")();
        ConsolidationEngine engine(std::move(config));
        engine.observe(estate);

        const auto recommendation = engine.recommend(cell.strategy);
        if (!recommendation) {
          MetricsRegistry::global().add_counter("sweep.cells_failed");
          out.wall_seconds = cell_span.stop();
          return;
        }
        out.planned = true;
        out.provisioned_hosts = recommendation->provisioned_hosts;
        out.total_migrations = recommendation->total_migrations;
        if (cell.faults.any()) {
          // Fault schedule from the cell's own keyed stream: independent
          // of sibling cells and of scheduling order, like every other
          // stream the cell consumes.
          std::size_t host_bound = 0;
          for (const auto& p : recommendation->schedule)
            host_bound = std::max(host_bound, p.host_index_bound());
          // Correlated faults need the same failure-domain map planning
          // saw; with zero domain rates the plan is byte-identical with or
          // without it, so only build the map when a rate asks for it.
          const bool correlated =
              cell.faults.rack_outages_per_month > 0.0 ||
              cell.faults.power_domain_outages_per_month > 0.0;
          FailureDomainMap topology;
          if (correlated) topology = engine.failure_domain_map();
          const FaultPlan plan = FaultPlan::generate(
              cell.faults, host_bound, cell.settings, root.fork("chaos")(),
              correlated ? &topology : nullptr);
          out.robustness =
              engine.evaluate_under_faults(*recommendation, plan, cell.chaos);
          out.report = out.robustness.emulation;
        } else {
          out.report = engine.evaluate(*recommendation);
        }
        MetricsRegistry::global().add_counter("sweep.cells_done");
        out.wall_seconds = cell_span.stop();
      },
      pool_, /*grain=*/1);
  return results;
}

}  // namespace vmcw
