// Per-phase telemetry: Stopwatch spans + a process-wide MetricsRegistry.
//
// Every phase of the experiment runtime (estate generation, monitoring
// collection, planning, emulation, whole sweeps) records wall-clock spans
// and counters here; benches dump the registry as JSON next to their
// table output so a slow figure can be attributed to a phase without a
// profiler. Telemetry is observational only — it never feeds back into
// results, so enabling or disabling it cannot change any experiment's
// output (the determinism contract covers result bytes, not the telemetry
// sidecar, which contains wall times).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/thread_annotations.h"

namespace vmcw {

/// Write `content` to `path` through a `.tmp` sibling + rename(2), so a
/// reader — or a crash mid-write — never observes a truncated file: `path`
/// is either its previous complete content or the new one. Returns false
/// on I/O failure (the temp file is cleaned up). Telemetry sidecars and
/// bench figure/table outputs all write through this.
bool write_file_atomic(const std::string& path, std::string_view content);

/// Thread-safe registry of named counters and histograms.
class MetricsRegistry {
 public:
  /// Exponential histogram buckets: bucket b covers
  /// [kBucketFloor * 2^b, kBucketFloor * 2^(b+1)); 48 buckets span
  /// ~1e-7 .. ~2.8e7 (comfortably nanoseconds-to-months in seconds).
  static constexpr double kBucketFloor = 1e-7;
  static constexpr std::size_t kBuckets = 48;

  struct Histogram {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };

  static MetricsRegistry& global();

  void add_counter(std::string_view name, std::uint64_t delta = 1);
  void observe(std::string_view name, double value);

  std::uint64_t counter(std::string_view name) const;
  Histogram histogram(std::string_view name) const;

  /// Everything currently recorded, as a JSON object with "counters" and
  /// "histograms" members (histograms report count/sum/min/max/mean and
  /// the non-empty buckets).
  std::string to_json() const;

  /// Write to_json() to `path`. Returns false on I/O failure.
  bool dump_json(const std::string& path) const;

  void clear();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_
      VMCW_GUARDED_BY(mutex_);
  std::map<std::string, Histogram, std::less<>> histograms_
      VMCW_GUARDED_BY(mutex_);
};

/// RAII wall-clock span: records elapsed seconds into a registry histogram
/// under `name` when stopped or destroyed. Use names like
/// "emulate.wall_seconds" so the unit is visible in the dump.
class Stopwatch {
 public:
  /// registry == nullptr records into MetricsRegistry::global().
  explicit Stopwatch(std::string name, MetricsRegistry* registry = nullptr);
  ~Stopwatch();

  Stopwatch(const Stopwatch&) = delete;
  Stopwatch& operator=(const Stopwatch&) = delete;

  /// Elapsed seconds so far (running or stopped).
  double seconds() const;

  /// Record now instead of at destruction; returns elapsed seconds.
  double stop();

 private:
  std::string name_;
  MetricsRegistry* registry_;
  std::chrono::steady_clock::time_point start_;
  double stopped_seconds_ = -1.0;
};

}  // namespace vmcw
