// Cooperative cancellation: per-cell watchdogs for the durable sweep
// runtime.
//
// A sweep cell that hangs — a pathological estate, an emulation loop fed a
// degenerate schedule — must not hold the whole grid hostage, but killing a
// thread mid-cell would poison shared state (the pool, the metrics
// registry, malloc arenas). Cancellation here is therefore cooperative: a
// CancellationSource owns a flag plus an optional wall-clock deadline, work
// observes it through CancellationToken at natural safe points (interval
// boundaries in the emulator and fault replay loops), and an exceeded
// deadline surfaces as a CancelledError exception that unwinds the cell
// cleanly while sibling cells keep running.
//
// The token travels two ways:
//  - explicitly, by passing a CancellationToken down a call chain;
//  - ambiently, via CancellationScope: an RAII guard that installs the
//    token thread-locally. ThreadPool::submit captures the submitter's
//    ambient token into every task, so a cell's nested parallel_for chunks
//    inherit the cell's watchdog even when another worker steals them —
//    and help-while-waiting restores the helper's own token afterwards.
//
// Cancellation never feeds into results: a cell either completes with
// byte-identical output or is recorded as cancelled. Checking a token is a
// relaxed atomic load plus (when a deadline is set) one steady_clock read.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

namespace vmcw {

/// Thrown at a cancellation point once the watching source fired. Carries
/// whether the cause was an exceeded deadline (timeout) or an explicit
/// cancel().
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(bool timed_out)
      : std::runtime_error(timed_out ? "cell deadline exceeded"
                                     : "cancelled"),
        timed_out_(timed_out) {}

  bool timed_out() const noexcept { return timed_out_; }

 private:
  bool timed_out_ = false;
};

/// Observer half of a cancellation pair. Default-constructed tokens are
/// null: never cancelled, free to copy and check. Tokens are cheap to copy
/// (one shared_ptr).
class CancellationToken {
 public:
  CancellationToken() = default;

  bool valid() const noexcept { return state_ != nullptr; }

  /// Has the source been cancelled or its deadline passed?
  bool cancelled() const noexcept;

  /// Was the deadline (if any) the reason? Meaningful once cancelled().
  bool timed_out() const noexcept;

  /// Throw CancelledError if cancelled. The cancellation point.
  void check() const;

 private:
  friend class CancellationSource;
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };
  explicit CancellationToken(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// Owner half: create one per unit of cancellable work (one sweep cell),
/// hand its token() to the work, cancel() or let the deadline fire.
class CancellationSource {
 public:
  /// A source with no deadline (cancel() only).
  CancellationSource() : state_(std::make_shared<CancellationToken::State>()) {}

  /// A source whose token reports cancelled once `deadline_seconds` of
  /// wall-clock time elapse from construction. `deadline_seconds <= 0`
  /// means no deadline.
  static CancellationSource with_deadline(double deadline_seconds);

  CancellationToken token() const noexcept {
    return CancellationToken(state_);
  }

  void cancel() noexcept {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<CancellationToken::State> state_;
};

/// RAII guard installing `token` as the calling thread's ambient token for
/// its lifetime; restores the previous ambient token on destruction. The
/// thread pool re-installs the submitter's ambient token around every task,
/// so nested parallelism inherits the watchdog of the cell that spawned it.
class CancellationScope {
 public:
  explicit CancellationScope(CancellationToken token) noexcept;
  ~CancellationScope();

  CancellationScope(const CancellationScope&) = delete;
  CancellationScope& operator=(const CancellationScope&) = delete;

  /// The calling thread's ambient token (null when no scope is active).
  static const CancellationToken& current() noexcept;

 private:
  CancellationToken previous_;
};

/// Check the ambient token; no-op without an active scope. Replay loops
/// call this at interval boundaries — frequent enough that a stuck cell is
/// caught within one interval of work, rare enough to stay off the hourly
/// hot path.
inline void cancellation_point() { CancellationScope::current().check(); }

}  // namespace vmcw
