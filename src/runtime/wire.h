// Byte-exact wire (de)serialization shared by every durable byte stream in
// the repository: the sweep journal (sweep/journal), the telemetry WAL
// and typed frame protocol (src/service), and any future on-disk format.
//
// The contract all of them rely on:
//  - little-endian fixed-width integers, so files are portable bytes;
//  - doubles as IEEE-754 bit patterns, so a replayed value is bit-identical
//    to the one written (never printf/parse round-trips);
//  - a bounds-checked reader whose every overrun throws, so a torn or
//    corrupt record is detected instead of read past;
//  - FNV-1a 64 as the record checksum.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace vmcw::wire {

/// FNV-1a 64-bit over a byte range; the checksum every framed record uses.
inline std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                             std::uint64_t seed = 1469598103934665603ull) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Little-endian append-only buffer. Doubles are written as IEEE-754 bit
/// patterns so a journaled value replays bit-identically.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void vec_u64(const std::vector<std::size_t>& v) {
    u64(v.size());
    for (const std::size_t x : v) u64(x);
  }
  void vec_f64(const std::vector<double>& v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over one record payload; any overrun throws (the
/// caller treats a throw as a torn/corrupt record).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return data_[need(1)]; }
  std::uint32_t u32() {
    const std::size_t at = need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[at + i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const std::size_t at = need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[at + i]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    const std::size_t at = need(n);
    return std::string(reinterpret_cast<const char*>(data_ + at), n);
  }
  std::vector<std::size_t> vec_u64() {
    const std::uint64_t n = u64();
    if (n > size_ / 8) throw std::runtime_error("wire: vector overruns");
    std::vector<std::size_t> v(n);
    for (auto& x : v) x = u64();
    return v;
  }
  std::vector<double> vec_f64() {
    const std::uint64_t n = u64();
    if (n > size_ / 8) throw std::runtime_error("wire: vector overruns");
    std::vector<double> v(n);
    for (auto& x : v) x = f64();
    return v;
  }
  bool exhausted() const noexcept { return pos_ == size_; }

 private:
  std::size_t need(std::size_t n) {
    if (size_ - pos_ < n) throw std::runtime_error("wire: short record");
    const std::size_t at = pos_;
    pos_ += n;
    return at;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Read an open fd in full (pread from offset 0; the fd's position is left
/// untouched). Returns false when the file cannot be stat'ed or read.
bool read_all(int fd, std::vector<std::uint8_t>& out);

/// write() a buffer in full, retrying short writes. Returns false on error.
bool write_all(int fd, const std::uint8_t* data, std::size_t size);

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace vmcw::wire
