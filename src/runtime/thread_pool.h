// Work-stealing thread pool: the concurrency substrate for the parallel
// experiment runtime.
//
// The paper's evaluation is an embarrassingly parallel sweep — every figure
// is a grid of independent (estate, strategy, seed) runs — so the runtime
// only needs fork/join parallelism, but it needs it *deterministically*:
// results must be bit-identical regardless of thread count. The pool makes
// no ordering promises; determinism is the caller's contract, kept by
// writing each task's result into its own pre-allocated slot and deriving
// each task's RNG stream from util/rng.h keyed forks (never from a shared
// generator).
//
// Scheduling: each worker owns a deque (LIFO for its own submissions, FIFO
// for thieves); external submissions land in a shared injection queue.
// Waiting — TaskGroup::wait or a nested parallel_for on a worker thread —
// *helps*: the waiter executes pending tasks instead of blocking, so nested
// parallelism (a sweep cell that itself runs a parallel study) cannot
// deadlock.
//
// Thread count: ThreadPool::global() is sized from the VMCW_THREADS
// environment variable, falling back to std::thread::hardware_concurrency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace vmcw {

class ThreadPool {
 public:
  /// threads == 0 means default_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains every submitted task (including tasks spawned by running
  /// tasks), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// VMCW_THREADS if set to a positive integer, else hardware concurrency
  /// (at least 1).
  static std::size_t default_concurrency();

  /// Process-wide pool, lazily built with default_concurrency() threads.
  static ThreadPool& global();

  /// Enqueue a task. Tasks must not throw (wrap with TaskGroup for
  /// exception propagation). Worker threads push to their own deque;
  /// external threads to the shared injection queue. The submitter's
  /// ambient CancellationScope token (if any) is captured and re-installed
  /// around the task, so nested parallel work inherits its cell's watchdog.
  void submit(std::function<void()> task) VMCW_EXCLUDES(mutex_);

  /// Pop and execute one pending task if any is available anywhere.
  /// Used by waiters to help instead of blocking.
  bool try_run_one() VMCW_EXCLUDES(mutex_);

 private:
  struct Worker {
    Mutex mutex;
    std::deque<std::function<void()>> tasks VMCW_GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t index);
  bool pop_task(std::size_t preferred, std::function<void()>& out)
      VMCW_EXCLUDES(mutex_);
  void run_task(std::function<void()>& task) VMCW_EXCLUDES(mutex_);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  Mutex mutex_;
  CondVar wake_;
  /// External injection queue.
  std::deque<std::function<void()>> queue_ VMCW_GUARDED_BY(mutex_);
  /// Bumped on every submit/completion.
  std::uint64_t epoch_ VMCW_GUARDED_BY(mutex_) = 0;
  std::size_t executing_ VMCW_GUARDED_BY(mutex_) = 0;
  bool stop_ VMCW_GUARDED_BY(mutex_) = false;
};

/// Swap ThreadPool::global() for the lifetime of this object — lets tests
/// run the global-pool code paths at a specific thread count. Not
/// re-entrant; construct from one thread at a time.
class ScopedPoolOverride {
 public:
  explicit ScopedPoolOverride(ThreadPool& pool);
  ~ScopedPoolOverride();

  ScopedPoolOverride(const ScopedPoolOverride&) = delete;
  ScopedPoolOverride& operator=(const ScopedPoolOverride&) = delete;

 private:
  ThreadPool* previous_;
};

/// Fork/join task group. run() submits, wait() helps until every task in
/// the group finished and rethrows the first exception any task threw.
class TaskGroup {
 public:
  /// pool == nullptr uses ThreadPool::global().
  explicit TaskGroup(ThreadPool* pool = nullptr);

  /// Waits for stragglers; exceptions still pending are swallowed (call
  /// wait() to observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> task) VMCW_EXCLUDES(mutex_);

  /// Block (helping the pool) until every task ran; rethrow the first
  /// exception thrown by any task.
  void wait() VMCW_EXCLUDES(mutex_);

 private:
  ThreadPool& pool_;
  Mutex mutex_;
  CondVar done_;
  /// Submitted, not yet finished.
  std::size_t pending_ VMCW_GUARDED_BY(mutex_) = 0;
  /// Submitted, not yet started.
  std::size_t queued_ VMCW_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ VMCW_GUARDED_BY(mutex_);
};

/// Run body(i) for every i in [begin, end) across the pool. Chunks of
/// `grain` indices per task (grain == 0 picks ~4 chunks per thread).
/// Deterministic as long as body(i) writes only state owned by index i.
/// Rethrows the first exception any body threw.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool* pool = nullptr, std::size_t grain = 0);

}  // namespace vmcw
