#include "scale/shard.h"

#include <algorithm>

#include "runtime/cancellation.h"
#include "runtime/thread_pool.h"

namespace vmcw {

std::vector<std::size_t> plan_shards(const FailureDomainMap& domains,
                                     std::size_t host_bound,
                                     const ShardingOptions& options) {
  std::vector<std::size_t> edges{0};
  if (host_bound == 0) {
    edges.push_back(0);
    return edges;
  }
  const std::size_t max_shards = std::max<std::size_t>(1, options.max_shards);
  // Greedy walk: once the open shard reaches the even-split target, close
  // it at the next domain boundary. Cutting only where the domain id
  // changes keeps every failure domain whole inside one shard.
  const std::size_t target = (host_bound + max_shards - 1) / max_shards;
  std::size_t open_since = 0;
  for (std::size_t host = 1; host < host_bound; ++host) {
    if (edges.size() == max_shards) break;  // last shard takes the rest
    if (host - open_since < target) continue;
    if (domains.domain_of(host - 1, options.boundary) ==
        domains.domain_of(host, options.boundary))
      continue;
    edges.push_back(host);
    open_since = host;
  }
  edges.push_back(host_bound);
  return edges;
}

EmulationReport emulate_sharded(std::span<const VmWorkload> vms,
                                std::span<const Placement> schedule,
                                const StudySettings& settings,
                                bool power_off_empty_hosts,
                                const HostPool& pool,
                                const FailureDomainMap& domains,
                                const ShardingOptions& options) {
  EmulationReport merged;
  merged.eval_hours = settings.eval_hours;
  merged.intervals = settings.intervals();
  if (schedule.empty() || settings.intervals() == 0) return merged;

  std::size_t host_bound = 0;
  for (const auto& p : schedule)
    host_bound = std::max(host_bound, p.host_index_bound());
  if (host_bound == 0) {
    // Nothing placed anywhere: the unsharded replay is already trivial.
    return emulate(vms, schedule, settings, power_off_empty_hosts, pool);
  }

  const auto edges = plan_shards(domains, host_bound, options);
  const std::size_t shards = edges.size() - 1;
  const std::size_t intervals = settings.intervals();
  const std::size_t hours = intervals * settings.interval_hours;

  struct ShardResult {
    EmulationReport report;
    std::vector<std::uint8_t> hour_contended;
    std::vector<std::uint32_t> hour_cpu_samples;
    std::vector<std::uint32_t> hour_mem_samples;
  };
  std::vector<ShardResult> results(shards);

  // One task per shard, each writing only its own slot: bit-identical at
  // any VMCW_THREADS because the shard plan above never consults the pool.
  parallel_for(0, shards, [&](std::size_t s) {
    const std::size_t lo = edges[s];
    const std::size_t hi = edges[s + 1];

    // The schedule restricted to this shard's hosts, remapped to local
    // indices so the accumulator's dense per-host state is O(hi - lo).
    std::vector<Placement> local;
    local.reserve(schedule.size());
    for (const Placement& p : schedule) {
      Placement lp(p.vm_count());
      for (std::size_t vm = 0; vm < p.vm_count(); ++vm) {
        if (!p.is_placed(vm)) continue;
        const auto h = static_cast<std::size_t>(p.host_of(vm));
        if (h >= lo && h < hi)
          lp.assign(vm, static_cast<std::int32_t>(h - lo));
      }
      local.push_back(std::move(lp));
    }

    const HostPool local_pool = pool.slice(lo, hi);
    EmulationAccumulator acc(vms, settings, power_off_empty_hosts, local_pool,
                             hi - lo);
    ShardResult& r = results[s];
    r.hour_contended.assign(hours, 0);
    r.hour_cpu_samples.assign(hours, 0);
    r.hour_mem_samples.assign(hours, 0);
    std::size_t hour_index = 0;
    for (std::size_t k = 0; k < intervals; ++k) {
      cancellation_point();
      const Placement& lp =
          local.size() == 1 ? local[0] : local[std::min(k, local.size() - 1)];
      acc.begin_interval(lp);
      const std::size_t interval_begin =
          settings.eval_begin() + k * settings.interval_hours;
      for (std::size_t dt = 0; dt < settings.interval_hours; ++dt) {
        const auto out = acc.step_hour(interval_begin + dt);
        r.hour_contended[hour_index] = out.contention ? 1 : 0;
        r.hour_cpu_samples[hour_index] = out.cpu_samples;
        r.hour_mem_samples[hour_index] = out.mem_samples;
        ++hour_index;
      }
    }
    r.report = acc.finish();
  });

  // Sequential fold in ascending shard order (the deterministic total
  // order; see the header for why each field's merge restores the global
  // emulator's layout exactly).
  merged.active_hosts_per_interval.assign(intervals, 0);
  merged.vm_contention_hours.assign(vms.size(), 0);
  for (std::size_t s = 0; s < shards; ++s) {
    const EmulationReport& r = results[s].report;
    for (std::size_t k = 0; k < intervals; ++k)
      merged.active_hosts_per_interval[k] += r.active_hosts_per_interval[k];
    merged.host_avg_cpu_util.insert(merged.host_avg_cpu_util.end(),
                                    r.host_avg_cpu_util.begin(),
                                    r.host_avg_cpu_util.end());
    merged.host_peak_cpu_util.insert(merged.host_peak_cpu_util.end(),
                                     r.host_peak_cpu_util.begin(),
                                     r.host_peak_cpu_util.end());
    for (std::size_t vm = 0; vm < vms.size(); ++vm)
      merged.vm_contention_hours[vm] += r.vm_contention_hours[vm];
    merged.total_vm_contention_hours += r.total_vm_contention_hours;
    merged.energy_wh += r.energy_wh;
  }
  for (const std::size_t active : merged.active_hosts_per_interval)
    merged.provisioned_hosts = std::max(merged.provisioned_hosts, active);

  // Interleave the per-shard (hour, host)-ordered sample streams back into
  // one globally (hour, host)-ordered stream: hour-major, shard-minor, and
  // within a shard-hour the shard's own emission order.
  std::vector<std::size_t> cpu_cursor(shards, 0);
  std::vector<std::size_t> mem_cursor(shards, 0);
  for (std::size_t hour = 0; hour < hours; ++hour) {
    bool contended = false;
    for (std::size_t s = 0; s < shards; ++s) {
      const ShardResult& r = results[s];
      contended = contended || r.hour_contended[hour] != 0;
      for (std::uint32_t i = 0; i < r.hour_cpu_samples[hour]; ++i)
        merged.cpu_contention_samples.push_back(
            r.report.cpu_contention_samples[cpu_cursor[s]++]);
      for (std::uint32_t i = 0; i < r.hour_mem_samples[hour]; ++i)
        merged.mem_contention_samples.push_back(
            r.report.mem_contention_samples[mem_cursor[s]++]);
    }
    if (contended) ++merged.hours_with_contention;
  }
  return merged;
}

}  // namespace vmcw
