// Sharded emulation: replay the fleet as independent failure-domain shards.
//
// The emulator walks every host of the fleet every hour; at fleet scale
// that single serial walk dominates evaluation time. But hosts only
// interact through *placement* (a VM's demand lands on exactly one host),
// so any partition of the host index space splits the replay into
// independent sub-problems: each shard replays the schedule restricted to
// its own host range against a sliced pool, and the per-shard reports fold
// back into exactly the global report. The partition follows the
// `src/topology/` failure-domain map — cut lines fall only on domain
// boundaries, so a shard is a union of whole racks/power domains, the same
// unit the decentralized-consolidation literature plans by (PAPERS.md,
// arXiv 1706.06646).
//
// Determinism: the shard plan is a pure function of (domain map,
// host bound, options) — never of VMCW_THREADS — each shard runs as one
// ThreadPool task writing only its own pre-allocated slot, and the merge
// is a sequential fold in ascending shard order. Reports are therefore
// byte-identical at any thread count. Merge order restores the global
// emulator's exact layouts:
//
//   active_hosts_per_interval — elementwise sum over shards (host sets
//     are disjoint); provisioned_hosts is the max of the summed series,
//     NOT the sum of per-shard maxima;
//   host_avg/peak_cpu_util — concatenated in shard order, which is
//     ascending global host order because shards are ascending ranges;
//   contention samples — the global emulator emits (hour, host)-ordered
//     samples; each shard's stream is interleaved back per hour using the
//     per-hour sample counts HourOutcome reports;
//   vm_contention_hours — elementwise integer sum (a VM accrues in
//     whichever shard its host of the moment belongs to);
//   energy_wh — summed in shard order (a fixed-order floating-point fold:
//     deterministic, though grouped differently than the unsharded
//     accumulation).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/emulator.h"
#include "core/host_pool.h"
#include "core/placement.h"
#include "core/settings.h"
#include "core/vm.h"
#include "topology/failure_domains.h"

namespace vmcw {

struct ShardingOptions {
  /// Upper bound on shard count. Fixed by the caller — deliberately not
  /// derived from the thread count, so the shard plan (and with it every
  /// byte of the merged report) is identical at any VMCW_THREADS. Each
  /// shard carries O(vms) accumulator state, so this also caps peak
  /// memory at max_shards * that.
  std::size_t max_shards = 16;
  /// Domain layer whose boundaries shard cuts must respect.
  DomainKind boundary = DomainKind::kPowerDomain;
};

/// Shard edges over [0, host_bound): shard s covers hosts
/// [edges[s], edges[s+1]). Cuts land only where the domain id of
/// consecutive hosts changes (a shard never splits a failure domain);
/// adjacent domains are coalesced until at most max_shards remain. With an
/// empty/unassigned map there are no legal cuts and the plan is one shard.
std::vector<std::size_t> plan_shards(const FailureDomainMap& domains,
                                     std::size_t host_bound,
                                     const ShardingOptions& options = {});

/// emulate(), sharded: same inputs plus the domain map that keys the
/// partition, same report — field-for-field equal to the unsharded replay
/// except energy_wh, whose floating-point fold is grouped per shard (the
/// value differs only by accumulation rounding).
EmulationReport emulate_sharded(std::span<const VmWorkload> vms,
                                std::span<const Placement> schedule,
                                const StudySettings& settings,
                                bool power_off_empty_hosts,
                                const HostPool& pool,
                                const FailureDomainMap& domains,
                                const ShardingOptions& options = {});

}  // namespace vmcw
