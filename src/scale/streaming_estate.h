// Streaming estate generation: the fleet without the fleet in RAM.
//
// generate_datacenter materializes every server's full hourly trace — at
// 1M hosts and 30 days that is tens of gigabytes, which is what caps
// estate size today. But the generator was built so that every server
// draws only from its own keyed Rng stream (`master.fork(server_id)`),
// every application from `master.fork(app_id)`, and keyed forks are
// order-independent and const: generating server i never consumes state
// another server needs. A StreamingEstate exploits exactly that purity to
// regenerate trace windows on demand behind a bounded cache instead of
// holding the fleet resident — byte-identical to the materialized path,
// because it replays generate_datacenter's RNG flow draw for draw:
//
//   plan pass   — one fork per app id replays the app-size and class
//                 draws (the burst-train draws that follow on that stream
//                 are simply not made; no other stream observes them), so
//                 the whole 1M-server plan costs O(#apps) and ~12 bytes
//                 per app;
//   window pass — a requested server's block regenerates each member from
//                 `master.fork(server_id)` with its app's context rebuilt
//                 from `master.fork(app_id)` (same replay, then the same
//                 make_app_context call) — exactly pass 2 of
//                 generate_datacenter, sharded over the pool.
//
// The cache holds whole fixed-size blocks of consecutive servers (the
// packers and emulator walk the fleet in index order, so block locality is
// the access pattern) and evicts least-recently-used blocks once resident
// servers would exceed the configured ceiling. Eviction order depends only
// on the access sequence — no wall clock — so a run's generation work is
// as deterministic as its results.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/generator.h"
#include "util/rng.h"

namespace vmcw {

class StreamingEstate {
 public:
  struct Options {
    /// Servers generated together when a miss touches their block.
    std::size_t block_servers = 1024;
    /// Cache ceiling: blocks are evicted (LRU) once resident servers
    /// exceed this. At least one block always stays resident.
    std::size_t max_resident_servers = 16384;
  };

  /// Deterministic in (spec, seed) — the same pair generate_datacenter
  /// takes, producing the same servers.
  StreamingEstate(WorkloadSpec spec, std::uint64_t seed, Options options);
  StreamingEstate(WorkloadSpec spec, std::uint64_t seed);

  std::size_t server_count() const noexcept { return server_count_; }
  std::size_t app_count() const noexcept { return apps_.size(); }
  const WorkloadSpec& spec() const noexcept { return spec_; }

  /// The server's trace, regenerating its block on a cache miss. The
  /// reference stays valid until a later call evicts the block — callers
  /// copy what they keep.
  const ServerTrace& server(std::size_t index);

  /// Cache observability (tests pin the eviction policy; the bench reports
  /// regeneration overhead).
  std::size_t resident_servers() const noexcept;
  std::uint64_t servers_generated() const noexcept { return generated_; }
  std::uint64_t block_hits() const noexcept { return hits_; }
  std::uint64_t block_misses() const noexcept { return misses_; }

 private:
  struct AppSpan {
    std::size_t first_server = 0;  ///< apps cover contiguous server ranges
    std::size_t servers = 0;
    WorkloadClass klass = WorkloadClass::kWeb;
  };
  struct Block {
    std::vector<ServerTrace> servers;
    std::uint64_t last_used = 0;
  };

  AppContext app_context(std::size_t app) const;
  Block& ensure_block(std::size_t block);
  void evict_down_to(std::size_t resident_ceiling);

  WorkloadSpec spec_;
  Options options_;
  Rng master_;
  std::vector<double> fleet_bursts_;
  std::vector<AppSpan> apps_;
  std::size_t server_count_ = 0;
  std::map<std::size_t, Block> blocks_;  ///< ordered: deterministic walks
  std::uint64_t clock_ = 0;
  std::uint64_t generated_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vmcw
