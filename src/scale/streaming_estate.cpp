#include "scale/streaming_estate.h"

#include <algorithm>
#include <stdexcept>

#include "runtime/thread_pool.h"

namespace vmcw {

namespace {

Rng master_for(const WorkloadSpec& spec, std::uint64_t seed) {
  // The same root-and-fork generate_datacenter performs; this is the one
  // sanctioned root Rng of the streaming path.
  Rng root(seed);  // vmcw-lint: allow(rng-construction) streaming estate replays generate_datacenter's root
  return root.fork(spec.name + "/" + spec.industry);
}

}  // namespace

StreamingEstate::StreamingEstate(WorkloadSpec spec, std::uint64_t seed)
    : StreamingEstate(std::move(spec), seed, Options{}) {}

StreamingEstate::StreamingEstate(WorkloadSpec spec, std::uint64_t seed,
                                 Options options)
    : spec_(std::move(spec)),
      options_(options),
      master_(master_for(spec_, seed)) {
  options_.block_servers = std::max<std::size_t>(1, options_.block_servers);
  options_.max_resident_servers =
      std::max(options_.max_resident_servers, options_.block_servers);

  Rng fleet_rng = master_.fork("fleet-events");
  fleet_bursts_ = generate_fleet_events(spec_, fleet_rng);

  // Plan pass: generate_datacenter's pass 1 with the burst-train draws
  // elided. Each app's size and class come off its own keyed stream, so
  // stopping early on that stream is invisible to every other draw.
  const int target = std::max(spec_.num_servers, 0);
  int produced = 0;
  int app_index = 0;
  while (produced < target) {
    const std::string app_id = spec_.name + "-app-" + std::to_string(app_index);
    Rng app_rng = master_.fork(app_id);
    const int max_size =
        std::max(static_cast<int>(2.0 * spec_.app_size_mean) - 1, 1);
    const int app_size = std::min<int>(
        static_cast<int>(app_rng.uniform_int(1, max_size)), target - produced);
    AppSpan span;
    span.first_server = static_cast<std::size_t>(produced);
    span.servers = static_cast<std::size_t>(app_size);
    span.klass = app_rng.bernoulli(spec_.web_fraction) ? WorkloadClass::kWeb
                                                       : WorkloadClass::kBatch;
    apps_.push_back(span);
    produced += app_size;
    ++app_index;
  }
  server_count_ = static_cast<std::size_t>(produced);
}

AppContext StreamingEstate::app_context(std::size_t app) const {
  const AppSpan& span = apps_[app];
  const std::string app_id = spec_.name + "-app-" + std::to_string(app);
  Rng app_rng = master_.fork(app_id);
  // Replay the two plan-pass draws so the context draws that follow land on
  // the same stream positions generate_datacenter used.
  const int max_size =
      std::max(static_cast<int>(2.0 * spec_.app_size_mean) - 1, 1);
  (void)app_rng.uniform_int(1, max_size);
  (void)app_rng.bernoulli(spec_.web_fraction);
  return make_app_context(spec_, span.klass, app_rng, fleet_bursts_);
}

const ServerTrace& StreamingEstate::server(std::size_t index) {
  if (index >= server_count_)
    throw std::out_of_range("StreamingEstate::server: index out of range");
  const std::size_t block = index / options_.block_servers;
  Block& b = ensure_block(block);
  b.last_used = ++clock_;
  return b.servers[index - block * options_.block_servers];
}

StreamingEstate::Block& StreamingEstate::ensure_block(std::size_t block) {
  const auto it = blocks_.find(block);
  if (it != blocks_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;

  const std::size_t begin = block * options_.block_servers;
  const std::size_t end =
      std::min(begin + options_.block_servers, server_count_);

  // Make room first so the ceiling bounds peak residency, not post-hoc.
  evict_down_to(options_.max_resident_servers >= (end - begin)
                    ? options_.max_resident_servers - (end - begin)
                    : 0);

  // Apps cover contiguous server ranges, so the block's apps are a
  // contiguous run; rebuild each context once per block.
  const auto first_app = static_cast<std::size_t>(
      std::distance(apps_.begin(),
                    std::upper_bound(apps_.begin(), apps_.end(), begin,
                                     [](std::size_t s, const AppSpan& a) {
                                       return s < a.first_server + a.servers;
                                     })));
  std::vector<AppContext> contexts;
  std::vector<std::size_t> app_of(end - begin);
  for (std::size_t app = first_app;
       app < apps_.size() && apps_[app].first_server < end; ++app) {
    contexts.push_back(app_context(app));
    const AppSpan& span = apps_[app];
    const std::size_t lo = std::max(span.first_server, begin);
    const std::size_t hi = std::min(span.first_server + span.servers, end);
    for (std::size_t s = lo; s < hi; ++s)
      app_of[s - begin] = contexts.size() - 1;
  }

  // generate_datacenter's pass 2 restricted to this block: per-server keyed
  // streams, each slot written by exactly one task.
  Block fresh;
  fresh.servers.resize(end - begin);
  parallel_for(0, end - begin, [&](std::size_t i) {
    const std::size_t s = begin + i;
    const std::size_t app = first_app + app_of[i];
    const std::string id = spec_.name + "-srv-" + std::to_string(s + 1);
    Rng server_rng = master_.fork(id);
    fresh.servers[i] = generate_server(spec_, apps_[app].klass, id, server_rng,
                                       &contexts[app_of[i]]);
    fresh.servers[i].app = spec_.name + "-app-" + std::to_string(app);
  });
  generated_ += fresh.servers.size();
  return blocks_.emplace(block, std::move(fresh)).first->second;
}

void StreamingEstate::evict_down_to(std::size_t resident_ceiling) {
  while (!blocks_.empty() && resident_servers() > resident_ceiling) {
    auto oldest = blocks_.begin();
    for (auto it = std::next(blocks_.begin()); it != blocks_.end(); ++it)
      if (it->second.last_used < oldest->second.last_used) oldest = it;
    blocks_.erase(oldest);
  }
}

std::size_t StreamingEstate::resident_servers() const noexcept {
  std::size_t resident = 0;
  for (const auto& [block, b] : blocks_) resident += b.servers.size();
  return resident;
}

}  // namespace vmcw
