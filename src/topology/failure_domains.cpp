#include "topology/failure_domains.h"

#include <algorithm>
#include <string>

#include "util/rng.h"

namespace vmcw {

const char* to_string(DomainKind kind) noexcept {
  switch (kind) {
    case DomainKind::kRack:
      return "rack";
    case DomainKind::kPowerDomain:
      return "power-domain";
  }
  return "?";
}

FailureDomainMap FailureDomainMap::generate(const HostPool& pool,
                                            std::size_t materialized_hosts,
                                            const TopologySpec& spec,
                                            std::uint64_t seed) {
  FailureDomainMap map;
  map.hosts_per_rack_ = std::max<std::size_t>(spec.hosts_per_rack, 1);
  map.racks_per_power_domain_ =
      std::max<std::size_t>(spec.racks_per_power_domain, 1);
  const Rng root(seed);  // vmcw-lint: allow(rng-construction) root of the topology assignment
  // PDU rotation: where the first power-domain boundary falls in the rack
  // row. Same estate shape, different seed -> different blast domains.
  const auto rotation = static_cast<std::size_t>(
      root.fork("topology/power")
          .uniform_int(0,
                       static_cast<std::int64_t>(map.racks_per_power_domain_) -
                           1));
  const auto power_of_rack = [&](std::size_t rack) {
    return static_cast<std::int32_t>((rack + rotation) /
                                     map.racks_per_power_domain_);
  };

  // Hosts are dealt class by class; a class never shares a rack with
  // another hardware generation, and its first rack starts partially
  // occupied (the "installation phase" — estates rarely begin at a rack
  // boundary).
  std::size_t rack = 0;
  std::size_t slots_left = 0;  // forces a fresh rack for the first class
  const bool unlimited = !pool.is_bounded();
  std::size_t bounded_hosts = 0;
  for (std::size_t c = 0; c + (unlimited ? 1 : 0) < pool.class_count(); ++c)
    bounded_hosts += pool.host_class(c).count;
  const std::size_t target = pool.is_bounded()
                                 ? pool.max_hosts()
                                 : std::max(materialized_hosts, bounded_hosts);

  std::size_t host = 0;
  for (std::size_t c = 0; c < pool.class_count(); ++c) {
    const HostClass& klass = pool.host_class(c);
    const auto phase = static_cast<std::size_t>(
        root.fork("topology/class-" + std::to_string(c))
            .uniform_int(0,
                         static_cast<std::int64_t>(map.hosts_per_rack_) - 1));
    // Every class opens a fresh rack, keeping generations physically
    // separate even when the previous class ended at a rack boundary.
    if (host != 0) ++rack;
    slots_left = map.hosts_per_rack_ - phase;
    const std::size_t count =
        klass.count == HostClass::kUnlimited ? target - host : klass.count;
    for (std::size_t i = 0; i < count; ++i, ++host) {
      if (slots_left == 0) {
        ++rack;
        slots_left = map.hosts_per_rack_;
      }
      map.rack_.push_back(static_cast<std::int32_t>(rack));
      map.power_.push_back(power_of_rack(rack));
      --slots_left;
    }
  }

  if (unlimited) {
    // Extend the table into the unlimited class until a host that opens a
    // fresh rack at a fresh power-domain boundary, then switch to affine
    // extrapolation: every later host's domains follow from pure
    // arithmetic, so a map materialized for 50 hosts and one for 500 agree
    // everywhere they overlap.
    while (slots_left != 0 ||
           (rack + 1 + rotation) % map.racks_per_power_domain_ != 0) {
      if (slots_left == 0) {
        ++rack;
        slots_left = map.hosts_per_rack_;
      }
      map.rack_.push_back(static_cast<std::int32_t>(rack));
      map.power_.push_back(power_of_rack(rack));
      --slots_left;
    }
    map.has_tail_ = true;
    map.tail_base_ = map.rack_.size();
    map.tail_rack0_ = static_cast<std::int32_t>(rack + 1);
    map.tail_power0_ = power_of_rack(rack + 1);
  }
  return map;
}

void FailureDomainMap::assign(std::size_t host, std::size_t rack,
                              std::size_t power_domain) {
  if (rack_.size() <= host) {
    rack_.resize(host + 1, kNoDomain);
    power_.resize(host + 1, kNoDomain);
  }
  rack_[host] = static_cast<std::int32_t>(rack);
  power_[host] = static_cast<std::int32_t>(power_domain);
}

std::int32_t FailureDomainMap::rack_of(std::size_t host) const noexcept {
  if (host < rack_.size()) return rack_[host];
  if (!has_tail_) return kNoDomain;
  return tail_rack0_ +
         static_cast<std::int32_t>((host - tail_base_) / hosts_per_rack_);
}

std::int32_t FailureDomainMap::power_domain_of(
    std::size_t host) const noexcept {
  if (host < power_.size()) return power_[host];
  if (!has_tail_) return kNoDomain;
  return tail_power0_ +
         static_cast<std::int32_t>((host - tail_base_) /
                                   (hosts_per_rack_ *
                                    racks_per_power_domain_));
}

std::int32_t FailureDomainMap::domain_of(std::size_t host,
                                         DomainKind kind) const noexcept {
  return kind == DomainKind::kRack ? rack_of(host) : power_domain_of(host);
}

std::size_t FailureDomainMap::rack_count() const noexcept {
  std::int32_t max_id = kNoDomain;
  for (const auto r : rack_) max_id = std::max(max_id, r);
  return max_id == kNoDomain ? 0 : static_cast<std::size_t>(max_id) + 1;
}

std::size_t FailureDomainMap::power_domain_count() const noexcept {
  std::int32_t max_id = kNoDomain;
  for (const auto p : power_) max_id = std::max(max_id, p);
  return max_id == kNoDomain ? 0 : static_cast<std::size_t>(max_id) + 1;
}

std::size_t FailureDomainMap::domain_count(DomainKind kind) const noexcept {
  return kind == DomainKind::kRack ? rack_count() : power_domain_count();
}

std::vector<std::size_t> FailureDomainMap::hosts_in(
    DomainKind kind, std::size_t domain) const {
  const auto& table = kind == DomainKind::kRack ? rack_ : power_;
  std::vector<std::size_t> hosts;
  for (std::size_t h = 0; h < table.size(); ++h)
    if (table[h] == static_cast<std::int32_t>(domain)) hosts.push_back(h);
  return hosts;
}

DomainLookup FailureDomainMap::lookup(DomainKind kind) const {
  DomainLookup lut;
  lut.table = kind == DomainKind::kRack ? rack_ : power_;
  if (has_tail_) {
    lut.tail_base = tail_base_;
    if (kind == DomainKind::kRack) {
      lut.tail_first_domain = tail_rack0_;
      lut.tail_hosts_per_domain = hosts_per_rack_;
    } else {
      lut.tail_first_domain = tail_power0_;
      lut.tail_hosts_per_domain = hosts_per_rack_ * racks_per_power_domain_;
    }
  }
  return lut;
}

}  // namespace vmcw
