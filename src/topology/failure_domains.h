// Failure-domain topology: which hosts die together.
//
// The paper's Section 7 caveat — consolidation "comes with ... a higher
// risk of SLA violations" — is understated for real incidents: outages are
// correlated. A rack loses its ToR switch and every blade in it vanishes
// at once; a PDU trips and several racks go dark together. Dense packing
// makes this *worse*, because a consolidated application now fits inside
// one such blast domain. A FailureDomainMap assigns every host index to a
// rack and a power domain, so the chaos layer can inject correlated
// outages and the planners can spread replicas across domains.
//
// Derived maps are pure functions of (pool classes, TopologySpec, seed):
// hosts are dealt into racks class by class — a hardware class is racked
// contiguously and never shares a rack with another generation — and
// racks into power domains in adjacent runs. The keyed seed sets the
// installation phase (how full the first rack of each class already is)
// and the PDU rotation (where the first power-domain boundary falls), so
// two estates with the same shape still get distinct topologies. For a
// pool whose last class is unlimited the assignment extends formulaically
// to any host index, so unbounded packers need no materialized table.
//
// Scripted maps (assign()) serve tests and drills; hosts never assigned
// have no domain (kNoDomain) and are ignored by spread constraints and
// correlated fault generation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/constraints.h"
#include "core/host_pool.h"

namespace vmcw {

/// Physical shape knobs for derived maps.
struct TopologySpec {
  std::size_t hosts_per_rack = 8;
  std::size_t racks_per_power_domain = 4;
};

/// Which failure-domain layer a lookup or constraint refers to.
enum class DomainKind {
  kRack,         ///< one ToR switch / rack PDU
  kPowerDomain,  ///< one distribution circuit feeding several racks
};

const char* to_string(DomainKind kind) noexcept;

class FailureDomainMap {
 public:
  static constexpr std::int32_t kNoDomain = -1;

  /// An empty map: script it with assign() for targeted tests.
  FailureDomainMap() = default;

  /// Derive the topology for `pool`. `materialized_hosts` bounds the
  /// explicit table for unlimited pools (bounded pools materialize
  /// max_hosts()); lookups beyond it extrapolate along the unlimited
  /// class's rack sequence, so the same (pool, spec, seed) always yields
  /// the same domain for a host no matter how many were materialized.
  static FailureDomainMap generate(const HostPool& pool,
                                   std::size_t materialized_hosts,
                                   const TopologySpec& spec,
                                   std::uint64_t seed);

  /// Script one host's domains (tests/drills). Extends the map as needed.
  void assign(std::size_t host, std::size_t rack, std::size_t power_domain);

  bool empty() const noexcept { return rack_.empty() && !has_tail_; }
  /// Hosts with an explicit (non-extrapolated) assignment.
  std::size_t materialized_hosts() const noexcept { return rack_.size(); }

  /// Domain of a host, kNoDomain when unassigned and not extrapolable.
  std::int32_t rack_of(std::size_t host) const noexcept;
  std::int32_t power_domain_of(std::size_t host) const noexcept;
  std::int32_t domain_of(std::size_t host, DomainKind kind) const noexcept;

  /// 1 + the highest domain id over materialized hosts (extrapolated tail
  /// hosts excluded — domain ids there are unbounded by design).
  std::size_t rack_count() const noexcept;
  std::size_t power_domain_count() const noexcept;
  std::size_t domain_count(DomainKind kind) const noexcept;

  /// Materialized hosts belonging to one domain, ascending.
  std::vector<std::size_t> hosts_in(DomainKind kind,
                                    std::size_t domain) const;

  /// Total host->domain lookup for ConstraintSet compilation (carries the
  /// extrapolation tail, so spread constraints bind on any host index an
  /// unbounded packer may open).
  DomainLookup lookup(DomainKind kind) const;

 private:
  std::vector<std::int32_t> rack_;   ///< per materialized host
  std::vector<std::int32_t> power_;  ///< per materialized host

  // Extrapolation past the table (unlimited trailing pool class): host
  // tail_base_ + i lies in rack tail_rack0_ + i / hosts_per_rack_, and
  // tail racks map to power domains in runs of racks_per_power_domain_
  // starting exactly at a domain boundary (generate() aligns tail_base_).
  bool has_tail_ = false;
  std::size_t tail_base_ = 0;
  std::int32_t tail_rack0_ = 0;
  std::int32_t tail_power0_ = 0;
  std::size_t hosts_per_rack_ = 1;
  std::size_t racks_per_power_domain_ = 1;
};

}  // namespace vmcw
