#include "topology/spread.h"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace vmcw {

std::vector<std::vector<std::size_t>> app_replica_groups(
    std::span<const VmWorkload> vms) {
  std::vector<std::vector<std::size_t>> groups;
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t vm = 0; vm < vms.size(); ++vm) {
    if (vms[vm].app.empty()) {
      groups.push_back({vm});
      continue;
    }
    const auto [it, inserted] = index.emplace(vms[vm].app, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(vm);
  }
  return groups;
}

void spread_across_domains(
    ConstraintSet& constraints,
    std::span<const std::vector<std::size_t>> app_groups,
    const FailureDomainMap& map, DomainKind kind, std::size_t k) {
  if (k < 2 || map.empty()) return;
  const DomainLookup lookup = map.lookup(kind);
  // A bounded map cannot spread wider than it has domains.
  const std::size_t known_domains = map.domain_count(kind);
  const bool bounded = lookup.tail_first_domain < 0;
  for (const auto& group : app_groups) {
    const std::size_t n = group.size();
    if (n < 2) continue;
    std::size_t k_eff = std::min(k, n);
    if (bounded && known_domains > 0) k_eff = std::min(k_eff, known_domains);
    if (k_eff < 2) continue;
    const std::size_t cap = (n + k_eff - 1) / k_eff;
    if (cap >= n) continue;  // would constrain nothing
    constraints.add_domain_spread(group, lookup, cap);
  }
}

}  // namespace vmcw
