// Domain-aware placement: compile "spread each application across k
// failure domains" into a ConstraintSet.
//
// Dense packing puts all replicas of an application inside one rack's
// blast domain; the fix used in production placement systems is a spread
// rule — no more than ceil(n/k) of an app's n VMs may share one failure
// domain, so a single rack or PDU outage never takes more than ~1/k of the
// app. The rule compiles into ConstraintSet's domain-spread primitive (the
// domain-level generalization of anti_affinity), which every packer — FFD,
// PCP, dynamic, hybrid — already honors through allows()/allows_group()
// without modification.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/constraints.h"
#include "core/vm.h"
#include "topology/failure_domains.h"

namespace vmcw {

/// Application replica groups over a fleet: VMs sharing a VmWorkload::app
/// label form one group, in first-appearance order; VMs without a label
/// are singleton groups (nothing to spread).
std::vector<std::vector<std::size_t>> app_replica_groups(
    std::span<const VmWorkload> vms);

/// Compile one spread rule per multi-VM group into `constraints`: at most
/// ceil(n/k) of a group's n members per `kind` domain of `map`. k is
/// clamped to the group size and — for maps without an extrapolation tail
/// — to the number of known domains, so the compiled set stays
/// structurally satisfiable. Groups of one VM and k < 2 compile to
/// nothing.
void spread_across_domains(
    ConstraintSet& constraints,
    std::span<const std::vector<std::size_t>> app_groups,
    const FailureDomainMap& map, DomainKind kind, std::size_t k);

}  // namespace vmcw
