#include "chaos/io_faults.h"

#include <algorithm>

#include "util/rng.h"

namespace vmcw {

namespace {

/// Stateless mix of the plan seed with a fault coordinate (the
/// fault_plan hashed_uniform idiom): pure, so the same (seed, collector,
/// message, salt) always yields the same draw with no shared generator.
double hashed_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                      std::uint64_t salt) noexcept {
  std::uint64_t state = seed;
  state += 0x9e3779b97f4a7c15ULL * (a + 1);
  state += 0xbf58476d1ce4e5b9ULL * (b + 1);
  state += 0x94d049bb133111ebULL * (salt + 1);
  std::uint64_t x = splitmix64(state);
  x = splitmix64(state);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

double clamp_rate(double r) noexcept {
  return std::clamp(r, 0.0, 1.0);
}

constexpr std::uint64_t kSaltDisconnect = 0xD15Cull;
constexpr std::uint64_t kSaltCorrupt = 0xC0FFull;
constexpr std::uint64_t kSaltCorruptByte = 0xB17Eull;
constexpr std::uint64_t kSaltSplit = 0x5917ull;
constexpr std::uint64_t kSaltSplitPoint = 0x59F7ull;
constexpr std::uint64_t kSaltStall = 0x57A1ull;

}  // namespace

IoFaultSpec IoFaultSpec::validated() const noexcept {
  IoFaultSpec v = *this;
  v.disconnect_rate = clamp_rate(disconnect_rate);
  v.corrupt_rate = clamp_rate(corrupt_rate);
  v.partial_write_rate = clamp_rate(partial_write_rate);
  v.fsync_stall_rate = clamp_rate(fsync_stall_rate);
  v.fsync_stall_seconds = std::max(fsync_stall_seconds, 0.0);
  v.fsync_stall_appends = std::max<std::size_t>(fsync_stall_appends, 1);
  return v;
}

IoFaultPlan IoFaultPlan::generate(const IoFaultSpec& raw_spec,
                                  std::uint64_t seed) {
  IoFaultPlan plan;
  plan.spec_ = raw_spec.validated();
  const Rng root(seed);  // vmcw-lint: allow(rng-construction) root of the I/O fault plan
  plan.seed_ = root.fork("chaos/io")();
  plan.hashed_ = true;
  return plan;
}

bool IoFaultPlan::any() const noexcept {
  return (hashed_ && spec_.any()) || !forced_disconnects_.empty() ||
         !forced_corruptions_.empty() || !forced_stalls_.empty();
}

bool IoFaultPlan::disconnect_after(std::uint64_t collector,
                                   std::uint64_t message) const noexcept {
  for (const auto& [c, m] : forced_disconnects_)
    if (c == collector && m == message) return true;
  if (!hashed_ || spec_.disconnect_rate <= 0.0) return false;
  return hashed_uniform(seed_, collector, message, kSaltDisconnect) <
         spec_.disconnect_rate;
}

bool IoFaultPlan::corrupt_message(std::uint64_t collector,
                                  std::uint64_t message) const noexcept {
  for (const auto& [c, m] : forced_corruptions_)
    if (c == collector && m == message) return true;
  if (!hashed_ || spec_.corrupt_rate <= 0.0) return false;
  return hashed_uniform(seed_, collector, message, kSaltCorrupt) <
         spec_.corrupt_rate;
}

std::size_t IoFaultPlan::corrupt_byte(std::uint64_t collector,
                                      std::uint64_t message,
                                      std::size_t size) const noexcept {
  if (size == 0) return 0;
  const double u = hashed_uniform(seed_, collector, message, kSaltCorruptByte);
  return static_cast<std::size_t>(u * static_cast<double>(size)) % size;
}

bool IoFaultPlan::split_write(std::uint64_t collector,
                              std::uint64_t message) const noexcept {
  if (!hashed_ || spec_.partial_write_rate <= 0.0) return false;
  return hashed_uniform(seed_, collector, message, kSaltSplit) <
         spec_.partial_write_rate;
}

std::size_t IoFaultPlan::split_point(std::uint64_t collector,
                                     std::uint64_t message,
                                     std::size_t size) const noexcept {
  if (size < 2) return size;
  const double u = hashed_uniform(seed_, collector, message, kSaltSplitPoint);
  const std::size_t span = size - 1;  // break in [1, size-1]
  return 1 + static_cast<std::size_t>(u * static_cast<double>(span)) % span;
}

double IoFaultPlan::fsync_stall(std::uint64_t append_index) const noexcept {
  for (const StallWindow& w : forced_stalls_)
    if (append_index >= w.first && append_index - w.first < w.count)
      return w.seconds;
  if (!hashed_ || spec_.fsync_stall_rate <= 0.0 ||
      spec_.fsync_stall_seconds <= 0.0)
    return 0.0;
  // Stalls cover whole append blocks: a saturated disk misbehaves for a
  // stretch, not for one write, and the shed/recover cycle needs runs of
  // slow fsyncs to trip its hysteresis.
  const std::uint64_t block =
      append_index / static_cast<std::uint64_t>(spec_.fsync_stall_appends);
  if (hashed_uniform(seed_, block, 0, kSaltStall) >= spec_.fsync_stall_rate)
    return 0.0;
  return spec_.fsync_stall_seconds;
}

void IoFaultPlan::force_disconnect(std::uint64_t collector,
                                   std::uint64_t message) {
  forced_disconnects_.emplace_back(collector, message);
}

void IoFaultPlan::force_corrupt(std::uint64_t collector,
                                std::uint64_t message) {
  forced_corruptions_.emplace_back(collector, message);
}

void IoFaultPlan::force_stall_window(std::uint64_t first_append,
                                     std::uint64_t appends, double seconds) {
  forced_stalls_.push_back(StallWindow{first_append, appends, seconds});
}

}  // namespace vmcw
