// Deterministic fault injection: the chaos layer's schedule generator.
//
// The paper's dynamic strategy stands or falls on live-migration
// reliability — its 20% host reservation exists so migrations complete
// under load — yet a perfect-world emulator can never show what happens
// when they don't. A FaultPlan is a complete, precomputed-or-pure fault
// schedule for one replay window: host crashes with reboot outages,
// per-attempt migration failures and slowdowns, and monitoring gaps that
// leave the planner on stale telemetry.
//
// Determinism contract (extends the PR-1 runtime contract): every fault
// decision derives from keyed Rng::fork streams of one scenario seed —
// host outages from a per-host stream, correlated rack / power-domain
// outages from a per-domain stream ("chaos/rack-R", "chaos/power-P"),
// monitoring gaps from a per-window stream, and migration failures from a
// stateless hash of (vm, interval, attempt) — so the same seed yields a
// bit-identical fault schedule at any VMCW_THREADS and regardless of query
// order. Keyed forks never advance the parent stream, so enabling the
// domain streams leaves every per-host schedule untouched: a spec with
// zero domain rates generates byte-identical plans with or without a
// topology.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/settings.h"
#include "topology/failure_domains.h"

namespace vmcw {

/// Fault-intensity knobs. All rates are per-entity probabilities; the
/// default-constructed spec injects nothing (and replay with it is
/// bit-identical to the fault-free emulator).
struct FaultSpec {
  /// Expected crashes per host per 30 days (720 h). Scaled to the
  /// evaluation window when outages are generated.
  double host_crashes_per_month = 0.0;
  std::size_t reboot_hours_min = 2;   ///< outage duration bounds
  std::size_t reboot_hours_max = 12;

  /// Probability that one migration *attempt* fails (retries re-roll).
  double migration_failure_rate = 0.0;
  /// Probability that a migration job is degraded (congested link, busy
  /// source); degraded jobs run uniform [1, migration_slowdown_max]x long.
  double migration_slowdown_rate = 0.0;
  double migration_slowdown_max = 4.0;

  /// Probability that a monitoring gap starts at a consolidation interval;
  /// a gap lasts uniform [1, monitoring_gap_max_intervals] intervals,
  /// during which planners only have stale (last-known-good) telemetry.
  double monitoring_gap_rate = 0.0;
  std::size_t monitoring_gap_max_intervals = 3;

  /// Expected correlated outages per rack / power domain per 30 days
  /// (720 h). Require a FailureDomainMap at generate(); a domain outage
  /// takes down every member host for the same [down_from, up_at).
  double rack_outages_per_month = 0.0;
  double power_domain_outages_per_month = 0.0;
  std::size_t domain_outage_hours_min = 1;  ///< correlated-outage duration
  std::size_t domain_outage_hours_max = 6;

  /// One-knob profile: scale a production-shaped fault mix by `f` in
  /// [0, 1]. f = 0 is the perfect world; f = 1 is a very bad month.
  /// Domain-outage rates stay zero — correlated faults are opted into
  /// explicitly so existing intensity sweeps keep their schedules.
  static FaultSpec at_intensity(double f) noexcept;

  /// Copy with every knob clamped to its sane range: rates into [0, 1]
  /// (probabilities) or [0, inf) (monthly counts), duration bounds ordered
  /// with min >= 1, slowdown factor >= 1. generate() validates through
  /// this, so hostile inputs (negative rates, inverted bounds) degrade to
  /// the nearest meaningful spec instead of corrupting the schedule.
  FaultSpec validated() const noexcept;

  /// Does this spec inject anything at all?
  bool any() const noexcept {
    return host_crashes_per_month > 0.0 || migration_failure_rate > 0.0 ||
           migration_slowdown_rate > 0.0 || monitoring_gap_rate > 0.0 ||
           rack_outages_per_month > 0.0 || power_domain_outages_per_month > 0.0;
  }
};

/// What took the host down: an independent crash, or a correlated rack /
/// power-domain incident (in which case every sibling host shares the
/// same window and the replay can attribute blast radius to the domain).
enum class OutageCause : std::uint8_t {
  kHost = 0,
  kRack = 1,
  kPowerDomain = 2,
};

const char* to_string(OutageCause cause) noexcept;

/// One host outage: the host serves nothing in [down_from, up_at).
struct HostOutage {
  std::size_t host = 0;
  std::size_t down_from = 0;  ///< absolute trace hour the crash hits
  std::size_t up_at = 0;      ///< absolute trace hour service resumes
  OutageCause cause = OutageCause::kHost;
  std::int32_t domain = -1;  ///< rack / power-domain id for correlated causes

  bool operator==(const HostOutage&) const = default;
};

class FaultPlan {
 public:
  /// An empty plan (no faults); script faults onto it with add_outage /
  /// force_stale / force_migration_failures for targeted drills and tests.
  FaultPlan() = default;

  /// Derive the full fault schedule for `host_count` hosts over the
  /// evaluation window of `settings` from `seed`. Deterministic in its
  /// arguments; independent of thread count and query order. `spec` is
  /// run through FaultSpec::validated() first. With a `topology`, the
  /// spec's rack / power-domain rates emit correlated outages — one
  /// synchronized HostOutage per member host — from per-domain keyed
  /// streams; without one (or with zero domain rates) the plan is
  /// byte-identical to what this function has always produced.
  static FaultPlan generate(const FaultSpec& spec, std::size_t host_count,
                            const StudySettings& settings, std::uint64_t seed,
                            const FailureDomainMap* topology = nullptr);

  const FaultSpec& spec() const noexcept { return spec_; }
  bool any() const noexcept;

  // -- host crashes ---------------------------------------------------

  /// All outages, sorted by (host, down_from). Non-overlapping per host:
  /// windows that would overlap (an independent crash inside a rack
  /// outage, say) are merged into one outage so an hour of lost capacity
  /// is never counted twice.
  const std::vector<HostOutage>& outages() const noexcept { return outages_; }

  bool host_down(std::size_t host, std::size_t hour) const noexcept;

  /// Outages whose down_from lies in [from_hour, to_hour), in order.
  std::vector<HostOutage> outages_starting_in(std::size_t from_hour,
                                              std::size_t to_hour) const;

  /// Script one outage (drills/tests). Keeps outages_ sorted and merges
  /// any overlap with existing outages of the same host.
  void add_outage(std::size_t host, std::size_t down_from, std::size_t up_at);

  /// Script one correlated outage (drills/tests): every host of `domain`
  /// in `topology` goes down for [down_from, up_at) with the matching
  /// cause. Sorted and overlap-merged like add_outage.
  void add_domain_outage(const FailureDomainMap& topology, DomainKind kind,
                         std::size_t domain, std::size_t down_from,
                         std::size_t up_at);

  // -- monitoring gaps ------------------------------------------------

  /// Is the planner's telemetry stale at consolidation interval `k`?
  bool monitoring_stale(std::size_t interval) const noexcept;
  std::size_t stale_interval_count() const noexcept;
  const std::vector<std::uint8_t>& stale_intervals() const noexcept {
    return stale_;
  }

  /// Script a stale interval (drills/tests).
  void force_stale(std::size_t interval);

  // -- migration faults -----------------------------------------------

  /// Does attempt `attempt` (0-based) of migrating `vm` in interval `k`
  /// fail? Pure function of (plan seed, vm, k, attempt); scripted
  /// failures (force_migration_failures) take precedence.
  bool migration_attempt_fails(std::size_t vm, std::size_t interval,
                               int attempt) const noexcept;

  /// Duration multiplier (>= 1) for migrating `vm` in interval `k`.
  double migration_slowdown(std::size_t vm, std::size_t interval)
      const noexcept;

  /// Script: the first `failures` attempts of migrating `vm` in interval
  /// `k` fail, later ones succeed (drills/tests).
  void force_migration_failures(std::size_t vm, std::size_t interval,
                                int failures);

 private:
  /// Sort outages_ by (host, down_from) and merge per-host overlaps. The
  /// merged outage keeps the earliest cause/domain attribution.
  void normalize_outages();

  FaultSpec spec_;
  std::vector<HostOutage> outages_;
  std::vector<std::uint8_t> stale_;  ///< per consolidation interval
  std::uint64_t migration_seed_ = 0;
  bool hashed_migration_faults_ = false;  ///< generate()d (vs scripted-only)
  /// Scripted (vm, interval) -> forced failure count.
  std::vector<std::pair<std::pair<std::size_t, std::size_t>, int>> forced_;
};

}  // namespace vmcw
