#include "chaos/replay.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>

#include "runtime/cancellation.h"
#include "runtime/telemetry.h"

namespace vmcw {

RobustnessReport replay_under_faults(std::span<const VmWorkload> vms,
                                     std::span<const Placement> schedule,
                                     const StudySettings& settings,
                                     bool power_off_empty_hosts,
                                     const FaultPlan& plan,
                                     const ChaosOptions& options) {
  return replay_under_faults(vms, schedule, settings, power_off_empty_hosts,
                             plan, options, HostPool::uniform(settings.target));
}

RobustnessReport replay_under_faults(std::span<const VmWorkload> vms,
                                     std::span<const Placement> schedule,
                                     const StudySettings& settings,
                                     bool power_off_empty_hosts,
                                     const FaultPlan& plan,
                                     const ChaosOptions& options,
                                     const HostPool& pool) {
  Stopwatch span("chaos.replay_seconds");
  RobustnessReport rob;
  rob.vm_down_hours.assign(vms.size(), 0);
  const std::size_t intervals = settings.intervals();
  if (schedule.empty() || intervals == 0) {
    rob.emulation.eval_hours = settings.eval_hours;
    rob.emulation.intervals = intervals;
    return rob;
  }

  std::size_t host_bound = 0;
  for (const auto& p : schedule)
    host_bound = std::max(host_bound, p.host_index_bound());
  EmulationAccumulator acc(vms, settings, power_off_empty_hosts, pool,
                           host_bound);

  // A plan that injects nothing replays exactly as emulate() does — the
  // same accumulator driven by the same placement objects in the same
  // order — so the reports are bit-identical by construction.
  if (!plan.any()) {
    for (std::size_t k = 0; k < intervals; ++k) {
      cancellation_point();
      const Placement& placement =
          schedule.size() == 1 ? schedule[0]
                               : schedule[std::min(k, schedule.size() - 1)];
      acc.begin_interval(placement);
      const std::size_t interval_begin =
          settings.eval_begin() + k * settings.interval_hours;
      for (std::size_t dt = 0; dt < settings.interval_hours; ++dt)
        acc.step_hour(interval_begin + dt);
    }
    rob.emulation = acc.finish();
    MetricsRegistry::global().add_counter("chaos.replays");
    return rob;
  }

  const auto& outages = plan.outages();
  // Per outage: did the host carry VMs when it went down? Such hosts count
  // as lost capacity for every hour of their outage.
  std::vector<char> outage_loaded(outages.size(), 0);

  // Correlated incidents: outage records sharing (cause, domain, start)
  // are one physical event. Index them up front so the replay can charge
  // drains, strandings, and recovery time to the incident they belong to.
  constexpr std::size_t kNoIncident = static_cast<std::size_t>(-1);
  std::vector<std::size_t> incident_of(outages.size(), kNoIncident);
  {
    std::map<std::tuple<int, std::int32_t, std::size_t>, std::size_t> ids;
    for (std::size_t i = 0; i < outages.size(); ++i) {
      const HostOutage& o = outages[i];
      if (o.cause == OutageCause::kHost) continue;
      const auto [it, inserted] = ids.emplace(
          std::make_tuple(static_cast<int>(o.cause), o.domain, o.down_from),
          rob.incidents.size());
      if (inserted) {
        IncidentRecord rec;
        rec.cause = o.cause;
        rec.domain = o.domain;
        rec.start_hour = o.down_from;
        rob.incidents.push_back(rec);
      }
      incident_of[i] = it->second;
    }
  }
  std::vector<std::vector<std::size_t>> incident_vms(rob.incidents.size());

  Placement actual = schedule[0];  // the placement actually achieved
  std::size_t last_fresh = 0;      // schedule index of the last fresh plan
  std::vector<bool> down(host_bound, false);
  std::vector<std::uint8_t> down_u8(host_bound, 0);
  std::size_t hosts_down = 0;
  std::size_t loaded_hosts_down = 0;
  const double interval_s =
      static_cast<double>(settings.interval_hours) * 3600.0;
  std::vector<char> hour_bad(settings.eval_hours, 0);
  bool dirty = true;  // `actual` mutated since the accumulator last saw it

  for (std::size_t k = 0; k < intervals; ++k) {
    // Same cancellation cadence as the fault-free loop: one check per
    // consolidation interval.
    cancellation_point();
    const std::size_t hour0 =
        settings.eval_begin() + k * settings.interval_hours;

    // Degraded-mode planning: with stale telemetry the planner cannot
    // justify a new placement, so the executor re-applies the last plan
    // computed from fresh data instead of chasing one built on data it
    // does not have.
    std::size_t target_idx = std::min(k, schedule.size() - 1);
    if (k > 0 && plan.monitoring_stale(k)) {
      ++rob.stale_intervals;
      target_idx = last_fresh;
    } else {
      last_fresh = target_idx;
    }
    const Placement& target = schedule[target_idx];

    // Execute this interval's migrations from the achieved placement
    // toward the plan (interval 0 is the initial deployment). Jobs whose
    // source or destination is down, and jobs the scheduler could not
    // complete inside the interval, are deferred: the diff against next
    // interval's plan recomputes them.
    if (k > 0) {
      const auto jobs =
          migration_jobs(actual, target, vms, hour0, options.migration);
      std::vector<MigrationJob> runnable;
      runnable.reserve(jobs.size());
      for (const auto& job : jobs) {
        const auto from = static_cast<std::size_t>(job.from);
        const auto to = static_cast<std::size_t>(job.to);
        if ((from < down.size() && down[from]) ||
            (to < down.size() && down[to])) {
          ++rob.migrations_deferred;
          continue;
        }
        runnable.push_back(job);
      }
      if (!runnable.empty()) {
        const auto outcome = schedule_migrations_with_retries(
            runnable, options.per_host_migration_limit, options.retry,
            interval_s,
            [&](std::size_t j, int attempt) {
              return plan.migration_attempt_fails(runnable[j].vm, k, attempt);
            },
            [&](std::size_t j) {
              return plan.migration_slowdown(runnable[j].vm, k);
            });
        rob.migration_attempts += outcome.total_attempts;
        rob.failed_migration_attempts += outcome.failed_attempts;
        rob.migration_retries += outcome.retries;
        rob.migrations_deferred += outcome.abandoned;
        for (std::size_t j = 0; j < runnable.size(); ++j) {
          if (!outcome.jobs[j].completed) continue;
          actual.assign(runnable[j].vm, runnable[j].to);
          ++rob.migrations_completed;
          dirty = true;
        }
      }
    }

    acc.begin_interval(actual, dirty);
    dirty = false;

    for (std::size_t dt = 0; dt < settings.interval_hours; ++dt) {
      const std::size_t hour = hour0 + dt;

      // Reboots first: up_at == hour means the host serves this hour.
      for (std::size_t i = 0; i < outages.size(); ++i) {
        const HostOutage& o = outages[i];
        if (o.up_at != hour || o.host >= host_bound || !down[o.host]) continue;
        down[o.host] = false;
        down_u8[o.host] = 0;
        --hosts_down;
        if (outage_loaded[i] != 0) {
          --loaded_hosts_down;
          outage_loaded[i] = 0;
        }
      }
      // Pre-mark correlated crashes landing this hour: a drain run for any
      // host going down now must not pick as target a sibling that the
      // same incident is about to take with it. Independent crashes keep
      // their original semantics (only already-down hosts are excluded).
      for (const HostOutage& o : outages) {
        if (o.cause == OutageCause::kHost) continue;
        if (o.down_from == hour && o.up_at > hour && o.host < host_bound &&
            !down[o.host])
          down_u8[o.host] = 1;
      }
      // Crashes hitting this hour.
      for (std::size_t i = 0; i < outages.size(); ++i) {
        const HostOutage& o = outages[i];
        if (o.down_from != hour || o.up_at <= hour || o.host >= host_bound ||
            down[o.host])
          continue;
        down[o.host] = true;
        down_u8[o.host] = 1;
        ++hosts_down;
        ++rob.host_crashes;
        std::vector<std::size_t> on_host;
        for (std::size_t vm = 0; vm < actual.vm_count(); ++vm)
          if (actual.is_placed(vm) &&
              actual.host_of(vm) == static_cast<std::int32_t>(o.host))
            on_host.push_back(vm);
        const std::size_t inc = incident_of[i];
        if (inc != kNoIncident) {
          IncidentRecord& rec = rob.incidents[inc];
          ++rec.hosts_lost;
          rec.vms_affected += on_host.size();
          incident_vms[inc].insert(incident_vms[inc].end(), on_host.begin(),
                                   on_host.end());
        }
        if (on_host.empty()) continue;
        outage_loaded[i] = 1;
        ++loaded_hosts_down;
        // HA drain onto surviving hosts (other down hosts excluded as
        // targets); when nothing fits, the VMs ride the host down.
        EvacuationOptions evac = options.evacuation;
        evac.unavailable_hosts = down_u8;
        auto drain = plan_evacuation(actual, static_cast<std::int32_t>(o.host),
                                     vms, hour, pool, evac);
        if (drain.has_value()) {
          ++rob.evacuations;
          rob.migrations_completed += drain->jobs.size();
          if (inc != kNoIncident) {
            rob.incidents[inc].recovery_hours =
                std::max(rob.incidents[inc].recovery_hours,
                         drain->schedule.makespan_s / 3600.0);
          }
          actual = std::move(drain->after);
          acc.update_placement(actual);
        } else {
          ++rob.failed_evacuations;
          if (inc != kNoIncident) {
            IncidentRecord& rec = rob.incidents[inc];
            rec.vms_stranded += on_host.size();
            rec.recovery_hours =
                std::max(rec.recovery_hours,
                         static_cast<double>(o.up_at - o.down_from));
          }
        }
      }

      rob.capacity_lost_host_hours += static_cast<double>(loaded_hosts_down);
      const auto out =
          acc.step_hour(hour, hosts_down > 0 ? &down : nullptr,
                        &rob.vm_down_hours);
      rob.vm_downtime_hours += out.vms_down;
      rob.max_vms_down_simultaneously =
          std::max(rob.max_vms_down_simultaneously, out.vms_down);
      if (out.contention || out.vms_down > 0)
        hour_bad[hour - settings.eval_begin()] = 1;
    }
  }

  rob.emulation = acc.finish();

  // Per-incident blast radius: the share of each application's replicas
  // inside one incident's footprint. Applications of one VM are excluded
  // (their share is trivially total).
  if (!rob.incidents.empty()) {
    // app_size is lookup-only; hit is folded over below, so it must have a
    // deterministic iteration order.
    std::unordered_map<std::string, std::size_t> app_size;
    for (const auto& vm : vms)
      if (!vm.app.empty()) ++app_size[vm.app];
    for (std::size_t inc = 0; inc < rob.incidents.size(); ++inc) {
      std::map<std::string, std::size_t> hit;
      for (const std::size_t vm : incident_vms[inc])
        if (!vms[vm].app.empty()) ++hit[vms[vm].app];
      double worst = 0;
      for (const auto& [app, count] : hit) {
        const std::size_t total = app_size[app];
        if (total < 2) continue;
        worst = std::max(worst, static_cast<double>(count) /
                                    static_cast<double>(total));
      }
      rob.incidents[inc].max_app_blast_fraction = worst;
      rob.worst_incident_recovery_hours = std::max(
          rob.worst_incident_recovery_hours, rob.incidents[inc].recovery_hours);
      rob.max_app_blast_radius = std::max(rob.max_app_blast_radius, worst);
    }
    std::sort(rob.incidents.begin(), rob.incidents.end(),
              [](const IncidentRecord& a, const IncidentRecord& b) {
                return std::make_tuple(a.start_hour,
                                       static_cast<int>(a.cause), a.domain) <
                       std::make_tuple(b.start_hour,
                                       static_cast<int>(b.cause), b.domain);
              });
  }

  // Merge flagged hours into maximal [from, to) absolute-hour ranges.
  const std::size_t base = settings.eval_begin();
  for (std::size_t h = 0; h < hour_bad.size(); ++h) {
    if (hour_bad[h] == 0) continue;
    std::size_t end = h + 1;
    while (end < hour_bad.size() && hour_bad[end] != 0) ++end;
    rob.sla_violation_intervals.emplace_back(base + h, base + end);
    h = end;
  }

  auto& metrics = MetricsRegistry::global();
  metrics.add_counter("chaos.replays");
  metrics.add_counter("chaos.host_crashes", rob.host_crashes);
  metrics.add_counter("chaos.evacuations", rob.evacuations);
  metrics.add_counter("chaos.failed_evacuations", rob.failed_evacuations);
  metrics.add_counter("chaos.migration_attempts", rob.migration_attempts);
  metrics.add_counter("chaos.migration_failed_attempts",
                      rob.failed_migration_attempts);
  metrics.add_counter("chaos.migration_retries", rob.migration_retries);
  metrics.add_counter("chaos.migrations_deferred", rob.migrations_deferred);
  metrics.add_counter("chaos.stale_intervals", rob.stale_intervals);
  metrics.add_counter("chaos.vm_downtime_hours", rob.vm_downtime_hours);
  metrics.add_counter("chaos.incidents", rob.incidents.size());
  return rob;
}

}  // namespace vmcw
