// Failure-aware consolidation replay: the chaos layer's executor.
//
// Replays a placement schedule the way a production control plane would
// have to execute it: live migrations can fail (retried with capped
// exponential backoff, deferred past the interval deadline), hosts crash
// (their VMs are drained through the evacuation planner when the surviving
// fleet has room, and are simply *down* when it does not), and monitoring
// gaps force degraded-mode planning — with stale telemetry the executor
// re-applies the last plan computed from fresh data instead of chasing a
// plan built on data it does not have.
//
// The fault-free accounting is exactly core/emulator's (both drive the
// same EmulationAccumulator), so a FaultPlan that injects nothing yields a
// report bit-identical to emulate().
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "chaos/fault_plan.h"
#include "core/emulator.h"
#include "core/evacuation.h"
#include "core/host_pool.h"
#include "core/migration_scheduler.h"
#include "core/placement.h"
#include "core/settings.h"
#include "core/vm.h"

namespace vmcw {

struct ChaosOptions {
  RetryPolicy retry;               ///< migration retry/backoff behavior
  int per_host_migration_limit = 2;
  MigrationConfig migration;       ///< pre-copy pricing for plan changes
  EvacuationOptions evacuation;    ///< crash-drain parameters
};

/// One correlated incident — a rack or power-domain outage — replayed
/// start to finish. Outage records sharing (cause, domain, start hour)
/// are one physical event.
struct IncidentRecord {
  OutageCause cause = OutageCause::kRack;
  std::int32_t domain = -1;
  std::size_t start_hour = 0;    ///< absolute trace hour of impact
  std::size_t hosts_lost = 0;    ///< member hosts taken down together
  std::size_t vms_affected = 0;  ///< VMs on those hosts at impact
  std::size_t vms_stranded = 0;  ///< affected VMs with no drain target
  /// Detection to service restored: the drain makespan where the VMs were
  /// evacuated, the full reboot window where they rode the host down.
  double recovery_hours = 0;
  /// Worst per-application share of replicas inside the blast; 1.0 means
  /// some application lost every replica at once. Only applications with
  /// two or more VMs count (a singleton's share is trivially total).
  double max_app_blast_fraction = 0;
};

/// What the evaluation window looked like once failures were allowed to
/// happen — the robustness counterpart of EmulationReport.
struct RobustnessReport {
  EmulationReport emulation;  ///< replayed outcome under faults

  // Faults encountered.
  std::size_t host_crashes = 0;
  /// Provisioned-host hours offline (hosts that had VMs when they went
  /// down, counted for every hour of their outage).
  double capacity_lost_host_hours = 0;
  std::size_t stale_intervals = 0;  ///< intervals planned in degraded mode

  // Migration execution under failures.
  std::size_t migration_attempts = 0;
  std::size_t failed_migration_attempts = 0;
  std::size_t migration_retries = 0;   ///< attempts beyond each job's first
  std::size_t migrations_completed = 0;
  std::size_t migrations_deferred = 0; ///< pushed to a later interval

  // Availability.
  std::size_t evacuations = 0;         ///< successful crash drains
  std::size_t failed_evacuations = 0;  ///< no room: VMs ride the host down
  std::size_t vm_downtime_hours = 0;   ///< total VM-hours offline
  std::vector<std::size_t> vm_down_hours;  ///< per VM
  /// Peak count of VMs offline in any single hour — the headline number a
  /// correlated outage moves and per-host faults barely touch.
  std::size_t max_vms_down_simultaneously = 0;

  // Correlated-outage accounting (empty without rack / power faults).
  std::vector<IncidentRecord> incidents;  ///< ordered by start hour
  double worst_incident_recovery_hours = 0;
  double max_app_blast_radius = 0;  ///< worst incident app-blast fraction
  /// Maximal absolute-hour ranges [from, to) in which some VM was down or
  /// some host contended — Section 7's "higher risk of SLA violations"
  /// made countable as intervals.
  std::vector<std::pair<std::size_t, std::size_t>> sla_violation_intervals;

  /// Fraction of expected VM-hours actually served, 1.0 = no downtime.
  double availability() const noexcept {
    const double expected = static_cast<double>(vm_down_hours.size()) *
                            static_cast<double>(emulation.eval_hours);
    return expected > 0.0
               ? 1.0 - static_cast<double>(vm_downtime_hours) / expected
               : 1.0;
  }
};

/// Replay `vms` against `schedule` under `plan`'s faults. Semantics beyond
/// emulate():
///  - Each interval the executor migrates from the *achieved* placement
///    toward the interval's plan; attempts fail per the plan and are
///    retried with capped exponential backoff. Jobs that cannot finish
///    inside the interval (or whose source/target host is down) are
///    deferred and recomputed next interval.
///  - A crashed host is drained through plan_evacuation onto surviving
///    hosts; when no drain fits, its VMs are down until reboot.
///  - A stale-monitoring interval re-applies the last plan computed from
///    fresh telemetry (single-placement schedules are unaffected).
/// With a no-fault plan the result is bit-identical to emulate().
RobustnessReport replay_under_faults(std::span<const VmWorkload> vms,
                                     std::span<const Placement> schedule,
                                     const StudySettings& settings,
                                     bool power_off_empty_hosts,
                                     const FaultPlan& plan,
                                     const ChaosOptions& options = {});

/// Heterogeneous-pool variant (host indices must be valid pool indices).
RobustnessReport replay_under_faults(std::span<const VmWorkload> vms,
                                     std::span<const Placement> schedule,
                                     const StudySettings& settings,
                                     bool power_off_empty_hosts,
                                     const FaultPlan& plan,
                                     const ChaosOptions& options,
                                     const HostPool& pool);

}  // namespace vmcw
