#include "chaos/fault_plan.h"

#include <algorithm>
#include <string>

#include "util/rng.h"

namespace vmcw {

namespace {

/// Stateless mix of the plan seed with a fault coordinate: two splitmix64
/// rounds over a linear combination. Pure, so the same (seed, vm, interval,
/// salt) always yields the same draw — migration fault decisions need no
/// precomputed table and no shared generator.
double hashed_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                      std::uint64_t salt) noexcept {
  std::uint64_t state = seed;
  state += 0x9e3779b97f4a7c15ULL * (a + 1);
  state += 0xbf58476d1ce4e5b9ULL * (b + 1);
  state += 0x94d049bb133111ebULL * (salt + 1);
  std::uint64_t x = splitmix64(state);
  x = splitmix64(state);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Deterministic total order for outage schedules: (host, down_from,
/// up_at, cause, domain). The legacy (host, down_from) order is a prefix
/// of it, so plans without correlated faults sort exactly as before.
bool outage_before(const HostOutage& a, const HostOutage& b) noexcept {
  if (a.host != b.host) return a.host < b.host;
  if (a.down_from != b.down_from) return a.down_from < b.down_from;
  if (a.up_at != b.up_at) return a.up_at < b.up_at;
  if (a.cause != b.cause) return a.cause < b.cause;
  return a.domain < b.domain;
}

}  // namespace

const char* to_string(OutageCause cause) noexcept {
  switch (cause) {
    case OutageCause::kHost:
      return "host";
    case OutageCause::kRack:
      return "rack";
    case OutageCause::kPowerDomain:
      return "power-domain";
  }
  return "?";
}

FaultSpec FaultSpec::at_intensity(double f) noexcept {
  f = std::clamp(f, 0.0, 1.0);
  FaultSpec spec;
  spec.host_crashes_per_month = 2.0 * f;
  spec.migration_failure_rate = 0.30 * f;
  spec.migration_slowdown_rate = 0.30 * f;
  spec.migration_slowdown_max = 4.0;
  spec.monitoring_gap_rate = 0.25 * f;
  return spec;
}

FaultSpec FaultSpec::validated() const noexcept {
  FaultSpec v = *this;
  v.host_crashes_per_month = std::max(host_crashes_per_month, 0.0);
  v.reboot_hours_min = std::max<std::size_t>(reboot_hours_min, 1);
  v.reboot_hours_max = std::max(reboot_hours_max, v.reboot_hours_min);
  v.migration_failure_rate = std::clamp(migration_failure_rate, 0.0, 1.0);
  v.migration_slowdown_rate = std::clamp(migration_slowdown_rate, 0.0, 1.0);
  v.migration_slowdown_max = std::max(migration_slowdown_max, 1.0);
  v.monitoring_gap_rate = std::clamp(monitoring_gap_rate, 0.0, 1.0);
  v.monitoring_gap_max_intervals =
      std::max<std::size_t>(monitoring_gap_max_intervals, 1);
  v.rack_outages_per_month = std::max(rack_outages_per_month, 0.0);
  v.power_domain_outages_per_month =
      std::max(power_domain_outages_per_month, 0.0);
  v.domain_outage_hours_min = std::max<std::size_t>(domain_outage_hours_min, 1);
  v.domain_outage_hours_max =
      std::max(domain_outage_hours_max, v.domain_outage_hours_min);
  return v;
}

FaultPlan FaultPlan::generate(const FaultSpec& raw_spec,
                              std::size_t host_count,
                              const StudySettings& settings,
                              std::uint64_t seed,
                              const FailureDomainMap* topology) {
  FaultPlan plan;
  const FaultSpec spec = raw_spec.validated();
  plan.spec_ = spec;
  const Rng root(seed);  // vmcw-lint: allow(rng-construction) root of the fault plan
  plan.migration_seed_ = root.fork("chaos/migrations")();
  plan.hashed_migration_faults_ = true;

  // Host outages: one keyed stream per host, so adding hosts never
  // perturbs the outage schedule of the others.
  const std::size_t begin = settings.eval_begin();
  const std::size_t end = settings.eval_end();
  const double crash_per_hour = spec.host_crashes_per_month / 720.0;
  if (crash_per_hour > 0.0) {
    for (std::size_t h = 0; h < host_count; ++h) {
      Rng rng = root.fork("chaos/host-" + std::to_string(h));
      std::size_t hour = begin;
      while (hour < end) {
        if (!rng.bernoulli(crash_per_hour)) {
          ++hour;
          continue;
        }
        const auto outage_hours = static_cast<std::size_t>(rng.uniform_int(
            static_cast<std::int64_t>(spec.reboot_hours_min),
            static_cast<std::int64_t>(spec.reboot_hours_max)));
        plan.outages_.push_back(HostOutage{h, hour, hour + outage_hours});
        hour += outage_hours;  // a host cannot crash while already down
      }
    }
  }

  // Correlated outages: one keyed stream per failure domain, so the rack-R
  // schedule never depends on how many racks, hosts, or power domains
  // exist beside it. A domain event emits one synchronized HostOutage per
  // member host; overlaps with independent crashes merge below.
  if (topology != nullptr && !topology->empty()) {
    const auto emit_domain_outages = [&](DomainKind kind, double per_month,
                                         const char* stream_prefix,
                                         OutageCause cause) {
      if (per_month <= 0.0) return;
      const double per_hour = per_month / 720.0;
      const std::size_t domains = topology->domain_count(kind);
      for (std::size_t d = 0; d < domains; ++d) {
        const std::vector<std::size_t> members = topology->hosts_in(kind, d);
        if (members.empty()) continue;
        Rng rng = root.fork(stream_prefix + std::to_string(d));
        std::size_t hour = begin;
        while (hour < end) {
          if (!rng.bernoulli(per_hour)) {
            ++hour;
            continue;
          }
          const auto outage_hours = static_cast<std::size_t>(rng.uniform_int(
              static_cast<std::int64_t>(spec.domain_outage_hours_min),
              static_cast<std::int64_t>(spec.domain_outage_hours_max)));
          for (const std::size_t h : members) {
            if (h >= host_count) continue;
            plan.outages_.push_back(HostOutage{h, hour, hour + outage_hours,
                                               cause,
                                               static_cast<std::int32_t>(d)});
          }
          hour += outage_hours;  // one incident at a time per domain
        }
      }
    };
    emit_domain_outages(DomainKind::kRack, spec.rack_outages_per_month,
                        "chaos/rack-", OutageCause::kRack);
    emit_domain_outages(DomainKind::kPowerDomain,
                        spec.power_domain_outages_per_month, "chaos/power-",
                        OutageCause::kPowerDomain);
  }
  plan.normalize_outages();

  // Monitoring gaps: one stream over the interval sequence.
  plan.stale_.assign(settings.intervals(), 0);
  if (spec.monitoring_gap_rate > 0.0) {
    Rng rng = root.fork("chaos/monitoring");
    const std::size_t gap_max =
        std::max<std::size_t>(spec.monitoring_gap_max_intervals, 1);
    std::size_t gap_left = 0;
    for (std::size_t k = 0; k < plan.stale_.size(); ++k) {
      if (gap_left > 0) {
        plan.stale_[k] = 1;
        --gap_left;
        continue;
      }
      if (!rng.bernoulli(spec.monitoring_gap_rate)) continue;
      plan.stale_[k] = 1;
      gap_left = static_cast<std::size_t>(rng.uniform_int(
                     1, static_cast<std::int64_t>(gap_max))) -
                 1;
    }
  }
  return plan;
}

bool FaultPlan::any() const noexcept {
  return spec_.any() || !outages_.empty() || !forced_.empty() ||
         stale_interval_count() > 0;
}

bool FaultPlan::host_down(std::size_t host, std::size_t hour) const noexcept {
  for (const auto& o : outages_) {
    if (o.host != host) continue;
    if (hour >= o.down_from && hour < o.up_at) return true;
  }
  return false;
}

std::vector<HostOutage> FaultPlan::outages_starting_in(
    std::size_t from_hour, std::size_t to_hour) const {
  std::vector<HostOutage> hits;
  for (const auto& o : outages_)
    if (o.down_from >= from_hour && o.down_from < to_hour) hits.push_back(o);
  std::sort(hits.begin(), hits.end(),
            [](const HostOutage& a, const HostOutage& b) {
              return a.down_from != b.down_from ? a.down_from < b.down_from
                                                : a.host < b.host;
            });
  return hits;
}

void FaultPlan::add_outage(std::size_t host, std::size_t down_from,
                           std::size_t up_at) {
  outages_.push_back(HostOutage{host, down_from, up_at});
  normalize_outages();
}

void FaultPlan::add_domain_outage(const FailureDomainMap& topology,
                                  DomainKind kind, std::size_t domain,
                                  std::size_t down_from, std::size_t up_at) {
  const OutageCause cause =
      kind == DomainKind::kRack ? OutageCause::kRack : OutageCause::kPowerDomain;
  for (const std::size_t h : topology.hosts_in(kind, domain))
    outages_.push_back(HostOutage{h, down_from, up_at, cause,
                                  static_cast<std::int32_t>(domain)});
  normalize_outages();
}

void FaultPlan::normalize_outages() {
  std::sort(outages_.begin(), outages_.end(), outage_before);
  std::size_t w = 0;
  for (std::size_t i = 0; i < outages_.size(); ++i) {
    if (w > 0 && outages_[w - 1].host == outages_[i].host &&
        outages_[i].down_from < outages_[w - 1].up_at) {
      // Overlap on one host: one continuous outage, attributed to the
      // earliest-starting record — not two stacked capacity losses.
      outages_[w - 1].up_at = std::max(outages_[w - 1].up_at, outages_[i].up_at);
      continue;
    }
    outages_[w++] = outages_[i];
  }
  outages_.resize(w);
}

bool FaultPlan::monitoring_stale(std::size_t interval) const noexcept {
  return interval < stale_.size() && stale_[interval] != 0;
}

std::size_t FaultPlan::stale_interval_count() const noexcept {
  std::size_t n = 0;
  for (const auto s : stale_) n += s != 0 ? 1 : 0;
  return n;
}

void FaultPlan::force_stale(std::size_t interval) {
  if (stale_.size() <= interval) stale_.resize(interval + 1, 0);
  stale_[interval] = 1;
}

bool FaultPlan::migration_attempt_fails(std::size_t vm, std::size_t interval,
                                        int attempt) const noexcept {
  for (const auto& [key, failures] : forced_)
    if (key.first == vm && key.second == interval) return attempt < failures;
  if (!hashed_migration_faults_ || spec_.migration_failure_rate <= 0.0)
    return false;
  const double u = hashed_uniform(migration_seed_, vm, interval,
                                  0xA77E39ULL + static_cast<std::uint64_t>(
                                                    std::max(attempt, 0)));
  return u < spec_.migration_failure_rate;
}

double FaultPlan::migration_slowdown(std::size_t vm,
                                     std::size_t interval) const noexcept {
  if (!hashed_migration_faults_ || spec_.migration_slowdown_rate <= 0.0)
    return 1.0;
  if (hashed_uniform(migration_seed_, vm, interval, 0x510Dull) >=
      spec_.migration_slowdown_rate)
    return 1.0;
  const double u = hashed_uniform(migration_seed_, vm, interval, 0x51F7ull);
  return 1.0 + u * (std::max(spec_.migration_slowdown_max, 1.0) - 1.0);
}

void FaultPlan::force_migration_failures(std::size_t vm, std::size_t interval,
                                         int failures) {
  forced_.emplace_back(std::make_pair(vm, interval), failures);
}

}  // namespace vmcw
