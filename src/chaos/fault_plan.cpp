#include "chaos/fault_plan.h"

#include <algorithm>
#include <string>

#include "util/rng.h"

namespace vmcw {

namespace {

/// Stateless mix of the plan seed with a fault coordinate: two splitmix64
/// rounds over a linear combination. Pure, so the same (seed, vm, interval,
/// salt) always yields the same draw — migration fault decisions need no
/// precomputed table and no shared generator.
double hashed_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                      std::uint64_t salt) noexcept {
  std::uint64_t state = seed;
  state += 0x9e3779b97f4a7c15ULL * (a + 1);
  state += 0xbf58476d1ce4e5b9ULL * (b + 1);
  state += 0x94d049bb133111ebULL * (salt + 1);
  std::uint64_t x = splitmix64(state);
  x = splitmix64(state);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

FaultSpec FaultSpec::at_intensity(double f) noexcept {
  f = std::clamp(f, 0.0, 1.0);
  FaultSpec spec;
  spec.host_crashes_per_month = 2.0 * f;
  spec.migration_failure_rate = 0.30 * f;
  spec.migration_slowdown_rate = 0.30 * f;
  spec.migration_slowdown_max = 4.0;
  spec.monitoring_gap_rate = 0.25 * f;
  return spec;
}

FaultPlan FaultPlan::generate(const FaultSpec& spec, std::size_t host_count,
                              const StudySettings& settings,
                              std::uint64_t seed) {
  FaultPlan plan;
  plan.spec_ = spec;
  const Rng root(seed);
  plan.migration_seed_ = root.fork("chaos/migrations")();
  plan.hashed_migration_faults_ = true;

  // Host outages: one keyed stream per host, so adding hosts never
  // perturbs the outage schedule of the others.
  const std::size_t begin = settings.eval_begin();
  const std::size_t end = settings.eval_end();
  const double crash_per_hour =
      std::max(spec.host_crashes_per_month, 0.0) / 720.0;
  const std::size_t reboot_min = std::max<std::size_t>(spec.reboot_hours_min, 1);
  const std::size_t reboot_max = std::max(spec.reboot_hours_max, reboot_min);
  if (crash_per_hour > 0.0) {
    for (std::size_t h = 0; h < host_count; ++h) {
      Rng rng = root.fork("chaos/host-" + std::to_string(h));
      std::size_t hour = begin;
      while (hour < end) {
        if (!rng.bernoulli(crash_per_hour)) {
          ++hour;
          continue;
        }
        const auto outage_hours = static_cast<std::size_t>(rng.uniform_int(
            static_cast<std::int64_t>(reboot_min),
            static_cast<std::int64_t>(reboot_max)));
        plan.outages_.push_back(HostOutage{h, hour, hour + outage_hours});
        hour += outage_hours;  // a host cannot crash while already down
      }
    }
    std::sort(plan.outages_.begin(), plan.outages_.end(),
              [](const HostOutage& a, const HostOutage& b) {
                return a.host != b.host ? a.host < b.host
                                        : a.down_from < b.down_from;
              });
  }

  // Monitoring gaps: one stream over the interval sequence.
  plan.stale_.assign(settings.intervals(), 0);
  if (spec.monitoring_gap_rate > 0.0) {
    Rng rng = root.fork("chaos/monitoring");
    const std::size_t gap_max =
        std::max<std::size_t>(spec.monitoring_gap_max_intervals, 1);
    std::size_t gap_left = 0;
    for (std::size_t k = 0; k < plan.stale_.size(); ++k) {
      if (gap_left > 0) {
        plan.stale_[k] = 1;
        --gap_left;
        continue;
      }
      if (!rng.bernoulli(spec.monitoring_gap_rate)) continue;
      plan.stale_[k] = 1;
      gap_left = static_cast<std::size_t>(rng.uniform_int(
                     1, static_cast<std::int64_t>(gap_max))) -
                 1;
    }
  }
  return plan;
}

bool FaultPlan::any() const noexcept {
  return spec_.any() || !outages_.empty() || !forced_.empty() ||
         stale_interval_count() > 0;
}

bool FaultPlan::host_down(std::size_t host, std::size_t hour) const noexcept {
  for (const auto& o : outages_) {
    if (o.host != host) continue;
    if (hour >= o.down_from && hour < o.up_at) return true;
  }
  return false;
}

std::vector<HostOutage> FaultPlan::outages_starting_in(
    std::size_t from_hour, std::size_t to_hour) const {
  std::vector<HostOutage> hits;
  for (const auto& o : outages_)
    if (o.down_from >= from_hour && o.down_from < to_hour) hits.push_back(o);
  std::sort(hits.begin(), hits.end(),
            [](const HostOutage& a, const HostOutage& b) {
              return a.down_from != b.down_from ? a.down_from < b.down_from
                                                : a.host < b.host;
            });
  return hits;
}

void FaultPlan::add_outage(std::size_t host, std::size_t down_from,
                           std::size_t up_at) {
  outages_.push_back(HostOutage{host, down_from, up_at});
  std::sort(outages_.begin(), outages_.end(),
            [](const HostOutage& a, const HostOutage& b) {
              return a.host != b.host ? a.host < b.host
                                      : a.down_from < b.down_from;
            });
}

bool FaultPlan::monitoring_stale(std::size_t interval) const noexcept {
  return interval < stale_.size() && stale_[interval] != 0;
}

std::size_t FaultPlan::stale_interval_count() const noexcept {
  std::size_t n = 0;
  for (const auto s : stale_) n += s != 0 ? 1 : 0;
  return n;
}

void FaultPlan::force_stale(std::size_t interval) {
  if (stale_.size() <= interval) stale_.resize(interval + 1, 0);
  stale_[interval] = 1;
}

bool FaultPlan::migration_attempt_fails(std::size_t vm, std::size_t interval,
                                        int attempt) const noexcept {
  for (const auto& [key, failures] : forced_)
    if (key.first == vm && key.second == interval) return attempt < failures;
  if (!hashed_migration_faults_ || spec_.migration_failure_rate <= 0.0)
    return false;
  const double u = hashed_uniform(migration_seed_, vm, interval,
                                  0xA77E39ULL + static_cast<std::uint64_t>(
                                                    std::max(attempt, 0)));
  return u < spec_.migration_failure_rate;
}

double FaultPlan::migration_slowdown(std::size_t vm,
                                     std::size_t interval) const noexcept {
  if (!hashed_migration_faults_ || spec_.migration_slowdown_rate <= 0.0)
    return 1.0;
  if (hashed_uniform(migration_seed_, vm, interval, 0x510Dull) >=
      spec_.migration_slowdown_rate)
    return 1.0;
  const double u = hashed_uniform(migration_seed_, vm, interval, 0x51F7ull);
  return 1.0 + u * (std::max(spec_.migration_slowdown_max, 1.0) - 1.0);
}

void FaultPlan::force_migration_failures(std::size_t vm, std::size_t interval,
                                         int failures) {
  forced_.emplace_back(std::make_pair(vm, interval), failures);
}

}  // namespace vmcw
