// Deterministic I/O fault injection for the ingestion front-end.
//
// FaultPlan (chaos/fault_plan) perturbs the *fleet* — crashes, migration
// failures, monitoring gaps. IoFaultPlan perturbs the *pipes*: the sockets
// between collectors and the daemon, and the disk under the telemetry WAL.
// It is a pure schedule, not an actor: the collector client and the WAL
// hook adapters (tests/, tools/vmcw_collector) query it at each I/O point
// and act on the answer, so the same seed produces the same disconnects,
// the same corrupted byte, the same fsync stall windows — on any machine,
// at any thread count, in any arrival order.
//
// Determinism contract: every decision is a stateless hash of
// (plan seed, coordinate, salt) in the fault_plan idiom. Collector-side
// faults are keyed by (collector, message index) — adding a collector or
// reordering queries never perturbs another collector's schedule. WAL-side
// stalls are keyed by append block, so stall windows are contiguous runs
// of appends the way a real saturated disk misbehaves for a while, not for
// one write.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vmcw {

/// I/O fault intensity knobs. The default-constructed spec injects
/// nothing; validated() clamps hostile values instead of corrupting the
/// schedule (rates into [0, 1], sizes/durations to sane minimums).
struct IoFaultSpec {
  /// Probability that the transport drops the connection right after a
  /// given message is written (the collector must reconnect, re-Hello and
  /// resend everything unacked).
  double disconnect_rate = 0.0;

  /// Probability that a given message is corrupted in flight: one byte of
  /// its encoding is flipped, which the server must catch by checksum and
  /// quarantine with a typed reject.
  double corrupt_rate = 0.0;

  /// Probability that a given message's write is split into two short
  /// writes (exercises the server's torn-frame reassembly).
  double partial_write_rate = 0.0;

  /// Probability that a block of WAL appends falls into an fsync stall
  /// window (see fsync_stall_seconds()); drives the daemon's WAL-stall
  /// shedding without a real slow disk.
  double fsync_stall_rate = 0.0;
  /// Injected fsync latency (virtual seconds) inside a stall window.
  double fsync_stall_seconds = 0.25;
  /// How many consecutive appends one stall window covers.
  std::size_t fsync_stall_appends = 8;

  /// Copy with every knob clamped to its sane range.
  IoFaultSpec validated() const noexcept;

  /// Does this spec inject anything at all?
  bool any() const noexcept {
    return disconnect_rate > 0.0 || corrupt_rate > 0.0 ||
           partial_write_rate > 0.0 || fsync_stall_rate > 0.0;
  }
};

class IoFaultPlan {
 public:
  /// An empty plan (clean pipes); script faults onto it with force_* for
  /// targeted drills and tests.
  IoFaultPlan() = default;

  /// Derive the full I/O fault schedule from `seed`. Deterministic in its
  /// arguments; independent of thread count and query order. `spec` is
  /// run through IoFaultSpec::validated() first.
  static IoFaultPlan generate(const IoFaultSpec& spec, std::uint64_t seed);

  const IoFaultSpec& spec() const noexcept { return spec_; }
  bool any() const noexcept;

  // -- collector-side transport faults --------------------------------
  // `message` is the collector's 0-based count of messages written on the
  // wire (retransmissions advance it too: a resend can fail differently
  // from the original attempt, like a real flaky link).

  /// Drop the connection after writing this message?
  bool disconnect_after(std::uint64_t collector,
                        std::uint64_t message) const noexcept;

  /// Corrupt this message in flight?
  bool corrupt_message(std::uint64_t collector,
                       std::uint64_t message) const noexcept;

  /// Which byte of a `size`-byte encoding the corruption flips (only
  /// meaningful when corrupt_message() is true; size must be > 0).
  std::size_t corrupt_byte(std::uint64_t collector, std::uint64_t message,
                           std::size_t size) const noexcept;

  /// Split this message's write into two short writes?
  bool split_write(std::uint64_t collector,
                   std::uint64_t message) const noexcept;

  /// Where a split write breaks a `size`-byte encoding (in [1, size-1];
  /// size must be >= 2).
  std::size_t split_point(std::uint64_t collector, std::uint64_t message,
                          std::size_t size) const noexcept;

  // -- WAL-side fsync stalls ------------------------------------------

  /// Injected fsync latency (virtual seconds) for the `append_index`-th
  /// WAL append; 0 when the disk is healthy at that point. Scripted
  /// windows (force_stall_window) take precedence over hashed ones.
  double fsync_stall(std::uint64_t append_index) const noexcept;

  // -- scripting (drills/tests) ---------------------------------------

  void force_disconnect(std::uint64_t collector, std::uint64_t message);
  void force_corrupt(std::uint64_t collector, std::uint64_t message);

  /// Appends [first, first + appends) report `seconds` of fsync latency.
  void force_stall_window(std::uint64_t first_append, std::uint64_t appends,
                          double seconds);

 private:
  struct StallWindow {
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    double seconds = 0.0;
  };

  IoFaultSpec spec_;
  std::uint64_t seed_ = 0;
  bool hashed_ = false;  ///< generate()d (vs scripted-only)
  std::vector<std::pair<std::uint64_t, std::uint64_t>> forced_disconnects_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> forced_corruptions_;
  std::vector<StallWindow> forced_stalls_;
};

}  // namespace vmcw
