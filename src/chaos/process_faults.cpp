#include "chaos/process_faults.h"

#include <algorithm>

#include "util/rng.h"

namespace vmcw {

namespace {

/// The fault_plan hashed_uniform idiom: a stateless mix of the plan seed
/// with a fault coordinate, so the same (seed, run) always yields the same
/// kill time with no shared generator.
double hashed_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                      std::uint64_t salt) noexcept {
  std::uint64_t state = seed;
  state += 0x9e3779b97f4a7c15ULL * (a + 1);
  state += 0xbf58476d1ce4e5b9ULL * (b + 1);
  state += 0x94d049bb133111ebULL * (salt + 1);
  std::uint64_t x = splitmix64(state);
  x = splitmix64(state);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kSaltKillTime = 0x51C4ull;

}  // namespace

ProcessFaultSpec ProcessFaultSpec::validated() const noexcept {
  ProcessFaultSpec v = *this;
  v.min_uptime_seconds = std::max(min_uptime_seconds, 0.0);
  v.max_uptime_seconds = std::max(max_uptime_seconds, v.min_uptime_seconds);
  return v;
}

ProcessFaultPlan ProcessFaultPlan::generate(const ProcessFaultSpec& raw_spec,
                                            std::uint64_t seed) {
  ProcessFaultPlan plan;
  plan.spec_ = raw_spec.validated();
  const Rng root(seed);  // vmcw-lint: allow(rng-construction) root of the process fault plan
  plan.seed_ = root.fork("chaos/proc")();
  plan.hashed_ = true;
  return plan;
}

double ProcessFaultPlan::kill_after_seconds(std::size_t run) const noexcept {
  for (const auto& [r, seconds] : forced_kills_)
    if (r == run) return seconds;
  if (!hashed_ || run >= spec_.kills) return -1.0;
  const double u = hashed_uniform(seed_, run, 0, kSaltKillTime);
  return spec_.min_uptime_seconds +
         u * (spec_.max_uptime_seconds - spec_.min_uptime_seconds);
}

std::size_t ProcessFaultPlan::kills() const noexcept {
  std::size_t n = hashed_ ? spec_.kills : 0;
  for (const auto& [r, seconds] : forced_kills_)
    if (!hashed_ || r >= spec_.kills) ++n;
  return n;
}

void ProcessFaultPlan::force_kill(std::size_t run, double seconds) {
  forced_kills_.emplace_back(run, seconds);
}

}  // namespace vmcw
