// Deterministic process-level fault injection: timed SIGKILLs.
//
// IoFaultPlan perturbs the pipes; ProcessFaultPlan perturbs the *process*:
// it schedules when the supervisor's chaos mode kills the daemon outright,
// mid-ingest, with collectors still connected. Like every chaos plan it is
// a pure schedule — the same (spec, seed) yields the same kill times on
// any machine — so a soak run is reproducible: K kills at known uptimes,
// after which the final decision log must still be byte-identical to an
// uninterrupted run (tests/test_recovery.cpp, the CI soak job).
//
// Coordinates: `run` is the 0-based count of daemon launches. Each of the
// first `kills` runs gets a kill delay drawn uniformly from
// [min_uptime_seconds, max_uptime_seconds]; later runs are left alone so
// the soak can converge and drain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vmcw {

/// Kill-schedule knobs. validated() clamps hostile values.
struct ProcessFaultSpec {
  std::size_t kills = 5;  ///< how many daemon runs get SIGKILLed
  double min_uptime_seconds = 0.2;  ///< earliest kill after launch
  double max_uptime_seconds = 1.0;  ///< latest kill after launch

  ProcessFaultSpec validated() const noexcept;
};

class ProcessFaultPlan {
 public:
  /// An empty plan (no kills); script onto it with force_kill.
  ProcessFaultPlan() = default;

  /// Derive the kill schedule from `seed`; deterministic in its arguments.
  static ProcessFaultPlan generate(const ProcessFaultSpec& spec,
                                   std::uint64_t seed);

  const ProcessFaultSpec& spec() const noexcept { return spec_; }

  /// Seconds after launch at which daemon run `run` gets SIGKILLed, or a
  /// negative value when that run is allowed to live. Scripted kills
  /// (force_kill) take precedence over hashed ones.
  double kill_after_seconds(std::size_t run) const noexcept;

  /// Total runs with a scheduled kill.
  std::size_t kills() const noexcept;

  /// Script a kill for `run` at `seconds` after launch (drills/tests).
  void force_kill(std::size_t run, double seconds);

 private:
  ProcessFaultSpec spec_;
  std::uint64_t seed_ = 0;
  bool hashed_ = false;
  std::vector<std::pair<std::size_t, double>> forced_kills_;
};

}  // namespace vmcw
