#include "migration/reservation_study.h"

#include <algorithm>

namespace vmcw {

namespace {

ReservationPoint evaluate(const ReservationStudyConfig& config, double cpu,
                          double mem) {
  ReservationPoint p;
  p.host_cpu_utilization = cpu;
  p.host_mem_utilization = mem;
  p.migration = simulate_precopy_at_load(config.migration, cpu, mem);
  p.reliable = p.migration.converged &&
               p.migration.duration_s <= config.max_acceptable_duration_s;
  return p;
}

}  // namespace

std::vector<ReservationPoint> sweep_cpu_utilization(
    const ReservationStudyConfig& config, double mem_utilization) {
  std::vector<ReservationPoint> out;
  const double step = std::max(config.utilization_step, 0.005);
  for (double u = 0.0; u <= 1.0 + 1e-9; u += step)
    out.push_back(evaluate(config, std::min(u, 1.0), mem_utilization));
  return out;
}

std::vector<ReservationPoint> sweep_mem_utilization(
    const ReservationStudyConfig& config, double cpu_utilization) {
  std::vector<ReservationPoint> out;
  const double step = std::max(config.utilization_step, 0.005);
  for (double u = 0.0; u <= 1.0 + 1e-9; u += step)
    out.push_back(evaluate(config, cpu_utilization, std::min(u, 1.0)));
  return out;
}

double max_reliable_cpu_utilization(const ReservationStudyConfig& config,
                                    double mem_utilization) {
  double best = 0.0;
  for (const auto& p : sweep_cpu_utilization(config, mem_utilization))
    if (p.reliable) best = std::max(best, p.host_cpu_utilization);
  return best;
}

}  // namespace vmcw
