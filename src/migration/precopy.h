// Iterative pre-copy live-migration model.
//
// All production live-migration implementations the paper cites (Xen/Clark
// et al. NSDI'05, VMware/Nelson et al. ATC'05) share the same design: copy
// all memory while the VM runs, re-copy the pages dirtied during each round,
// and stop-and-copy when the residual dirty set is small enough or stops
// shrinking. We model that loop analytically:
//
//   round 0 copies M bytes at effective bandwidth B_eff;
//   a round of duration t leaves  min(D * t, W) dirty bytes to re-copy,
//   where D is the dirty rate and W the writable working set;
//   iteration ends when residual <= downtime_target * B_eff (success) or
//   rounds stop converging / exceed the round cap (forced stop-and-copy).
//
// The key coupling the paper leans on (Observation 4): the copy process
// itself needs CPU on the loaded *source* host. We model effective
// bandwidth as B_eff = B * min(1, headroom / cpu_need): with less CPU
// headroom than the migration daemon needs, the copy slows down, rounds
// lengthen, more pages dirty per round, and migration time diverges — which
// is why operators reserve 20-30% of every host.
#pragma once

namespace vmcw {

struct MigrationConfig {
  double vm_memory_mb = 4096;
  /// MB/s of newly dirtied pages while the copy runs. SpecWeb-class guests
  /// dirty their working set fast (Clark et al.).
  double dirty_rate_mbps = 100;
  double writable_working_set_mb = 512;  ///< cap on the re-dirtied set
  double link_bandwidth_mbps = 125;   ///< 1 GbE in MB/s
  double downtime_target_ms = 300;    ///< stop-and-copy when residual fits
  int max_rounds = 30;
  /// CPU the migration daemon needs on the source host, as a fraction of
  /// the host (Nelson et al. report ~30%).
  double migration_cpu_fraction = 0.30;
  /// CPU utilization of the source host from its workloads, [0, 1].
  double host_cpu_utilization = 0.5;
  /// Committed-memory fraction of the source host; thrashing above ~85%
  /// slows the copy further (page faults compete with the copy).
  double host_mem_utilization = 0.5;
};

struct MigrationResult {
  bool converged = false;   ///< pre-copy reached the downtime target
  int rounds = 0;
  double duration_s = 0;    ///< total migration time
  double downtime_ms = 0;   ///< stop-and-copy pause
  double data_copied_mb = 0;
  double effective_bandwidth_mbps = 0;
};

/// Run the analytic pre-copy iteration.
MigrationResult simulate_precopy(const MigrationConfig& config);

/// Convenience: migration duration as a function of source-host CPU
/// utilization, all else per `config`.
MigrationResult simulate_precopy_at_load(MigrationConfig config,
                                         double host_cpu_utilization,
                                         double host_mem_utilization);

}  // namespace vmcw
