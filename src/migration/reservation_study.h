// Reservation study: how much of a host must stay free for live migration
// to be reliable? (Section 4.3 / Observation 4.)
//
// Sweeps source-host CPU/memory utilization and reports migration duration,
// downtime and a reliability verdict at each point. "Reliable" mirrors the
// paper's operating rule: the pre-copy converges to its downtime target and
// total duration stays within a bound (prolonged migrations are what
// production operators cannot accept). The study exposes the knee the
// paper reports — stable below ~80% CPU / ~85% committed memory — from
// which the 20% reservation thumb rule follows.
#pragma once

#include <vector>

#include "migration/precopy.h"

namespace vmcw {

struct ReservationPoint {
  double host_cpu_utilization = 0;
  double host_mem_utilization = 0;
  MigrationResult migration;
  bool reliable = false;
};

struct ReservationStudyConfig {
  MigrationConfig migration;        ///< base VM / link parameters
  double max_acceptable_duration_s = 300;  ///< beyond this = "prolonged"
  double utilization_step = 0.05;
};

/// Sweep CPU utilization at fixed memory utilization.
std::vector<ReservationPoint> sweep_cpu_utilization(
    const ReservationStudyConfig& config, double mem_utilization = 0.5);

/// Sweep memory utilization at fixed CPU utilization.
std::vector<ReservationPoint> sweep_mem_utilization(
    const ReservationStudyConfig& config, double cpu_utilization = 0.5);

/// Highest CPU utilization at which migration is still reliable (the
/// utilization bound U; 1-U is the reservation the thumb rule allocates).
double max_reliable_cpu_utilization(const ReservationStudyConfig& config,
                                    double mem_utilization = 0.5);

}  // namespace vmcw
