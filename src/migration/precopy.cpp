#include "migration/precopy.h"

#include <algorithm>
#include <cmath>

namespace vmcw {

namespace {

/// Effective copy bandwidth on a loaded source host. Below the CPU the
/// migration daemon needs, bandwidth degrades proportionally to available
/// headroom; memory pressure beyond 85% committed degrades it further.
double effective_bandwidth(const MigrationConfig& c) {
  const double headroom = std::max(1.0 - c.host_cpu_utilization, 0.0);
  double cpu_factor = 1.0;
  if (c.migration_cpu_fraction > 0)
    cpu_factor = std::min(1.0, headroom / c.migration_cpu_fraction);
  double mem_factor = 1.0;
  if (c.host_mem_utilization > 0.85)
    mem_factor = std::max(0.1, 1.0 - 3.0 * (c.host_mem_utilization - 0.85));
  return std::max(c.link_bandwidth_mbps * cpu_factor * mem_factor, 0.01);
}

}  // namespace

MigrationResult simulate_precopy(const MigrationConfig& c) {
  MigrationResult r;
  r.effective_bandwidth_mbps = effective_bandwidth(c);
  const double bw = r.effective_bandwidth_mbps;
  const double downtime_budget_mb = c.downtime_target_ms / 1000.0 * bw;

  double to_copy = std::max(c.vm_memory_mb, 1.0);
  double prev_to_copy = std::numeric_limits<double>::infinity();
  for (int round = 0; round < c.max_rounds; ++round) {
    ++r.rounds;
    const double round_time = to_copy / bw;
    r.duration_s += round_time;
    r.data_copied_mb += to_copy;
    // Pages dirtied while this round was copying, capped by the writable
    // working set (pages dirtied twice only need one re-copy).
    double dirtied =
        std::min(c.dirty_rate_mbps * round_time, c.writable_working_set_mb);
    if (dirtied <= downtime_budget_mb) {
      r.converged = true;
      to_copy = dirtied;
      break;
    }
    // Divergence check: dirty set no longer shrinking => stop-and-copy now.
    if (dirtied >= prev_to_copy * 0.95 && round > 0) {
      to_copy = dirtied;
      break;
    }
    prev_to_copy = to_copy;
    to_copy = dirtied;
  }
  // Stop-and-copy: the VM pauses while the residual set transfers.
  r.downtime_ms = to_copy / bw * 1000.0;
  r.duration_s += to_copy / bw;
  r.data_copied_mb += to_copy;
  return r;
}

MigrationResult simulate_precopy_at_load(MigrationConfig config,
                                         double host_cpu_utilization,
                                         double host_mem_utilization) {
  config.host_cpu_utilization = std::clamp(host_cpu_utilization, 0.0, 1.0);
  config.host_mem_utilization = std::clamp(host_mem_utilization, 0.0, 1.0);
  return simulate_precopy(config);
}

}  // namespace vmcw
