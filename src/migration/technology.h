// Live-migration technology variants (Section 7, "Improving live migration
// efficiency" / Observation 7).
//
// The paper's closing argument: dynamic consolidation's handicap is the
// resource reservation live migration demands *on the already-loaded
// source host*. It sketches two remedies — offloading the copy work to the
// target host, and taking the copy out of the OS entirely with RDMA. This
// module models the source-side CPU need of each technology so the
// reservation study (and the Fig 13-16 sensitivity machinery) can quantify
// how much space/hardware dynamic consolidation would recover with each.
#pragma once

#include "migration/precopy.h"
#include "migration/reservation_study.h"

namespace vmcw {

enum class MigrationTechnology {
  kSourcePrecopy,     ///< classic pre-copy: source does all the work
  kTargetAssisted,    ///< target pulls pages; source only tracks dirtying
  kRdmaOffload,       ///< NIC-driven copy; near-zero source CPU
};

const char* to_string(MigrationTechnology tech) noexcept;

/// Source-host CPU fraction the migration needs under each technology.
double source_cpu_fraction(MigrationTechnology tech) noexcept;

/// Effective link bandwidth multiplier (RDMA paths bypass the kernel and
/// sustain higher throughput on the same fabric).
double bandwidth_multiplier(MigrationTechnology tech) noexcept;

/// A MigrationConfig specialized for the technology.
MigrationConfig apply_technology(MigrationConfig base,
                                 MigrationTechnology tech) noexcept;

/// The consolidation utilization bound each technology supports: the
/// highest host CPU utilization at which migration stays reliable, from
/// the pre-copy model (Observation 4 generalized).
double supported_utilization_bound(MigrationTechnology tech,
                                   const ReservationStudyConfig& study = {});

}  // namespace vmcw
