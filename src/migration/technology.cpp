#include "migration/technology.h"

namespace vmcw {

const char* to_string(MigrationTechnology tech) noexcept {
  switch (tech) {
    case MigrationTechnology::kSourcePrecopy:
      return "source pre-copy";
    case MigrationTechnology::kTargetAssisted:
      return "target-assisted copy";
    case MigrationTechnology::kRdmaOffload:
      return "RDMA offload";
  }
  return "?";
}

double source_cpu_fraction(MigrationTechnology tech) noexcept {
  switch (tech) {
    case MigrationTechnology::kSourcePrecopy:
      return 0.30;  // Nelson et al.
    case MigrationTechnology::kTargetAssisted:
      return 0.12;  // source only write-protects and logs dirty pages
    case MigrationTechnology::kRdmaOffload:
      return 0.04;  // registration + dirty tracking only
  }
  return 0.30;
}

double bandwidth_multiplier(MigrationTechnology tech) noexcept {
  switch (tech) {
    case MigrationTechnology::kSourcePrecopy:
    case MigrationTechnology::kTargetAssisted:
      return 1.0;
    case MigrationTechnology::kRdmaOffload:
      return 1.6;  // kernel-bypass saturates the fabric
  }
  return 1.0;
}

MigrationConfig apply_technology(MigrationConfig base,
                                 MigrationTechnology tech) noexcept {
  base.migration_cpu_fraction = source_cpu_fraction(tech);
  base.link_bandwidth_mbps *= bandwidth_multiplier(tech);
  return base;
}

double supported_utilization_bound(MigrationTechnology tech,
                                   const ReservationStudyConfig& study) {
  ReservationStudyConfig config = study;
  config.migration = apply_technology(config.migration, tech);
  config.utilization_step = 0.01;
  return max_reliable_cpu_utilization(config);
}

}  // namespace vmcw
