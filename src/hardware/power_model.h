// Linear server power model.
//
// The paper computes power cost per consolidation interval from the set of
// active servers and their utilization. We use the standard linear model
// P(u) = idle + (peak - idle) * u, which matches measured enterprise-server
// behavior to within a few percent (Fan et al., Verma et al. [25]) and is
// what the paper's own tooling family (pMapper/BrownMap) uses.
#pragma once

#include "hardware/server_spec.h"

#include <span>

namespace vmcw {

class PowerModel {
 public:
  PowerModel(double idle_watts, double peak_watts) noexcept;
  explicit PowerModel(const ServerSpec& spec) noexcept;

  /// Instantaneous power at CPU utilization u (clamped to [0, 1]).
  /// A powered-off server draws zero.
  double watts(double cpu_utilization, bool powered_on = true) const noexcept;

  /// Energy in watt-hours across per-interval utilizations, each interval
  /// lasting `interval_hours`. Off intervals are encoded as negative
  /// utilization values.
  double energy_wh(std::span<const double> per_interval_utilization,
                   double interval_hours) const noexcept;

  double idle_watts() const noexcept { return idle_; }
  double peak_watts() const noexcept { return peak_; }

 private:
  double idle_;
  double peak_;
};

}  // namespace vmcw
