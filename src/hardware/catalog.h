// Server catalog: the consolidation target blade and the legacy source-
// server models that populate the synthetic data centers.
//
// The paper's source fleet is physical Windows servers of mixed vintage;
// the consolidation target is the HS23 Elite blade (2 sockets, 128 GB,
// RPE2/GB = 160). Source models below are representative 2-socket rack
// servers with RPE2 ratings in the few-thousands and 4-64 GB of memory —
// the regime in which per-server CPU utilization of 1-12% (Table 2) and
// memory-constrained aggregates (Fig 6) both arise.
#pragma once

#include "hardware/server_spec.h"

#include <span>

#include "util/rng.h"

namespace vmcw {

/// The IBM HS23 Elite consolidation target: RPE2 20480, 128 GB
/// (ratio exactly 160, as stated in Fig 6's caption).
ServerSpec hs23_elite_blade();

/// The previous blade generation (HS22-class): roughly 60% of the compute
/// and 75% of the memory at worse energy proportionality. Engagements
/// often reuse a rack of these instead of buying new HS23s for everything.
ServerSpec hs22_blade();

/// Legacy source-server models, ordered small to large.
std::span<const ServerSpec> source_server_models();

/// A weighted mix over source models; weights need not be normalized.
struct ServerMix {
  /// weight[i] corresponds to source_server_models()[i]. Sizes must match.
  std::span<const double> weights;

  /// Sample one model according to the weights.
  const ServerSpec& sample(Rng& rng) const;
};

/// Default mix skewed toward small/medium boxes (typical of the
/// under-utilized estates the paper consolidates).
ServerMix default_server_mix();

/// Memory-rich mix (larger installed memory per RPE2) for data centers
/// like the Airlines workload whose aggregate is strongly memory-bound.
ServerMix memory_heavy_server_mix();

}  // namespace vmcw
