// Physical-server models.
//
// The paper measures CPU demand in IDEAS RPE2 units (a proprietary relative
// server-performance benchmark) and memory in MB. We keep RPE2 as the
// abstract compute unit: a server's ServerSpec carries its RPE2 rating and
// installed memory, and all demand/capacity arithmetic happens in
// (RPE2, MB) pairs. The reference consolidation target is the IBM HS23
// "Elite" blade the paper cites: 2 sockets, 128 GB, RPE2/GB ratio of 160.
#pragma once

#include <string>

namespace vmcw {

struct ServerSpec {
  std::string model;      ///< Human-readable model name.
  double cpu_rpe2 = 0;    ///< Compute capacity in RPE2 units.
  double memory_mb = 0;   ///< Installed memory in MB.
  double idle_watts = 0;  ///< Power draw at 0% utilization.
  double peak_watts = 0;  ///< Power draw at 100% utilization.
  double rack_units = 1;  ///< Rack space occupied (1U equivalents).
  double hardware_cost = 0;  ///< Acquisition cost (arbitrary currency units).

  /// RPE2 per GB of installed memory — the paper's "CPU to memory ratio".
  /// The HS23 Elite reference value is 160.
  double rpe2_per_gb() const noexcept {
    return memory_mb > 0 ? cpu_rpe2 / (memory_mb / 1024.0) : 0.0;
  }

  bool operator==(const ServerSpec&) const = default;
};

/// 2-D resource vector (the only resources a VM owns in the paper's model —
/// storage is SAN-attached, network/disk enter as host constraints only).
struct ResourceVector {
  double cpu_rpe2 = 0;
  double memory_mb = 0;

  ResourceVector& operator+=(const ResourceVector& o) noexcept {
    cpu_rpe2 += o.cpu_rpe2;
    memory_mb += o.memory_mb;
    return *this;
  }
  ResourceVector& operator-=(const ResourceVector& o) noexcept {
    cpu_rpe2 -= o.cpu_rpe2;
    memory_mb -= o.memory_mb;
    return *this;
  }
  friend ResourceVector operator+(ResourceVector a,
                                  const ResourceVector& b) noexcept {
    return a += b;
  }
  friend ResourceVector operator-(ResourceVector a,
                                  const ResourceVector& b) noexcept {
    return a -= b;
  }
  friend ResourceVector operator*(ResourceVector a, double k) noexcept {
    a.cpu_rpe2 *= k;
    a.memory_mb *= k;
    return a;
  }

  /// True when both dimensions fit inside `capacity` (<=, with a tiny
  /// epsilon to absorb floating-point accumulation).
  bool fits_within(const ResourceVector& capacity) const noexcept;

  bool operator==(const ResourceVector&) const = default;
};

}  // namespace vmcw
