// Facilities / hardware / power cost model.
//
// The paper reports two infrastructure cost figures (Fig 7), both
// normalized to the vanilla Semi-Static plan:
//  - "space and hardware" cost: driven by the number of provisioned
//    servers, their rack occupancy, and raised-floor space;
//  - "power" cost: energy over the experiment window.
// Absolute prices in the engagements are confidential, so the model here is
// parametric with defensible defaults; every figure normalizes them away.
#pragma once

#include "hardware/power_model.h"
#include "hardware/server_spec.h"

#include <cstddef>

namespace vmcw {

struct CostParameters {
  /// Raised-floor + rack cost per rack-unit per month.
  double space_per_rack_unit_month = 85.0;
  /// Hardware amortization horizon in months (cost / horizon = monthly).
  double amortization_months = 36.0;
  /// Electricity price per kWh, including PUE overhead folded in.
  double usd_per_kwh = 0.16;
  /// Datacenter PUE multiplier applied to IT energy.
  double pue = 1.7;
};

class CostModel {
 public:
  explicit CostModel(CostParameters params = {}) noexcept;

  /// Monthly space + amortized hardware cost of one provisioned server.
  double server_month_cost(const ServerSpec& spec) const noexcept;

  /// Space + hardware cost of `server_count` identical provisioned servers
  /// over `days` days.
  double space_hardware_cost(const ServerSpec& spec, std::size_t server_count,
                             double days) const noexcept;

  /// Cost of `energy_wh` watt-hours of IT energy (PUE applied).
  double power_cost(double energy_wh) const noexcept;

  const CostParameters& parameters() const noexcept { return params_; }

 private:
  CostParameters params_;
};

}  // namespace vmcw
