#include "hardware/power_model.h"

#include <algorithm>

namespace vmcw {

PowerModel::PowerModel(double idle_watts, double peak_watts) noexcept
    : idle_(std::max(idle_watts, 0.0)), peak_(std::max(peak_watts, idle_)) {}

PowerModel::PowerModel(const ServerSpec& spec) noexcept
    : PowerModel(spec.idle_watts, spec.peak_watts) {}

double PowerModel::watts(double cpu_utilization, bool powered_on) const noexcept {
  if (!powered_on) return 0.0;
  const double u = std::clamp(cpu_utilization, 0.0, 1.0);
  return idle_ + (peak_ - idle_) * u;
}

double PowerModel::energy_wh(std::span<const double> per_interval_utilization,
                             double interval_hours) const noexcept {
  double wh = 0.0;
  for (double u : per_interval_utilization) {
    if (u < 0.0) continue;  // powered off
    wh += watts(u) * interval_hours;
  }
  return wh;
}

}  // namespace vmcw
