#include "hardware/cost_model.h"

namespace vmcw {

CostModel::CostModel(CostParameters params) noexcept : params_(params) {}

double CostModel::server_month_cost(const ServerSpec& spec) const noexcept {
  const double space = params_.space_per_rack_unit_month * spec.rack_units;
  const double hardware =
      params_.amortization_months > 0
          ? spec.hardware_cost / params_.amortization_months
          : 0.0;
  return space + hardware;
}

double CostModel::space_hardware_cost(const ServerSpec& spec,
                                      std::size_t server_count,
                                      double days) const noexcept {
  const double months = days / 30.0;
  return server_month_cost(spec) * static_cast<double>(server_count) * months;
}

double CostModel::power_cost(double energy_wh) const noexcept {
  return energy_wh / 1000.0 * params_.pue * params_.usd_per_kwh;
}

}  // namespace vmcw
