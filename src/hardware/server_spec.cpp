#include "hardware/server_spec.h"

namespace vmcw {

namespace {
// Relative slack for capacity checks: demand sums are accumulated in
// floating point, so exact <= comparisons would spuriously reject
// placements that are mathematically tight.
constexpr double kEpsilon = 1e-9;
}  // namespace

bool ResourceVector::fits_within(const ResourceVector& capacity) const noexcept {
  return cpu_rpe2 <= capacity.cpu_rpe2 * (1.0 + kEpsilon) + kEpsilon &&
         memory_mb <= capacity.memory_mb * (1.0 + kEpsilon) + kEpsilon;
}

}  // namespace vmcw
