#include "hardware/catalog.h"

#include <array>
#include <cassert>

namespace vmcw {

ServerSpec hs23_elite_blade() {
  return ServerSpec{
      .model = "IBM HS23 Elite",
      .cpu_rpe2 = 20480.0,
      .memory_mb = 128.0 * 1024.0,  // => rpe2_per_gb() == 160
      .idle_watts = 130.0,
      .peak_watts = 345.0,
      .rack_units = 0.64,  // 14 blades per 9U BladeCenter chassis
      .hardware_cost = 9500.0,
  };
}

ServerSpec hs22_blade() {
  return ServerSpec{
      .model = "IBM HS22",
      .cpu_rpe2 = 12300.0,
      .memory_mb = 96.0 * 1024.0,
      .idle_watts = 145.0,
      .peak_watts = 330.0,
      .rack_units = 0.64,
      .hardware_cost = 0.0,  // already owned when reused in an engagement
  };
}

namespace {

const std::array<ServerSpec, 6> kSourceModels = {{
    {.model = "x3250-1s-4g",
     .cpu_rpe2 = 1400.0,
     .memory_mb = 4.0 * 1024.0,
     .idle_watts = 90.0,
     .peak_watts = 180.0,
     .rack_units = 1.0,
     .hardware_cost = 1800.0},
    {.model = "x3550e-2s-4g",  // CPU-dense web node: quad-cores, lean memory
     .cpu_rpe2 = 3200.0,
     .memory_mb = 4.0 * 1024.0,
     .idle_watts = 110.0,
     .peak_watts = 230.0,
     .rack_units = 1.0,
     .hardware_cost = 2900.0},
    {.model = "x3550-2s-8g",
     .cpu_rpe2 = 2800.0,
     .memory_mb = 8.0 * 1024.0,
     .idle_watts = 120.0,
     .peak_watts = 240.0,
     .rack_units = 1.0,
     .hardware_cost = 3200.0},
    {.model = "x3650-2s-16g",
     .cpu_rpe2 = 4200.0,
     .memory_mb = 16.0 * 1024.0,
     .idle_watts = 150.0,
     .peak_watts = 310.0,
     .rack_units = 2.0,
     .hardware_cost = 5200.0},
    {.model = "x3650-2s-32g",
     .cpu_rpe2 = 5600.0,
     .memory_mb = 32.0 * 1024.0,
     .idle_watts = 165.0,
     .peak_watts = 340.0,
     .rack_units = 2.0,
     .hardware_cost = 7400.0},
    {.model = "x3850-4s-64g",
     .cpu_rpe2 = 9600.0,
     .memory_mb = 64.0 * 1024.0,
     .idle_watts = 260.0,
     .peak_watts = 620.0,
     .rack_units = 4.0,
     .hardware_cost = 14800.0},
}};

constexpr std::array<double, 6> kDefaultWeights = {0.20, 0.15, 0.30, 0.20,
                                                   0.10, 0.05};
constexpr std::array<double, 6> kMemoryHeavyWeights = {0.05, 0.02, 0.18, 0.35,
                                                       0.30, 0.10};

}  // namespace

std::span<const ServerSpec> source_server_models() { return kSourceModels; }

const ServerSpec& ServerMix::sample(Rng& rng) const {
  const auto models = source_server_models();
  assert(weights.size() == models.size());
  double total = 0.0;
  for (double w : weights) total += w;
  double pick = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return models[i];
  }
  return models.back();
}

ServerMix default_server_mix() { return ServerMix{kDefaultWeights}; }

ServerMix memory_heavy_server_mix() { return ServerMix{kMemoryHeavyWeights}; }

}  // namespace vmcw
