// Collector client: the producing end of the ingestion protocol.
//
// A CollectorClient delivers one stream of frames to an IngestServer with
// at-least-once transport and exactly-once WAL semantics: every frame is
// held until the server's cumulative Ack covers it, transient rejects
// (shedding, out-of-order) rewind to the first unacked message and back
// off, and a broken connection — a crashed daemon, an injected disconnect,
// a quarantine close — reconnects with capped exponential backoff,
// re-Hellos, and resends from wherever the server's Ack says the durable
// stream ends. Duplicate resends are safe by design: the server re-acks
// anything at or below its cumulative ack without re-appending.
//
// Fault injection plugs in through TransportFaults, a per-message hook
// surface the chaos layer adapts IoFaultPlan onto (service/io_fault_hooks):
// the client itself corrupts, splits, or drops its own writes on the
// plan's schedule, which is how CI drives a real socket through disconnect
// and corruption churn deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace vmcw::service {

/// Per-message transport fault hooks (default: clean pipes). `message` is
/// the client's 0-based count of wire writes — retransmissions advance it,
/// so a resend can fail differently from the original attempt.
class TransportFaults {
 public:
  virtual ~TransportFaults() = default;

  /// Drop the connection right after writing this message?
  virtual bool disconnect_after(std::uint64_t message) {
    (void)message;
    return false;
  }

  /// Flip one byte of this message's encoding in flight?
  virtual bool corrupt_message(std::uint64_t message) {
    (void)message;
    return false;
  }

  /// Which byte corrupt_message() flips (size is the encoded length).
  virtual std::size_t corrupt_byte(std::uint64_t message, std::size_t size) {
    (void)message;
    (void)size;
    return 0;
  }

  /// Split this message into two short writes?
  virtual bool split_write(std::uint64_t message) {
    (void)message;
    return false;
  }

  /// Where a split write breaks a size-byte message (in [1, size-1]).
  virtual std::size_t split_point(std::uint64_t message, std::size_t size) {
    (void)message;
    return size / 2;
  }
};

/// Capped exponential backoff: min(cap, base * 2^attempt) milliseconds,
/// saturating instead of overflowing. Pure, so the retry schedule is
/// testable without a clock.
std::uint64_t reconnect_backoff_ms(std::uint64_t attempt,
                                   std::uint64_t base_ms,
                                   std::uint64_t cap_ms) noexcept;

struct CollectorOptions {
  /// Unix-domain connect path ("" = use TCP instead).
  std::string unix_path;
  /// Loopback TCP connect port (used when unix_path is empty).
  int tcp_port = -1;

  std::string peer = "collector";  ///< session identity (Hello.peer)
  std::uint64_t fleet_hash = 0;    ///< Hello binding (0 = unchecked)

  /// Max unacked messages in flight before the client waits for Acks.
  std::size_t window = 32;

  std::uint64_t backoff_base_ms = 2;
  std::uint64_t backoff_cap_ms = 200;
  /// No Ack/Reject for this long with messages in flight: the connection
  /// is presumed dead and the client reconnects.
  int response_timeout_ms = 5000;
  /// Consecutive failures (connect errors, dead connections, transient
  /// rejects) before run() gives up. Any progress resets the count.
  std::size_t max_attempts = 200;

  /// While disconnected or backing off, merge superseded telemetry deltas
  /// in the not-yet-sent backlog: a VM keeps only its newest queued sample
  /// (newer deltas supersede older ones), so a reconnect flood does not
  /// replay stale state. Only frames past the send high-water mark are
  /// touched — anything ever written to a socket resends byte-identically,
  /// which is what the server's crash-recovery duplicate filter keys on.
  bool coalesce_telemetry = false;
};

struct CollectorStats {
  std::size_t messages_sent = 0;  ///< wire writes, retransmits included
  std::size_t retransmits = 0;
  std::size_t reconnects = 0;
  std::size_t transient_rejects = 0;  ///< out-of-order rejections seen
  std::size_t shed_backoffs = 0;      ///< shedding rejections seen
  std::size_t faults_injected = 0;    ///< corrupt + split + disconnect
  /// Times a (re)connect Ack named a durable mark *below* what we had
  /// already seen acked — a daemon restarted from a snapshot whose marks
  /// trail our history. The client rewinds and resends; the server
  /// re-acks/dedups, so the stream still lands exactly once.
  std::size_t server_rewinds = 0;
  std::size_t samples_coalesced = 0;  ///< telemetry samples merged away
};

class CollectorClient {
 public:
  explicit CollectorClient(CollectorOptions options,
                           TransportFaults* faults = nullptr);
  ~CollectorClient();

  CollectorClient(const CollectorClient&) = delete;
  CollectorClient& operator=(const CollectorClient&) = delete;

  /// Deliver every frame durably: blocks until the server's cumulative
  /// Ack covers the whole stream, reconnecting and resending as needed.
  /// Throws std::runtime_error on a fatal reject (kBadHello,
  /// kUnexpectedFrame) or when max_attempts consecutive failures exhaust
  /// the retry budget.
  CollectorStats run(const std::vector<Frame>& frames);

 private:
  struct Wire;  // socket + fault plumbing (collector.cpp)

  CollectorOptions options_;
  TransportFaults* faults_;
  int fd_ = -1;
};

/// Split one frame stream across `collectors` clients so that per-entity
/// order is preserved no matter how socket scheduling interleaves them:
/// Heartbeat/Flush ride with collector 0, telemetry follows its agent
/// (agent % collectors), arrivals/departures follow the VM's agent
/// ((vm % agents) % collectors — the churn generator's agent assignment).
/// Input Hello/Shutdown frames are dropped; each partition ends with its
/// own Shutdown (the server counts one per collector), and sessions carry
/// their own Hellos. `agents` is the churn stream's agent count (>= 1).
std::vector<std::vector<Frame>> partition_stream(
    const std::vector<Frame>& frames, std::size_t collectors,
    std::size_t agents);

}  // namespace vmcw::service
