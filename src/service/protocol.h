// Typed wire protocol of the online consolidation daemon.
//
// Every byte that crosses the daemon's boundary — telemetry in, decisions
// out, and both durable logs — is one *frame*: a kind tag, a length, an
// FNV-1a 64 checksum, and a typed payload serialized through runtime/wire
// (little-endian integers, doubles as IEEE-754 bit patterns). A frame
// either decodes to exactly its typed struct or throws; there is no
// partially-understood input. Because encoding is a pure function of the
// struct, a decoded-then-re-encoded frame is byte-identical — the property
// the WAL replay and resume paths (service/telemetry_log, service/daemon)
// build their determinism guarantees on.
//
// Layout of one frame on the wire / on disk:
//
//   kind     u8   FrameKind (1..10); anything else is a protocol error
//   length   u64  payload byte count
//   checksum u64  FNV-1a 64 over the payload bytes
//   payload  ...  typed fields, see encode_* in protocol.cpp
//
// Versioning: Hello carries kProtocolVersion; a peer (or a recorded WAL)
// speaking a different version is rejected at the session/open boundary,
// not per frame.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace vmcw::service {

inline constexpr std::uint32_t kProtocolVersion = 1;

enum class FrameKind : std::uint8_t {
  kHello = 1,      ///< session start: version + fleet-config hash
  kHeartbeat = 2,  ///< liveness marker, no placement effect
  kFlush = 3,      ///< tick boundary: the controller decides now
  kShutdown = 4,   ///< orderly end of the stream
  kHostTelemetryDelta = 5,
  kVmArrival = 6,
  kVmDeparture = 7,
  kDecisionBatch = 8,
  // Ingestion session responses (server -> collector, never WAL'd):
  kAck = 9,     ///< everything up to Ack::seq is durable in the WAL
  kReject = 10, ///< typed refusal of one message (see RejectCode)
};

const char* to_string(FrameKind kind) noexcept;

struct HelloFrame {
  std::uint32_t version = kProtocolVersion;
  /// fleet_config_hash() of the producer's ControllerConfig; binds a
  /// stream to one exact fleet shape the way the sweep journal binds to
  /// one grid.
  std::uint64_t fleet_hash = 0;
  std::string peer;  ///< producer identity, for logs only

  bool operator==(const HelloFrame&) const = default;
};

struct HeartbeatFrame {
  std::uint64_t tick = 0;

  bool operator==(const HeartbeatFrame&) const = default;
};

struct FlushFrame {
  std::uint64_t tick = 0;

  bool operator==(const FlushFrame&) const = default;
};

struct ShutdownFrame {
  std::uint64_t tick = 0;

  bool operator==(const ShutdownFrame&) const = default;
};

/// One VM's demand observation inside a telemetry delta.
struct VmSample {
  std::uint64_t vm = 0;
  double cpu_rpe2 = 0.0;
  double memory_mb = 0.0;

  bool operator==(const VmSample&) const = default;
};

/// A collection agent's per-tick report: fresh demand samples for the VMs
/// it watches. `agent` identifies the collector, not a placement host —
/// the controller tracks staleness per VM and degrades whichever hosts
/// the stale VMs currently occupy.
struct HostTelemetryDeltaFrame {
  std::uint64_t tick = 0;
  std::uint64_t agent = 0;
  std::vector<VmSample> samples;

  bool operator==(const HostTelemetryDeltaFrame&) const = default;
};

struct VmArrivalFrame {
  std::uint64_t tick = 0;
  std::uint64_t vm = 0;
  std::string app;  ///< replica-group label; empty = nothing to spread
  /// Declared initial demand; seeds the demand envelope until telemetry
  /// takes over.
  double cpu_rpe2 = 0.0;
  double memory_mb = 0.0;

  bool operator==(const VmArrivalFrame&) const = default;
};

struct VmDepartureFrame {
  std::uint64_t tick = 0;
  std::uint64_t vm = 0;

  bool operator==(const VmDepartureFrame&) const = default;
};

enum class DecisionAction : std::uint8_t {
  kHold = 0,
  kAdmit = 1,
  kMigrate = 2,
};

enum class DecisionReason : std::uint8_t {
  kAdmitted = 0,          ///< admit: single-VM admission found a host
  kContention = 1,        ///< migrate: source host crossed its bound
  kUnderutilization = 2,  ///< migrate: source host drained entirely
  kNoCapacity = 3,        ///< hold: nowhere feasible to put/move the VM
  kStaleTelemetry = 4,    ///< hold: the VM's demand is stale; host degraded
};

const char* to_string(DecisionAction action) noexcept;
const char* to_string(DecisionReason reason) noexcept;

struct Decision {
  std::uint64_t vm = 0;
  DecisionAction action = DecisionAction::kHold;
  DecisionReason reason = DecisionReason::kNoCapacity;
  std::int32_t from = -1;  ///< current host (-1: not yet placed)
  std::int32_t to = -1;    ///< target host (-1: none)

  bool operator==(const Decision&) const = default;
};

/// The controller's output for one tick, in decision order: admissions
/// (arrival order), stale holds, repair migrations, capacity holds, drain
/// migrations. The order is part of the determinism contract — the
/// decision log is compared byte-for-byte across runs.
struct DecisionBatchFrame {
  std::uint64_t tick = 0;
  /// True when any resident VM's telemetry was stale this tick: its hosts
  /// were frozen and only holds were emitted for them.
  bool degraded = false;
  std::vector<Decision> decisions;

  bool operator==(const DecisionBatchFrame&) const = default;
};

/// Why the ingestion server refused a message (service/ingest). Typed so
/// a collector reacts by *kind* — resend-after-backoff for transient
/// codes, reconnect for framing loss, give up for session errors — never
/// by parsing a human string.
enum class RejectCode : std::uint8_t {
  kBadHello = 1,        ///< version/fleet-hash mismatch; session refused
  kNoHello = 2,         ///< data before the session's Hello
  kCorruptFrame = 3,    ///< checksum/decode failure; framing lost, conn drops
  kOversizedFrame = 4,  ///< length field exceeds the server's frame cap
  kOutOfOrder = 5,      ///< sequence gap; resend from the last Ack
  kShedding = 6,        ///< WAL stalled: heartbeat-only mode, retry later
  kUnexpectedFrame = 7, ///< a kind a collector must never send (decisions)
};

const char* to_string(RejectCode code) noexcept;

/// Is a reject transient (resend the same messages after backoff) as
/// opposed to a framing or session error (reconnect / give up)?
bool reject_is_transient(RejectCode code) noexcept;

/// Cumulative durability acknowledgement: every ingest message with
/// seq <= `seq` has been appended and fsync'd into the telemetry WAL. An
/// Ack is the *only* signal a collector may drop a buffered frame on.
struct AckFrame {
  std::uint64_t seq = 0;

  bool operator==(const AckFrame&) const = default;
};

/// Typed refusal of ingest message `seq` (0 when the message could not
/// even be framed). `detail` is for logs only; collectors dispatch on
/// `code`.
struct RejectFrame {
  std::uint64_t seq = 0;
  RejectCode code = RejectCode::kCorruptFrame;
  std::string detail;

  bool operator==(const RejectFrame&) const = default;
};

using Frame =
    std::variant<HelloFrame, HeartbeatFrame, FlushFrame, ShutdownFrame,
                 HostTelemetryDeltaFrame, VmArrivalFrame, VmDepartureFrame,
                 DecisionBatchFrame, AckFrame, RejectFrame>;

FrameKind frame_kind(const Frame& frame) noexcept;

/// Bytes of the frame header preceding every payload.
inline constexpr std::size_t kFrameHeaderSize = 1 + 8 + 8;

/// Serialize a frame (header + payload). Pure: equal frames encode to
/// equal bytes.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

struct DecodedFrame {
  Frame frame;
  std::size_t consumed = 0;  ///< total bytes, header included
};

/// Decode one frame from the front of [data, data+size). Throws
/// std::runtime_error on a short buffer, unknown kind, checksum mismatch,
/// or a payload with trailing/missing bytes — the caller treats any throw
/// as a torn or corrupt frame.
DecodedFrame decode_frame(const std::uint8_t* data, std::size_t size);

/// Decode a whole buffer of concatenated frames; throws on the first bad
/// frame (use decode_frame directly to salvage an intact prefix).
std::vector<Frame> decode_frames(const std::vector<std::uint8_t>& bytes);

}  // namespace vmcw::service
