// Controller checkpoints: bounded-time crash recovery for the daemon.
//
// A snapshot captures everything the daemon needs to resume *without*
// replaying the WAL from frame zero: the incremental controller's full
// resident state (IncrementalController::save_state), how many WAL frames
// that state covers, how many decision batches had been emitted at that
// point, and the ingest writer's cumulative-Ack marks per peer. Recovery
// becomes: load the newest valid snapshot, replay only the WAL suffix past
// frames_covered, and skip re-appending the decision batches already
// durable — byte-identical to a cold full-WAL replay (DESIGN.md §9).
//
// File format (little-endian, runtime/wire):
//
//   magic     "VMCWSNP1" (8 bytes)
//   version   u32
//   fleet     u64  fleet_config_hash of the producing controller
//   length    u64  payload byte count
//   checksum  u64  FNV-1a 64 over the payload
//   payload:
//     frames_covered    u64
//     batches_emitted   u64
//     shutdowns_covered u64
//     state             u64 length + IncrementalController::save_state bytes
//     ack_marks         u64 count + (str peer, u64 last_acked) each
//
// Writes are atomic: the bytes go to `path + ".tmp"`, are fdatasync'd,
// and rename(2) publishes them — a crash mid-write leaves either the old
// snapshot or the new one, never a torn file. A snapshot that fails any
// validation (magic, version, checksum, fleet hash) is reported as such
// and the caller falls back to a full WAL replay; a snapshot is an
// optimization, never an additional source of truth.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vmcw::service {

struct SnapshotData {
  /// WAL frames (global ordinals [0, frames_covered)) whose effects are
  /// baked into controller_state; recovery replays only the suffix.
  std::uint64_t frames_covered = 0;
  /// Decision batches emitted since genesis when the snapshot was taken.
  std::uint64_t batches_emitted = 0;
  /// Shutdown frames among the covered prefix. A restarted daemon must
  /// count these toward its expected-shutdowns exit condition: the
  /// collectors that sent them got their Acks and will never resend, so
  /// without this a post-completion crash would wait forever.
  std::uint64_t shutdowns_covered = 0;
  /// IncrementalController::save_state bytes.
  std::vector<std::uint8_t> controller_state;
  /// Ingest cumulative-Ack high-water marks (peer -> last durable seq).
  /// At snapshot time these cover every durable WAL frame, so a collector
  /// resending pre-snapshot history is re-acked off the marks while
  /// post-snapshot resends go through the dedup filter seeded from the
  /// replayed suffix — the two mechanisms partition exactly.
  std::map<std::string, std::uint64_t> ack_marks;
};

/// Atomically write `data` to `path` (tmp + fdatasync + rename). Returns
/// false on any I/O failure; the previous snapshot, if any, survives.
bool write_snapshot(const std::string& path, std::uint64_t fleet_hash,
                    const SnapshotData& data);

enum class SnapshotStatus {
  kOk,
  kMissing,     ///< no file at path
  kCorrupt,     ///< bad magic/version/length/checksum or malformed payload
  kStaleFleet,  ///< valid file, but for a different fleet configuration
};

const char* to_string(SnapshotStatus status) noexcept;

/// Read and validate the snapshot at `path` against `fleet_hash`. `out`
/// is filled only on kOk.
SnapshotStatus read_snapshot(const std::string& path, std::uint64_t fleet_hash,
                             SnapshotData& out);

}  // namespace vmcw::service
