#include "service/churn.h"

#include <cmath>
#include <string>

#include "util/rng.h"

namespace vmcw::service {

namespace {

/// One live VM of the synthetic fleet. Its Rng is a keyed fork of the
/// root, consumed in a fixed order (spawn, then once per tick), so the
/// stream survives arrivals and departures around it unchanged.
struct LiveVm {
  std::uint64_t id = 0;
  std::uint64_t agent = 0;
  Rng rng;
  ResourceVector base;
  double phase_hours = 0.0;
};

constexpr double kTwoPi = 6.283185307179586;

}  // namespace

std::vector<Frame> generate_churn(const ChurnOptions& options,
                                  const ControllerConfig& config) {
  Rng root(options.seed);  // vmcw-lint: allow(rng-construction) root stream of the churn WAL generator
  const std::size_t agents = std::max<std::size_t>(1, options.agents);
  const ResourceVector host_cap = config.pool.capacity_of(0, 1.0);

  std::vector<Frame> frames;
  frames.push_back(
      HelloFrame{kProtocolVersion, fleet_config_hash(config), "churn"});

  std::vector<LiveVm> live;
  std::uint64_t next_id = 1;
  Rng arrivals_rng = root.fork("arrivals");
  Rng blackout_rng = root.fork("blackouts");

  auto spawn = [&](std::uint64_t tick) {
    LiveVm vm;
    vm.id = next_id++;
    vm.agent = vm.id % agents;
    vm.rng = root.fork("vm-" + std::to_string(vm.id));
    const double cpu_frac = options.mean_host_fraction * vm.rng.uniform(0.5, 1.5);
    const double mem_frac = options.mean_host_fraction * vm.rng.uniform(0.5, 1.5);
    vm.base = ResourceVector{host_cap.cpu_rpe2 * cpu_frac,
                             host_cap.memory_mb * mem_frac};
    vm.phase_hours = vm.rng.uniform(0.0, 24.0);
    std::string app;
    if (options.apps > 0)
      app = "app-" + std::to_string(vm.rng.uniform_int(
                         0, static_cast<std::int64_t>(options.apps) - 1));
    frames.push_back(
        VmArrivalFrame{tick, vm.id, app, vm.base.cpu_rpe2, vm.base.memory_mb});
    live.push_back(std::move(vm));
  };

  for (std::uint64_t tick = 1; tick <= options.ticks; ++tick) {
    frames.push_back(HeartbeatFrame{tick});

    // Arrivals: the whole initial population at tick 1, a trickle after.
    std::size_t arriving = options.initial_vms;
    if (tick > 1) {
      arriving = static_cast<std::size_t>(options.arrivals_per_tick);
      const double frac = options.arrivals_per_tick - static_cast<double>(arriving);
      if (arrivals_rng.bernoulli(frac)) ++arriving;
    }
    for (std::size_t i = 0; i < arriving; ++i) spawn(tick);

    // Departures (never on the arrival tick of the initial population).
    if (tick > 1) {
      std::vector<LiveVm> survivors;
      survivors.reserve(live.size());
      for (LiveVm& vm : live) {
        if (vm.rng.bernoulli(options.departure_prob))
          frames.push_back(VmDepartureFrame{tick, vm.id});
        else
          survivors.push_back(std::move(vm));
      }
      live = std::move(survivors);
    }

    // Demand: diurnal swing around the base plus per-tick noise, sampled
    // for every live VM in arrival order (fixed Rng consumption), then
    // grouped into per-agent delta frames.
    std::vector<HostTelemetryDeltaFrame> deltas(agents);
    for (std::size_t a = 0; a < agents; ++a) {
      deltas[a].tick = tick;
      deltas[a].agent = a;
    }
    for (LiveVm& vm : live) {
      const double diurnal =
          0.75 + 0.25 * std::sin((static_cast<double>(tick) + vm.phase_hours) *
                                 kTwoPi / 24.0);
      const double noise = vm.rng.uniform(0.85, 1.15);
      deltas[vm.agent].samples.push_back(
          VmSample{vm.id, vm.base.cpu_rpe2 * diurnal * noise,
                   vm.base.memory_mb * (0.9 + 0.1 * diurnal * noise)});
    }
    for (std::size_t a = 0; a < agents; ++a) {
      const bool blackout = blackout_rng.bernoulli(options.blackout_prob);
      if (blackout || deltas[a].samples.empty()) continue;
      frames.push_back(std::move(deltas[a]));
    }

    frames.push_back(FlushFrame{tick});
  }

  frames.push_back(ShutdownFrame{options.ticks + 1});
  return frames;
}

}  // namespace vmcw::service
