#include "service/ingest.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "runtime/telemetry.h"
#include "runtime/wire.h"

namespace vmcw::service {

namespace {

/// One enveloped message needs the seq word plus the frame header before
/// its total length is known.
constexpr std::size_t kEnvelopeHeader = 8 + kFrameHeaderSize;

/// Poll granularity: long enough to sleep, short enough that a stop
/// request or a missed wake is picked up promptly.
constexpr int kPollMillis = 50;

int make_listener_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("ingest: unix socket path too long: " + path);
  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("ingest: cannot create unix socket");
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("ingest: cannot bind unix socket " + path);
  }
  return fd;
}

int make_listener_tcp(int port, int& bound_port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("ingest: cannot create tcp socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never a public interface
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("ingest: cannot bind tcp port " +
                             std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port = static_cast<int>(ntohs(bound.sin_port));
  return fd;
}

bool is_data_kind(FrameKind kind) noexcept {
  return kind == FrameKind::kHostTelemetryDelta ||
         kind == FrameKind::kVmArrival || kind == FrameKind::kVmDeparture;
}

bool is_control_kind(FrameKind kind) noexcept {
  return kind == FrameKind::kHeartbeat || kind == FrameKind::kFlush ||
         kind == FrameKind::kShutdown;
}

}  // namespace

IngestServer::IngestServer(Daemon& daemon, IngestOptions options)
    : daemon_(daemon),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {}

IngestServer::~IngestServer() {
  stop();
  wait();
  for (const int fd : {unix_fd_, tcp_fd_, wake_rd_, wake_wr_})
    if (fd >= 0) ::close(fd);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void IngestServer::start(
    const std::vector<Frame>& recovered_frames,
    const std::map<std::string, std::uint64_t>& recovered_marks,
    std::uint64_t recovered_shutdowns) {
  if (started_) throw std::logic_error("ingest: start() called twice");
  if (options_.unix_path.empty() && options_.tcp_port < 0)
    throw std::runtime_error("ingest: no listener configured");

  if (!options_.unix_path.empty())
    unix_fd_ = make_listener_unix(options_.unix_path);
  if (options_.tcp_port >= 0)
    tcp_fd_ = make_listener_tcp(options_.tcp_port, bound_tcp_port_);

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0)
    throw std::runtime_error("ingest: cannot create wake pipe");
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];

  // Seed the duplicate filter: a frame already durable from before a
  // crash is identified by its full encoding (pure, so equal frames hash
  // equal). A multiset, because a stream may legitimately repeat an
  // encoding and each durable copy licenses exactly one drop.
  for (const Frame& frame : recovered_frames) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    ++dedup_[wire::fnv1a64(bytes.data(), bytes.size())];
  }
  // Snapshot-recovered ack marks: frames at or below a peer's mark were
  // durable before the newest checkpoint (their WAL segments may already
  // be reclaimed), so a resend of them is answered off the mark by the
  // seq <= last_acked path — the dedup filter only needs the replayed
  // suffix seeded above.
  last_acked_ = recovered_marks;
  // Every snapshot captures the marks as of the batch boundary it is
  // written at (writer thread, after the marks advanced), which is what
  // keeps mark-based re-acks and dedup-based drops exactly partitioned.
  daemon_.set_ack_marks_provider([this] { return last_acked_; });

  // Shutdown frames already durable before the restart count toward the
  // exit condition: their collectors got the Ack and exited. If the whole
  // quota was met before the crash, close the queue up front — the writer
  // drains nothing and the serve run ends immediately (a supervised daemon
  // killed after ingest completed restarts, recovers, and exits 0 instead
  // of waiting forever on resends that cannot come).
  shutdowns_seen_ = static_cast<std::size_t>(recovered_shutdowns);
  {
    MutexLock lk(stats_mutex_);
    stats_.shutdowns_seen = shutdowns_seen_;
  }
  if (options_.expected_shutdowns > 0 &&
      shutdowns_seen_ >= options_.expected_shutdowns)
    queue_.close();

  started_ = true;
  writer_thread_ = std::thread([this] { writer_loop(); });
  poll_thread_ = std::thread([this] { poll_loop(); });
}

void IngestServer::wait() {
  if (poll_thread_.joinable()) poll_thread_.join();
  if (writer_thread_.joinable()) writer_thread_.join();
}

void IngestServer::stop() {
  stop_.store(true);
  queue_.close();
  wake_poll();
}

IngestStats IngestServer::stats() const {
  MutexLock lk(stats_mutex_);
  return stats_;
}

bool IngestServer::shedding() const {
  MutexLock lk(stats_mutex_);
  return shedding_;
}

void IngestServer::wake_poll() const noexcept {
  if (wake_wr_ < 0) return;
  const std::uint8_t byte = 1;
  // A full pipe already means a wake is pending; EAGAIN is success here.
  [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &byte, 1);
}

// ---------------------------------------------------------------------
// Writer thread: the single consumer that owns WAL order.

void IngestServer::respond(std::uint64_t conn, const Frame& frame,
                           bool close) {
  Response r{conn, encode_frame(frame), close};
  {
    MutexLock lk(response_mutex_);
    responses_.push_back(std::move(r));
  }
  if (std::holds_alternative<RejectFrame>(frame)) {
    MutexLock lk(stats_mutex_);
    ++stats_.rejects_sent;
  }
}

void IngestServer::update_shed_state() {
  const double latency = daemon_.last_fsync_seconds();
  MutexLock lk(stats_mutex_);
  if (!shedding_ && latency >= options_.shed_fsync_seconds) {
    shedding_ = true;
    ++stats_.shed_entries;
  } else if (shedding_ && latency <= options_.recover_fsync_seconds) {
    shedding_ = false;
  }
}

// One writer drain, three phases (the frame-batching satellite of the
// bounded-recovery PR):
//
//  1. classify every item in queue order against *tentative* per-peer ack
//     marks — handshakes, duplicates, out-of-order and shed rejections are
//     answered immediately (none of those responses asserts new
//     durability); frames that will land in the WAL are collected;
//  2. append the whole accepted run with ONE fdatasync (Daemon::append_many)
//     — the cumulative Ack means per-frame syncs bought nothing;
//  3. only now advance the real marks, apply each frame to the controller
//     in the same order, and emit the deferred Acks. An Ack{s} still
//     implies everything <= s from that peer is durable.
//
// Then the snapshot cadence check and the liveness heartbeat, both at the
// batch boundary: every durable frame has been applied and is covered by
// the marks, which is exactly the invariant a snapshot needs.
void IngestServer::process_batch(std::vector<IngressItem>& items) {
  struct Accepted {
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
    std::string peer;
    FrameKind kind = FrameKind::kHeartbeat;
    bool append = false;  ///< false: dedup hit, already durable
    Frame frame;
  };
  std::vector<Accepted> accepted;
  accepted.reserve(items.size());
  // Durable marks stay put until phase 3; classification tracks where each
  // peer's cursor *will* be so a Hello or seq check mid-batch sees the
  // items ahead of it in the same drain.
  std::map<std::string, std::uint64_t> tentative;
  const auto tentative_mark = [&](const std::string& peer) -> std::uint64_t& {
    const auto it = tentative.find(peer);
    if (it != tentative.end()) return it->second;
    return tentative.emplace(peer, last_acked_[peer]).first->second;
  };

  for (IngressItem& item : items) {
    if (item.kind == IngressItem::Kind::kGone) {
      sessions_.erase(item.conn);  // last_acked_ survives for the reconnect
      continue;
    }

    // Hello: handshake only, any time, never WAL'd. Re-syncs the session
    // on a reconnect. The immediate Ack names the *durable* mark (never a
    // seq still waiting on this batch's sync); the session cursor pins to
    // the tentative one so in-flight items ahead of the Hello are not
    // re-expected.
    if (const auto* hello = std::get_if<HelloFrame>(&item.frame)) {
      if (hello->version != kProtocolVersion) {
        respond(item.conn,
                RejectFrame{item.seq, RejectCode::kBadHello,
                            "protocol version mismatch"},
                /*close=*/true);
        continue;
      }
      if (hello->fleet_hash != 0 &&
          hello->fleet_hash !=
              fleet_config_hash(daemon_.controller().config())) {
        respond(item.conn,
                RejectFrame{item.seq, RejectCode::kBadHello,
                            "fleet config hash mismatch"},
                /*close=*/true);
        continue;
      }
      Session& s = sessions_[item.conn];
      s.peer = hello->peer;
      s.synced = true;
      s.expected = tentative_mark(s.peer) + 1;
      respond(item.conn, AckFrame{last_acked_[s.peer]}, /*close=*/false);
      continue;
    }

    const auto it = sessions_.find(item.conn);
    if (it == sessions_.end() || !it->second.synced) {
      respond(item.conn,
              RejectFrame{item.seq, RejectCode::kNoHello, "data before hello"},
              /*close=*/true);
      continue;
    }
    Session& session = it->second;

    const FrameKind kind = frame_kind(item.frame);
    if (!is_data_kind(kind) && !is_control_kind(kind)) {
      // Decisions flow out of the daemon, Ack/Reject out of the server; a
      // collector sending one is broken, not unlucky.
      respond(item.conn,
              RejectFrame{item.seq, RejectCode::kUnexpectedFrame,
                          std::string("collectors never send ") +
                              to_string(kind)},
              /*close=*/true);
      continue;
    }

    if (item.seq <= tentative_mark(session.peer)) {
      // Retransmission of something already durable (or accepted earlier
      // in this very batch): cumulative re-Ack of the durable mark.
      {
        MutexLock lk(stats_mutex_);
        ++stats_.duplicates_dropped;
      }
      respond(item.conn, AckFrame{last_acked_[session.peer]}, /*close=*/false);
      continue;
    }

    if (item.seq != session.expected) {
      {
        MutexLock lk(stats_mutex_);
        ++stats_.out_of_order_rejects;
      }
      respond(item.conn,
              RejectFrame{item.seq, RejectCode::kOutOfOrder,
                          "resend from the last ack"},
              /*close=*/false);
      continue;
    }

    if (is_data_kind(kind)) {
      bool shed = false;
      {
        MutexLock lk(stats_mutex_);
        shed = shedding_;
      }
      if (shed) {
        // Nothing is appending while we shed, so nothing would re-measure
        // the disk: probe it (an fsync with no append) and accept this
        // frame after all if the stall has cleared.
        daemon_.probe_wal();
        update_shed_state();
        MutexLock lk(stats_mutex_);
        shed = shedding_;
        if (shed) ++stats_.shed_rejects;
      }
      if (shed) {
        // Heartbeat-only mode: the frame is neither appended nor acked, so
        // the collector holds it and retries after backoff — nothing acked
        // is ever shed, nothing shed is ever acked.
        respond(item.conn,
                RejectFrame{item.seq, RejectCode::kShedding,
                            "wal stalled: heartbeat-only"},
                /*close=*/false);
        continue;
      }
    }

    // Accepted. Whether it needs an append (vs. a dedup drop of a frame
    // durable before the crash) is decided now; the ack waits for the
    // batch sync either way — an earlier frame of the same peer may be in
    // the pending run, and Acks are cumulative.
    Accepted acc;
    acc.conn = item.conn;
    acc.seq = item.seq;
    acc.peer = session.peer;
    acc.kind = kind;
    const std::vector<std::uint8_t> encoding = encode_frame(item.frame);
    const std::uint64_t hash = wire::fnv1a64(encoding.data(), encoding.size());
    const auto dup = dedup_.find(hash);
    if (dup != dedup_.end() && dup->second > 0) {
      if (--dup->second == 0) dedup_.erase(dup);
      acc.append = false;
    } else {
      acc.append = true;
    }
    acc.frame = std::move(item.frame);
    tentative_mark(acc.peer) = acc.seq;
    session.expected = acc.seq + 1;
    accepted.push_back(std::move(acc));
  }

  // Phase 2: one append run, one fdatasync.
  std::vector<Frame> to_append;
  to_append.reserve(accepted.size());
  for (const Accepted& acc : accepted)
    if (acc.append) to_append.push_back(acc.frame);
  if (!to_append.empty()) {
    daemon_.append_many(to_append);
    update_shed_state();
    MutexLock lk(stats_mutex_);
    ++stats_.wal_batches;
  }

  // Phase 3: everything in the run is durable — advance the real marks,
  // apply in order, ack.
  for (Accepted& acc : accepted) {
    last_acked_[acc.peer] = acc.seq;
    if (acc.append) {
      daemon_.apply_frame(acc.frame);
      MutexLock lk(stats_mutex_);
      ++stats_.messages_ingested;
    } else {
      MutexLock lk(stats_mutex_);
      ++stats_.duplicates_dropped;
    }
    respond(acc.conn, AckFrame{acc.seq}, /*close=*/false);

    // Only newly-appended Shutdowns count: a dedup drop means the frame
    // was in the recovered suffix, and those are already folded into the
    // recovered_shutdowns seed (the dedup multiset holds nothing else).
    if (acc.append && acc.kind == FrameKind::kShutdown) {
      ++shutdowns_seen_;
      {
        MutexLock lk(stats_mutex_);
        stats_.shutdowns_seen = shutdowns_seen_;
      }
      if (options_.expected_shutdowns > 0 &&
          shutdowns_seen_ >= options_.expected_shutdowns)
        queue_.close();  // drain what is queued, then the loop ends
    }
  }

  // Batch boundary: the one point where "durable", "applied" and "covered
  // by the marks" all coincide — the snapshot invariant (DESIGN.md §9).
  daemon_.maybe_snapshot();
  ++batches_processed_;
  if (!options_.health_path.empty())
    write_file_atomic(options_.health_path,
                      std::to_string(batches_processed_));
}

void IngestServer::writer_loop() {
  const std::size_t cap =
      options_.max_batch_frames > 0
          ? options_.max_batch_frames
          : (options_.queue_capacity > 0 ? options_.queue_capacity : 1);
  std::vector<IngressItem> batch;
  while (true) {
    std::optional<IngressItem> item = queue_.pop();
    if (!item.has_value()) break;  // closed and drained
    batch.clear();
    batch.push_back(std::move(*item));
    if (cap > 1) queue_.drain(batch, cap - 1);
    process_batch(batch);
    wake_poll();
  }
  stop_.store(true);
  wake_poll();
}

// ---------------------------------------------------------------------
// Poll thread: accepts, reads, decodes, quarantines, transmits.

void IngestServer::poll_loop() {
  std::map<std::uint64_t, Conn> conns;
  std::uint64_t next_conn_id = 1;

  const auto quarantine = [&](std::uint64_t id, Conn& conn, RejectCode code,
                              const char* detail) {
    {
      MutexLock lk(stats_mutex_);
      if (code == RejectCode::kOversizedFrame)
        ++stats_.oversized_frames;
      else
        ++stats_.corrupt_frames;
      stats_.bytes_quarantined += conn.in.size();
      ++stats_.rejects_sent;
    }
    // Framing is lost, so the response cannot name a trustworthy seq.
    const std::vector<std::uint8_t> bytes =
        encode_frame(RejectFrame{0, code, detail});
    conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
    conn.in.clear();
    conn.want_close = true;
    queue_.push(IngressItem{IngressItem::Kind::kGone, id, 0, Frame{}});
  };

  /// Decode as many complete messages as the buffer holds; stop at a torn
  /// tail (wait for bytes), a quarantine (conn closing), or a full queue
  /// (backpressure: stash the item and pause reads).
  const auto drain_inbuf = [&](std::uint64_t id, Conn& conn) {
    while (!conn.want_close && conn.in.size() >= kEnvelopeHeader) {
      const std::uint64_t length = wire::load_u64(conn.in.data() + 8 + 1);
      if (length > options_.max_frame_bytes) {
        quarantine(id, conn, RejectCode::kOversizedFrame,
                   "length field over the frame cap");
        return;
      }
      const std::size_t total =
          8 + kFrameHeaderSize + static_cast<std::size_t>(length);
      if (conn.in.size() < total) return;  // torn: wait for more bytes
      IngressItem item;
      item.conn = id;
      item.seq = wire::load_u64(conn.in.data());
      try {
        item.frame = decode_frame(conn.in.data() + 8, total - 8).frame;
      } catch (const std::exception& e) {
        quarantine(id, conn, RejectCode::kCorruptFrame, e.what());
        return;
      }
      if (!queue_.try_push(item)) {
        if (queue_.closed()) return;  // shutting down; drop on the floor
        conn.stalled = std::move(item);
        conn.has_stalled = true;
        conn.paused = true;
        MutexLock lk(stats_mutex_);
        ++stats_.backpressure_stalls;
        return;
      }
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<std::ptrdiff_t>(total));
    }
  };

  const auto retry_stalled = [&](std::uint64_t id, Conn& conn) {
    if (!conn.has_stalled) return;
    if (!queue_.try_push(conn.stalled)) {
      if (!queue_.closed()) return;  // still full; stay paused
      conn.has_stalled = false;      // shutting down
      conn.paused = false;
      return;
    }
    const std::uint64_t length = wire::load_u64(conn.in.data() + 8 + 1);
    const std::size_t total =
        8 + kFrameHeaderSize + static_cast<std::size_t>(length);
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(total));
    conn.has_stalled = false;
    conn.paused = false;
    drain_inbuf(id, conn);
  };

  const auto flush_out = [&](Conn& conn) {
    while (!conn.out.empty() && conn.fd >= 0) {
      // MSG_NOSIGNAL: a peer that died mid-reply must surface as EPIPE,
      // not kill the daemon with SIGPIPE.
      const ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EAGAIN or a dead peer; poll decides which
      conn.out.erase(conn.out.begin(), conn.out.begin() + n);
    }
  };

  const auto dispatch_responses = [&] {
    std::vector<Response> pending;
    {
      MutexLock lk(response_mutex_);
      pending.swap(responses_);
    }
    for (Response& r : pending) {
      const auto it = conns.find(r.conn);
      if (it == conns.end()) continue;  // conn died before the reply
      it->second.out.insert(it->second.out.end(), r.bytes.begin(),
                            r.bytes.end());
      if (r.close) it->second.want_close = true;
      flush_out(it->second);
    }
  };

  const auto close_conn = [&](std::uint64_t id, Conn& conn, bool notify) {
    if (conn.fd >= 0) ::close(conn.fd);
    conn.fd = -1;
    if (notify)
      queue_.push(IngressItem{IngressItem::Kind::kGone, id, 0, Frame{}});
  };

  while (!stop_.load()) {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = fixed)
    fds.push_back(pollfd{wake_rd_, POLLIN, 0});
    fd_conn.push_back(0);
    if (unix_fd_ >= 0) {
      fds.push_back(pollfd{unix_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    if (tcp_fd_ >= 0) {
      fds.push_back(pollfd{tcp_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (const auto& [id, conn] : conns) {
      short events = 0;
      if (!conn.paused && !conn.want_close) events |= POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    const int ready = ::poll(fds.data(), fds.size(), kPollMillis);
    if (ready < 0 && errno != EINTR) break;

    // Wake pipe: writer produced responses and/or queue room.
    if (fds[0].revents & POLLIN) {
      std::uint8_t sink[64];
      while (::read(wake_rd_, sink, sizeof(sink)) > 0) {
      }
    }
    dispatch_responses();
    for (auto& [id, conn] : conns) retry_stalled(id, conn);

    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fd_conn[i] == 0) {  // a listener
        while (true) {
          const int cfd =
              ::accept4(fds[i].fd, nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;
          Conn conn;
          conn.fd = cfd;
          conns.emplace(next_conn_id++, std::move(conn));
          MutexLock lk(stats_mutex_);
          ++stats_.connections_accepted;
        }
        continue;
      }

      const auto it = conns.find(fd_conn[i]);
      if (it == conns.end()) continue;
      Conn& conn = it->second;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        flush_out(conn);
        close_conn(it->first, conn, /*notify=*/true);
        continue;
      }
      if (fds[i].revents & POLLOUT) flush_out(conn);
      if (fds[i].revents & POLLIN) {
        std::uint8_t buf[16384];
        bool eof = false;
        while (true) {
          const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
          if (n < 0 && errno == EINTR) continue;
          if (n < 0) break;  // EAGAIN
          if (n == 0) {
            eof = true;
            break;
          }
          conn.in.insert(conn.in.end(), buf, buf + n);
          if (conn.in.size() >= options_.max_frame_bytes) break;
        }
        drain_inbuf(it->first, conn);
        if (eof) close_conn(it->first, conn, /*notify=*/true);
      }
      if (conn.fd >= 0 && conn.want_close && conn.out.empty())
        close_conn(it->first, conn, /*notify=*/false);
    }

    for (auto it = conns.begin(); it != conns.end();)
      it = it->second.fd < 0 ? conns.erase(it) : std::next(it);
  }

  // Final drain: the writer's last Acks (the Shutdown ones included) must
  // reach their collectors before the sockets close.
  for (int round = 0; round < 100; ++round) {
    dispatch_responses();
    bool pending = false;
    {
      MutexLock lk(response_mutex_);
      pending = !responses_.empty();
    }
    for (auto& [id, conn] : conns) {
      flush_out(conn);
      pending = pending || !conn.out.empty();
    }
    if (!pending) break;
    ::poll(nullptr, 0, 10);  // brief pause; peers drain their side
  }
  for (auto& [id, conn] : conns) close_conn(id, conn, /*notify=*/false);
}

}  // namespace vmcw::service
