#include "service/protocol.h"

#include <stdexcept>

#include "runtime/wire.h"

namespace vmcw::service {

namespace {

using wire::ByteReader;
using wire::ByteWriter;
using wire::fnv1a64;

void encode_payload(const HelloFrame& f, ByteWriter& w) {
  w.u32(f.version);
  w.u64(f.fleet_hash);
  w.str(f.peer);
}

void encode_payload(const HeartbeatFrame& f, ByteWriter& w) { w.u64(f.tick); }

void encode_payload(const FlushFrame& f, ByteWriter& w) { w.u64(f.tick); }

void encode_payload(const ShutdownFrame& f, ByteWriter& w) { w.u64(f.tick); }

void encode_payload(const HostTelemetryDeltaFrame& f, ByteWriter& w) {
  w.u64(f.tick);
  w.u64(f.agent);
  w.u64(f.samples.size());
  for (const VmSample& s : f.samples) {
    w.u64(s.vm);
    w.f64(s.cpu_rpe2);
    w.f64(s.memory_mb);
  }
}

void encode_payload(const VmArrivalFrame& f, ByteWriter& w) {
  w.u64(f.tick);
  w.u64(f.vm);
  w.str(f.app);
  w.f64(f.cpu_rpe2);
  w.f64(f.memory_mb);
}

void encode_payload(const VmDepartureFrame& f, ByteWriter& w) {
  w.u64(f.tick);
  w.u64(f.vm);
}

void encode_payload(const AckFrame& f, ByteWriter& w) { w.u64(f.seq); }

void encode_payload(const RejectFrame& f, ByteWriter& w) {
  w.u64(f.seq);
  w.u8(static_cast<std::uint8_t>(f.code));
  w.str(f.detail);
}

void encode_payload(const DecisionBatchFrame& f, ByteWriter& w) {
  w.u64(f.tick);
  w.u8(f.degraded ? 1 : 0);
  w.u64(f.decisions.size());
  for (const Decision& d : f.decisions) {
    w.u64(d.vm);
    w.u8(static_cast<std::uint8_t>(d.action));
    w.u8(static_cast<std::uint8_t>(d.reason));
    w.i32(d.from);
    w.i32(d.to);
  }
}

HelloFrame decode_hello(ByteReader& r) {
  HelloFrame f;
  f.version = r.u32();
  f.fleet_hash = r.u64();
  f.peer = r.str();
  return f;
}

HostTelemetryDeltaFrame decode_telemetry(ByteReader& r) {
  HostTelemetryDeltaFrame f;
  f.tick = r.u64();
  f.agent = r.u64();
  const std::uint64_t n = r.u64();
  f.samples.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    VmSample s;
    s.vm = r.u64();
    s.cpu_rpe2 = r.f64();
    s.memory_mb = r.f64();
    f.samples.push_back(s);
  }
  return f;
}

VmArrivalFrame decode_arrival(ByteReader& r) {
  VmArrivalFrame f;
  f.tick = r.u64();
  f.vm = r.u64();
  f.app = r.str();
  f.cpu_rpe2 = r.f64();
  f.memory_mb = r.f64();
  return f;
}

VmDepartureFrame decode_departure(ByteReader& r) {
  VmDepartureFrame f;
  f.tick = r.u64();
  f.vm = r.u64();
  return f;
}

RejectFrame decode_reject(ByteReader& r) {
  RejectFrame f;
  f.seq = r.u64();
  f.code = static_cast<RejectCode>(r.u8());
  if (f.code < RejectCode::kBadHello || f.code > RejectCode::kUnexpectedFrame)
    throw std::runtime_error("protocol: unknown reject code");
  f.detail = r.str();
  return f;
}

DecisionBatchFrame decode_batch(ByteReader& r) {
  DecisionBatchFrame f;
  f.tick = r.u64();
  f.degraded = r.u8() != 0;
  const std::uint64_t n = r.u64();
  f.decisions.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Decision d;
    d.vm = r.u64();
    d.action = static_cast<DecisionAction>(r.u8());
    d.reason = static_cast<DecisionReason>(r.u8());
    if (d.action > DecisionAction::kMigrate ||
        d.reason > DecisionReason::kStaleTelemetry)
      throw std::runtime_error("protocol: unknown decision tag");
    d.from = r.i32();
    d.to = r.i32();
    f.decisions.push_back(d);
  }
  return f;
}

Frame decode_payload(FrameKind kind, ByteReader& r) {
  switch (kind) {
    case FrameKind::kHello:
      return decode_hello(r);
    case FrameKind::kHeartbeat:
      return HeartbeatFrame{r.u64()};
    case FrameKind::kFlush:
      return FlushFrame{r.u64()};
    case FrameKind::kShutdown:
      return ShutdownFrame{r.u64()};
    case FrameKind::kHostTelemetryDelta:
      return decode_telemetry(r);
    case FrameKind::kVmArrival:
      return decode_arrival(r);
    case FrameKind::kVmDeparture:
      return decode_departure(r);
    case FrameKind::kDecisionBatch:
      return decode_batch(r);
    case FrameKind::kAck:
      return AckFrame{r.u64()};
    case FrameKind::kReject:
      return decode_reject(r);
  }
  throw std::runtime_error("protocol: unknown frame kind");
}

}  // namespace

const char* to_string(FrameKind kind) noexcept {
  switch (kind) {
    case FrameKind::kHello:
      return "hello";
    case FrameKind::kHeartbeat:
      return "heartbeat";
    case FrameKind::kFlush:
      return "flush";
    case FrameKind::kShutdown:
      return "shutdown";
    case FrameKind::kHostTelemetryDelta:
      return "host-telemetry-delta";
    case FrameKind::kVmArrival:
      return "vm-arrival";
    case FrameKind::kVmDeparture:
      return "vm-departure";
    case FrameKind::kDecisionBatch:
      return "decision-batch";
    case FrameKind::kAck:
      return "ack";
    case FrameKind::kReject:
      return "reject";
  }
  return "?";
}

const char* to_string(RejectCode code) noexcept {
  switch (code) {
    case RejectCode::kBadHello:
      return "bad-hello";
    case RejectCode::kNoHello:
      return "no-hello";
    case RejectCode::kCorruptFrame:
      return "corrupt-frame";
    case RejectCode::kOversizedFrame:
      return "oversized-frame";
    case RejectCode::kOutOfOrder:
      return "out-of-order";
    case RejectCode::kShedding:
      return "shedding";
    case RejectCode::kUnexpectedFrame:
      return "unexpected-frame";
  }
  return "?";
}

bool reject_is_transient(RejectCode code) noexcept {
  return code == RejectCode::kShedding || code == RejectCode::kOutOfOrder;
}

const char* to_string(DecisionAction action) noexcept {
  switch (action) {
    case DecisionAction::kHold:
      return "hold";
    case DecisionAction::kAdmit:
      return "admit";
    case DecisionAction::kMigrate:
      return "migrate";
  }
  return "?";
}

const char* to_string(DecisionReason reason) noexcept {
  switch (reason) {
    case DecisionReason::kAdmitted:
      return "admitted";
    case DecisionReason::kContention:
      return "contention";
    case DecisionReason::kUnderutilization:
      return "underutilization";
    case DecisionReason::kNoCapacity:
      return "no-capacity";
    case DecisionReason::kStaleTelemetry:
      return "stale-telemetry";
  }
  return "?";
}

FrameKind frame_kind(const Frame& frame) noexcept {
  return std::visit(
      [](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, HelloFrame>) return FrameKind::kHello;
        if constexpr (std::is_same_v<T, HeartbeatFrame>)
          return FrameKind::kHeartbeat;
        if constexpr (std::is_same_v<T, FlushFrame>) return FrameKind::kFlush;
        if constexpr (std::is_same_v<T, ShutdownFrame>)
          return FrameKind::kShutdown;
        if constexpr (std::is_same_v<T, HostTelemetryDeltaFrame>)
          return FrameKind::kHostTelemetryDelta;
        if constexpr (std::is_same_v<T, VmArrivalFrame>)
          return FrameKind::kVmArrival;
        if constexpr (std::is_same_v<T, VmDepartureFrame>)
          return FrameKind::kVmDeparture;
        if constexpr (std::is_same_v<T, DecisionBatchFrame>)
          return FrameKind::kDecisionBatch;
        if constexpr (std::is_same_v<T, AckFrame>) return FrameKind::kAck;
        if constexpr (std::is_same_v<T, RejectFrame>)
          return FrameKind::kReject;
      },
      frame);
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  ByteWriter payload;
  std::visit([&](const auto& f) { encode_payload(f, payload); }, frame);
  const std::vector<std::uint8_t>& body = payload.bytes();

  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(frame_kind(frame)));
  out.u64(body.size());
  out.u64(fnv1a64(body.data(), body.size()));
  std::vector<std::uint8_t> bytes = out.bytes();
  bytes.insert(bytes.end(), body.begin(), body.end());
  return bytes;
}

DecodedFrame decode_frame(const std::uint8_t* data, std::size_t size) {
  if (size < kFrameHeaderSize)
    throw std::runtime_error("protocol: short frame header");
  const std::uint8_t raw_kind = data[0];
  if (raw_kind < static_cast<std::uint8_t>(FrameKind::kHello) ||
      raw_kind > static_cast<std::uint8_t>(FrameKind::kReject))
    throw std::runtime_error("protocol: unknown frame kind");
  const std::uint64_t length = wire::load_u64(data + 1);
  const std::uint64_t checksum = wire::load_u64(data + 9);
  if (size - kFrameHeaderSize < length)
    throw std::runtime_error("protocol: torn frame");
  const std::uint8_t* body = data + kFrameHeaderSize;
  if (fnv1a64(body, length) != checksum)
    throw std::runtime_error("protocol: frame checksum mismatch");

  ByteReader reader(body, static_cast<std::size_t>(length));
  DecodedFrame decoded{decode_payload(static_cast<FrameKind>(raw_kind), reader),
                       kFrameHeaderSize + static_cast<std::size_t>(length)};
  if (!reader.exhausted())
    throw std::runtime_error("protocol: trailing payload bytes");
  return decoded;
}

std::vector<Frame> decode_frames(const std::vector<std::uint8_t>& bytes) {
  std::vector<Frame> frames;
  std::size_t at = 0;
  while (at < bytes.size()) {
    DecodedFrame d = decode_frame(bytes.data() + at, bytes.size() - at);
    frames.push_back(std::move(d.frame));
    at += d.consumed;
  }
  return frames;
}

}  // namespace vmcw::service
