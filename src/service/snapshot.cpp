#include "service/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "runtime/wire.h"

namespace vmcw::service {
namespace {

constexpr char kMagic[8] = {'V', 'M', 'C', 'W', 'S', 'N', 'P', '1'};
constexpr std::uint32_t kVersion = 1;
/// magic + version + fleet hash + payload length + payload checksum.
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8 + 8;

std::vector<std::uint8_t> encode_payload(const SnapshotData& data) {
  wire::ByteWriter w;
  w.u64(data.frames_covered);
  w.u64(data.batches_emitted);
  w.u64(data.shutdowns_covered);
  w.u64(data.controller_state.size());
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.insert(bytes.end(), data.controller_state.begin(),
               data.controller_state.end());
  wire::ByteWriter marks;
  marks.u64(data.ack_marks.size());
  for (const auto& [peer, seq] : data.ack_marks) {
    marks.str(peer);
    marks.u64(seq);
  }
  bytes.insert(bytes.end(), marks.bytes().begin(), marks.bytes().end());
  return bytes;
}

bool decode_payload(const std::uint8_t* data, std::size_t size,
                    SnapshotData& out) {
  try {
    wire::ByteReader r(data, size);
    out.frames_covered = r.u64();
    out.batches_emitted = r.u64();
    out.shutdowns_covered = r.u64();
    const std::uint64_t state_len = r.u64();
    if (state_len > size) return false;
    out.controller_state.resize(state_len);
    for (std::size_t i = 0; i < state_len; ++i) out.controller_state[i] = r.u8();
    const std::uint64_t n_marks = r.u64();
    if (n_marks > size) return false;
    out.ack_marks.clear();
    std::string last_peer;
    for (std::uint64_t i = 0; i < n_marks; ++i) {
      std::string peer = r.str();
      const std::uint64_t seq = r.u64();
      // Writers emit marks in map order; enforce it so a snapshot's byte
      // image is canonical (duplicate or shuffled peers mean corruption).
      if (i > 0 && peer <= last_peer) return false;
      last_peer = peer;
      out.ack_marks.emplace(std::move(peer), seq);
    }
    return r.exhausted();
  } catch (const std::exception&) {
    return false;
  }
}

/// fsync the directory containing `path` so the rename itself is durable.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

bool write_snapshot(const std::string& path, std::uint64_t fleet_hash,
                    const SnapshotData& data) {
  const std::vector<std::uint8_t> payload = encode_payload(data);

  wire::ByteWriter header;
  for (const char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kVersion);
  header.u64(fleet_hash);
  header.u64(payload.size());
  header.u64(wire::fnv1a64(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = wire::write_all(fd, header.bytes().data(), header.bytes().size()) &&
            wire::write_all(fd, payload.data(), payload.size()) &&
            ::fdatasync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  sync_parent_dir(path);
  return true;
}

const char* to_string(SnapshotStatus status) noexcept {
  switch (status) {
    case SnapshotStatus::kOk:
      return "ok";
    case SnapshotStatus::kMissing:
      return "missing";
    case SnapshotStatus::kCorrupt:
      return "corrupt";
    case SnapshotStatus::kStaleFleet:
      return "stale fleet configuration";
  }
  return "unknown";
}

SnapshotStatus read_snapshot(const std::string& path, std::uint64_t fleet_hash,
                             SnapshotData& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return SnapshotStatus::kMissing;
  std::vector<std::uint8_t> bytes;
  const bool read_ok = wire::read_all(fd, bytes);
  ::close(fd);
  if (!read_ok || bytes.size() < kHeaderSize) return SnapshotStatus::kCorrupt;

  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return SnapshotStatus::kCorrupt;
  if (wire::load_u32(bytes.data() + 8) != kVersion)
    return SnapshotStatus::kCorrupt;
  const std::uint64_t file_fleet = wire::load_u64(bytes.data() + 12);
  const std::uint64_t length = wire::load_u64(bytes.data() + 20);
  const std::uint64_t checksum = wire::load_u64(bytes.data() + 28);
  if (bytes.size() - kHeaderSize != length) return SnapshotStatus::kCorrupt;
  if (wire::fnv1a64(bytes.data() + kHeaderSize, length) != checksum)
    return SnapshotStatus::kCorrupt;
  // Fleet mismatch is only reportable once the bytes themselves check out:
  // a corrupt header must not masquerade as "wrong fleet".
  if (file_fleet != fleet_hash) return SnapshotStatus::kStaleFleet;
  if (!decode_payload(bytes.data() + kHeaderSize, length, out))
    return SnapshotStatus::kCorrupt;
  return SnapshotStatus::kOk;
}

}  // namespace vmcw::service
