// Adapters binding an IoFaultPlan (chaos/io_faults) onto the service
// layer's injection surfaces: TransportFaults on the collector side and
// WalIoHooks under the telemetry WAL. Header-only so that tests and tools
// can compose a plan with real sockets and a real daemon without adding a
// chaos -> service link edge; consumers link vmcw_service and vmcw_chaos
// themselves.
#pragma once

#include <cstdint>

#include "chaos/io_faults.h"
#include "service/collector.h"
#include "service/telemetry_log.h"

namespace vmcw {

/// One collector's view of the transport fault schedule: forwards every
/// hook to the plan under this collector's key, so N clients sharing one
/// plan fail independently and reproducibly.
class PlannedTransportFaults : public service::TransportFaults {
 public:
  PlannedTransportFaults(const IoFaultPlan& plan, std::uint64_t collector)
      : plan_(&plan), collector_(collector) {}

  bool disconnect_after(std::uint64_t message) override {
    return plan_->disconnect_after(collector_, message);
  }
  bool corrupt_message(std::uint64_t message) override {
    return plan_->corrupt_message(collector_, message);
  }
  std::size_t corrupt_byte(std::uint64_t message, std::size_t size) override {
    return plan_->corrupt_byte(collector_, message, size);
  }
  bool split_write(std::uint64_t message) override {
    return plan_->split_write(collector_, message);
  }
  std::size_t split_point(std::uint64_t message, std::size_t size) override {
    return plan_->split_point(collector_, message, size);
  }

 private:
  const IoFaultPlan* plan_;
  std::uint64_t collector_;
};

/// WAL hooks with a *virtual* fsync clock: writes and fdatasyncs are real,
/// but the latency the FrameLog measures is the plan's injected stall for
/// that sync index — zero when healthy — so shed/recover cycles run in
/// tests without a slow disk or a real sleep. now() is called once before
/// and once after each sync; advancing the clock inside sync() makes the
/// measured latency exactly the injected stall.
class StallingWalHooks : public service::WalIoHooks {
 public:
  explicit StallingWalHooks(const IoFaultPlan& plan) : plan_(&plan) {}

  int sync(int fd) override {
    const int rc = service::WalIoHooks::sync(fd);
    clock_ += plan_->fsync_stall(sync_index_++);
    return rc;
  }
  double now() override { return clock_; }

  std::uint64_t syncs() const noexcept { return sync_index_; }

 private:
  const IoFaultPlan* plan_;
  std::uint64_t sync_index_ = 0;
  double clock_ = 0.0;
};

}  // namespace vmcw
